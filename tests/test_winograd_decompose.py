"""Tests for repro.winograd.decompose — kernel decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.winograd.decompose import (
    decompose_kernel,
    decomposition_blocks,
    reconstruct_kernel,
)


class TestBlocks:
    def test_3x3_single_block(self):
        assert decomposition_blocks(3, 3, 3) == [(0, 0)]

    def test_5x5_four_blocks(self):
        # ceil(5/3) x ceil(5/3) = 4 blocks, paper Section 4.2.5.
        blocks = decomposition_blocks(5, 5, 3)
        assert blocks == [(0, 0), (0, 3), (3, 0), (3, 3)]

    def test_7x7_nine_blocks(self):
        assert len(decomposition_blocks(7, 7, 3)) == 9

    def test_rectangular(self):
        assert decomposition_blocks(11, 7, 3) == [
            (r, s) for r in (0, 3, 6, 9) for s in (0, 3, 6)
        ]

    def test_1x1(self):
        assert decomposition_blocks(1, 1, 3) == [(0, 0)]

    def test_invalid(self):
        with pytest.raises(ShapeError):
            decomposition_blocks(0, 3, 3)


class TestDecompose:
    def test_blocks_zero_padded(self):
        kernels = np.ones((1, 1, 5, 5))
        blocks = decompose_kernel(kernels, 3)
        # block at (3, 3) holds rows/cols 3-4 only; rest is padding.
        (_, last) = blocks[-1]
        assert last[0, 0, :2, :2].sum() == 4
        assert last[0, 0, 2, :].sum() == 0
        assert last[0, 0, :, 2].sum() == 0

    def test_sum_of_blocks_preserves_coefficients(self):
        rng = np.random.default_rng(0)
        kernels = rng.normal(size=(2, 3, 7, 5))
        blocks = decompose_kernel(kernels, 3)
        total = sum(block.sum() for _, block in blocks)
        assert total == pytest.approx(kernels.sum())

    def test_rejects_bad_rank(self):
        with pytest.raises(ShapeError):
            decompose_kernel(np.ones((3, 3)), 3)


@settings(max_examples=30, deadline=None)
@given(
    kr=st.integers(1, 12),
    ks=st.integers(1, 12),
    k=st.integers(1, 3),
    c=st.integers(1, 3),
    seed=st.integers(0, 2**31),
)
def test_reconstruct_inverts_decompose(kr, ks, k, c, seed):
    """Property: decomposition is lossless."""
    rng = np.random.default_rng(seed)
    kernels = rng.normal(size=(k, c, kr, ks))
    blocks = decompose_kernel(kernels, 3)
    assert len(blocks) == (-(-kr // 3)) * (-(-ks // 3))
    back = reconstruct_kernel(blocks, kr, ks)
    np.testing.assert_array_equal(back, kernels)

"""Tests for repro.arch.fifo — handshake token FIFOs (Section 4.1)."""

import pytest

from repro.errors import SimulationError
from repro.arch.fifo import HandshakeFifo


class TestHandshakeFifo:
    def test_push_pop_order(self):
        fifo = HandshakeFifo("f", depth=3)
        fifo.push(10.0)
        fifo.push(20.0)
        assert fifo.pop() == 10.0
        assert fifo.pop() == 20.0

    def test_preload_models_free_halves(self):
        # Ping-pong buffers start with both halves free.
        fifo = HandshakeFifo("free", depth=2, preload=2)
        assert fifo.pop() == 0.0
        assert fifo.pop() == 0.0
        with pytest.raises(SimulationError):
            fifo.pop()

    def test_underflow_is_deadlock_detection(self):
        fifo = HandshakeFifo("f")
        with pytest.raises(SimulationError, match="underflow"):
            fifo.pop()

    def test_overflow_detects_unbalanced_flags(self):
        fifo = HandshakeFifo("f", depth=1)
        fifo.push(1.0)
        with pytest.raises(SimulationError, match="overflow"):
            fifo.push(2.0)

    def test_monotonicity_enforced(self):
        fifo = HandshakeFifo("f", depth=4)
        fifo.push(5.0)
        with pytest.raises(SimulationError, match="non-monotonic"):
            fifo.push(4.0)

    def test_stats(self):
        fifo = HandshakeFifo("f", depth=4, preload=1)
        fifo.push(1.0)
        fifo.push(2.0)
        fifo.pop()
        assert fifo.pushes == 3  # preload counts as a push
        assert fifo.pops == 1
        assert fifo.occupancy == 2
        assert fifo.max_occupancy == 3

    def test_bad_construction(self):
        with pytest.raises(SimulationError):
            HandshakeFifo("f", depth=0)
        with pytest.raises(SimulationError):
            HandshakeFifo("f", depth=2, preload=3)

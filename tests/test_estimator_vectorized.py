"""The vectorized candidate-batch estimator against the scalar oracle.

The contract is *exact* float equality, not closeness: every term of
every :class:`~repro.estimator.latency.LayerEstimate` the batch path
materialises must be bit-equal to what
:func:`~repro.estimator.latency.estimate_layer` computes, and the DSE
selection (winner, runner-up ranking, infeasibility) must be
byte-identical under ``estimator="vectorized"``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.params import AcceleratorConfig
from repro.dse import run_dse
from repro.dse.engine import map_network
from repro.dse.space import DseOptions
from repro.errors import DseError, ReproError
from repro.estimator import BatchLayerEstimator, estimate_layer
from repro.estimator.vectorized import COMBOS
from repro.fpga import get_device
from repro.ir import zoo
from repro.mapping.partition import fused_pool_for
from repro.pipeline import EvaluationCache

DEVICE = get_device("vu9p")


def make_cfg(pi=4, po=4, pt=6, instances=1, buffers=(32768, 16384, 16384)):
    return AcceleratorConfig(
        pi=pi, po=po, pt=pt, instances=instances, frequency_mhz=167.0,
        input_buffer_vecs=buffers[0], weight_buffer_vecs=buffers[1],
        output_buffer_vecs=buffers[2],
    )


#: A deliberately mixed batch: different parallelism, tile sizes,
#: instance counts, and one tiny-buffer config that is infeasible for
#: most layers (exercises the feasibility masks).
CFG_BATCH = [
    make_cfg(pi=4, po=4, pt=6),
    make_cfg(pi=8, po=2, pt=4),
    make_cfg(pi=2, po=1, pt=6, instances=2),
    make_cfg(pi=16, po=8, pt=4, instances=4),
    make_cfg(pi=4, po=2, pt=6, buffers=(64, 32, 32)),
]


def scalar_grid(device, network, cfgs):
    """The oracle view: estimate_layer per cell, None where it raises."""
    grid = []
    for cfg in cfgs:
        by_layer = []
        for info in network.compute_layers():
            pool = fused_pool_for(network, info.index)
            cell = {}
            for mode, dataflow in COMBOS:
                try:
                    cell[(mode, dataflow)] = estimate_layer(
                        cfg, device, info, mode, dataflow,
                        fused_pool=pool,
                    )
                except ReproError:
                    cell[(mode, dataflow)] = None
            by_layer.append(cell)
        grid.append(by_layer)
    return grid


def assert_grids_equal(vec, scalar):
    assert len(vec) == len(scalar)
    for vec_layers, scalar_layers in zip(vec, scalar):
        assert len(vec_layers) == len(scalar_layers)
        for vec_cell, scalar_cell in zip(vec_layers, scalar_layers):
            assert vec_cell.keys() == scalar_cell.keys()
            for combo, expected in scalar_cell.items():
                got = vec_cell[combo]
                if expected is None:
                    assert got is None, combo
                    continue
                assert got is not None, combo
                # Dataclass equality compares every term; each float
                # must be *bit*-equal, so == (not approx) is the point.
                assert got == expected, combo


@settings(max_examples=30, deadline=None)
@given(
    c=st.sampled_from([3, 16, 64, 256]),
    k=st.sampled_from([8, 32, 128]),
    h=st.sampled_from([7, 14, 28, 56]),
    kernel=st.sampled_from([1, 3, 5]),
    stride=st.sampled_from([1, 2]),
)
def test_grid_matches_scalar_exactly(c, k, h, kernel, stride):
    """Random single-conv layers: every (cfg, mode, dataflow) term is
    bit-equal to estimate_layer, infeasible cells included."""
    network = zoo.single_conv(c, k, h, kernel, stride=stride,
                              padding=kernel // 2)
    estimator = BatchLayerEstimator(DEVICE, network)
    assert_grids_equal(
        estimator.estimate_grid(CFG_BATCH),
        scalar_grid(DEVICE, network, CFG_BATCH),
    )


@pytest.mark.parametrize("model", ["tiny_cnn", "tiny_mlp"])
def test_grid_matches_on_multilayer_models(model):
    """Fused pools, Dense layers and pooling all flow through the
    geometry precomputation."""
    network = zoo.get_model(model)
    estimator = BatchLayerEstimator(DEVICE, network)
    assert_grids_equal(
        estimator.estimate_grid(CFG_BATCH),
        scalar_grid(DEVICE, network, CFG_BATCH),
    )


def test_map_candidates_matches_map_network():
    """Per-candidate (mapping, estimate) equals map_network's — and a
    candidate map_network rejects comes back as None."""
    network = zoo.tiny_cnn()
    estimator = BatchLayerEstimator(DEVICE, network)
    results = estimator.map_candidates(CFG_BATCH)
    for cfg, result in zip(CFG_BATCH, results):
        try:
            expected = map_network(cfg, DEVICE, network)
        except DseError:
            assert result is None
            continue
        assert result is not None
        mapping, estimate = result
        assert mapping == expected[0]
        assert estimate == expected[1]
        assert [e for e in estimate.layers] == [
            e for e in expected[1].layers
        ]


def test_map_candidates_empty_batch():
    assert BatchLayerEstimator(DEVICE, zoo.tiny_cnn()).map_candidates(
        []
    ) == []


def _ranking(result):
    return [(result.cfg, result.mapping, result.estimate)] + [
        (r.cfg, r.mapping, r.estimate) for r in result.runners_up
    ]


@pytest.mark.parametrize("objective", ["throughput", "latency"])
@pytest.mark.parametrize(
    "knobs",
    [
        dict(prune=False),
        dict(prune=True),
        dict(prune=True, best_first=True),
        dict(prune=False, use_cache=False),
    ],
)
def test_run_dse_vectorized_identical(objective, knobs):
    """The full DSE under estimator="vectorized" returns the scalar
    ranking byte for byte under every evaluation-knob combination."""
    network = zoo.tiny_cnn()
    scalar = run_dse(
        DEVICE, network, DseOptions(objective=objective, **knobs)
    )
    vectorized = run_dse(
        DEVICE, network,
        DseOptions(objective=objective, estimator="vectorized", **knobs),
    )
    assert _ranking(vectorized) == _ranking(scalar)
    assert (
        vectorized.candidates_considered == scalar.candidates_considered
    )


def test_vectorized_offers_populate_supplied_cache():
    """A caller-supplied cache receives the selected rows: dirty for
    the store flush, and bit-identical hits for later scalar lookups."""
    network = zoo.tiny_cnn()
    cache = EvaluationCache()
    result = run_dse(
        DEVICE, network,
        DseOptions(estimator="vectorized"), cache=cache,
    )
    dirty_estimates, _ = cache.take_dirty()
    assert dirty_estimates  # something to flush
    # Re-reading the winner's selection through the cache must hit and
    # return exactly the estimates the vectorized run materialised.
    # The key includes the calibration profile run_dse resolved.
    from repro.estimator.calibration import get_calibration

    cal = get_calibration(DEVICE.name)
    before = cache.stats.hits
    for info, layer_est in zip(
        network.compute_layers(), result.estimate.layers
    ):
        pool = fused_pool_for(network, info.index)
        cached = cache.estimate(
            result.cfg, DEVICE, info, layer_est.mode,
            layer_est.dataflow, cal, pool,
        )
        assert cached == layer_est
    assert cache.stats.hits == before + len(result.estimate.layers)


def test_internal_cache_gets_no_offers():
    """Without a caller-supplied cache the batch path skips offers
    entirely (nothing could ever read them) — observable as zero cache
    activity in the result stats."""
    result = run_dse(
        DEVICE, zoo.tiny_cnn(), DseOptions(estimator="vectorized")
    )
    assert result.cache_stats is not None
    assert result.cache_stats.hits == 0
    assert result.cache_stats.misses == 0


def test_options_reject_bad_estimator():
    with pytest.raises(DseError, match="unknown estimator"):
        DseOptions(estimator="simd")


def test_options_reject_vectorized_with_thread_executor():
    """Threads would serialise the numpy batch math on the GIL, so the
    combination is refused eagerly at construction."""
    with pytest.raises(DseError, match="requires.*process"):
        DseOptions(estimator="vectorized", jobs=2, executor="thread")


def test_options_vectorized_jobs_auto_upgrade_to_process():
    """serial + jobs > 1 auto-upgrades, and for the vectorized
    estimator the upgrade target is the process executor."""
    options = DseOptions(estimator="vectorized", jobs=2)
    assert options.executor == "process"
    # The scalar estimator keeps the pre-executor thread upgrade.
    assert DseOptions(jobs=2).executor == "thread"
    # jobs == 1 never upgrades anything.
    assert DseOptions(estimator="vectorized").executor == "serial"


@pytest.mark.parametrize("objective", ["throughput", "latency"])
@pytest.mark.parametrize(
    "knobs",
    [
        dict(prune=False),
        dict(prune=True),
        dict(prune=True, best_first=True),
        dict(prune=False, use_cache=False),
    ],
)
def test_run_dse_process_vectorized_identical(objective, knobs):
    """Candidate batches shipped to worker processes running the numpy
    path return the serial-vectorized (hence scalar) ranking byte for
    byte under every evaluation-knob combination."""
    network = zoo.tiny_cnn()
    serial = run_dse(
        DEVICE, network,
        DseOptions(objective=objective, estimator="vectorized", **knobs),
    )
    process = run_dse(
        DEVICE, network,
        DseOptions(
            objective=objective, estimator="vectorized", jobs=2,
            executor="process", **knobs,
        ),
    )
    assert _ranking(process) == _ranking(serial)
    assert (
        process.candidates_considered == serial.candidates_considered
    )


def test_process_vectorized_offers_populate_supplied_cache():
    """Worker-side vectorized offers ride the dirty delta back to the
    parent cache: later scalar lookups hit with bit-identical rows."""
    from repro.estimator.calibration import get_calibration

    network = zoo.tiny_cnn()
    cache = EvaluationCache()
    result = run_dse(
        DEVICE, network,
        DseOptions(estimator="vectorized", jobs=2, executor="process"),
        cache=cache,
    )
    dirty_estimates, _ = cache.take_dirty()
    assert dirty_estimates  # something to flush
    cal = get_calibration(DEVICE.name)
    before = cache.stats.hits
    for info, layer_est in zip(
        network.compute_layers(), result.estimate.layers
    ):
        pool = fused_pool_for(network, info.index)
        cached = cache.estimate(
            result.cfg, DEVICE, info, layer_est.mode,
            layer_est.dataflow, cal, pool,
        )
        assert cached == layer_est
    assert cache.stats.hits == before + len(result.estimate.layers)


def test_exact_limit_guard():
    """A layer whose numerator products overflow float64's exact-integer
    range is refused at construction with a pointer to the scalar path."""
    huge = zoo.single_conv(4096, 4096, 4096, 3, padding=1)
    with pytest.raises(DseError, match="estimator='scalar'"):
        BatchLayerEstimator(DEVICE, huge)


def test_batch_api_takes_no_cal():
    """Satellite of the cal-parameter cleanup: the batch estimation
    methods must not inherit the dead argument (cal is constructor-only,
    for cache-key parity)."""
    import inspect

    for method in (
        BatchLayerEstimator.estimate_grid,
        BatchLayerEstimator.map_candidates,
    ):
        assert "cal" not in inspect.signature(method).parameters


def test_scalar_estimate_ignores_cal():
    """estimate_layer accepts-and-ignores cal: any profile, same bits."""
    from repro.estimator.calibration import get_calibration

    info = zoo.tiny_cnn().compute_layers()[0]
    cfg = make_cfg()
    base = estimate_layer(cfg, DEVICE, info, "spat", "ws")
    for cal in (None, get_calibration("generic"),
                get_calibration(DEVICE.name)):
        assert estimate_layer(
            cfg, DEVICE, info, "spat", "ws", cal
        ) == base

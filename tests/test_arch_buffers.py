"""Tests for repro.arch.buffers — ping-pong buffers and Table-1 banks."""

import pytest

from repro.errors import SimulationError
from repro.arch.buffers import (
    PingPongBuffer,
    hybrid_bank_counts,
    input_buffer_banks,
    output_buffer_banks,
    weight_buffer_banks,
)
from repro.arch.params import AcceleratorConfig


class TestPingPong:
    def test_write_read(self):
        buf = PingPongBuffer("b", capacity_vecs=10)
        buf.write(0, data="payload", vecs=5)
        assert buf.read(0).data == "payload"

    def test_capacity_enforced(self):
        buf = PingPongBuffer("b", capacity_vecs=10)
        with pytest.raises(SimulationError):
            buf.write(0, data=None, vecs=11)

    def test_read_before_write(self):
        buf = PingPongBuffer("b", capacity_vecs=10)
        with pytest.raises(SimulationError):
            buf.read(1)

    def test_half_bounds(self):
        buf = PingPongBuffer("b", capacity_vecs=4)
        with pytest.raises(SimulationError):
            buf.write(2, data=None, vecs=1)

    def test_peak_tracking(self):
        buf = PingPongBuffer("b", capacity_vecs=10)
        buf.write(0, data=None, vecs=3)
        buf.write(1, data=None, vecs=7)
        assert buf.peak_vecs == 7

    def test_bad_construction(self):
        with pytest.raises(SimulationError):
            PingPongBuffer("b", capacity_vecs=0)


class TestTable1Banks:
    """Bank counts must reproduce the terms of Eq. 4."""

    @pytest.fixture
    def cfg(self):
        return AcceleratorConfig(pi=4, po=4, pt=6)

    def test_input_banks(self, cfg):
        # Wino: PI x PT x PT; Spat: PI*PT.
        assert input_buffer_banks(cfg, "wino").banks == 4 * 36
        assert input_buffer_banks(cfg, "spat").banks == 24

    def test_weight_banks_equal_both_modes(self, cfg):
        wino = weight_buffer_banks(cfg, "wino").banks
        spat = weight_buffer_banks(cfg, "spat").banks
        assert wino == spat == 4 * 4 * 36

    def test_output_banks(self, cfg):
        # Wino: PO x m x m; Spat: PO*PT.
        assert output_buffer_banks(cfg, "wino").banks == 4 * 16
        assert output_buffer_banks(cfg, "spat").banks == 24

    def test_hybrid_takes_worst_case(self, cfg):
        counts = hybrid_bank_counts(cfg)
        # Exactly the Eq. 4 terms: PI*PT^2, PI*PO*PT^2, PO*m^2.
        assert counts["input"] == cfg.pi * cfg.pt**2
        assert counts["weight"] == cfg.pi * cfg.po * cfg.pt**2
        assert counts["output"] == cfg.po * cfg.m**2

    def test_unknown_mode(self, cfg):
        with pytest.raises(SimulationError):
            input_buffer_banks(cfg, "fft")

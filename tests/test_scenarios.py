"""Scenario tests: whole-framework behaviour on realistic workloads.

These check *decisions*, not just mechanics: where the DSE places each
layer, how mode mixing plays out on 1x1-heavy networks, and that the
hybrid design degrades gracefully at the edges of the design space.
"""

import pytest

from repro.dse import run_dse
from repro.dse.engine import map_network
from repro.dse.space import DseOptions
from repro.errors import DseError
from repro.ir import zoo


class TestDarknet19:
    """Darknet-19 alternates 3x3 and 1x1 convolutions — the workload
    where per-layer mode choice matters most."""

    @pytest.fixture(scope="class")
    def mapping(self, cfg_vu9p_paper=None):
        from repro.fpga import get_device
        from repro.arch.params import AcceleratorConfig

        cfg = AcceleratorConfig(
            pi=4, po=4, pt=6, instances=6, frequency_mhz=167.0,
            input_buffer_vecs=32768, weight_buffer_vecs=16384,
            output_buffer_vecs=16384,
        )
        net = zoo.darknet19()
        m, est = map_network(cfg, get_device("vu9p"), net)
        return net, m, est

    def test_3x3_layers_winograd(self, mapping):
        net, m, _ = mapping
        for info in net.conv_layers():
            if info.layer.kernel_size == (3, 3):
                assert m.for_layer(info.layer.name).mode == "wino"

    def test_1x1_layers_spatial(self, mapping):
        net, m, _ = mapping
        for info in net.conv_layers():
            if info.layer.kernel_size == (1, 1):
                assert m.for_layer(info.layer.name).mode == "spat", (
                    info.layer.name
                )

    def test_hybrid_beats_both_pure_modes(self, mapping):
        from repro.arch.params import AcceleratorConfig
        from repro.estimator import estimate_network
        from repro.fpga import get_device
        from repro.mapping import NetworkMapping

        net, _, hybrid = mapping
        cfg = AcceleratorConfig(
            pi=4, po=4, pt=6, instances=6, frequency_mhz=167.0,
            input_buffer_vecs=32768, weight_buffer_vecs=16384,
            output_buffer_vecs=16384,
        )
        device = get_device("vu9p")
        for mode in ("spat", "wino"):
            uniform = NetworkMapping.uniform(net, mode, "ws")
            pure = estimate_network(cfg, device, net, uniform)
            assert hybrid.latency <= pure.latency * 1.0001, mode


class TestAlexNet:
    def test_dse_handles_mixed_strides(self, vu9p):
        net = zoo.alexnet()
        result = run_dse(
            vu9p, net,
            DseOptions(frequency_mhz=167, max_instances=2),
        )
        assert result.mapping.for_layer("conv1").mode == "spat"
        # 5x5 and 3x3 stride-1 layers should go Winograd on a
        # bandwidth-rich device.
        assert result.mapping.for_layer("conv3").mode == "wino"

    def test_5x5_winograd_still_profitable(self, cfg_vu9p_paper, vu9p):
        net = zoo.alexnet()
        mapping, _ = map_network(cfg_vu9p_paper, vu9p, net)
        # conv2 is 5x5: decomposition still wins 25*16/(4*36) = 2.78x
        # compute, so with VU9P bandwidth Winograd should be chosen.
        assert mapping.for_layer("conv2").mode == "wino"


class TestDesignSpaceEdges:
    def test_network_too_wide_for_tiny_buffers(self, pynq):
        # A feature row that cannot fit even PI channels of one strip.
        net = zoo.single_conv(8, 8, 2048, 3, padding=1)
        with pytest.raises(DseError):
            run_dse(
                pynq, net,
                DseOptions(buffer_presets=(256, 256, 256)),
            )

    def test_zcu102_runs_vgg16(self):
        from repro.fpga import get_device

        result = run_dse(get_device("zcu102"), zoo.vgg16())
        assert result.throughput_gops > 0
        assert result.cfg.pt in (4, 6)

    def test_latency_vs_throughput_tradeoff(self, vu9p):
        net = zoo.vgg16(input_size=64, include_fc=False)
        lat = run_dse(vu9p, net, DseOptions(objective="latency"))
        thr = run_dse(vu9p, net, DseOptions(objective="throughput"))
        assert lat.estimate.latency <= thr.estimate.latency * 1.0001
        assert thr.throughput_gops >= lat.throughput_gops

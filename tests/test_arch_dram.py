"""Tests for repro.arch.dram — external memory model."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.arch.dram import ExternalMemoryModel


def make_dram(size=4096, bw=8.0, fixed=10):
    return ExternalMemoryModel(
        size=size, bandwidth_elems_per_cycle=bw, fixed_latency=fixed
    )


class TestAllocation:
    def test_regions_are_disjoint_and_aligned(self):
        dram = make_dram()
        a = dram.allocate("a", 100, align=64)
        b = dram.allocate("b", 50, align=64)
        assert a.base % 64 == 0
        assert b.base % 64 == 0
        assert b.base >= a.end

    def test_duplicate_name(self):
        dram = make_dram()
        dram.allocate("x", 10)
        with pytest.raises(SimulationError):
            dram.allocate("x", 10)

    def test_exhaustion(self):
        dram = make_dram(size=100)
        with pytest.raises(SimulationError):
            dram.allocate("big", 200)

    def test_region_lookup(self):
        dram = make_dram()
        dram.allocate("w", 10)
        assert dram.region("w").size == 10
        with pytest.raises(SimulationError):
            dram.region("nope")

    def test_region_contains(self):
        dram = make_dram()
        r = dram.allocate("r", 10)
        assert r.contains(r.base, 10)
        assert not r.contains(r.base, 11)


class TestDataAccess:
    def test_write_read(self):
        dram = make_dram()
        dram.write(10, np.arange(5.0))
        np.testing.assert_array_equal(dram.read(10, 5), np.arange(5.0))

    def test_bounds_checked(self):
        dram = make_dram(size=16)
        with pytest.raises(SimulationError):
            dram.read(10, 10)
        with pytest.raises(SimulationError):
            dram.write(-1, np.zeros(2))

    def test_traffic_counters(self):
        dram = make_dram()
        dram.write(0, np.zeros(7))
        dram.read(0, 3)
        assert dram.total_written_elems == 7
        assert dram.total_read_elems == 3


class TestTiming:
    def test_bandwidth_limited(self):
        dram = make_dram(bw=8.0, fixed=10)
        # 80 elements at 8/cycle: 10 cycles + 10 fixed.
        assert dram.transfer_cycles(80, port_elems_per_cycle=1000) == 20

    def test_port_limited(self):
        dram = make_dram(bw=1000.0, fixed=0)
        # Port narrower than DDR: Eq. 8-11's min(BW, FREQ*port).
        assert dram.transfer_cycles(60, port_elems_per_cycle=6) == 10

    def test_zero_elements(self):
        dram = make_dram(fixed=10)
        assert dram.transfer_cycles(0, 4) == 0

    def test_invalid_construction(self):
        with pytest.raises(SimulationError):
            ExternalMemoryModel(size=0, bandwidth_elems_per_cycle=1)
        with pytest.raises(SimulationError):
            ExternalMemoryModel(size=10, bandwidth_elems_per_cycle=0)

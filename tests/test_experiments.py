"""Tests for the experiment drivers (fast subsets of each table/figure)."""

import pytest

from repro.experiments import (
    run_bandwidth_ablation,
    run_dataflow_ablation,
    run_estimation_error,
    run_figure6,
    run_overhead,
    run_table3,
    run_vgg16_case,
)
from repro.experiments.ablation import (
    format_bandwidth_ablation,
    format_dataflow_ablation,
)
from repro.experiments.common import paper_config, simulate_network
from repro.experiments.estimation_error import format_estimation_error
from repro.experiments.figure6 import Figure6Point, format_figure6
from repro.experiments.overhead import PAPER_LUT_OVERHEAD, format_overhead
from repro.experiments.table3 import format_table3
from repro.experiments.vgg16_case import format_vgg16_case
from repro.errors import DeviceError


class TestCommon:
    def test_paper_config_vu9p(self):
        cfg, device = paper_config("vu9p")
        assert (cfg.pi, cfg.po, cfg.pt, cfg.instances) == (4, 4, 6, 6)
        assert device.name == "vu9p"

    def test_paper_config_unknown(self):
        with pytest.raises(DeviceError):
            paper_config("zcu102")

    def test_simulate_network(self, cfg_pynq_paper, pynq):
        from repro.ir import zoo
        from repro.mapping import NetworkMapping

        net = zoo.tiny_cnn(input_size=16)
        sim = simulate_network(
            net, cfg_pynq_paper, pynq,
            NetworkMapping.uniform(net, "wino", "ws"),
        )
        assert sim.cycles > 0


class TestTable3:
    def test_rows_match_paper_within_tolerance(self):
        rows = run_table3()
        for row in rows:
            for kind in ("luts", "dsps", "brams"):
                ours = getattr(row.ours, kind)
                paper = getattr(row.paper, kind)
                assert ours == pytest.approx(paper, rel=0.005), (
                    row.device, kind,
                )

    def test_format(self):
        text = format_table3(run_table3())
        assert "vu9p" in text and "pynq-z1" in text
        assert "100.00%" in text  # PYNQ DSPs


class TestOverhead:
    def test_vu9p_overhead_matches_paper(self):
        rows = run_overhead(devices=("vu9p",))
        assert rows[0].lut_overhead == pytest.approx(
            PAPER_LUT_OVERHEAD, abs=0.002
        )
        assert rows[0].dsp_overhead == 0

    def test_format(self):
        assert "26.4%" in format_overhead(run_overhead(devices=("vu9p",)))


class TestFigure6Subset:
    @pytest.fixture(scope="class")
    def points(self):
        # A reduced sweep keeps the suite fast while covering all
        # kernels and the memory-bound tail.
        return run_figure6(
            "pynq-z1",
            series=((28, 64), (14, 128)),
            kernels=(1, 3, 5),
        )

    def test_point_count(self, points):
        assert len(points) == 6

    def test_winograd_wins_3x3(self, points):
        for p in points:
            if p.kernel == 3:
                assert p.wino_real_gops > p.spat_real_gops

    def test_spatial_wins_1x1(self, points):
        # 1x1: Winograd tile overhead makes Spatial the right mode.
        for p in points:
            if p.kernel == 1:
                assert p.spat_real_gops > p.wino_real_gops

    def test_spatial_stable(self, points):
        # Paper: Spatial performance is stable across layers.
        reals = [p.spat_real_gops for p in points if p.kernel == 3]
        assert max(reals) / min(reals) < 1.5

    def test_estimates_track_reality(self, points):
        for p in points:
            assert p.spat_error < 0.35
            assert p.wino_error < 0.35

    def test_format(self, points):
        text = format_figure6("pynq-z1", points)
        assert "WinoReal" in text

    def test_point_errors_computed(self):
        p = Figure6Point(0, 3, 14, 64, 100.0, 90.0, 50.0, 50.0)
        assert p.wino_error == pytest.approx(1 / 9)
        assert p.spat_error == 0.0


class TestAblations:
    def test_bandwidth_crossover_exists(self):
        points = run_bandwidth_ablation(bandwidths=(0.25, 4.0))
        # Starved: spatial wins or ties; ample: Winograd wins clearly.
        assert points[-1].best_mode == "wino"
        assert points[0].wino_gops / points[0].spat_gops < 1.1

    def test_dataflow_crossover(self):
        points = run_dataflow_ablation(features=(7, 56))
        assert points[0].best_dataflow == "ws"
        assert points[-1].best_dataflow == "is"

    def test_formats(self):
        assert "Best mode" in format_bandwidth_ablation(
            run_bandwidth_ablation(bandwidths=(1.0,))
        )
        assert "Best dataflow" in format_dataflow_ablation(
            run_dataflow_ablation(features=(14,))
        )


class TestScalability:
    def test_embedded_subset(self):
        from repro.experiments.scalability import (
            format_scalability,
            run_scalability,
        )

        rows = run_scalability("tiny_cnn", devices=("pynq-z1", "zcu102"))
        by_dev = {r.device: r for r in rows}
        assert by_dev["zcu102"].gops > by_dev["pynq-z1"].gops
        text = format_scalability(rows, "tiny_cnn")
        assert "zcu102" in text


@pytest.mark.slow
class TestSlowExperiments:
    """Full-size experiments; run explicitly or via the benchmarks."""

    def test_estimation_error_single_digit(self):
        rows = run_estimation_error(devices=("pynq-z1",))
        assert rows[0].error < 0.10  # paper: 4.03%

    def test_vgg16_case_matches_paper(self):
        rows = run_vgg16_case(devices=("pynq-z1",))
        assert rows[0].matches_paper

    def test_estimation_error_format(self):
        text = format_estimation_error(
            run_estimation_error(devices=("pynq-z1",))
        )
        assert "pynq-z1" in text

    def test_vgg16_case_format(self):
        text = format_vgg16_case(run_vgg16_case(devices=("pynq-z1",)))
        assert "matches paper" in text

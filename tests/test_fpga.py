"""Tests for repro.fpga — device catalog and resource budgets."""

import pytest

from repro.errors import DeviceError, ResourceError
from repro.fpga import DEVICES, ExternalMemory, FpgaDevice, ResourceBudget, get_device


class TestResourceBudget:
    def test_arithmetic(self):
        a = ResourceBudget(100, 10, 5)
        b = ResourceBudget(50, 5, 1)
        assert a + b == ResourceBudget(150, 15, 6)
        assert a - b == ResourceBudget(50, 5, 4)
        assert a * 3 == ResourceBudget(300, 30, 15)
        assert 3 * a == a * 3

    def test_negative_rejected(self):
        with pytest.raises(ResourceError):
            ResourceBudget(-1, 0, 0)
        with pytest.raises(ResourceError):
            ResourceBudget(10, 1, 1) - ResourceBudget(20, 0, 0)

    def test_fits_in(self):
        small = ResourceBudget(10, 10, 10)
        big = ResourceBudget(20, 20, 20)
        assert small.fits_in(big)
        assert not big.fits_in(small)
        assert small.fits_in(small)  # Table-2 uses strict <, we use <=

    def test_utilisation(self):
        used = ResourceBudget(50, 10, 0)
        cap = ResourceBudget(100, 40, 10)
        util = used.utilisation(cap)
        assert util["luts"] == 0.5
        assert util["dsps"] == 0.25
        assert used.max_utilisation(cap) == 0.5


class TestCatalog:
    def test_paper_devices_present(self):
        assert "vu9p" in DEVICES
        assert "pynq-z1" in DEVICES

    def test_vu9p_totals_match_table3_percentages(self):
        # Table 3: 706353 LUTs = 59.8%, 5163 DSPs = 75.5%, 3169 BRAM = 73.4%
        dev = get_device("vu9p")
        assert 706_353 / dev.resources.luts == pytest.approx(0.598, abs=0.002)
        assert 5_163 / dev.resources.dsps == pytest.approx(0.755, abs=0.002)
        assert 3_169 / dev.resources.brams == pytest.approx(0.734, abs=0.002)

    def test_pynq_totals_match_table3_percentages(self):
        dev = get_device("pynq-z1")
        assert 37_034 / dev.resources.luts == pytest.approx(0.6961, abs=0.001)
        assert dev.resources.dsps == 220  # 100% utilised in Table 3
        assert 277 / dev.resources.brams == pytest.approx(0.9893, abs=0.001)

    def test_vu9p_has_three_dies(self):
        assert get_device("vu9p").dies == 3

    def test_case_insensitive_lookup(self):
        assert get_device("VU9P") is get_device("vu9p")

    def test_unknown_device(self):
        with pytest.raises(DeviceError):
            get_device("virtex-2")


class TestDeviceModel:
    def test_bandwidth_elems_scales_with_width(self):
        dev = get_device("vu9p")
        # 12-bit features round up to 2 bytes, 8-bit weights to 1 byte.
        assert dev.bandwidth_elems(8) == pytest.approx(
            2 * dev.bandwidth_elems(12)
        )

    def test_bandwidth_shared_between_instances(self):
        dev = get_device("vu9p")
        assert dev.bandwidth_elems(12, instances=6) == pytest.approx(
            dev.bandwidth_elems(12) / 6
        )

    def test_resources_per_die(self):
        dev = get_device("vu9p")
        per_die = dev.resources_per_die()
        assert per_die.dsps == dev.resources.dsps // 3

    def test_bad_memory_rejected(self):
        with pytest.raises(DeviceError):
            ExternalMemory(bandwidth_gbps=0)

    def test_bad_device_rejected(self):
        with pytest.raises(DeviceError):
            FpgaDevice(
                name="x", part="x",
                resources=ResourceBudget(1, 1, 1),
                dies=0, frequency_mhz=100,
                memory=ExternalMemory(bandwidth_gbps=1),
            )

    def test_bandwidth_elems_validates(self):
        dev = get_device("pynq-z1")
        with pytest.raises(DeviceError):
            dev.bandwidth_elems(0)
        with pytest.raises(DeviceError):
            dev.bandwidth_elems(8, instances=0)

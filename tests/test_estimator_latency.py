"""Tests for repro.estimator.latency — Eq. 6-15."""

from dataclasses import replace

import pytest

from repro.errors import UnsupportedLayerError
from repro.estimator import estimate_layer, estimate_network
from repro.fpga.device import ExternalMemory
from repro.ir import zoo
from repro.mapping import NetworkMapping


def conv_info(c, k, h, kernel, padding=None):
    if padding is None:
        padding = kernel // 2
    net = zoo.single_conv(c, k, h, kernel, padding=padding)
    return net.compute_layers()[0]


class TestComputeTime:
    def test_eq6_spatial(self, cfg_pt6, vu9p):
        info = conv_info(64, 64, 28, 3)
        est = estimate_layer(cfg_pt6, vu9p, info, "spat", "ws")
        expected = (64 * 64 * 9 * 28 * 28) / (
            cfg_pt6.frequency_hz * 4 * 4 * 36
        )
        assert est.t_comp == pytest.approx(expected)

    def test_eq7_winograd_4x_faster_for_3x3(self, cfg_pt6, vu9p):
        info = conv_info(64, 64, 28, 3)
        spat = estimate_layer(cfg_pt6, vu9p, info, "spat", "ws")
        wino = estimate_layer(cfg_pt6, vu9p, info, "wino", "ws")
        # blocks*PT^2/m^2 / (R*S) = 36/16/9 -> 4x reduction.
        assert spat.t_comp / wino.t_comp == pytest.approx(4.0)

    def test_eq7_decomposition_factor(self, cfg_pt6, vu9p):
        info = conv_info(64, 64, 28, 5)
        wino = estimate_layer(cfg_pt6, vu9p, info, "wino", "ws")
        spat = estimate_layer(cfg_pt6, vu9p, info, "spat", "ws")
        # 5x5: 4 blocks x 36 / (25 * 16) -> 2.78x gain only.
        assert spat.t_comp / wino.t_comp == pytest.approx(25 * 16 / 144)

    def test_winograd_1x1_slower_than_spatial(self, cfg_pt6, vu9p):
        # Tile overhead PT^2/m^2 makes Winograd a loss for 1x1.
        info = conv_info(128, 128, 14, 1)
        spat = estimate_layer(cfg_pt6, vu9p, info, "spat", "ws")
        wino = estimate_layer(cfg_pt6, vu9p, info, "wino", "ws")
        assert wino.t_comp > spat.t_comp


class TestMemoryTime:
    def test_eq9_winograd_loads_more_weights(self, cfg_pt6, vu9p):
        info = conv_info(64, 64, 28, 3)
        spat = estimate_layer(cfg_pt6, vu9p, info, "spat", "ws")
        wino = estimate_layer(cfg_pt6, vu9p, info, "wino", "ws")
        # Paper Sec. 5.2: PT^2 coefficients instead of R*S.
        assert wino.t_ldw / spat.t_ldw == pytest.approx(36 / 9)

    def test_paper_5x5_loading_example(self, cfg_pt6, vu9p):
        # Sec. 5.2: m=4, r=3, 5x5 kernel -> 2*2*36/25 = 5.76x loading.
        info = conv_info(64, 64, 28, 5)
        spat = estimate_layer(cfg_pt6, vu9p, info, "spat", "ws")
        wino = estimate_layer(cfg_pt6, vu9p, info, "wino", "ws")
        assert wino.t_ldw / spat.t_ldw == pytest.approx(5.76)

    def test_low_bandwidth_binds(self, cfg_pt6, vu9p):
        info = conv_info(256, 256, 14, 3)
        starved = replace(
            vu9p, memory=ExternalMemory(bandwidth_gbps=0.5)
        )
        est = estimate_layer(cfg_pt6, starved, info, "wino", "ws")
        assert est.bound in ("weight", "input")
        rich = estimate_layer(cfg_pt6, vu9p, info, "wino", "ws")
        assert rich.latency < est.latency


class TestDataflows:
    def test_is_multiplies_weight_loads(self, cfg_pt6, vu9p):
        # Eq. 12/14: IS reloads weights per row group.
        info = conv_info(32, 256, 28, 3)
        is_est = estimate_layer(cfg_pt6, vu9p, info, "wino", "is")
        ws_est = estimate_layer(cfg_pt6, vu9p, info, "wino", "ws")
        assert is_est.t_ldw == ws_est.t_ldw  # per-load time identical
        assert is_est.latency >= ws_est.t_comp

    def test_unknown_dataflow(self, cfg_pt6, vu9p):
        with pytest.raises(UnsupportedLayerError):
            estimate_layer(cfg_pt6, vu9p, conv_info(8, 8, 8, 3), "wino", "os")

    def test_is_rejected_when_chunked(self, vu9p):
        from repro.arch.params import AcceleratorConfig

        tiny = AcceleratorConfig(
            pi=4, po=4, pt=4, input_buffer_vecs=512,
            weight_buffer_vecs=4096, output_buffer_vecs=2048,
        )
        info = conv_info(128, 16, 56, 3)
        with pytest.raises(UnsupportedLayerError):
            estimate_layer(tiny, vu9p, info, "wino", "is")
        estimate_layer(tiny, vu9p, info, "wino", "ws")  # WS still fine


class TestNetworkEstimate:
    def test_latency_is_sum(self, cfg_pt6, vu9p):
        net = zoo.tiny_cnn()
        mapping = NetworkMapping.uniform(net, "wino", "ws")
        est = estimate_network(cfg_pt6, vu9p, net, mapping)
        assert est.latency == pytest.approx(
            sum(l.latency for l in est.layers)
        )
        assert est.ops == sum(i.ops for i in net.compute_layers())

    def test_instances_multiply_throughput(self, cfg_vu9p_paper, vu9p):
        net = zoo.tiny_cnn()
        mapping = NetworkMapping.uniform(net, "wino", "ws")
        est = estimate_network(cfg_vu9p_paper, vu9p, net, mapping)
        assert est.gops == pytest.approx(6 * est.gops_per_instance)

    def test_bound_histogram(self, cfg_pt6, vu9p):
        net = zoo.tiny_cnn()
        mapping = NetworkMapping.uniform(net, "spat", "ws")
        est = estimate_network(cfg_pt6, vu9p, net, mapping)
        assert sum(est.bound_histogram().values()) == len(est.layers)

    def test_gops_positive(self, cfg_pt6, vu9p):
        net = zoo.tiny_mlp()
        mapping = NetworkMapping.uniform(net, "spat", "ws")
        est = estimate_network(cfg_pt6, vu9p, net, mapping)
        assert est.gops > 0

"""Tests for repro.ir.serialize — the framework's model parser."""

import json

import pytest

from repro.errors import GraphError
from repro.ir import (
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
    zoo,
)


class TestRoundTrip:
    @pytest.mark.parametrize("model", ["vgg16", "alexnet", "tiny_cnn", "tiny_mlp"])
    def test_dict_roundtrip(self, model):
        net = zoo.get_model(model)
        back = network_from_dict(network_to_dict(net))
        assert back.name == net.name
        assert back.input_shape == net.input_shape
        assert len(back) == len(net)
        for a, b in zip(net, back):
            assert type(a.layer) is type(b.layer)
            assert a.output_shape == b.output_shape
            assert a.macs == b.macs

    def test_file_roundtrip(self, tmp_path):
        net = zoo.tiny_cnn()
        path = tmp_path / "net.json"
        save_network(net, path)
        loaded = load_network(path)
        assert loaded.name == net.name
        assert loaded.total_macs == net.total_macs

    def test_json_is_plain(self, tmp_path):
        path = tmp_path / "net.json"
        save_network(zoo.tiny_mlp(), path)
        doc = json.loads(path.read_text())
        assert doc["name"] == "tiny_mlp"
        assert isinstance(doc["layers"], list)
        assert all("type" in layer for layer in doc["layers"])


class TestValidation:
    def test_missing_key(self):
        with pytest.raises(GraphError):
            network_from_dict({"name": "x", "layers": []})

    def test_unknown_layer_type(self):
        with pytest.raises(GraphError):
            network_from_dict(
                {
                    "name": "x",
                    "input_shape": [3, 8, 8],
                    "layers": [{"type": "transformer", "name": "t"}],
                }
            )

    def test_unknown_field(self):
        with pytest.raises(GraphError):
            network_from_dict(
                {
                    "name": "x",
                    "input_shape": [3, 8, 8],
                    "layers": [
                        {"type": "relu", "name": "r", "temperature": 1.0}
                    ],
                }
            )

    def test_kernel_size_list_becomes_tuple(self):
        net = network_from_dict(
            {
                "name": "x",
                "input_shape": [3, 8, 8],
                "layers": [
                    {
                        "type": "conv2d",
                        "name": "c",
                        "out_channels": 4,
                        "kernel_size": [3, 3],
                        "padding": 1,
                    }
                ],
            }
        )
        assert net[0].layer.kernel_size == (3, 3)

"""Tests for repro.winograd.matrices — transform-matrix correctness.

The key mathematical property: for any kernel g and tile d,
``A^T [(G g G^T) .* (B^T d B)] A`` equals the valid convolution of d
with g.  Checked here in 1-D form per matrix pair and in full 2-D form
in test_winograd_conv.py.
"""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.winograd.matrices import (
    SUPPORTED_TILES,
    WinogradAlgorithm,
    algorithm_for_tile,
    get_algorithm,
)


@pytest.fixture(params=[2, 4], ids=["F(2x2,3x3)", "F(4x4,3x3)"])
def alg(request):
    return get_algorithm(request.param, 3)


class TestAlgorithmAccess:
    def test_tile_sizes(self):
        assert get_algorithm(2, 3).tile == 4
        assert get_algorithm(4, 3).tile == 6
        assert SUPPORTED_TILES == (4, 6)

    def test_algorithm_for_tile(self):
        assert algorithm_for_tile(4).m == 2
        assert algorithm_for_tile(6).m == 4

    def test_unsupported_rejected(self):
        # Table 2: PT in {4, 6} only.
        with pytest.raises(ReproError):
            get_algorithm(6, 3)
        with pytest.raises(ReproError):
            get_algorithm(2, 5)
        with pytest.raises(ReproError):
            algorithm_for_tile(8)

    def test_matrices_read_only(self, alg):
        with pytest.raises(ValueError):
            alg.bt[0, 0] = 99.0


class TestMultiplicationReduction:
    def test_f4x4_is_4x(self):
        # Section 4.2.1: 144 spatial vs 36 Winograd multiplications.
        assert get_algorithm(4, 3).multiplication_reduction == 4.0

    def test_f2x2_is_2_25x(self):
        assert get_algorithm(2, 3).multiplication_reduction == 2.25


class Test1DCorrectness:
    """F(m, r) in one dimension: A^T [(G g) .* (B^T d)] == conv1d."""

    def test_1d_identity(self, alg):
        rng = np.random.default_rng(0)
        g = rng.normal(size=alg.r)
        d = rng.normal(size=alg.tile)
        wino = alg.at @ ((alg.g @ g) * (alg.bt @ d))
        direct = np.array(
            [np.dot(d[i : i + alg.r], g) for i in range(alg.m)]
        )
        assert np.allclose(wino, direct)

    def test_1d_linearity_in_kernel(self, alg):
        rng = np.random.default_rng(1)
        g1, g2 = rng.normal(size=(2, alg.r))
        d = rng.normal(size=alg.tile)

        def run(g):
            return alg.at @ ((alg.g @ g) * (alg.bt @ d))

        assert np.allclose(run(g1) + run(g2), run(g1 + g2))

    def test_matrix_shapes(self, alg):
        t = alg.tile
        assert alg.bt.shape == (t, t)
        assert alg.g.shape == (t, alg.r)
        assert alg.at.shape == (alg.m, t)


class TestValidation:
    def test_bad_shapes_rejected(self):
        good = get_algorithm(2, 3)
        with pytest.raises(ReproError):
            WinogradAlgorithm(
                m=2, r=3, bt=np.eye(3), g=good.g.copy(), at=good.at.copy()
            )

"""Tests for repro.planning — grid grammar, Tier A scoring semantics,
and the two-tier driver.

The load-bearing tests are (a) Tier A's prune codes mark only provably
infeasible plans (the randomized attack lives in
test_planning_properties.py; here the hand-built cases pin the
boundary) and (b) serial-vs-process Tier B byte identity, the same
invariant the sweep driver holds.
"""

import json
import math

import numpy as np
import pytest

from repro.errors import PlanningError
from repro.planning import (
    AnalyticPlanScorer,
    ArrivalProfile,
    KindSpec,
    PlanGrid,
    PlanOptions,
    parse_devices,
    plan_capacity,
)
from repro.serving.traffic import Request


# -- device spec grammar --------------------------------------------------


def test_parse_devices_ranges_and_weights():
    kinds = parse_devices("vu9p:0..4+pynq-z1:2..8@1.5")
    assert kinds == (
        KindSpec("vu9p", 0, 4),
        KindSpec("pynq-z1", 2, 8, weight=1.5),
    )


def test_parse_devices_fixed_count_and_prefix():
    (kind,) = parse_devices("pynq:3")
    assert kind == KindSpec("pynq-z1", 3, 3)


@pytest.mark.parametrize(
    "spec",
    [
        "",
        "vu9p",
        "vu9p:",
        "vu9p:a..b",
        "vu9p:1..2@zero",
        "vu9p:1..2@0",
        "vu9p:2..1",
        "vu9p:-1..2",
        "nosuchdev:1",
        "vu9p:1+vu9p:2",
    ],
)
def test_parse_devices_rejects(spec):
    with pytest.raises(PlanningError):
        parse_devices(spec)


def test_parse_devices_unknown_name_lists_catalog():
    with pytest.raises(PlanningError, match="expected one of"):
        parse_devices("x:1")


# -- plan grid ------------------------------------------------------------


def test_plan_grid_excludes_empty_plan_and_orders():
    grid = PlanGrid(parse_devices("vu9p:0..1+pynq-z1:0..1"), [1, 4])
    # 2x2 mixes minus the all-zero one, times two batch options.
    assert len(grid) == 6
    plans = [grid.plan(index) for index in range(len(grid))]
    # Mix odometer-style (first kind slowest), batches innermost.
    assert plans == [
        ((0, 1), 1),
        ((0, 1), 4),
        ((1, 0), 1),
        ((1, 0), 4),
        ((1, 1), 1),
        ((1, 1), 4),
    ]


def test_plan_grid_dedups_and_sorts_batches():
    grid = PlanGrid([KindSpec("vu9p", 1, 1)], [8, 1, 8])
    assert grid.batch_options == (1, 8)
    assert len(grid) == 2


def test_plan_grid_rejects_bad_inputs():
    with pytest.raises(PlanningError):
        PlanGrid([], [1])
    with pytest.raises(PlanningError):
        PlanGrid([KindSpec("vu9p", 1, 1)], [])
    with pytest.raises(PlanningError):
        PlanGrid([KindSpec("vu9p", 1, 1)], [0])
    with pytest.raises(PlanningError):
        # KindSpec itself refuses a 0..0 range — the grid can never
        # hold only the empty plan.
        KindSpec("vu9p", 0, 0)


def test_plan_grid_caps_size():
    with pytest.raises(PlanningError, match="narrow"):
        PlanGrid(
            [
                KindSpec("vu9p", 0, 1999),
                KindSpec("pynq-z1", 0, 999),
            ],
            [1],
        )


# -- arrival profile ------------------------------------------------------


def test_arrival_profile_from_requests():
    requests = [Request(index=i, arrival=i * 0.5) for i in range(5)]
    profile = ArrivalProfile.from_requests(requests)
    assert profile.count == 5
    assert profile.rate == pytest.approx(2.0)
    assert profile.last_arrival_s == pytest.approx(2.0)


def test_arrival_profile_simultaneous_is_infinite_rate():
    requests = [Request(index=i, arrival=0.0) for i in range(4)]
    profile = ArrivalProfile.from_requests(requests)
    assert math.isinf(profile.rate)
    assert profile.last_arrival_s == 0.0


def test_arrival_profile_rejects_empty():
    with pytest.raises(PlanningError):
        ArrivalProfile.from_requests([])


# -- analytic scorer ------------------------------------------------------


def make_scorer():
    # Two kinds: a fast 4-instance shard (1 ms/image) and a slow
    # single-instance one (10 ms/image).
    return AnalyticPlanScorer(
        service_seconds=[1e-3, 10e-3],
        instances=[4, 1],
        weights=[4.0, 1.0],
    )


def test_batch_service_table():
    scorer = make_scorer()
    table = scorer.batch_service_seconds(np.array([1, 4, 5]))
    # ceil(batch / NI) rounds of the per-image time.
    expected = np.array(
        [[1e-3, 10e-3], [1e-3, 40e-3], [2e-3, 50e-3]]
    )
    np.testing.assert_allclose(table, expected)


def test_score_prunes_service_floor():
    scorer = make_scorer()
    profile = ArrivalProfile(count=10, rate=100.0, last_arrival_s=0.09)
    counts = np.array([[0, 1], [1, 0]])
    batches = np.array([1, 1])
    # SLO below even the fast kind's one service round: both pruned.
    scores = scorer.score(counts, batches, profile, slo_p99_s=0.5e-3)
    assert list(scores.pruned) == [1, 1]
    # SLO between the two floors: only the slow-only plan is pruned.
    scores = scorer.score(counts, batches, profile, slo_p99_s=2e-3)
    assert list(scores.pruned) == [1, 0]
    assert math.isnan(scores.p99_s[0])
    assert np.isfinite(scores.p99_s[1])


def test_score_prunes_capacity_backlog():
    scorer = make_scorer()
    # 1000 requests in 10 ms at 100k req/s against a plan capping out
    # at 4000 img/s: the backlog bound forces p99 >= ~0.24 s.
    profile = ArrivalProfile(
        count=1000, rate=100_000.0, last_arrival_s=0.01
    )
    counts = np.array([[1, 0]])
    batches = np.array([4])
    scores = scorer.score(counts, batches, profile, slo_p99_s=0.1)
    assert list(scores.pruned) == [2]
    # A generous SLO keeps it (pruning is a proof, not a preference).
    scores = scorer.score(counts, batches, profile, slo_p99_s=10.0)
    assert list(scores.pruned) == [0]


def test_score_surrogate_columns_finite_when_stable():
    scorer = make_scorer()
    profile = ArrivalProfile(count=100, rate=500.0, last_arrival_s=0.2)
    counts = np.array([[1, 0], [1, 2]])
    batches = np.array([4, 4])
    scores = scorer.score(
        counts, batches, profile, slo_p99_s=1.0, max_wait_s=1e-3
    )
    assert list(scores.pruned) == [0, 0]
    assert np.all(np.isfinite(scores.p99_s))
    assert np.all(scores.utilisation < 1.0)
    # Billing: weights x makespan; the mixed plan fields weight 6.
    assert scores.billed_weight == pytest.approx([4.0, 6.0])
    # Fill wait is capped by max_wait_s.
    assert np.all(scores.fill_wait_s <= 1e-3 + 1e-12)


def test_score_rejects_bad_shapes():
    scorer = make_scorer()
    profile = ArrivalProfile(count=10, rate=10.0, last_arrival_s=1.0)
    with pytest.raises(PlanningError):
        scorer.score(
            np.array([[1]]), np.array([1]), profile, slo_p99_s=1.0
        )
    with pytest.raises(PlanningError):
        scorer.score(
            np.array([[1, 1]]), np.array([1, 2]), profile, slo_p99_s=1.0
        )
    with pytest.raises(PlanningError, match="zero shards"):
        scorer.score(
            np.array([[0, 0]]), np.array([1]), profile, slo_p99_s=1.0
        )
    with pytest.raises(PlanningError):
        scorer.score(
            np.array([[1, 0]]), np.array([1]), profile, slo_p99_s=0.0
        )


# -- plan options ---------------------------------------------------------


def test_plan_options_requires_exactly_one_workload():
    with pytest.raises(PlanningError, match="exactly one workload"):
        PlanOptions(slo_p99_s=1e-3)
    with pytest.raises(PlanningError, match="exactly one workload"):
        PlanOptions(slo_p99_s=1e-3, rate=10.0, trace="t.csv")


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(slo_p99_s=0.0, rate=1.0),
        dict(slo_p99_s=1e-3, rate=-1.0),
        dict(slo_p99_s=1e-3, rate=1.0, requests=0),
        dict(slo_p99_s=1e-3, rate=1.0, traffic="nope"),
        dict(slo_p99_s=1e-3, rate=1.0, top_k=0),
        dict(slo_p99_s=1e-3, rate=1.0, executor="thread"),
        dict(slo_p99_s=1e-3, rate=1.0, jobs=0),
        dict(slo_p99_s=1e-3, rate=1.0, policy="nope"),
        dict(slo_p99_s=1e-3, rate=1.0, max_wait_s=-1.0),
        dict(slo_p99_s=1e-3, trace="t.csv", trace_scale=0.0),
        dict(slo_p99_s=1e-3, trace="t.csv", trace_loop=0),
        dict(slo_p99_s=1e-3, rate=1.0, event_budget=0),
    ],
)
def test_plan_options_validation(kwargs):
    with pytest.raises(PlanningError):
        PlanOptions(**kwargs)


# -- end-to-end driver ----------------------------------------------------

DEVICES_SMALL = "vu9p:0..2+pynq-z1:0..3"


def small_options(**overrides):
    kwargs = dict(
        slo_p99_s=200e-6,
        rate=900_000.0,
        requests=64,
        top_k=3,
        batch_options=(1, 6),
    )
    kwargs.update(overrides)
    return PlanOptions(**kwargs)


@pytest.fixture(scope="module")
def small_plan():
    return plan_capacity("tiny_cnn", DEVICES_SMALL, small_options())


def test_plan_capacity_report_shape(small_plan):
    report = small_plan.to_dict()
    assert report["plan_count"] == len(small_plan.grid)
    assert report["pruned"].keys() <= {"service-floor", "capacity-backlog"}
    assert len(report["finalists"]) == 3
    winner = report["winner"]
    assert winner == report["finalists"][0]
    assert set(winner["counts"]) == {"vu9p", "pynq-z1"}
    replay = winner["replay"]
    assert replay["served"] == 64
    assert replay["slo_ok"] is True
    assert report["slo_met"] is True
    assert report["plans_per_second"] > 0
    # The trajectory summary fields ride at top level.
    for key in ("count", "p99_latency_s", "shard_seconds",
                "plans_per_second"):
        assert key in report
    # JSON-serialisable as-is (the CLI dumps it verbatim).
    json.dumps(report)


def test_plan_capacity_winner_is_replay_ranked(small_plan):
    rows = small_plan.finalists
    keys = [
        (
            0 if row["replay"]["slo_ok"] else 1,
            row["replay"]["billed_shard_seconds"],
            row["replay"]["p99_latency_s"],
            row["plan"],
        )
        for row in rows
    ]
    assert keys == sorted(keys)


def test_plan_capacity_surrogate_alongside(small_plan):
    for row in small_plan.finalists:
        surrogate = row["surrogate"]
        assert surrogate["p99_s"] > 0
        assert 0 <= surrogate["utilisation"] < 1.0


def test_plan_capacity_autoscaler_settings(small_plan):
    auto = small_plan.autoscaler_settings()
    total = sum(small_plan.winner["counts"].values())
    assert 1 <= auto["min_shards"] <= auto["max_shards"] == total
    assert auto["target_p99_s"] == small_plan.options.slo_p99_s
    assert auto["max_batch"] == small_plan.winner["max_batch"]
    assert auto["policy"] == "shortest-latency"


def test_plan_capacity_describe(small_plan):
    text = small_plan.describe()
    assert "tier A" in text and "tier B" in text
    assert "winner" in text
    assert "autoscaler" in text


def test_plan_capacity_process_matches_serial(small_plan):
    serial = small_plan.to_dict()
    process = plan_capacity(
        "tiny_cnn",
        DEVICES_SMALL,
        small_options(executor="process", jobs=4),
    ).to_dict()
    for report in (serial, process):
        report.pop("timings")
        report.pop("plans_per_second")
    assert json.dumps(serial, sort_keys=True) == json.dumps(
        process, sort_keys=True
    )


def test_plan_capacity_trace_workload(tmp_path, small_plan):
    trace = tmp_path / "trace.csv"
    arrivals = [index / 900_000.0 for index in range(64)]
    trace.write_text(
        "timestamp\n" + "\n".join(f"{value:.9f}" for value in arrivals)
    )
    report = plan_capacity(
        "tiny_cnn",
        DEVICES_SMALL,
        small_options(rate=None, trace=str(trace)),
    )
    assert "trace" in report.workload
    assert report.profile.count == 64
    assert report.winner["replay"]["served"] == 64


def test_plan_capacity_unsatisfiable_slo_raises():
    with pytest.raises(PlanningError, match="provably infeasible"):
        plan_capacity(
            "tiny_cnn",
            DEVICES_SMALL,
            small_options(slo_p99_s=1e-9),
        )

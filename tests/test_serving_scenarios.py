"""Tests for repro.serving.scenarios + slo — failures and SLO control."""

import pytest

from repro.arch.params import AcceleratorConfig
from repro.compiler import CompilerOptions
from repro.errors import ServingError
from repro.fpga import get_device
from repro.ir import zoo
from repro.pipeline import PipelineSession
from repro.serving import (
    BatcherOptions,
    ClosedLoopClientPool,
    FailureScenario,
    ScenarioStep,
    ShardPool,
    ShardServer,
    SloOptions,
    make_requests,
)


def make_session(instances=1, frequency=100.0):
    device = get_device("vu9p")
    cfg = AcceleratorConfig(
        pi=4, po=4, pt=4, instances=instances, frequency_mhz=frequency,
        input_buffer_vecs=4096, weight_buffer_vecs=2048,
        output_buffer_vecs=2048,
    )
    return PipelineSession(
        zoo.tiny_cnn(input_size=16, channels=8),
        device,
        cfg=cfg,
        compiler_options=CompilerOptions(quantize=False, pack_data=False),
    )


# -- scenario parsing ------------------------------------------------------


class TestScenarioParse:
    def test_kill_and_implicit_restore(self):
        scenario = FailureScenario.parse("kill:shard0@0.05,restore@0.1")
        assert [
            (s.kind, s.shard, s.at) for s in scenario.steps
        ] == [("kill", "shard0", 0.05), ("restore", "shard0", 0.1)]
        assert scenario.spans() == [("shard0", 0.05, 0.1)]
        assert "kill shard0" in scenario.describe()

    def test_explicit_restore_and_multiple_shards(self):
        scenario = FailureScenario.parse(
            "kill:a@0.2, kill:b@0.1, restore:a@0.3"
        )
        # Steps sort by time; b stays down forever.
        assert [s.shard for s in scenario.steps] == ["b", "a", "a"]
        spans = dict(
            (shard, (down, up)) for shard, down, up in scenario.spans()
        )
        assert spans["a"] == (0.2, 0.3)
        assert spans["b"] == (0.1, float("inf"))

    def test_parse_errors(self):
        for spec in (
            "kill:shard0",            # no time
            "kill:shard0@soon",       # bad time
            "restore@0.1",            # no preceding kill
            "kill:@0.1",              # no shard name
            "pause:shard0@0.1",       # unknown verb
            "kill:shard0@-0.1",       # negative time
            "kill:shard0@nan",        # non-finite time
            "kill:a@0.2,restore:a@0.1",  # restore precedes its kill
            "kill:a@0.1,kill:a@0.2",  # double kill while down
            "",                       # empty
        ):
            with pytest.raises(ServingError):
                FailureScenario.parse(spec)
        with pytest.raises(ServingError):
            FailureScenario.kill("s", at=0.5, restore_at=0.2)
        with pytest.raises(ServingError):
            ScenarioStep("explode", "s", 0.0)

    def test_unknown_shard_rejected_at_serve(self):
        pool = ShardPool.replicate(make_session(), 2)
        server = ShardServer(pool)
        with pytest.raises(ServingError):
            server.serve(
                make_requests("uniform", 4),
                scenario=FailureScenario.kill("shard9", at=0.0),
            )


# -- shard availability ----------------------------------------------------


class TestShardAvailability:
    def test_fail_and_restore(self):
        shard = ShardPool.replicate(make_session(), 1).shards[0]
        shard.busy_until = 1.0
        shard.fail()
        assert shard.up is False
        assert shard.busy_until == 0.0  # timeline wiped
        shard.restore()
        assert shard.up is True
        shard.fail()
        shard.reset()  # reset also brings the shard back
        assert shard.up is True


# -- failure injection -----------------------------------------------------


class TestFailureInjection:
    def test_kill_at_zero_routes_everything_to_survivor(self):
        pool = ShardPool.replicate(make_session(), 2)
        server = ShardServer(pool, "least-loaded",
                             BatcherOptions(max_batch=2))
        requests = make_requests("uniform", 12)
        baseline = server.serve(requests)
        dead = server.serve(
            requests, scenario=FailureScenario.kill("shard0", at=0.0)
        )
        assert dead.count == 12
        assert dead.per_shard()["shard0"].requests == 0
        assert dead.per_shard()["shard1"].requests == 12
        # Half the pool -> double the makespan on uniform traffic.
        assert dead.makespan_seconds == pytest.approx(
            2 * baseline.makespan_seconds
        )

    def test_mid_stream_kill_requeues_in_flight_work(self):
        pool = ShardPool.replicate(make_session(), 2)
        per_image = pool.shards[0].probe_seconds()
        server = ShardServer(pool, "round-robin",
                             BatcherOptions(max_batch=1))
        requests = make_requests("uniform", 10)
        # 5 per shard, back to back; kill shard0 at 2.5 per-image
        # times: 2 of its singles completed, 3 are lost and re-served.
        scenario = FailureScenario.kill("shard0", at=2.5 * per_image)
        report = server.serve(requests, scenario=scenario)
        assert report.count == 10
        usage = report.per_shard()
        assert usage["shard0"].requests == 2
        assert usage["shard1"].requests == 8
        # Re-served requests keep their original arrival: their
        # latency includes the lost work.
        assert report.makespan_seconds == pytest.approx(8 * per_image)
        for record in report.records:
            assert record.completed > record.arrival

    def test_restore_rebalances_under_least_loaded(self):
        pool = ShardPool.replicate(make_session(), 2)
        per_image = pool.shards[0].probe_seconds()
        server = ShardServer(pool, "least-loaded",
                             BatcherOptions(max_batch=1))
        # A long spaced stream; shard0 is down for an early window.
        requests = make_requests("fixed-qps", 20, qps=2.0 / per_image)
        scenario = FailureScenario.kill(
            "shard0", at=2.5 * per_image, restore_at=5.5 * per_image
        )
        report = server.serve(requests, scenario=scenario)
        assert report.count == 20
        shares = report.per_shard()
        # The survivor hoards the downtime backlog; after the restore
        # least-loaded floods the fresh shard with the remaining
        # arrivals, so both end up with a nontrivial share.
        assert shares["shard0"].requests >= 6
        assert shares["shard1"].requests >= 6
        by_shard_post = [
            r.shard for r in report.records
            if r.dispatched >= 5.5 * per_image
        ]
        assert "shard0" in by_shard_post

    def test_whole_pool_down_parks_batches_until_restore(self):
        pool = ShardPool.replicate(make_session(), 1)
        per_image = pool.shards[0].probe_seconds()
        server = ShardServer(pool, "round-robin",
                             BatcherOptions(max_batch=4))
        down_for = 10 * per_image
        scenario = FailureScenario.kill(
            "shard0", at=0.0, restore_at=down_for
        )
        report = server.serve(make_requests("uniform", 4),
                              scenario=scenario)
        # Batches parked during the outage dispatch at the restore
        # instant; latency accounts the downtime.
        assert report.count == 4
        record = report.records[0]
        assert record.started == pytest.approx(down_for)
        assert record.latency >= down_for

    def test_never_restored_pool_strands_requests_accountably(self):
        pool = ShardPool.replicate(make_session(), 1)
        server = ShardServer(pool, "round-robin")
        report = server.serve(
            make_requests("uniform", 4),
            scenario=FailureScenario.kill("shard0", at=0.0),
        )
        # Nothing completes, but nothing vanishes either: the parked
        # requests are reported as unserved.
        assert report.count == 0
        assert report.unserved == 4
        assert report.makespan_seconds == 0.0
        assert "nothing completed" in report.describe()
        assert "4 stranded" in report.describe()

    def test_failure_run_is_deterministic(self):
        pool = ShardPool.replicate(make_session(), 3)
        per_image = pool.shards[0].probe_seconds()
        server = ShardServer(pool, "least-loaded",
                             BatcherOptions(max_batch=2))
        requests = make_requests("poisson", 30, qps=2.0 / per_image,
                                 seed=13)
        scenario = FailureScenario.parse(
            f"kill:shard1@{3 * per_image},restore@{9 * per_image}"
        )
        first = server.serve(requests, scenario=scenario)
        second = server.serve(requests, scenario=scenario)
        assert first.records == second.records
        assert first.shards == second.shards

    def test_usage_counts_only_completed_work(self):
        pool = ShardPool.replicate(make_session(), 2)
        per_image = pool.shards[0].probe_seconds()
        server = ShardServer(pool, "round-robin",
                             BatcherOptions(max_batch=1))
        scenario = FailureScenario.kill("shard0", at=1.5 * per_image)
        report = server.serve(make_requests("uniform", 8),
                              scenario=scenario)
        usage = report.per_shard()
        # Busy time never exceeds the completed work's span.
        assert usage["shard0"].busy_seconds == pytest.approx(per_image)
        assert (
            usage["shard0"].requests + usage["shard1"].requests == 8
        )


# -- SLO control -----------------------------------------------------------


class TestSloOptions:
    def test_validation(self):
        with pytest.raises(ServingError):
            SloOptions(p99_target_s=0.0)
        with pytest.raises(ServingError):
            SloOptions(p99_target_s=0.1, action="panic")
        with pytest.raises(ServingError):
            SloOptions(p99_target_s=0.1, window=2, min_samples=4)
        with pytest.raises(ServingError):
            SloOptions(p99_target_s=0.1, min_samples=0)
        with pytest.raises(ServingError):
            SloOptions(p99_target_s=0.1, tick_s=0.0)
        assert SloOptions(p99_target_s=0.1).effective_tick_s == 0.05
        assert SloOptions(p99_target_s=0.1, tick_s=0.02
                          ).effective_tick_s == 0.02


class TestSloControl:
    def test_shed_under_overload(self):
        pool = ShardPool.replicate(make_session(), 2)
        per_image = pool.shards[0].probe_seconds()
        slo = SloOptions(p99_target_s=3 * per_image, window=8,
                         min_samples=2)
        server = ShardServer(pool, "least-loaded",
                             BatcherOptions(max_batch=1), slo=slo)
        requests = make_requests("fixed-qps", 80, qps=6.0 / per_image)
        report = server.serve(requests)
        assert report.shed > 0
        assert report.count + report.shed == 80
        assert report.rerouted == 0
        assert "shed" in report.describe()
        controller = server.last_slo_controller
        assert controller is not None
        assert controller.breach_ticks > 0
        assert "p99 target" in controller.describe()
        # Shedding keeps the *served* tail near the target while an
        # uncontrolled run blows far past it.
        uncontrolled = ShardServer(
            pool, "least-loaded", BatcherOptions(max_batch=1)
        ).serve(requests)
        assert (
            report.latency_percentile(99)
            < uncontrolled.latency_percentile(99)
        )

    def test_reroute_overrides_blind_policy_on_slow_shard(self):
        fast = make_session(frequency=100.0)
        slow = make_session(frequency=25.0)
        pool = ShardPool.of(fast, slow, names=("fast", "slow"))
        per_image = pool.shards[0].probe_seconds()
        slo = SloOptions(p99_target_s=4 * per_image, action="reroute",
                         window=8, min_samples=2)
        server = ShardServer(pool, "round-robin",
                             BatcherOptions(max_batch=1), slo=slo)
        requests = make_requests("fixed-qps", 60, qps=3.0 / per_image)
        report = server.serve(requests)
        blind = ShardServer(
            pool, "round-robin", BatcherOptions(max_batch=1)
        ).serve(requests)
        assert report.rerouted > 0
        assert report.shed == 0
        assert report.count == 60
        # Rerouting shifts load from the slow shard to the fast one.
        assert (
            report.per_shard()["fast"].requests
            > blind.per_shard()["fast"].requests
        )

    def test_shed_does_not_stall_closed_loop_clients(self):
        pool = ShardPool.replicate(make_session(), 1)
        per_image = pool.shards[0].probe_seconds()
        slo = SloOptions(p99_target_s=2 * per_image, window=4,
                         min_samples=1, tick_s=0.5 * per_image)
        server = ShardServer(pool, "round-robin",
                             BatcherOptions(max_batch=1), slo=slo)
        source = ClosedLoopClientPool(clients=6, requests=30,
                                      think_time_s=0.0, seed=2)
        report = server.serve(source)  # terminates: sheds unblock clients
        assert report.count + report.shed == 30

    def test_slo_run_is_deterministic(self):
        pool = ShardPool.replicate(make_session(), 2)
        per_image = pool.shards[0].probe_seconds()
        slo = SloOptions(p99_target_s=3 * per_image, window=8,
                         min_samples=2)
        server = ShardServer(pool, "least-loaded",
                             BatcherOptions(max_batch=2), slo=slo)
        requests = make_requests("poisson", 50, qps=5.0 / per_image,
                                 seed=21)
        first = server.serve(requests)
        second = server.serve(requests)
        assert first.records == second.records
        assert first.shed == second.shed

    def test_quiet_system_never_breaches(self):
        pool = ShardPool.replicate(make_session(instances=2), 2)
        per_image = pool.shards[0].probe_seconds()
        slo = SloOptions(p99_target_s=100 * per_image)
        server = ShardServer(pool, "least-loaded",
                             BatcherOptions(max_batch=2), slo=slo)
        report = server.serve(
            make_requests("fixed-qps", 20, qps=0.5 / per_image)
        )
        assert report.shed == 0
        assert report.rerouted == 0
        assert report.count == 20
        assert server.last_slo_controller.breach_ticks == 0

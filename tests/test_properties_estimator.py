"""Hypothesis property tests on the analytical models: monotonicity and
scaling laws the hardware must obey (violations would mislead the DSE)."""

from dataclasses import replace

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.arch.params import AcceleratorConfig
from repro.errors import ReproError
from repro.estimator import estimate_layer, estimate_resources
from repro.estimator.calibration import get_calibration
from repro.fpga import get_device
from repro.fpga.device import ExternalMemory
from repro.ir import zoo

DEVICE = get_device("vu9p")
CAL = get_calibration("generic")


def make_cfg(pi=4, po=4, pt=6):
    return AcceleratorConfig(
        pi=pi, po=po, pt=pt, frequency_mhz=167.0,
        input_buffer_vecs=32768, weight_buffer_vecs=16384,
        output_buffer_vecs=16384,
    )


def layer(c, k, h, kernel):
    net = zoo.single_conv(c, k, h, kernel, padding=kernel // 2)
    return net.compute_layers()[0]


@settings(max_examples=25, deadline=None)
@given(
    pi=st.sampled_from([2, 4, 8]),
    po=st.sampled_from([1, 2, 4]),
    pt=st.sampled_from([4, 6]),
)
def test_resources_monotone_in_parallelism(pi, po, pt):
    """More parallelism never uses fewer resources."""
    assume(po <= pi)
    small = estimate_resources(make_cfg(pi, po, pt), DEVICE, CAL)
    big = estimate_resources(make_cfg(pi * 2, po * 2, pt), DEVICE, CAL)
    assert big.dsps > small.dsps
    assert big.luts > small.luts
    assert big.brams >= small.brams


@settings(max_examples=25, deadline=None)
@given(
    c=st.sampled_from([16, 64, 256]),
    k=st.sampled_from([16, 64, 256]),
    h=st.sampled_from([14, 28, 56]),
    kernel=st.sampled_from([1, 3, 5]),
    mode=st.sampled_from(["spat", "wino"]),
    dataflow=st.sampled_from(["is", "ws"]),
)
def test_latency_monotone_in_bandwidth(c, k, h, kernel, mode, dataflow):
    """More external bandwidth never increases estimated latency."""
    info = layer(c, k, h, kernel)
    slow_dev = replace(DEVICE, memory=ExternalMemory(bandwidth_gbps=1.0))
    fast_dev = replace(DEVICE, memory=ExternalMemory(bandwidth_gbps=64.0))
    cfg = make_cfg()
    try:
        slow = estimate_layer(cfg, slow_dev, info, mode, dataflow)
        fast = estimate_layer(cfg, fast_dev, info, mode, dataflow)
    except ReproError:
        assume(False)
    assert fast.latency <= slow.latency * (1 + 1e-12)


@settings(max_examples=25, deadline=None)
@given(
    c=st.sampled_from([16, 64, 256]),
    k=st.sampled_from([16, 64, 256]),
    h=st.sampled_from([14, 28, 56]),
    mode=st.sampled_from(["spat", "wino"]),
)
def test_compute_time_scales_with_work(c, k, h, mode):
    """Doubling the output channels doubles T_CP exactly (Eq. 6/7 are
    linear in K)."""
    cfg = make_cfg()
    one = estimate_layer(cfg, DEVICE, layer(c, k, h, 3), mode, "ws")
    two = estimate_layer(cfg, DEVICE, layer(c, 2 * k, h, 3), mode, "ws")
    assert two.t_comp == pytest.approx(2 * one.t_comp, rel=1e-9)


@settings(max_examples=20, deadline=None)
@given(
    c=st.sampled_from([32, 128]),
    h=st.sampled_from([14, 28]),
    kernel=st.sampled_from([1, 3, 5, 7]),
)
def test_winograd_weight_traffic_ratio(c, h, kernel):
    """Eq. 9 / Eq. 8: Winograd loads exactly blocks*PT^2 / (R*S) more
    weight data, for any kernel size."""
    cfg = make_cfg()
    info = layer(c, 32, h, kernel)
    spat = estimate_layer(cfg, DEVICE, info, "spat", "ws")
    wino = estimate_layer(cfg, DEVICE, info, "wino", "ws")
    blocks = (-(-kernel // 3)) ** 2
    expected = blocks * cfg.pt**2 / kernel**2
    assert wino.t_ldw / spat.t_ldw == pytest.approx(expected, rel=1e-9)


@settings(max_examples=20, deadline=None)
@given(
    pi=st.sampled_from([2, 4, 8]),
    po=st.sampled_from([2, 4]),
    c=st.sampled_from([64, 256]),
)
def test_latency_monotone_in_pe_size(pi, po, c):
    """A strictly larger PE never has higher compute time."""
    assume(po <= pi)
    info = layer(c, c, 28, 3)
    small = estimate_layer(make_cfg(pi, po), DEVICE, info, "wino", "ws")
    big = estimate_layer(make_cfg(2 * pi, 2 * po), DEVICE, info, "wino", "ws")
    assert big.t_comp < small.t_comp

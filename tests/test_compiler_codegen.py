"""Tests for repro.compiler.codegen — instruction emission."""

import pytest

from repro.compiler import CompilerOptions, compile_network
from repro.compiler.codegen import AccelStep, HostStep
from repro.errors import CompileError
from repro.ir import NetworkBuilder, zoo
from repro.isa.instructions import DeptFlag, Opcode
from repro.mapping import LayerMapping, NetworkMapping
from repro.runtime import generate_parameters


def compile_tiny(cfg, mode="wino", dataflow="ws", net=None, quantize=False):
    net = net or zoo.tiny_cnn(input_size=16, channels=8)
    params = generate_parameters(net, seed=1)
    mapping = NetworkMapping.uniform(net, mode, dataflow)
    return compile_network(
        net, cfg, mapping, params, CompilerOptions(quantize=quantize)
    )


class TestStructure:
    def test_single_segment_for_conv_net(self, cfg_pt4):
        compiled = compile_tiny(cfg_pt4)
        assert len(compiled.steps) == 1
        assert isinstance(compiled.steps[0], AccelStep)

    def test_markers_cover_all_compute_layers(self, cfg_pt4):
        compiled = compile_tiny(cfg_pt4)
        program = compiled.steps[0].program
        names = {m.layer_name for m in program.markers}
        assert names == {"conv1", "conv2", "conv3"}

    def test_flatten_becomes_host_step(self, cfg_pt4):
        net = (
            NetworkBuilder("mix", (3, 8, 8))
            .conv2d(8, padding=1, relu=True, name="c1")
            .flatten(name="fl")
            .dense(10, name="fc")
            .build()
        )
        params = generate_parameters(net)
        mapping = NetworkMapping.uniform(net, "spat", "ws")
        compiled = compile_network(net, cfg_pt4, mapping, params)
        kinds = [type(s).__name__ for s in compiled.steps]
        assert kinds == ["AccelStep", "HostStep", "AccelStep"]
        host = compiled.steps[1]
        assert host.op == "flatten"

    def test_overlapping_pool_becomes_host_step(self, cfg_pt4):
        net = (
            NetworkBuilder("ov", (3, 16, 16))
            .conv2d(8, padding=1, name="c1")
            .maxpool2d(3, stride=2, name="p1")
            .build()
        )
        params = generate_parameters(net)
        mapping = NetworkMapping.uniform(net, "spat", "ws")
        compiled = compile_network(net, cfg_pt4, mapping, params)
        assert any(
            isinstance(s, HostStep) and s.op == "maxpool"
            for s in compiled.steps
        )

    def test_nonoverlapping_pool_fused(self, cfg_pt4):
        compiled = compile_tiny(cfg_pt4)  # tiny_cnn has a 2x2 pool
        assert len(compiled.steps) == 1  # fully fused, no host steps
        program = compiled.steps[0].program
        pool_saves = [
            i for i in program
            if i.opcode == Opcode.SAVE and i.pool_size > 1
        ]
        assert pool_saves

    def test_instruction_counts_match_partition(self, cfg_pt4):
        compiled = compile_tiny(cfg_pt4, dataflow="ws")
        program = compiled.steps[0].program
        counts = program.count_by_opcode()
        expected_comps = sum(
            p.total_groups for p in compiled.partitions.values()
        )
        assert counts[Opcode.COMP] == expected_comps

    def test_missing_weights_rejected(self, cfg_pt4):
        net = zoo.tiny_cnn()
        mapping = NetworkMapping.uniform(net, "spat", "ws")
        with pytest.raises(CompileError, match="missing weights"):
            compile_network(net, cfg_pt4, mapping, {})

    def test_is_with_chunking_rejected(self, vu9p):
        from repro.arch.params import AcceleratorConfig

        tiny = AcceleratorConfig(
            pi=4, po=4, pt=4, input_buffer_vecs=256,
            weight_buffer_vecs=4096, output_buffer_vecs=2048,
        )
        net = zoo.single_conv(64, 8, 16, 3, padding=1)
        params = generate_parameters(net)
        mapping = NetworkMapping(
            net.name, [LayerMapping("conv", "wino", "is")]
        )
        with pytest.raises(CompileError, match="IS dataflow"):
            compile_network(net, tiny, mapping, params)


class TestHandshakeFlags:
    def test_loads_wait_free_and_emit(self, cfg_pt4):
        program = compile_tiny(cfg_pt4).steps[0].program
        for inst in program:
            if inst.opcode in (Opcode.LOAD_INP, Opcode.LOAD_WGT):
                assert inst.dept_flag & DeptFlag.WAIT_FREE
                assert inst.dept_flag & DeptFlag.EMIT

    def test_saves_wait_and_free(self, cfg_pt4):
        program = compile_tiny(cfg_pt4).steps[0].program
        for inst in program:
            if inst.opcode == Opcode.SAVE:
                assert inst.dept_flag & DeptFlag.WAIT_INP
                assert inst.dept_flag & DeptFlag.FREE_INP

    def test_token_balance(self, cfg_pt4):
        """Every data token emitted is consumed; every free token
        consumed is re-emitted — the no-deadlock precondition."""
        for dataflow in ("is", "ws"):
            program = compile_tiny(cfg_pt4, dataflow=dataflow).steps[0].program
            emitted_inp = sum(
                1 for i in program
                if i.opcode == Opcode.LOAD_INP and i.dept_flag & DeptFlag.EMIT
            )
            waited_inp = sum(
                1 for i in program
                if i.opcode == Opcode.COMP and i.dept_flag & DeptFlag.WAIT_INP
            )
            assert emitted_inp == waited_inp
            freed_inp = sum(
                1 for i in program
                if i.opcode == Opcode.COMP and i.dept_flag & DeptFlag.FREE_INP
            )
            assert freed_inp == emitted_inp
            comp_emits = sum(
                1 for i in program
                if i.opcode == Opcode.COMP and i.dept_flag & DeptFlag.EMIT
            )
            saves = sum(1 for i in program if i.opcode == Opcode.SAVE)
            assert comp_emits == saves

    def test_ping_pong_alternation(self, cfg_pt4):
        program = compile_tiny(cfg_pt4).steps[0].program
        halves = [
            i.buff_id for i in program if i.opcode == Opcode.LOAD_INP
        ]
        assert all(a != b for a, b in zip(halves, halves[1:]))


class TestMetadata:
    def test_descriptors_cover_program(self, cfg_pt4):
        program = compile_tiny(cfg_pt4).steps[0].program
        descriptors = program.metadata["descriptors"]
        assert set(descriptors) == set(range(len(program)))

    def test_fmap_layouts_follow_consumer_mode(self, cfg_pt4):
        from repro.arch import layouts

        net = (
            NetworkBuilder("mix2", (4, 8, 8))
            .conv2d(8, padding=1, name="a")
            .conv2d(8, padding=1, name="b")
            .build()
        )
        params = generate_parameters(net)
        mapping = NetworkMapping(
            net.name,
            [LayerMapping("a", "spat", "ws"), LayerMapping("b", "wino", "ws")],
        )
        compiled = compile_network(net, cfg_pt4, mapping, params)
        # a's output feeds a Winograd consumer -> WINO layout (Figure 5).
        assert compiled.fmaps["a"].layout == layouts.WINO
        # b is last -> default SPAT.
        assert compiled.fmaps["b"].layout == layouts.SPAT
        # input region matches first layer's mode (spat).
        assert compiled.input_spec.layout == layouts.SPAT

    def test_total_instructions(self, cfg_pt4):
        compiled = compile_tiny(cfg_pt4)
        assert compiled.total_instructions == sum(
            len(p) for p in compiled.programs()
        )

"""Tests for repro.ir.transforms — batch-norm folding."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.ir.transforms import fold_batchnorm, fold_batchnorm_params
from repro.winograd.reference import direct_conv2d


def bn_apply(x, gamma, beta, mean, var, eps=1e-5):
    scale = gamma / np.sqrt(var + eps)
    return x * scale[:, None, None] + (beta - mean * scale)[:, None, None]


class TestFoldBatchnorm:
    def test_equivalence_on_conv(self, rng):
        k, c = 6, 4
        weights = rng.normal(size=(k, c, 3, 3))
        bias = rng.normal(size=k)
        gamma = rng.uniform(0.5, 2.0, size=k)
        beta = rng.normal(size=k)
        mean = rng.normal(size=k)
        var = rng.uniform(0.1, 2.0, size=k)
        feature = rng.normal(size=(c, 10, 10))

        unfolded = bn_apply(
            direct_conv2d(feature, weights, bias, padding=1),
            gamma, beta, mean, var,
        )
        fw, fb = fold_batchnorm(weights, bias, gamma, beta, mean, var)
        folded = direct_conv2d(feature, fw, fb, padding=1)
        np.testing.assert_allclose(folded, unfolded, atol=1e-10)

    def test_identity_bn_is_noop(self, rng):
        k = 3
        weights = rng.normal(size=(k, 2, 3, 3))
        bias = rng.normal(size=k)
        fw, fb = fold_batchnorm(
            weights, bias,
            gamma=np.ones(k), beta=np.zeros(k),
            mean=np.zeros(k), var=np.ones(k), eps=0.0,
        )
        np.testing.assert_allclose(fw, weights)
        np.testing.assert_allclose(fb, bias)

    def test_shape_validation(self, rng):
        weights = rng.normal(size=(4, 2, 3, 3))
        with pytest.raises(ShapeError):
            fold_batchnorm(
                weights, np.zeros(3), np.ones(4), np.zeros(4),
                np.zeros(4), np.ones(4),
            )

    def test_negative_variance_rejected(self, rng):
        weights = rng.normal(size=(2, 2, 3, 3))
        with pytest.raises(ShapeError):
            fold_batchnorm(
                weights, np.zeros(2), np.ones(2), np.zeros(2),
                np.zeros(2), -np.ones(2),
            )

    def test_dense_weights_supported(self, rng):
        weights = rng.normal(size=(5, 16))
        fw, fb = fold_batchnorm(
            weights, np.zeros(5), 2 * np.ones(5), np.zeros(5),
            np.zeros(5), np.ones(5), eps=0.0,
        )
        np.testing.assert_allclose(fw, 2 * weights)


class TestFoldParams:
    def test_params_dict_folding(self, rng):
        params = {
            "conv1": {
                "weights": rng.normal(size=(4, 2, 3, 3)),
                "bias": rng.normal(size=4),
            }
        }
        bn = {
            "gamma": np.ones(4) * 2,
            "beta": np.zeros(4),
            "mean": np.zeros(4),
            "var": np.ones(4),
        }
        folded = fold_batchnorm_params(params, "conv1", bn, eps=0.0)
        assert folded is not params
        np.testing.assert_allclose(
            folded["conv1"]["weights"], 2 * params["conv1"]["weights"]
        )
        # Original untouched.
        assert params["conv1"]["bias"].shape == (4,)

    def test_missing_layer(self):
        with pytest.raises(ShapeError):
            fold_batchnorm_params({}, "conv1", {})

    def test_missing_bias_defaults_zero(self, rng):
        params = {"c": {"weights": rng.normal(size=(2, 2, 3, 3))}}
        bn = {
            "gamma": np.ones(2), "beta": np.ones(2),
            "mean": np.zeros(2), "var": np.ones(2),
        }
        folded = fold_batchnorm_params(params, "c", bn, eps=0.0)
        np.testing.assert_allclose(folded["c"]["bias"], np.ones(2))

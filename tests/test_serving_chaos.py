"""Tests for repro.serving.chaos — the scenario algebra.

The oracle tests pin the contract the whole module hangs on: a legacy
kill/restore spec compiled through the algebra is *event-identical* to
the old ``FailureScenario`` path, so every scheduler/SLO/autoscaler
behaviour already proven against the old scenarios carries over.  The
property tests then cover the new surface: any valid program compiles
to a nondecreasing, well-nested event sequence, and seeded runs are
bit-reproducible.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.params import AcceleratorConfig
from repro.compiler import CompilerOptions
from repro.errors import ServingError
from repro.fpga import get_device
from repro.ir import zoo
from repro.pipeline import PipelineSession
from repro.serving import (
    BatcherOptions,
    ChaosScenario,
    Degrade,
    Diurnal,
    FailureScenario,
    FlashCrowd,
    Kill,
    Outage,
    Restore,
    ShardDegrade,
    ShardDown,
    ShardPool,
    ShardRestoreRate,
    ShardUp,
    ShardServer,
    Stragglers,
    make_requests,
    parse_scenario,
    parse_shape,
    shape_arrivals,
)


def make_session(instances=1, frequency=100.0):
    device = get_device("vu9p")
    cfg = AcceleratorConfig(
        pi=4, po=4, pt=4, instances=instances, frequency_mhz=frequency,
        input_buffer_vecs=4096, weight_buffer_vecs=2048,
        output_buffer_vecs=2048,
    )
    return PipelineSession(
        zoo.tiny_cnn(input_size=16, channels=8),
        device,
        cfg=cfg,
        compiler_options=CompilerOptions(quantize=False, pack_data=False),
    )


@pytest.fixture(scope="module")
def pool():
    return ShardPool.replicate(make_session(), 2)


def serve(pool, traffic, scenario=None, policy="round-robin",
          max_batch=4):
    server = ShardServer(pool, policy,
                         BatcherOptions(max_batch=max_batch))
    return server.serve(traffic, scenario=scenario)


# -- ops -------------------------------------------------------------------


class TestChaosOps:
    def test_kill_window_emits_down_then_up(self):
        events = Kill("shard0", at=0.1, until=0.3).events()
        assert [type(e).__name__ for e in events] == [
            "ShardDown", "ShardUp",
        ]
        assert [e.time for e in events] == [0.1, 0.3]

    def test_degrade_validates_factor(self):
        with pytest.raises(ServingError, match="factor"):
            Degrade("shard0", factor=0.5, at=0.1)
        with pytest.raises(ServingError, match="factor"):
            Degrade("shard0", factor=float("nan"), at=0.1)

    def test_window_must_be_ordered(self):
        with pytest.raises(ServingError):
            Kill("shard0", at=0.3, until=0.1)
        with pytest.raises(ServingError):
            Degrade("shard0", factor=2.0, at=0.3, until=0.3)

    def test_outage_rejects_duplicate_shards(self):
        with pytest.raises(ServingError, match="twice"):
            Outage(("shard0", "shard0"), at=0.1)

    def test_stragglers_windows_nest_and_are_seeded(self):
        op = Stragglers(("shard0", "shard1"), factor=4.0,
                        start=0.0, until=0.9, pulses=3, seed=7)
        windows = op.windows()
        assert len(windows) == 3
        slot = 0.3
        for index, (shard, begin, end) in enumerate(windows):
            assert shard in ("shard0", "shard1")
            assert index * slot <= begin < end <= (index + 1) * slot
        assert windows == op.windows()  # same seed, same pulse train
        other = Stragglers(("shard0", "shard1"), factor=4.0,
                           start=0.0, until=0.9, pulses=3, seed=8)
        assert windows != other.windows()


# -- parsing ---------------------------------------------------------------


class TestChaosParse:
    def test_each_verb_round_trips(self):
        scenario = parse_scenario(
            "kill:shard0@0.01..0.02, degrade:shard1@0.03..0.04x8, "
            "outage:shard0+shard1@0.05..0.06, "
            "stragglers:shard0+shard1@0.07..0.09x2*2"
        )
        kinds = [type(op).__name__ for op in scenario.ops]
        assert kinds == ["Kill", "Degrade", "Outage", "Stragglers"]
        assert scenario.names() == ["shard0", "shard1"]

    def test_legacy_kill_restore_grammar_still_parses(self):
        scenario = parse_scenario("kill:shard0@0.05,restore@0.1")
        assert scenario.spans() == [("shard0", 0.05, 0.1)]

    def test_windowed_kill_equals_kill_plus_restore(self):
        window = parse_scenario("kill:shard0@0.05..0.1")
        explicit = parse_scenario("kill:shard0@0.05,restore:shard0@0.1")
        assert window.compile() == explicit.compile()

    def test_restore_without_any_kill_is_an_error(self):
        with pytest.raises(ServingError, match="preceding open-ended"):
            parse_scenario("restore@0.1")

    def test_restore_after_windowed_kill_is_an_error(self):
        # The windowed kill restores itself: a bare restore after it
        # has no shard left to name.
        with pytest.raises(ServingError, match="preceding open-ended"):
            parse_scenario("kill:shard0@0.01..0.02,restore@0.1")

    def test_restore_after_outage_is_ambiguous(self):
        with pytest.raises(ServingError, match="ambiguous"):
            parse_scenario("outage:shard0+shard1@0.01,restore@0.1")
        # Naming the shard resolves it.
        scenario = parse_scenario(
            "outage:shard0+shard1@0.01,"
            "restore:shard0@0.1,restore:shard1@0.2"
        )
        assert len(scenario.compile()) == 4

    @pytest.mark.parametrize("spec", [
        "kill:shard0",                       # no @time
        "kill:shard0@0.1x4",                 # kill takes no factor
        "kill:shard0+shard1@0.1",            # correlated kill is outage
        "restore:shard0@0.1..0.2",           # restore takes an instant
        "degrade:shard0@0.1..0.2",           # degrade needs a factor
        "degrade:shard0+shard1@0.1..0.2x4",  # one shard per degrade
        "stragglers:shard0@0.1x4",           # stragglers need a window
        "frobnicate:shard0@0.1",             # unknown verb
        "",                                  # empty spec
    ])
    def test_bad_specs_fail_with_serving_errors(self, spec):
        with pytest.raises(ServingError):
            parse_scenario(spec)

    def test_stragglers_seed_comes_from_parse(self):
        a = parse_scenario("stragglers:shard0@0..0.9x4", seed=1)
        b = parse_scenario("stragglers:shard0@0..0.9x4", seed=1)
        c = parse_scenario("stragglers:shard0@0..0.9x4", seed=2)
        assert a.compile() == b.compile()
        assert a.compile() != c.compile()


# -- compilation -----------------------------------------------------------


class TestChaosCompile:
    def test_events_sorted_and_typed(self):
        scenario = parse_scenario(
            "degrade:shard0@0.01..0.05x4,kill:shard1@0.02..0.04"
        )
        events = scenario.compile()
        times = [event.time for event in events]
        assert times == sorted(times)
        assert [type(e) for e in events] == [
            ShardDegrade, ShardDown, ShardUp, ShardRestoreRate,
        ]

    def test_restore_sorts_before_new_perturbation_at_same_instant(self):
        # Back-to-back degrade windows share the instant 0.02: the
        # restore of the first must precede the start of the second or
        # the state machine would see a double-degrade.
        scenario = parse_scenario(
            "degrade:shard0@0.01..0.02x4,degrade:shard0@0.02..0.03x2"
        )
        kinds = [type(e).__name__ for e in scenario.compile()]
        assert kinds == [
            "ShardDegrade", "ShardRestoreRate",
            "ShardDegrade", "ShardRestoreRate",
        ]

    def test_double_kill_rejected(self):
        with pytest.raises(ServingError, match="already down"):
            ChaosScenario([Kill("s", 0.1), Kill("s", 0.2)])

    def test_degrade_while_down_rejected(self):
        with pytest.raises(ServingError, match="while it is down"):
            ChaosScenario([
                Kill("s", 0.1),
                Degrade("s", factor=2.0, at=0.2),
            ])

    def test_overlapping_degrades_rejected(self):
        with pytest.raises(ServingError, match="must not overlap"):
            ChaosScenario([
                Degrade("s", factor=2.0, at=0.1, until=0.3),
                Degrade("s", factor=4.0, at=0.2, until=0.4),
            ])

    def test_kill_inside_degrade_window_rejected(self):
        with pytest.raises(ServingError, match="degrade window"):
            ChaosScenario([
                Degrade("s", factor=2.0, at=0.1, until=0.4),
                Kill("s", 0.2),
            ])

    def test_restore_before_kill_rejected(self):
        with pytest.raises(ServingError, match="before any kill"):
            ChaosScenario([Restore("s", 0.1)])

    def test_degraded_spans(self):
        scenario = parse_scenario(
            "degrade:shard0@0.01..0.05x4,degrade:shard1@0.02x2"
        )
        assert scenario.degraded_spans() == [
            ("shard0", 0.01, 0.05),
            ("shard1", 0.02, math.inf),
        ]


# -- oracle: legacy scenarios are event-identical --------------------------


class TestOracle:
    SPECS = [
        "kill:shard0@0.002,restore@0.01",
        "kill:shard0@0.002",
        "kill:shard0@0.001, kill:shard1@0.003, restore:shard0@0.005",
    ]

    @pytest.mark.parametrize("spec", SPECS)
    def test_compiled_events_match_legacy_steps(self, spec):
        legacy = FailureScenario.parse(spec)
        events = ChaosScenario.from_failure(legacy).compile()
        assert [
            (type(e).__name__, e.shard, e.time) for e in events
        ] == [
            ("ShardDown" if s.kind == "kill" else "ShardUp", s.shard, s.at)
            for s in sorted(legacy.steps,
                            key=lambda s: (s.at, s.kind != "kill"))
        ]

    @pytest.mark.parametrize("spec", SPECS)
    def test_serve_reports_identical(self, pool, spec):
        traffic = make_requests("poisson", 32, qps=4000.0, seed=11)
        old = serve(pool, traffic, FailureScenario.parse(spec))
        new = serve(pool, traffic, parse_scenario(spec))
        assert old == new
        drop = ("wall_seconds", "events_per_second",
                "replay_requests_per_second")
        assert (
            {k: v for k, v in old.to_dict().items() if k not in drop}
            == {k: v for k, v in new.to_dict().items() if k not in drop}
        )


# -- degrade semantics -----------------------------------------------------


class TestDegrade:
    def test_degrade_stretches_tail_but_serves_everything(self, pool):
        traffic = make_requests("poisson", 32, qps=4000.0, seed=3)
        baseline = serve(pool, traffic)
        degraded = serve(pool, traffic, parse_scenario(
            "degrade:shard0@0..1x8"
        ))
        assert degraded.count == baseline.count == 32
        assert degraded.unserved == 0
        assert (
            degraded.latency_percentile(99)
            > baseline.latency_percentile(99)
        )

    def test_shortest_latency_routes_around_straggler(self, pool):
        traffic = make_requests("poisson", 32, qps=2000.0, seed=3)
        report = serve(pool, traffic, parse_scenario(
            "degrade:shard0@0..1x50"
        ), policy="shortest-latency")
        shares = report.per_shard()
        assert shares["shard1"].requests == 32
        assert shares["shard0"].requests == 0

    def test_restore_rate_ends_the_slowdown(self, pool):
        for shard in pool:
            shard.reset()
        shard = pool.shards[0]
        base = shard.probe_service_seconds(4)
        shard.degrade(4.0)
        assert shard.probe_service_seconds(4) == pytest.approx(4 * base)
        shard.restore_rate()
        assert shard.probe_service_seconds(4) == pytest.approx(base)

    def test_kill_clears_degradation(self, pool):
        shard = pool.shards[0]
        shard.degrade(4.0)
        shard.fail()
        assert shard.rate_factor == 1.0
        shard.reset()

    def test_degrade_factor_validation(self, pool):
        shard = pool.shards[0]
        with pytest.raises(ServingError):
            shard.degrade(0.9)
        with pytest.raises(ServingError):
            shard.degrade(float("inf"))


# -- properties ------------------------------------------------------------


@st.composite
def scenario_programs(draw):
    """Valid programs: globally disjoint windows, so any shard/kind
    assignment passes the compile-time state machine."""
    count = draw(st.integers(1, 4))
    times = sorted(draw(st.lists(
        st.floats(min_value=0.001, max_value=1.0,
                  allow_nan=False, allow_infinity=False),
        min_size=2 * count, max_size=2 * count, unique=True,
    )))
    ops = []
    for index in range(count):
        at, until = times[2 * index], times[2 * index + 1]
        shard = draw(st.sampled_from(("shard0", "shard1")))
        if draw(st.booleans()):
            ops.append(Kill(shard, at, until))
        else:
            factor = draw(st.floats(min_value=1.0, max_value=32.0,
                                    allow_nan=False))
            ops.append(Degrade(shard, factor, at, until))
    return ops


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(ops=scenario_programs())
    def test_compiles_to_nondecreasing_well_nested_events(self, ops):
        scenario = ChaosScenario(ops)
        events = scenario.compile()
        assert len(events) == 2 * len(ops)
        times = [event.time for event in events]
        assert times == sorted(times)
        assert set(scenario.names()) <= {"shard0", "shard1"}
        # Every window closes after it opens, and none is left open.
        for _, begin, end in scenario.spans() + scenario.degraded_spans():
            assert begin < end < math.inf

    @settings(max_examples=60, deadline=None)
    @given(ops=scenario_programs(), seed=st.integers(0, 2**32 - 1))
    def test_parse_describe_compile_is_deterministic(self, ops, seed):
        scenario = ChaosScenario(ops)
        again = ChaosScenario(list(ops))
        assert scenario.compile() == again.compile()
        assert scenario.describe() == again.describe()

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_seeded_runs_are_bit_reproducible(self, pool, seed):
        spec = "stragglers:shard0+shard1@0..0.02x8*3"
        drop = ("wall_seconds", "events_per_second",
                "replay_requests_per_second")

        def run():
            traffic = make_requests("poisson", 24, qps=4000.0, seed=seed)
            report = serve(pool, traffic,
                           parse_scenario(spec, seed=seed))
            return {
                k: v for k, v in report.to_dict().items()
                if k not in drop
            }

        assert run() == run()


# -- traffic shapes --------------------------------------------------------


class TestShapes:
    def test_parse_shape_grammar(self):
        diurnal = parse_shape("diurnal:0.5x0.2")
        assert isinstance(diurnal, Diurnal)
        assert diurnal.amplitude == 0.5 and diurnal.period_s == 0.2
        flash = parse_shape("flash:3@0.05~0.01")
        assert isinstance(flash, FlashCrowd)
        assert flash.at == 0.05 and flash.width_s == 0.01

    @pytest.mark.parametrize("spec", [
        "diurnal:1.5x0.2",   # amplitude >= 1 goes negative
        "diurnal:0.5",       # no period
        "flash:3@0.05",      # no width
        "square:1x2",        # unknown shape
    ])
    def test_bad_shapes_rejected(self, spec):
        with pytest.raises(ServingError):
            parse_shape(spec)

    def test_warp_preserves_order_and_endpoints(self):
        arrivals = [i * 0.01 for i in range(32)]
        warped = shape_arrivals(
            arrivals, [parse_shape("flash:4@0.1~0.03")]
        )
        assert len(warped) == len(arrivals)
        assert warped == sorted(warped)
        assert warped[0] == pytest.approx(arrivals[0])
        assert warped[-1] == pytest.approx(arrivals[-1])
        # The flash packs arrivals toward its centre: strictly more
        # of the stream lands inside the crowd window than before.
        inside = [a for a in warped if 0.07 <= a <= 0.13]
        assert len(inside) > len(
            [a for a in arrivals if 0.07 <= a <= 0.13]
        )

    def test_no_shapes_is_identity(self):
        arrivals = [0.0, 0.01, 0.05]
        assert shape_arrivals(arrivals, []) == arrivals

"""Tests for repro.ir.layers — shape inference and cost counting."""

import pytest

from repro.errors import ShapeError
from repro.ir.layers import (
    AvgPool2D,
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    ReLU,
)
from repro.ir.tensor import TensorShape


class TestConv2D:
    def test_same_padding_shape(self):
        conv = Conv2D("c", out_channels=64, kernel_size=(3, 3), padding=1)
        out = conv.output_shape(TensorShape(3, 224, 224))
        assert out == TensorShape(64, 224, 224)

    def test_valid_shape(self):
        conv = Conv2D("c", out_channels=8, kernel_size=(5, 5))
        assert conv.output_shape(TensorShape(4, 12, 10)) == TensorShape(8, 8, 6)

    def test_strided_shape(self):
        conv = Conv2D("c", out_channels=96, kernel_size=(11, 11), stride=4)
        out = conv.output_shape(TensorShape(3, 227, 227))
        assert out == TensorShape(96, 55, 55)

    def test_macs_formula(self):
        # K*C*R*S*H_out*W_out, the paper's op-count convention.
        conv = Conv2D("c", out_channels=64, kernel_size=(3, 3), padding=1)
        shape = TensorShape(3, 224, 224)
        assert conv.macs(shape) == 64 * 3 * 9 * 224 * 224
        assert conv.ops(shape) == 2 * conv.macs(shape)

    def test_weight_and_bias_counts(self):
        conv = Conv2D("c", out_channels=16, kernel_size=(3, 5))
        shape = TensorShape(8, 10, 10)
        assert conv.weight_count(shape) == 16 * 8 * 15
        assert conv.bias_count(shape) == 16

    def test_too_small_input_raises(self):
        conv = Conv2D("c", out_channels=4, kernel_size=(7, 7))
        with pytest.raises(ShapeError):
            conv.output_shape(TensorShape(1, 5, 5))

    def test_rejects_bad_params(self):
        with pytest.raises(ShapeError):
            Conv2D("c", out_channels=0)
        with pytest.raises(ShapeError):
            Conv2D("c", out_channels=1, stride=0)
        with pytest.raises(ShapeError):
            Conv2D("c", out_channels=1, padding=-1)
        with pytest.raises(ShapeError):
            Conv2D("c", out_channels=1, kernel_size=(0, 3))

    def test_is_compute(self):
        assert Conv2D("c", out_channels=1).is_compute


class TestDense:
    def test_shape(self):
        fc = Dense("f", out_features=10)
        assert fc.output_shape(TensorShape(64, 1, 1)) == TensorShape(10, 1, 1)

    def test_requires_flat_input(self):
        with pytest.raises(ShapeError):
            Dense("f", out_features=10).output_shape(TensorShape(4, 2, 2))

    def test_macs(self):
        fc = Dense("f", out_features=10)
        assert fc.macs(TensorShape(64, 1, 1)) == 640

    def test_as_conv_equivalent(self):
        fc = Dense("f", out_features=10, relu=True)
        conv = fc.as_conv()
        assert conv.out_channels == 10
        assert conv.kernel_size == (1, 1)
        assert conv.relu
        shape = TensorShape(64, 1, 1)
        assert conv.macs(shape) == fc.macs(shape)

    def test_is_compute(self):
        assert Dense("f", out_features=2).is_compute


class TestPooling:
    def test_maxpool_shape(self):
        pool = MaxPool2D("p", pool_size=2)
        assert pool.output_shape(TensorShape(8, 16, 16)) == TensorShape(8, 8, 8)

    def test_default_stride_equals_pool(self):
        assert MaxPool2D("p", pool_size=3).stride == 3

    def test_overlapping_pool_shape(self):
        pool = MaxPool2D("p", pool_size=3, stride=2)
        assert pool.output_shape(TensorShape(96, 55, 55)) == TensorShape(96, 27, 27)

    def test_avgpool_shape(self):
        pool = AvgPool2D("p", pool_size=2)
        assert pool.output_shape(TensorShape(4, 6, 6)) == TensorShape(4, 3, 3)

    def test_no_macs(self):
        assert MaxPool2D("p", pool_size=2).macs(TensorShape(8, 8, 8)) == 0

    def test_window_larger_than_input_raises(self):
        with pytest.raises(ShapeError):
            MaxPool2D("p", pool_size=4).output_shape(TensorShape(1, 2, 2))

    def test_not_compute(self):
        assert not MaxPool2D("p", pool_size=2).is_compute


class TestSimpleLayers:
    def test_relu_preserves_shape(self):
        shape = TensorShape(5, 7, 9)
        assert ReLU("r").output_shape(shape) == shape

    def test_flatten(self):
        out = Flatten("f").output_shape(TensorShape(16, 4, 4))
        assert out == TensorShape(256, 1, 1)
        assert out.is_flat

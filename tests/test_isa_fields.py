"""Tests for repro.isa.fields — the bit-layout machinery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.isa.fields import WORD_BITS, BitLayout


def make_layout():
    return BitLayout("T", [("a", 4), ("b", 8), ("c", 16)])


class TestBitLayout:
    def test_offsets_lsb_first(self):
        layout = make_layout()
        assert layout.field("a").offset == 0
        assert layout.field("b").offset == 4
        assert layout.field("c").offset == 12
        assert layout.used_bits == 28

    def test_pack_unpack_roundtrip(self):
        layout = make_layout()
        values = {"a": 5, "b": 200, "c": 40000}
        assert layout.unpack(layout.pack(values)) == values

    def test_pack_places_bits(self):
        layout = make_layout()
        word = layout.pack({"a": 0xF, "b": 0, "c": 0})
        assert word == 0xF

    def test_overflow_rejected(self):
        layout = make_layout()
        with pytest.raises(EncodingError):
            layout.pack({"a": 16, "b": 0, "c": 0})

    def test_negative_rejected(self):
        layout = make_layout()
        with pytest.raises(EncodingError):
            layout.pack({"a": -1, "b": 0, "c": 0})

    def test_missing_field_rejected(self):
        layout = make_layout()
        with pytest.raises(EncodingError):
            layout.pack({"a": 1, "b": 2})

    def test_extra_field_rejected(self):
        layout = make_layout()
        with pytest.raises(EncodingError):
            layout.pack({"a": 1, "b": 2, "c": 3, "d": 4})

    def test_reserved_bits_must_be_zero(self):
        layout = make_layout()
        with pytest.raises(EncodingError):
            layout.unpack(1 << 100)

    def test_word_range_checked(self):
        layout = make_layout()
        with pytest.raises(EncodingError):
            layout.unpack(1 << WORD_BITS)
        with pytest.raises(EncodingError):
            layout.unpack(-1)

    def test_duplicate_field_rejected(self):
        with pytest.raises(EncodingError):
            BitLayout("D", [("x", 4), ("x", 4)])

    def test_over_128_bits_rejected(self):
        with pytest.raises(EncodingError):
            BitLayout("Big", [("x", 64), ("y", 64), ("z", 1)])

    def test_zero_width_rejected(self):
        with pytest.raises(EncodingError):
            BitLayout("Z", [("x", 0)])

    def test_unknown_field_lookup(self):
        with pytest.raises(EncodingError):
            make_layout().field("nope")

    def test_contains(self):
        layout = make_layout()
        assert "a" in layout
        assert "z" not in layout


@settings(max_examples=50, deadline=None)
@given(
    a=st.integers(0, 15),
    b=st.integers(0, 255),
    c=st.integers(0, 65535),
)
def test_roundtrip_property(a, b, c):
    layout = make_layout()
    values = {"a": a, "b": b, "c": c}
    assert layout.unpack(layout.pack(values)) == values

"""End-to-end functional equivalence: the accelerator simulation must
reproduce the numpy reference inference exactly (un-quantised) and
closely (quantised) — for every mode, dataflow and tile size."""

import numpy as np
import pytest

from repro.compiler import CompilerOptions, compile_network
from repro.errors import RuntimeHostError
from repro.ir import NetworkBuilder, zoo
from repro.mapping import NetworkMapping
from repro.runtime import (
    HostRuntime,
    generate_parameters,
    reference_inference,
)


def run_network(net, cfg, device, mode, dataflow, quantize=False, seed=1):
    params = generate_parameters(net, seed=seed)
    mapping = NetworkMapping.uniform(net, mode, dataflow)
    compiled = compile_network(
        net, cfg, mapping, params, CompilerOptions(quantize=quantize)
    )
    runtime = HostRuntime(compiled, device)
    rng = np.random.default_rng(seed + 1)
    image = rng.normal(size=net.input_shape.as_tuple())
    result = runtime.infer(image)
    return result, params, image


class TestExactEquivalence:
    """quantize=False: outputs must match the float reference to 1e-9."""

    @pytest.mark.parametrize("mode", ["spat", "wino"])
    @pytest.mark.parametrize("dataflow", ["is", "ws"])
    def test_tiny_cnn_pt4(self, cfg_pt4, pynq, mode, dataflow):
        net = zoo.tiny_cnn(input_size=16, channels=8)
        result, params, image = run_network(net, cfg_pt4, pynq, mode, dataflow)
        ref = reference_inference(net, params, image)
        np.testing.assert_allclose(result.output, ref, atol=1e-9)

    @pytest.mark.parametrize("mode", ["spat", "wino"])
    def test_tiny_cnn_pt6(self, cfg_pt6, pynq, mode):
        net = zoo.tiny_cnn(input_size=16, channels=8)
        result, params, image = run_network(net, cfg_pt6, pynq, mode, "ws")
        ref = reference_inference(net, params, image)
        np.testing.assert_allclose(result.output, ref, atol=1e-9)

    def test_mlp_via_flatten(self, cfg_pt4, pynq):
        net = (
            NetworkBuilder("cnn_mlp", (3, 8, 8))
            .conv2d(8, padding=1, relu=True, name="c1")
            .maxpool2d(2, name="p1")
            .flatten(name="fl")
            .dense(24, relu=True, name="fc1")
            .dense(10, name="fc2")
            .build()
        )
        result, params, image = run_network(net, cfg_pt4, pynq, "spat", "ws")
        ref = reference_inference(net, params, image)
        np.testing.assert_allclose(result.output, ref, atol=1e-9)
        assert result.host_ops == 1  # the flatten

    def test_mixed_modes_layout_transforms(self, cfg_pt4, pynq):
        """Alternating wino/spat layers exercises all four SAVE-side
        layout transforms of Figure 5."""
        net = (
            NetworkBuilder("mixed", (4, 12, 12))
            .conv2d(8, padding=1, name="a")
            .conv2d(8, padding=1, name="b")
            .conv2d(8, padding=1, name="c")
            .conv2d(8, padding=1, name="d")
            .build()
        )
        params = generate_parameters(net, seed=5)
        from repro.mapping import LayerMapping

        mapping = NetworkMapping(
            net.name,
            [
                LayerMapping("a", "wino", "ws"),
                LayerMapping("b", "spat", "ws"),
                LayerMapping("c", "wino", "is"),
                LayerMapping("d", "spat", "is"),
            ],
        )
        compiled = compile_network(
            net, cfg_pt4, mapping, params, CompilerOptions(quantize=False)
        )
        runtime = HostRuntime(compiled, pynq)
        rng = np.random.default_rng(6)
        image = rng.normal(size=(4, 12, 12))
        out = runtime.infer(image).output
        ref = reference_inference(net, params, image)
        np.testing.assert_allclose(out, ref, atol=1e-9)

    def test_large_kernel_decomposition(self, cfg_pt4, pynq):
        net = (
            NetworkBuilder("bigk", (3, 14, 14))
            .conv2d(6, kernel_size=5, padding=2, name="c5")
            .conv2d(4, kernel_size=7, padding=3, name="c7")
            .build()
        )
        result, params, image = run_network(net, cfg_pt4, pynq, "wino", "ws")
        ref = reference_inference(net, params, image)
        np.testing.assert_allclose(result.output, ref, atol=1e-9)

    def test_strided_conv_spatial(self, cfg_pt4, pynq):
        net = (
            NetworkBuilder("strided", (3, 17, 17))
            .conv2d(8, kernel_size=3, stride=2, name="s2")
            .build()
        )
        result, params, image = run_network(net, cfg_pt4, pynq, "spat", "ws")
        ref = reference_inference(net, params, image)
        np.testing.assert_allclose(result.output, ref, atol=1e-9)

    def test_overlapping_pool_host_step(self, cfg_pt4, pynq):
        net = (
            NetworkBuilder("ovl", (3, 13, 13))
            .conv2d(4, padding=1, relu=True, name="c")
            .maxpool2d(3, stride=2, name="p")
            .build()
        )
        result, params, image = run_network(net, cfg_pt4, pynq, "spat", "ws")
        ref = reference_inference(net, params, image)
        np.testing.assert_allclose(result.output, ref, atol=1e-9)
        assert result.host_ops == 1


class TestQuantizedPath:
    def test_spatial_quantized_matches_reference(self, cfg_pt4, pynq):
        # In Spatial mode the accelerator quantises raw weights, same as
        # the quantised reference -> near-exact agreement.
        net = zoo.tiny_cnn(input_size=16, channels=8)
        result, params, image = run_network(
            net, cfg_pt4, pynq, "spat", "ws", quantize=True
        )
        ref = reference_inference(
            net, params, image,
            feature_type=cfg_pt4.feature_type,
            weight_type=cfg_pt4.weight_type,
        )
        np.testing.assert_allclose(result.output, ref, atol=1e-6)

    def test_winograd_quantized_close(self, cfg_pt4, pynq):
        # Winograd quantises *transformed* weights (Sec. 4.2.3), so the
        # result differs slightly from the raw-quantised reference.
        net = zoo.tiny_cnn(input_size=16, channels=8)
        result, params, image = run_network(
            net, cfg_pt4, pynq, "wino", "ws", quantize=True
        )
        ref = reference_inference(
            net, params, image,
            feature_type=cfg_pt4.feature_type,
            weight_type=cfg_pt4.weight_type,
        )
        err = np.abs(result.output - ref)
        scale = np.abs(ref).max() + 1e-9
        assert err.max() / scale < 0.15  # close, not exact


class TestHostRuntimeApi:
    def test_input_shape_checked(self, cfg_pt4, pynq, tiny_net, tiny_params):
        mapping = NetworkMapping.uniform(tiny_net, "spat", "ws")
        compiled = compile_network(tiny_net, cfg_pt4, mapping, tiny_params)
        runtime = HostRuntime(compiled, pynq)
        with pytest.raises(RuntimeHostError):
            runtime.load_input(np.zeros((1, 2, 3)))

    def test_inference_seconds_positive(self, cfg_pt4, pynq, tiny_net,
                                        tiny_params, tiny_image):
        mapping = NetworkMapping.uniform(tiny_net, "spat", "ws")
        compiled = compile_network(
            tiny_net, cfg_pt4, mapping, tiny_params,
            CompilerOptions(quantize=False),
        )
        runtime = HostRuntime(compiled, pynq)
        result = runtime.infer(tiny_image)
        assert result.seconds > 0
        assert result.sim is not None

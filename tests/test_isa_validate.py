"""Tests for repro.isa.validate — the static program checker."""

import pytest

from repro.arch.params import AcceleratorConfig
from repro.compiler import CompilerOptions, compile_network
from repro.ir import zoo
from repro.isa import (
    Comp,
    DeptFlag,
    LoadInp,
    LoadWgt,
    Program,
    Save,
    validate_program,
)
from repro.mapping import NetworkMapping
from repro.runtime import generate_parameters


@pytest.fixture
def cfg():
    return AcceleratorConfig(
        pi=4, po=4, pt=4, frequency_mhz=100.0,
        input_buffer_vecs=4096, weight_buffer_vecs=2048,
        output_buffer_vecs=2048,
    )


def good_group(inp_half=0, wgt_half=0, out_half=0):
    """A minimal well-formed load/comp/save group."""
    return [
        LoadInp(dept_flag=DeptFlag.WAIT_FREE | DeptFlag.EMIT,
                buff_id=inp_half),
        LoadWgt(dept_flag=DeptFlag.WAIT_FREE | DeptFlag.EMIT,
                buff_id=wgt_half),
        Comp(
            dept_flag=DeptFlag.WAIT_INP | DeptFlag.WAIT_WGT
            | DeptFlag.EMIT | DeptFlag.FREE_INP | DeptFlag.FREE_WGT
            | DeptFlag.WAIT_FREE,
            accum_clear=1, accum_flush=1,
            inp_buff_id=inp_half, wgt_buff_id=wgt_half,
            out_buff_id=out_half,
        ),
        Save(dept_flag=DeptFlag.WAIT_INP | DeptFlag.FREE_INP,
             buff_id=out_half),
    ]


class TestValidPrograms:
    @pytest.mark.parametrize("mode", ["spat", "wino"])
    @pytest.mark.parametrize("dataflow", ["is", "ws"])
    def test_all_compiled_programs_valid(self, cfg, mode, dataflow):
        net = zoo.tiny_cnn(input_size=16, channels=8)
        compiled = compile_network(
            net, cfg, NetworkMapping.uniform(net, mode, dataflow),
            generate_parameters(net), CompilerOptions(quantize=False),
        )
        for step in compiled.steps:
            report = validate_program(step.program)
            assert report.ok, str(report)

    def test_chunked_fc_program_valid(self, cfg):
        net = zoo.tiny_mlp(in_features=40000, hidden=8)
        compiled = compile_network(
            net, cfg, NetworkMapping.uniform(net, "spat", "ws"),
            generate_parameters(net),
        )
        for step in compiled.steps:
            assert validate_program(step.program).ok

    def test_hand_written_groups(self):
        program = Program(
            instructions=good_group(0, 0, 0) + good_group(1, 1, 1)
        )
        assert validate_program(program).ok


class TestBrokenPrograms:
    def test_comp_without_load_deadlocks(self):
        program = Program(instructions=[
            Comp(dept_flag=DeptFlag.WAIT_INP | DeptFlag.WAIT_FREE
                 | DeptFlag.EMIT),
            Save(dept_flag=DeptFlag.WAIT_INP | DeptFlag.FREE_INP),
        ])
        report = validate_program(program)
        assert any(i.kind == "deadlock" for i in report.issues)

    def test_missing_save_leaks_token(self):
        program = Program(instructions=good_group()[:3])
        report = validate_program(program)
        assert any(i.kind == "leak" for i in report.issues)

    def test_ping_pong_violation(self):
        group = good_group(0, 0, 0) + good_group(0, 1, 1)
        report = validate_program(Program(instructions=group))
        assert any(i.kind == "ping-pong" for i in report.issues)

    def test_missing_clear(self):
        bad = good_group()
        bad[2] = Comp(
            dept_flag=bad[2].dept_flag, accum_clear=0, accum_flush=1
        )
        report = validate_program(Program(instructions=bad))
        assert any(i.kind == "accum" for i in report.issues)

    def test_open_accumulation_at_end(self):
        bad = good_group()[:3]
        bad[2] = Comp(
            dept_flag=DeptFlag.WAIT_INP | DeptFlag.WAIT_WGT
            | DeptFlag.FREE_INP | DeptFlag.FREE_WGT,
            accum_clear=1, accum_flush=0,
        )
        report = validate_program(Program(instructions=bad))
        assert any(
            i.kind == "accum" and i.index == -1 for i in report.issues
        )

    def test_fifo_overflow_detected(self):
        program = Program(instructions=[
            LoadInp(dept_flag=DeptFlag.EMIT, buff_id=0),
            LoadInp(dept_flag=DeptFlag.EMIT, buff_id=1),
            LoadInp(dept_flag=DeptFlag.EMIT, buff_id=0),
        ])
        report = validate_program(program)
        assert any(i.kind == "overflow" for i in report.issues)

    def test_save_without_wait_flagged(self):
        bad = good_group()
        bad[3] = Save(dept_flag=DeptFlag.FREE_INP, buff_id=0)
        report = validate_program(Program(instructions=bad))
        assert any(i.kind == "handshake" for i in report.issues)

    def test_report_renders(self):
        program = Program(instructions=[Comp(dept_flag=DeptFlag.WAIT_INP)])
        report = validate_program(program)
        assert not report.ok
        assert "deadlock" in str(report)

"""Tests for repro.analysis.export — CSV/JSON row export."""

import csv
import io
import json
from dataclasses import dataclass

import pytest

from repro.analysis.export import rows_to_csv, rows_to_json
from repro.errors import ReproError


@dataclass(frozen=True)
class Row:
    name: str
    value: float
    count: int


ROWS = [Row("a", 1.5, 2), Row("b", -0.25, 0)]


class TestCsv:
    def test_header_and_rows(self):
        text = rows_to_csv(ROWS)
        reader = list(csv.DictReader(io.StringIO(text)))
        assert len(reader) == 2
        assert reader[0]["name"] == "a"
        assert float(reader[1]["value"]) == -0.25

    def test_column_selection(self):
        text = rows_to_csv(ROWS, columns=["name", "count"])
        assert "value" not in text.splitlines()[0]

    def test_file_output(self, tmp_path):
        path = tmp_path / "rows.csv"
        rows_to_csv(ROWS, path)
        assert path.read_text().startswith("name,")

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            rows_to_csv([])

    def test_non_dataclass_rejected(self):
        with pytest.raises(ReproError):
            rows_to_csv([{"a": 1}])


class TestJson:
    def test_roundtrip(self):
        data = json.loads(rows_to_json(ROWS))
        assert data == [
            {"name": "a", "value": 1.5, "count": 2},
            {"name": "b", "value": -0.25, "count": 0},
        ]

    def test_file_output(self, tmp_path):
        path = tmp_path / "rows.json"
        rows_to_json(ROWS, path)
        assert json.loads(path.read_text())[0]["name"] == "a"


class TestExperimentRows:
    def test_figure6_points_export(self):
        from repro.experiments.figure6 import Figure6Point

        points = [
            Figure6Point(0, 3, 56, 128, 700.0, 650.0, 180.0, 175.0),
            Figure6Point(1, 1, 14, 512, 70.0, 55.0, 180.0, 170.0),
        ]
        text = rows_to_csv(points)
        assert "wino_real_gops" in text
        data = json.loads(rows_to_json(points))
        assert data[1]["kernel"] == 1

    def test_table3_rows_export(self):
        from repro.experiments.table3 import run_table3

        text = rows_to_csv(run_table3())
        assert "vu9p" in text

"""Tests for repro.compiler.data — weight packing and the offline
Winograd transform."""

import numpy as np
import pytest

from repro.arch.params import AcceleratorConfig
from repro.errors import CompileError
from repro.compiler.data import pack_bias, pack_weights
from repro.ir import zoo
from repro.ir.tensor import DataType
from repro.mapping.partition import partition_layer
from repro.winograd.matrices import get_algorithm
from repro.winograd.transforms import transform_weight


@pytest.fixture
def cfg():
    return AcceleratorConfig(
        pi=4, po=4, pt=6, input_buffer_vecs=8192,
        weight_buffer_vecs=4096, output_buffer_vecs=4096,
    )


def layer_setup(cfg, c=8, k=12, h=14, kernel=3, mode="wino"):
    net = zoo.single_conv(c, k, h, kernel, padding=kernel // 2)
    info = net.compute_layers()[0]
    part = partition_layer(cfg, info, mode)
    rng = np.random.default_rng(0)
    kernels = rng.normal(size=(k, c, kernel, kernel))
    return part, kernels


class TestPackWeights:
    def test_winograd_transform_applied(self, cfg):
        part, kernels = layer_setup(cfg)
        packed = pack_weights(cfg, part, kernels, weight_type=None)
        slot = packed.slots[0]
        stored = packed.image[slot.offset : slot.offset + slot.elems]
        stored = stored.reshape(slot.shape)
        alg = get_algorithm(cfg.m, 3)
        expected = transform_weight(
            alg, kernels[: slot.k_count, : slot.c_count]
        )
        np.testing.assert_allclose(stored[0], expected, atol=1e-12)

    def test_spatial_packs_raw(self, cfg):
        part, kernels = layer_setup(cfg, mode="spat")
        packed = pack_weights(cfg, part, kernels, weight_type=None)
        slot = packed.slots[0]
        stored = packed.image[slot.offset : slot.offset + slot.elems]
        np.testing.assert_array_equal(
            stored.reshape(slot.shape)[0],
            kernels[: slot.k_count, : slot.c_count],
        )

    def test_quantisation_applied(self, cfg):
        part, kernels = layer_setup(cfg, mode="spat")
        wt = DataType(8, frac=6)
        packed = pack_weights(cfg, part, kernels, weight_type=wt)
        assert np.array_equal(packed.image, wt.quantize(packed.image))

    def test_slots_tile_image(self, cfg):
        part, kernels = layer_setup(cfg, c=32, k=64)
        packed = pack_weights(cfg, part, kernels, weight_type=None)
        total = sum(slot.elems for slot in packed.slots)
        assert total == packed.image.size == packed.elems
        offsets = [slot.offset for slot in packed.slots]
        assert offsets == sorted(offsets)

    def test_decomposed_kernel_blocks(self, cfg):
        part, kernels = layer_setup(cfg, kernel=5)
        packed = pack_weights(cfg, part, kernels, weight_type=None)
        assert packed.slots[0].shape[0] == 4  # ceil(5/3)^2 blocks

    def test_slot_lookup(self, cfg):
        part, kernels = layer_setup(cfg, c=32, k=64)
        packed = pack_weights(cfg, part, kernels, weight_type=None)
        slot = packed.slot(packed.slots[-1].k0, packed.slots[-1].c0)
        assert slot is packed.slots[-1]
        with pytest.raises(CompileError):
            packed.slot(99999, 0)

    def test_directory_only_mode(self, cfg):
        part, kernels = layer_setup(cfg, c=32, k=64)
        full = pack_weights(cfg, part, kernels, None, data=True)
        light = pack_weights(cfg, part, kernels, None, data=False)
        assert light.image.size == 0
        assert light.elems == full.elems
        assert light.slots == full.slots

    def test_shape_mismatch_rejected(self, cfg):
        part, kernels = layer_setup(cfg)
        with pytest.raises(CompileError):
            pack_weights(cfg, part, kernels[:, :4], weight_type=None)


class TestPackBias:
    def test_none_gives_zeros(self, cfg):
        part, _ = layer_setup(cfg, k=12)
        bias = pack_bias(part, None)
        assert bias.shape == (12,)
        assert bias.sum() == 0

    def test_values_preserved(self, cfg):
        part, _ = layer_setup(cfg, k=12)
        values = np.arange(12.0)
        np.testing.assert_array_equal(pack_bias(part, values), values)

    def test_wrong_size_rejected(self, cfg):
        part, _ = layer_setup(cfg, k=12)
        with pytest.raises(CompileError):
            pack_bias(part, np.zeros(5))

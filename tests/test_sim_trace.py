"""Tests for repro.sim.trace — traces, Gantt rendering, occupancy."""

import numpy as np
import pytest

from repro.compiler import CompilerOptions, compile_network
from repro.errors import SimulationError
from repro.ir import zoo
from repro.mapping import NetworkMapping
from repro.runtime import HostRuntime, generate_parameters
from repro.sim.trace import (
    TraceRecord,
    module_occupancy,
    render_gantt,
    summarize,
    trace_from_json,
    trace_to_json,
)


@pytest.fixture(scope="module")
def traced_sim(cfg_pt4=None):
    from repro.arch.params import AcceleratorConfig
    from repro.fpga import get_device

    cfg = AcceleratorConfig(
        pi=4, po=4, pt=4, frequency_mhz=100.0,
        input_buffer_vecs=4096, weight_buffer_vecs=2048,
        output_buffer_vecs=2048,
    )
    device = get_device("pynq-z1")
    net = zoo.tiny_cnn(input_size=16, channels=8)
    compiled = compile_network(
        net, cfg, NetworkMapping.uniform(net, "wino", "ws"),
        generate_parameters(net), CompilerOptions(quantize=False),
    )
    runtime = HostRuntime(compiled, device, functional=False, trace=True)
    return runtime.infer(np.zeros(net.input_shape.as_tuple())).sim


class TestTraceCollection:
    def test_one_record_per_instruction(self, traced_sim):
        assert len(traced_sim.trace) == traced_sim.instructions

    def test_records_consistent_with_makespan(self, traced_sim):
        assert max(r.finish for r in traced_sim.trace) == traced_sim.cycles
        for record in traced_sim.trace:
            assert record.finish > record.start >= 0

    def test_module_in_order_execution(self, traced_sim):
        # Within one module, instructions never overlap.
        by_module = {}
        for record in traced_sim.trace:
            by_module.setdefault(record.module, []).append(record)
        for records in by_module.values():
            for a, b in zip(records, records[1:]):
                assert b.start >= a.finish

    def test_occupancy_matches_module_stats(self, traced_sim):
        busy = module_occupancy(traced_sim.trace)
        for name, stats in traced_sim.modules.items():
            assert busy[name] == stats.busy_cycles

    def test_trace_off_by_default(self):
        from repro.arch.params import AcceleratorConfig
        from repro.fpga import get_device

        cfg = AcceleratorConfig(
            pi=4, po=4, pt=4, frequency_mhz=100.0,
            input_buffer_vecs=4096, weight_buffer_vecs=2048,
            output_buffer_vecs=2048,
        )
        net = zoo.tiny_cnn(input_size=16, channels=8)
        compiled = compile_network(
            net, cfg, NetworkMapping.uniform(net, "spat", "ws"),
            generate_parameters(net), CompilerOptions(quantize=False),
        )
        runtime = HostRuntime(compiled, get_device("pynq-z1"),
                              functional=False)
        sim = runtime.infer(np.zeros(net.input_shape.as_tuple())).sim
        assert sim.trace == []


class TestSerialisation:
    def test_json_roundtrip(self, traced_sim, tmp_path):
        path = tmp_path / "trace.json"
        trace_to_json(traced_sim.trace, path)
        back = trace_from_json(path.read_text())
        assert back == traced_sim.trace


class TestRendering:
    def test_gantt_has_all_modules(self, traced_sim):
        chart = render_gantt(traced_sim.trace)
        for name in ("LOAD_INP", "LOAD_WGT", "COMP", "SAVE"):
            assert name in chart

    def test_gantt_windowing(self, traced_sim):
        full = render_gantt(traced_sim.trace, width=40)
        window = render_gantt(
            traced_sim.trace, width=40, start=0,
            end=traced_sim.cycles // 2,
        )
        assert full != window

    def test_gantt_empty_rejected(self):
        with pytest.raises(SimulationError):
            render_gantt([])

    def test_summary(self, traced_sim):
        text = summarize(traced_sim.trace)
        assert "instructions" in text
        assert "COMP" in text

    def test_summary_empty(self):
        assert summarize([]) == "empty trace"

    def test_record_cycles(self):
        assert TraceRecord(0, "COMP", "COMP", 5, 17).cycles == 12

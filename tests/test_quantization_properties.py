"""Numerical-quality properties of the fixed-point pipeline.

The paper quantises weights to 8 bits and widens activations to 12 bits
through the Winograd input transform (Table 4 footnote).  These
properties pin down the behaviour that makes that choice sound:
quantisation error shrinks with width, and the Winograd path degrades
gracefully rather than catastrophically.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.tensor import DataType
from repro.winograd import direct_conv2d
from repro.winograd.matrices import get_algorithm
from repro.winograd.transforms import transform_weight


@settings(max_examples=20, deadline=None)
@given(
    width=st.integers(6, 14),
    frac=st.integers(2, 5),
    seed=st.integers(0, 2**31),
)
def test_quantization_error_bounded_by_half_lsb(width, frac, seed):
    rng = np.random.default_rng(seed)
    t = DataType(width=width, frac=frac)
    x = rng.uniform(t.min_value * 0.9, t.max_value * 0.9, size=200)
    err = np.abs(t.quantize(x) - x)
    assert err.max() <= t.scale / 2 + 1e-12


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**31))
def test_wider_types_reduce_conv_error(seed):
    """More weight bits -> conv output closer to float reference."""
    rng = np.random.default_rng(seed)
    feature = rng.normal(scale=0.5, size=(4, 10, 10))
    kernels = rng.normal(scale=0.3, size=(4, 4, 3, 3))
    ref = direct_conv2d(feature, kernels)

    def error(bits):
        wt = DataType(width=bits, frac=bits - 2)
        return np.abs(
            direct_conv2d(feature, wt.quantize(kernels)) - ref
        ).max()

    assert error(12) <= error(6) + 1e-12


@pytest.mark.parametrize("m,limit", [(2, 0.08), (4, 0.35)])
def test_transformed_weight_quantisation_graceful(m, limit):
    """Quantising U = G g G^T to 8 bits with the compiler's
    per-position scaling degrades gracefully.

    F(2x2,3x3) lands in the same band as direct weight quantisation;
    F(4x4,3x3) pays the known transform amplification (the reason the
    paper widens activations and carries a quantisation correction term
    — and why fully INT8 deployments in the literature prefer F(2x2)).
    """
    import numpy as np

    from repro.arch.params import AcceleratorConfig
    from repro.compiler import CompilerOptions, compile_network
    from repro.fpga import get_device
    from repro.ir import zoo
    from repro.mapping import NetworkMapping
    from repro.runtime import (
        HostRuntime,
        generate_parameters,
        reference_inference,
    )

    net = zoo.tiny_cnn(input_size=16, channels=8)
    params = generate_parameters(net, seed=1)
    cfg = AcceleratorConfig(
        pi=4, po=4, pt=m + 2, frequency_mhz=100.0,
        input_buffer_vecs=4096, weight_buffer_vecs=2048,
        output_buffer_vecs=2048,
    )
    compiled = compile_network(
        net, cfg, NetworkMapping.uniform(net, "wino", "ws"),
        params, CompilerOptions(quantize=True),
    )
    rng = np.random.default_rng(2)
    image = rng.normal(size=net.input_shape.as_tuple())
    out = HostRuntime(compiled, get_device("pynq-z1")).infer(image).output
    ref = reference_inference(net, params, image)
    rel = np.abs(out - ref).max() / np.abs(ref).max()
    assert rel < limit


def test_per_position_scaling_beats_uniform():
    """The compiler's per-position power-of-two scaling must strictly
    improve on naive uniform quantisation of the transformed weights."""
    rng = np.random.default_rng(0)
    alg = get_algorithm(4, 3)
    kernels = rng.normal(scale=0.2, size=(8, 8, 3, 3))
    u = transform_weight(alg, kernels)
    wt = DataType(width=8, frac=6)

    uniform_err = np.abs(wt.quantize(u) - u).max()

    from repro.compiler.data import _scale_per_position

    scaled, scales = _scale_per_position(u[None], wt)
    recovered = wt.quantize(scaled) * scales[:, None, None]
    scaled_err = np.abs(recovered[0] - u).max()
    assert scaled_err < uniform_err


def test_f2_transform_growth_smaller_than_f4():
    """F(4x4) transforms amplify values more than F(2x2) — the reason
    larger tiles need wider datapaths (and PT > 6 is rejected)."""
    rng = np.random.default_rng(1)
    d = rng.uniform(-1, 1, size=(1000, 6, 6))

    def growth(m):
        alg = get_algorithm(m, 3)
        t = alg.tile
        tiles = d[:, :t, :t]
        from repro.winograd.transforms import transform_input

        v = transform_input(alg, tiles)
        return np.abs(v).max() / np.abs(tiles).max()

    assert growth(4) > growth(2) > 1.0

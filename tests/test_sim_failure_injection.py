"""Failure-injection tests: corrupted programs must be *detected*, not
silently mis-simulated.

The simulator's handshake FIFOs act like RTL assertions: a compiler (or
bit-flip) bug that unbalances tokens raises ``SimulationError`` instead
of producing wrong numbers quietly.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.arch.params import AcceleratorConfig
from repro.compiler import CompilerOptions, compile_network
from repro.errors import SimulationError
from repro.fpga import get_device
from repro.ir import zoo
from repro.isa.instructions import DeptFlag, Opcode
from repro.mapping import NetworkMapping
from repro.runtime import HostRuntime, generate_parameters


@pytest.fixture
def setup():
    cfg = AcceleratorConfig(
        pi=4, po=4, pt=4, frequency_mhz=100.0,
        input_buffer_vecs=4096, weight_buffer_vecs=2048,
        output_buffer_vecs=2048,
    )
    device = get_device("pynq-z1")
    net = zoo.tiny_cnn(input_size=16, channels=8)
    compiled = compile_network(
        net, cfg, NetworkMapping.uniform(net, "wino", "ws"),
        generate_parameters(net), CompilerOptions(quantize=False),
    )
    return cfg, device, net, compiled


def run(compiled, device, functional=True):
    """Functional mode engages the buffer/accumulator assertions."""
    runtime = HostRuntime(compiled, device, functional=functional)
    return runtime.infer(np.zeros((3, 16, 16)))


def corrupt(program, index, **changes):
    """Replace instruction ``index`` with a mutated copy."""
    inst = program.instructions[index]
    program.instructions[index] = replace(inst, **changes)


def first_of(program, opcode, flag=None):
    for i, inst in enumerate(program):
        if inst.opcode == opcode and (flag is None or inst.dept_flag & flag):
            return i
    raise AssertionError(f"no {opcode} in program")


class TestFailureInjection:
    def test_dropped_emit_deadlocks(self, setup):
        cfg, device, net, compiled = setup
        program = compiled.steps[0].program
        idx = first_of(program, Opcode.LOAD_INP)
        corrupt(program, idx, dept_flag=DeptFlag.WAIT_FREE)  # no EMIT
        with pytest.raises(SimulationError, match="underflow"):
            run(compiled, device, functional=False)

    def test_unthrottled_producer_overflows(self, setup):
        """Three loads emitting without waiting for free halves exceed
        the depth-2 data FIFO — the data-pollution hazard Section 4.1's
        handshakes prevent."""
        cfg, device, net, compiled = setup
        from repro.arch.dram import ExternalMemoryModel
        from repro.isa.instructions import LoadInp
        from repro.isa.program import Program
        from repro.sim.simulator import AcceleratorSimulator

        program = Program()
        descriptors = {}
        for i in range(3):
            program.append(
                LoadInp(dept_flag=DeptFlag.EMIT, buff_id=i % 2)
            )
            descriptors[i] = {"kind": "load_inp", "elems": 16, "half": i % 2}
        program.metadata["descriptors"] = descriptors
        dram = ExternalMemoryModel(1024, 1.0)
        sim = AcceleratorSimulator(cfg, device, dram, functional=False)
        with pytest.raises(SimulationError, match="overflow"):
            sim.run(program)

    def test_missing_clear_detected(self, setup):
        cfg, device, net, compiled = setup
        program = compiled.steps[0].program
        idx = first_of(program, Opcode.COMP)
        corrupt(program, idx, accum_clear=0)
        desc = program.metadata["descriptors"][idx]
        program.metadata["descriptors"][idx] = dict(desc, clear=False)
        with pytest.raises(SimulationError, match="accum"):
            run(compiled, device)

    def test_read_before_write_detected(self, setup):
        cfg, device, net, compiled = setup
        program = compiled.steps[0].program
        idx = first_of(program, Opcode.COMP)
        desc = program.metadata["descriptors"][idx]
        # Point the COMP at the never-written ping-pong half.
        wrong = 1 - desc["inp_half"]
        program.metadata["descriptors"][idx] = dict(desc, inp_half=wrong)
        with pytest.raises(SimulationError, match="before any write"):
            run(compiled, device)

    def test_oversized_payload_detected(self, setup):
        cfg, device, net, compiled = setup
        program = compiled.steps[0].program
        idx = first_of(program, Opcode.LOAD_INP)
        desc = program.metadata["descriptors"][idx]
        huge = dict(desc, rows=10_000)
        program.metadata["descriptors"][idx] = huge
        with pytest.raises(SimulationError):
            run(compiled, device)

"""Tests for repro.isa.program — instruction stream container."""

import pytest

from repro.errors import EncodingError
from repro.isa import Comp, LoadInp, LoadWgt, Program, Save
from repro.isa.instructions import Opcode


def sample_program():
    program = Program()
    program.append(LoadInp(size_chan=4))
    program.append(LoadWgt(size_chan=8))
    program.append(Comp(ic_number=4, oc_number=2))
    program.append(Save(size_chan=2))
    program.mark_layer("conv1", 0, mode="wino", dataflow="is")
    return program


class TestProgram:
    def test_container_protocol(self):
        program = sample_program()
        assert len(program) == 4
        assert isinstance(program[2], Comp)
        assert [i.opcode for i in program] == [
            Opcode.LOAD_INP, Opcode.LOAD_WGT, Opcode.COMP, Opcode.SAVE,
        ]

    def test_markers(self):
        program = sample_program()
        marker = program.markers[0]
        assert (marker.start, marker.end) == (0, 4)
        assert marker.mode == "wino"
        assert len(program.layer_slice("conv1")) == 4
        with pytest.raises(KeyError):
            program.layer_slice("conv9")

    def test_count_by_opcode(self):
        counts = sample_program().count_by_opcode()
        assert counts[Opcode.COMP] == 1
        assert counts[Opcode.LOAD_INP] == 1

    def test_binary_roundtrip(self):
        program = sample_program()
        blob = program.to_bytes()
        assert len(blob) == 16 * len(program)
        back = Program.from_bytes(blob)
        assert back.instructions == program.instructions

    def test_binary_length_check(self):
        with pytest.raises(EncodingError):
            Program.from_bytes(b"\x01" * 17)

    def test_file_roundtrip(self, tmp_path):
        program = sample_program()
        path = tmp_path / "program.bin"
        program.save(path)
        assert Program.load(path).instructions == program.instructions

    def test_extend(self):
        program = Program()
        program.extend([Comp(), Comp()])
        assert len(program) == 2

    def test_second_marker_starts_after_first(self):
        program = sample_program()
        program.append(Comp())
        program.mark_layer("conv2", 4, mode="spat", dataflow="ws")
        assert program.markers[1].start == 4
        assert program.markers[1].end == 5

"""Tests for repro.isa.asm — the textual assembler/disassembler."""

import pytest

from repro.errors import EncodingError
from repro.isa import Comp, DeptFlag, LoadInp, Program, Save, assemble, disassemble
from repro.isa.asm import assemble_line, disassemble_instruction


class TestDisassemble:
    def test_single_instruction(self):
        text = disassemble_instruction(
            Comp(dept_flag=DeptFlag.WAIT_INP | DeptFlag.EMIT, ic_number=16)
        )
        assert text.startswith("COMP")
        assert "dept=WAIT_INP|EMIT" in text
        assert "ic_number=16" in text

    def test_defaults_omitted(self):
        text = disassemble_instruction(LoadInp())
        assert "size_chan" not in text  # default value 1 is omitted
        assert "dept=NONE" in text

    def test_program_listing_has_layer_comments(self):
        program = Program()
        program.append(LoadInp())
        program.mark_layer("convX", 0, mode="wino", dataflow="ws")
        listing = disassemble(program)
        assert "# layer convX mode=wino dataflow=ws" in listing


class TestAssemble:
    def test_roundtrip(self):
        program = Program(
            instructions=[
                LoadInp(
                    dept_flag=DeptFlag.WAIT_FREE | DeptFlag.EMIT,
                    buff_id=1, size_chan=8, size_rows=6, size_cols=56,
                    wino_flag=1,
                ),
                Comp(
                    dept_flag=DeptFlag.WAIT_INP | DeptFlag.WAIT_WGT,
                    ic_number=2, oc_number=2, iw_number=56,
                ),
                Save(pool_size=2, dst_wino_flag=1),
            ]
        )
        back = assemble(disassemble(program))
        assert back.instructions == program.instructions

    def test_comments_and_blanks_ignored(self):
        program = assemble(
            "# a comment\n\n; another\nCOMP buff=0 dept=NONE ic_number=4\n"
        )
        assert len(program) == 1
        assert program[0].ic_number == 4

    def test_unknown_opcode(self):
        with pytest.raises(EncodingError):
            assemble_line("HALT")

    def test_malformed_operand(self):
        with pytest.raises(EncodingError):
            assemble_line("COMP ic_number")

    def test_unknown_operand(self):
        with pytest.raises(EncodingError):
            assemble_line("COMP warp_factor=9")

    def test_unknown_dept_flag(self):
        with pytest.raises(EncodingError):
            assemble_line("COMP dept=BOGUS")

    def test_dept_parse_combinations(self):
        inst = assemble_line("COMP dept=WAIT_INP|FREE_WGT")
        assert inst.dept_flag == DeptFlag.WAIT_INP | DeptFlag.FREE_WGT

"""Tests for repro.ir.tensor — shapes and fixed-point types."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.ir.tensor import ACCUM_T, FEATURE_T, WEIGHT_T, DataType, TensorShape


class TestTensorShape:
    def test_basic_properties(self):
        shape = TensorShape(64, 56, 48)
        assert shape.channels == 64
        assert shape.size == 64 * 56 * 48
        assert shape.as_tuple() == (64, 56, 48)
        assert not shape.is_flat

    def test_flat_shape(self):
        assert TensorShape(4096, 1, 1).is_flat

    def test_str(self):
        assert str(TensorShape(3, 224, 224)) == "3x224x224"

    @pytest.mark.parametrize("bad", [(0, 1, 1), (1, -1, 1), (1, 1, 0)])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ShapeError):
            TensorShape(*bad)

    def test_rejects_non_int(self):
        with pytest.raises(ShapeError):
            TensorShape(3.5, 2, 2)

    def test_equality_and_hash(self):
        assert TensorShape(1, 2, 3) == TensorShape(1, 2, 3)
        assert hash(TensorShape(1, 2, 3)) == hash(TensorShape(1, 2, 3))
        assert TensorShape(1, 2, 3) != TensorShape(3, 2, 1)


class TestDataType:
    def test_scale(self):
        assert DataType(8, frac=4).scale == 2.0 ** -4

    def test_signed_range(self):
        t = DataType(8, frac=0)
        assert t.min_value == -128
        assert t.max_value == 127

    def test_unsigned_range(self):
        t = DataType(8, frac=0, signed=False)
        assert t.min_value == 0
        assert t.max_value == 255

    def test_quantize_rounds_to_grid(self):
        t = DataType(8, frac=4)
        got = t.quantize([0.1, -0.1, 1.03125])
        assert np.allclose(got * 16, np.round(got * 16))

    def test_quantize_saturates(self):
        t = DataType(8, frac=0)
        got = t.quantize([1e6, -1e6])
        assert got[0] == 127
        assert got[1] == -128

    def test_quantize_idempotent(self):
        t = DataType(12, frac=6)
        rng = np.random.default_rng(0)
        x = rng.normal(size=100)
        once = t.quantize(x)
        assert np.array_equal(once, t.quantize(once))

    def test_exactly_representable_values_unchanged(self):
        t = DataType(12, frac=6)
        values = np.array([0.0, 1.0, -1.0, 0.5, 0.015625])
        assert np.array_equal(t.quantize(values), values)

    @pytest.mark.parametrize("width", [0, -1, 65])
    def test_rejects_bad_width(self, width):
        with pytest.raises(ShapeError):
            DataType(width)

    def test_rejects_bad_frac(self):
        with pytest.raises(ShapeError):
            DataType(8, frac=8)
        with pytest.raises(ShapeError):
            DataType(8, frac=-1)

    def test_paper_types(self):
        # Table 4 footnote: 8-bit weights, 12-bit features.
        assert FEATURE_T.width == 12
        assert WEIGHT_T.width == 8
        assert ACCUM_T.width == 32

    def test_str(self):
        assert str(DataType(12, frac=6)) == "s12.6"
        assert str(DataType(8, frac=0, signed=False)) == "u8.0"

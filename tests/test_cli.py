"""Tests for repro.cli — the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_dse_defaults(self):
        args = build_parser().parse_args(["dse"])
        assert args.device == "pynq-z1"
        assert args.model == "vgg16"
        assert args.objective == "throughput"


class TestCommands:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "vu9p" in out and "pynq-z1" in out

    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "vgg16" in out and "darknet19" in out

    def test_dse_tiny(self, capsys):
        assert main(
            ["dse", "--model", "tiny_cnn", "--device", "pynq-z1", "-v"]
        ) == 0
        out = capsys.readouterr().out
        assert "PI=" in out
        assert "conv1" in out  # verbose per-layer mapping

    def test_unknown_model_is_error(self, capsys):
        assert main(["dse", "--model", "resnet-9000"]) == 1
        assert "error" in capsys.readouterr().err

    def test_unknown_device_is_error(self, capsys):
        assert main(["dse", "--device", "virtex-2"]) == 1

    def test_compile_writes_files(self, tmp_path, capsys):
        rc = main([
            "compile", "--model", "tiny_cnn", "--device", "pynq-z1",
            "--exact", "-o", str(tmp_path),
        ])
        assert rc == 0
        assert (tmp_path / "program.bin").exists()
        assert (tmp_path / "program.asm").exists()
        asm = (tmp_path / "program.asm").read_text()
        assert "COMP" in asm

    def test_compile_output_loads_back(self, tmp_path):
        from repro.isa import Program

        main([
            "compile", "--model", "tiny_cnn", "--device", "pynq-z1",
            "-o", str(tmp_path),
        ])
        program = Program.load(tmp_path / "program.bin")
        assert len(program) > 0

    def test_simulate(self, capsys):
        rc = main(["simulate", "--model", "tiny_cnn",
                   "--device", "pynq-z1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "GOPS" in out
        assert "COMP" in out

    def test_emit_hls(self, tmp_path, capsys):
        rc = main([
            "emit-hls", "--model", "tiny_cnn", "--device", "pynq-z1",
            "-o", str(tmp_path),
        ])
        assert rc == 0
        assert (tmp_path / "hybriddnn_top.cpp").exists()
        assert (tmp_path / "hybriddnn_config.h").exists()

    def test_experiments_unknown(self, capsys):
        assert main(["experiments", "tableX"]) == 2

    def test_experiments_table3(self, capsys):
        assert main(["experiments", "table3"]) == 0
        assert "Table 3" in capsys.readouterr().out

    def test_serve_round_trip(self, capsys):
        rc = main([
            "serve", "--model", "tiny_cnn", "--device", "pynq-z1",
            "--shards", "2", "--policy", "least-loaded",
            "--requests", "16", "--max-batch", "4",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "served 16 requests over 2 shard(s)" in out
        assert "GOPS aggregate" in out
        # Uniform traffic must reproduce the analytical BatchRunner
        # number (the ratio is printed to 3 decimals).
        assert "serve/reference = 1.000" in out

    def test_serve_poisson_auto_qps(self, capsys):
        rc = main([
            "serve", "--model", "tiny_cnn", "--device", "pynq-z1",
            "--shards", "2", "--traffic", "poisson", "--requests", "8",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "qps not given" in out
        assert "served 8 requests" in out

    def test_serve_bad_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--policy", "fifo"])

    def test_serve_seed_reproduces_poisson_runs(self, capsys):
        def virtual(out):
            # The "kernel: ... host time ... events/s" line measures
            # the host, not the modeled system — everything else must
            # be seed-deterministic.
            return "\n".join(
                line for line in out.splitlines()
                if "host time" not in line
            )

        args = [
            "serve", "--model", "tiny_cnn", "--device", "pynq-z1",
            "--shards", "2", "--traffic", "poisson", "--requests", "12",
            "--qps", "5000",
        ]
        assert main(args + ["--seed", "5"]) == 0
        first = virtual(capsys.readouterr().out)
        assert main(args + ["--seed", "5"]) == 0
        second = virtual(capsys.readouterr().out)
        assert first == second
        assert main(args + ["--seed", "6"]) == 0
        assert virtual(capsys.readouterr().out) != first

    def test_serve_closed_loop(self, capsys):
        rc = main([
            "serve", "--model", "tiny_cnn", "--device", "pynq-z1",
            "--shards", "2", "--closed-loop", "3",
            "--think-time", "0.1", "--requests", "12", "--seed", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "closed-loop: 3 clients" in out
        assert "served 12 requests" in out
        # The open-loop BatchRunner cross-check does not apply.
        assert "serve/reference" not in out

    def test_serve_kill_restore_scenario(self, capsys):
        rc = main([
            "serve", "--model", "tiny_cnn", "--device", "pynq-z1",
            "--shards", "2", "--policy", "least-loaded",
            "--requests", "16",
            "--scenario", "kill:shard0@0.0001,restore@0.01",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "scenario: kill shard0" in out
        assert "served 16 requests" in out

    def test_serve_bad_scenario_is_error(self, capsys):
        rc = main([
            "serve", "--model", "tiny_cnn", "--device", "pynq-z1",
            "--requests", "4", "--scenario", "kill:shard7@0.1",
        ])
        assert rc == 1
        assert "unknown shard" in capsys.readouterr().err

    def test_serve_slo_shed(self, capsys):
        rc = main([
            "serve", "--model", "tiny_cnn", "--device", "pynq-z1",
            "--shards", "2", "--traffic", "fixed-qps", "--qps", "20000",
            "--requests", "48", "--slo-p99", "0.05",
            "--slo-action", "shed",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "slo: p99 target 0.05 ms" in out

    def test_serve_autoscale_round_trip(self, tmp_path, capsys):
        report_path = tmp_path / "out" / "report.json"
        rc = main([
            "serve", "--model", "tiny_cnn", "--device", "pynq-z1",
            "--autoscale", "1:3", "--target-p99", "0.08",
            "--warmup", "0.02", "--traffic", "burst", "--burst", "12",
            "--requests", "48", "--max-batch", "4",
            "--report-json", str(report_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        # The pool is replicated to max, not --shards.
        assert "served 48 requests over 3 shard(s)" in out
        assert "autoscaler: 1..3 shards, target p99 0.08 ms" in out
        # The BatchRunner cross-check does not apply to elastic pools.
        assert "serve/reference" not in out
        import json

        payload = json.loads(report_path.read_text())
        assert payload["count"] == 48
        assert payload["scale_ups"] >= 1

    def test_serve_autoscale_bad_specs_are_errors(self, capsys):
        base = ["serve", "--model", "tiny_cnn", "--device", "pynq-z1",
                "--requests", "4"]
        for extra in (
            ["--autoscale", "two:4", "--target-p99", "1"],
            ["--autoscale", "1:4"],  # no target
            ["--autoscale", "1:4", "--target-p99", "1",
             "--target-util", "0.5"],  # both targets
            ["--target-util", "0.5"],  # target without bounds
            ["--autoscale", "1:4", "--target-p99", "1",
             "--scenario", "kill:shard0@0.1"],  # fights the scenario
            ["--autoscale", "4:1", "--target-p99", "1"],  # min > max
        ):
            assert main(base + extra) == 1
            assert "error:" in capsys.readouterr().err

    def test_serve_trace_replay(self, tmp_path, capsys):
        trace = tmp_path / "trace.csv"
        trace.write_text(
            "timestamp\n" + "\n".join(
                f"{k // 4 * 0.01:.4f}" for k in range(16)
            ) + "\n"
        )
        rc = main([
            "serve", "--model", "tiny_cnn", "--device", "pynq-z1",
            "--shards", "2", "--trace", str(trace),
            "--trace-scale", "0.5", "--trace-loop", "2",
            "--max-batch", "4",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace trace.csv: 32 arrivals" in out
        assert "served 32 requests" in out
        assert "serve/reference" not in out

    def test_serve_trace_with_closed_loop_is_error(
        self, tmp_path, capsys
    ):
        trace = tmp_path / "trace.csv"
        trace.write_text("0.0\n0.1\n")
        rc = main([
            "serve", "--model", "tiny_cnn", "--device", "pynq-z1",
            "--trace", str(trace), "--closed-loop", "2",
        ])
        assert rc == 1
        assert "pick one" in capsys.readouterr().err

    def test_serve_chaos_scenario_and_shape(self, capsys):
        rc = main([
            "serve", "--model", "tiny_cnn", "--device", "pynq-z1",
            "--shards", "2", "--traffic", "poisson", "--qps", "2000",
            "--requests", "16",
            "--scenario", "degrade:shard0@0.001..0.01x4",
            "--shape", "flash:2@0.005~0.002",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "scenario: degrade shard0 x4" in out
        assert "flash" in out
        assert "served 16 requests" in out

    def test_serve_shape_with_closed_loop_is_error(self, capsys):
        rc = main([
            "serve", "--model", "tiny_cnn", "--device", "pynq-z1",
            "--closed-loop", "2", "--requests", "8",
            "--shape", "diurnal:0.5x0.01",
        ])
        assert rc == 1
        assert "closed-loop" in capsys.readouterr().err

    def test_sweep_round_trip(self, tmp_path, capsys):
        report = tmp_path / "sweep.json"
        rc = main([
            "sweep", "--model", "tiny_cnn", "--device", "pynq-z1",
            "--scenarios", "none;kill:shard0@0.002,restore@0.01",
            "--policies", "round-robin", "--pools", "2",
            "--requests", "8", "--seed", "3",
            "--report-json", str(report),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sweep: 2 cells" in out
        assert "SLO attainment" in out
        import json

        payload = json.loads(report.read_text())
        assert payload["cell_count"] == 2
        assert len(payload["cells"]) == 2
        for cell in payload["cells"]:
            assert (
                cell["served"] + cell["shed"] + cell["unserved"]
                == cell["issued"]
            )

    def test_sweep_bad_grid_is_error(self, capsys):
        rc = main([
            "sweep", "--model", "tiny_cnn", "--device", "pynq-z1",
            "--scenarios", "kill:shard5@0.01", "--pools", "2",
        ])
        assert rc == 1
        assert "smallest pool" in capsys.readouterr().err
        rc = main([
            "sweep", "--model", "tiny_cnn", "--device", "pynq-z1",
            "--pools", "two",
        ])
        assert rc == 1
        assert "shard counts" in capsys.readouterr().err

    def test_experiments_seed_flag_parses(self):
        args = build_parser().parse_args(
            ["experiments", "serving", "--seed", "7"]
        )
        assert args.seed == 7
        assert args.name == "serving"

    def test_cache_info_and_compact(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "memo")
        for model in ("tiny_cnn", "tiny_mlp"):
            assert main(["dse", "--model", model, "--device", "pynq-z1",
                         "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "info", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "2 segment(s)" in out
        assert "estimate" in out and "partition" in out
        assert main(["cache", "compact", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "merged 2 segments into 1" in out
        # Idempotent: a second compact is a no-op.
        assert main(["cache", "compact", cache_dir]) == 0
        assert "nothing to compact" in capsys.readouterr().out
        # The compacted store still warm-loads everything.
        assert main(["cache", "info", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "1 segment(s)" in out
        assert "100.0% of stored entries useful" in out

    def test_cache_info_empty_dir(self, tmp_path, capsys):
        assert main(["cache", "info", str(tmp_path / "nowhere")]) == 0
        assert "empty" in capsys.readouterr().out

    def test_model_from_json(self, tmp_path, capsys):
        from repro.ir import save_network, zoo

        path = tmp_path / "model.json"
        save_network(zoo.tiny_cnn(), path)
        assert main(["dse", "--model", str(path),
                     "--device", "pynq-z1"]) == 0

"""Tests for repro.ir.graph and repro.ir.builder."""

import pytest

from repro.errors import GraphError
from repro.ir import Network, NetworkBuilder, TensorShape
from repro.ir.graph import validate_network
from repro.ir.layers import Conv2D, ReLU


def build_example():
    return (
        NetworkBuilder("ex", input_shape=(3, 32, 32))
        .conv2d(16, kernel_size=3, padding=1, relu=True, name="c1")
        .maxpool2d(2, name="p1")
        .conv2d(32, kernel_size=3, padding=1, name="c2")
        .relu(name="r2")
        .flatten(name="fl")
        .dense(10, name="fc")
        .build()
    )


class TestNetwork:
    def test_len_and_iteration(self):
        net = build_example()
        assert len(net) == 6
        names = [info.layer.name for info in net]
        assert names == ["c1", "p1", "c2", "r2", "fl", "fc"]

    def test_shape_chaining(self):
        net = build_example()
        assert net[0].output_shape == TensorShape(16, 32, 32)
        assert net[1].output_shape == TensorShape(16, 16, 16)
        assert net[2].output_shape == TensorShape(32, 16, 16)
        assert net.output_shape == TensorShape(10, 1, 1)

    def test_find(self):
        net = build_example()
        assert net.find("c2").index == 2
        with pytest.raises(GraphError):
            net.find("nope")

    def test_compute_layers(self):
        net = build_example()
        assert [i.layer.name for i in net.compute_layers()] == ["c1", "c2", "fc"]
        assert [i.layer.name for i in net.conv_layers()] == ["c1", "c2"]
        assert [i.layer.name for i in net.dense_layers()] == ["fc"]

    def test_totals_consistent(self):
        net = build_example()
        assert net.total_macs == sum(i.macs for i in net)
        assert net.total_ops == 2 * net.total_macs
        assert net.total_weights == sum(i.weights for i in net)

    def test_duplicate_names_rejected(self):
        layers = [
            Conv2D("same", out_channels=4, padding=1),
            Conv2D("same", out_channels=4, padding=1),
        ]
        with pytest.raises(GraphError):
            Network("dup", TensorShape(3, 8, 8), layers)

    def test_shape_mismatch_rejected(self):
        layers = [Conv2D("big", out_channels=4, kernel_size=(9, 9))]
        with pytest.raises(GraphError):
            Network("bad", TensorShape(3, 4, 4), layers)

    def test_fused_relu_after(self):
        net = build_example()
        assert net.fused_relu_after(2)  # c2 followed by r2
        assert not net.fused_relu_after(0)  # c1 followed by pool

    def test_validate_network_roundtrip(self):
        assert validate_network(build_example()) is None

    def test_summary_mentions_layers(self):
        text = build_example().summary()
        for name in ("c1", "p1", "fc"):
            assert name in text

    def test_empty_network_output_shape(self):
        net = Network("empty", TensorShape(3, 4, 4), [])
        assert net.output_shape == TensorShape(3, 4, 4)


class TestBuilder:
    def test_auto_names_unique(self):
        net = (
            NetworkBuilder("n", input_shape=(3, 16, 16))
            .conv2d(4, padding=1)
            .conv2d(4, padding=1)
            .build()
        )
        names = [info.layer.name for info in net]
        assert len(set(names)) == 2

    def test_kernel_int_expands(self):
        net = NetworkBuilder("n", (3, 16, 16)).conv2d(
            4, kernel_size=5, padding=2
        ).build()
        assert net[0].layer.kernel_size == (5, 5)

    def test_accepts_tensorshape(self):
        net = NetworkBuilder("n", TensorShape(3, 8, 8)).relu().build()
        assert net.input_shape == TensorShape(3, 8, 8)

    def test_relu_layer_type(self):
        net = NetworkBuilder("n", (3, 8, 8)).relu().build()
        assert isinstance(net[0].layer, ReLU)

"""Tests for repro.mapping.partition — the Section-4.2.4 partitioning."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.params import AcceleratorConfig
from repro.errors import ResourceError, UnsupportedLayerError
from repro.ir import zoo
from repro.mapping.partition import (
    c_groups,
    fused_pool_for,
    k_groups,
    partition_layer,
    row_groups,
)


def single_conv_info(c, k, h, kernel, stride=1, padding=0):
    net = zoo.single_conv(c, k, h, kernel, stride=stride, padding=padding)
    return net.compute_layers()[0]


@pytest.fixture
def cfg():
    return AcceleratorConfig(
        pi=4, po=4, pt=6, instances=1,
        input_buffer_vecs=8192, weight_buffer_vecs=4096,
        output_buffer_vecs=4096,
    )


class TestRowGroups:
    def test_spatial_one_row_per_group(self, cfg):
        info = single_conv_info(16, 16, 28, 3, padding=1)
        part = partition_layer(cfg, info, "spat")
        # Section 4.2.4: H groups in Spatial mode.
        assert part.rows_per_group == 1
        assert part.n_row_groups == 28
        assert part.strip_rows == 3

    def test_winograd_m_rows_per_group(self, cfg):
        info = single_conv_info(16, 16, 28, 3, padding=1)
        part = partition_layer(cfg, info, "wino")
        # Section 4.2.4: H/m groups in Winograd mode.
        assert part.rows_per_group == cfg.m
        assert part.n_row_groups == 7
        assert part.strip_rows == cfg.pt

    def test_partial_last_group(self, cfg):
        info = single_conv_info(8, 8, 14, 3, padding=1)
        part = partition_layer(cfg, info, "wino")
        groups = row_groups(part)
        assert sum(rows for _, rows in groups) == 14
        assert groups[-1][1] == 2  # 14 = 3*4 + 2

    def test_decomposed_kernel_extends_strip(self, cfg):
        info = single_conv_info(8, 8, 20, 5, padding=2)
        part = partition_layer(cfg, info, "wino")
        assert len(part.blocks) == 4
        assert part.strip_rows == cfg.pt + 3  # max block row offset

    def test_strided_spatial_strip(self, cfg):
        info = single_conv_info(8, 8, 23, 3, stride=2)
        part = partition_layer(cfg, info, "spat")
        assert part.strip_rows == 3
        assert part.out_h == 11

    def test_wino_stride_rejected(self, cfg):
        info = single_conv_info(8, 8, 23, 3, stride=2)
        with pytest.raises(UnsupportedLayerError):
            partition_layer(cfg, info, "wino")


class TestWeightGroups:
    def test_gk_grows_with_channels(self, cfg):
        small = partition_layer(cfg, single_conv_info(64, 64, 14, 3), "wino")
        big = partition_layer(cfg, single_conv_info(512, 512, 14, 3), "wino")
        assert big.n_k_groups > small.n_k_groups

    def test_k_groups_cover_exactly(self, cfg):
        info = single_conv_info(64, 100, 14, 3, padding=1)
        part = partition_layer(cfg, info, "wino")
        groups = k_groups(part)
        assert sum(count for _, count in groups) == 100
        assert groups[0][0] == 0

    def test_weight_elems_reflect_winograd_expansion(self, cfg):
        # K = 48 is a multiple of both modes' output-channel granules
        # (PO*PT = 24 and PO = 4), so no padding skews the ratio.
        info = single_conv_info(32, 48, 14, 3, padding=1)
        spat = partition_layer(cfg, info, "spat")
        wino = partition_layer(cfg, info, "wino")
        # Eq. 9: Winograd loads PT^2 coefficients per 3x3 kernel.
        assert wino.weight_elems_total == pytest.approx(
            spat.weight_elems_total * cfg.pt**2 / 9
        )

    def test_fc_layer_channel_split(self, cfg):
        net = zoo.tiny_mlp(in_features=40000, hidden=8)
        info = net.compute_layers()[0]
        part = partition_layer(cfg, info, "spat")
        assert part.n_c_groups > 1
        assert sum(c for _, c in c_groups(part)) == 40000

    def test_total_groups(self, cfg):
        info = single_conv_info(64, 64, 14, 3, padding=1)
        part = partition_layer(cfg, info, "wino")
        assert part.total_groups == (
            part.n_row_groups * part.n_k_groups * part.n_c_groups
        )


class TestBufferConstraints:
    def test_strip_channel_chunking(self):
        tiny = AcceleratorConfig(
            pi=4, po=4, pt=4, input_buffer_vecs=512,
            weight_buffer_vecs=2048, output_buffer_vecs=2048,
        )
        info = single_conv_info(64, 16, 28, 3, padding=1)
        part = partition_layer(tiny, info, "wino")
        assert part.n_c_groups > 1
        # Each chunk's strip fits the half.
        assert part.strip_elems <= tiny.input_buffer_vecs * tiny.pi

    def test_impossible_width_raises(self):
        tiny = AcceleratorConfig(
            pi=4, po=4, pt=4, input_buffer_vecs=16,
            weight_buffer_vecs=2048, output_buffer_vecs=2048,
        )
        info = single_conv_info(8, 8, 64, 3, padding=1)
        with pytest.raises(ResourceError):
            partition_layer(tiny, info, "wino")

    def test_output_buffer_limits_k_group(self):
        tiny = AcceleratorConfig(
            pi=4, po=4, pt=4, input_buffer_vecs=8192,
            weight_buffer_vecs=8192, output_buffer_vecs=64,
        )
        info = single_conv_info(16, 64, 16, 3, padding=1)
        part = partition_layer(tiny, info, "wino")
        assert part.out_group_elems <= 64 * tiny.po

    def test_pool_fusion_rows(self, cfg):
        net = zoo.vgg16()
        # conv1_2 is followed by pool1 (2x2, stride 2).
        info = net.find("conv1_2")
        assert fused_pool_for(net, info.index) == 2
        part = partition_layer(cfg, info, "wino", fused_pool=2)
        assert part.rows_per_group % 2 == 0

    def test_pool_fusion_spatial_widens_group(self, cfg):
        net = zoo.vgg16()
        info = net.find("conv1_2")
        part = partition_layer(cfg, info, "spat", fused_pool=2)
        assert part.rows_per_group == 2
        assert part.strip_rows == 4  # (2-1)*1 + 3

    def test_overlapping_pool_not_fused(self):
        net = zoo.alexnet()
        conv1 = net.find("conv1")
        # pool1 is 3x3 stride 2 (overlapping) -> host op, no fusion.
        assert fused_pool_for(net, conv1.index) == 1


@settings(max_examples=40, deadline=None)
@given(
    c=st.integers(1, 96),
    k=st.integers(1, 96),
    h=st.integers(6, 40),
    kernel=st.sampled_from([1, 3, 5]),
    mode=st.sampled_from(["spat", "wino"]),
    pt=st.sampled_from([4, 6]),
)
def test_partition_invariants_property(c, k, h, kernel, mode, pt):
    """Invariants: groups tile the layer exactly and fit the buffers."""
    cfg = AcceleratorConfig(
        pi=4, po=4, pt=pt, input_buffer_vecs=8192,
        weight_buffer_vecs=4096, output_buffer_vecs=4096,
    )
    info = single_conv_info(c, k, h, kernel, padding=kernel // 2)
    part = partition_layer(cfg, info, mode)
    assert sum(r for _, r in row_groups(part)) == part.out_h
    assert sum(n for _, n in k_groups(part)) == k
    assert sum(n for _, n in c_groups(part)) == c
    assert part.strip_elems <= cfg.input_buffer_vecs * cfg.pi
    assert part.weight_elems_group <= cfg.weight_buffer_vecs * cfg.pi * cfg.po
    assert part.out_group_elems <= cfg.output_buffer_vecs * cfg.po
    if mode == "wino":
        assert part.rows_per_group == cfg.m
    else:
        assert part.rows_per_group == 1

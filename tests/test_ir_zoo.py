"""Tests for repro.ir.zoo — reference model geometry."""

import pytest

from repro.ir import TensorShape, zoo


class TestVgg16:
    def test_layer_counts(self):
        net = zoo.vgg16()
        assert len(net.conv_layers()) == 13
        assert len(net.dense_layers()) == 3
        # 5 pooling stages
        assert len([i for i in net if type(i.layer).__name__ == "MaxPool2D"]) == 5

    def test_known_macs(self):
        # VGG16 is ~15.47 GMACs (~30.9 GOPs) at 224x224 — the standard
        # figure the paper's Table-4 GOPS numbers are based on.
        net = zoo.vgg16()
        assert net.total_macs == pytest.approx(15.47e9, rel=0.01)

    def test_output_is_1000_classes(self):
        assert zoo.vgg16().output_shape == TensorShape(1000, 1, 1)

    def test_conv_only_variant(self):
        net = zoo.vgg16(include_fc=False)
        assert len(net.dense_layers()) == 0
        assert net.output_shape == TensorShape(512, 7, 7)

    def test_all_convs_are_3x3_stride1(self):
        for info in zoo.vgg16().conv_layers():
            assert info.layer.kernel_size == (3, 3)
            assert info.layer.stride == 1
            assert info.layer.padding == 1


class TestAlexNet:
    def test_large_kernels_present(self):
        net = zoo.alexnet()
        kernels = {i.layer.kernel_size for i in net.conv_layers()}
        assert (11, 11) in kernels
        assert (5, 5) in kernels

    def test_first_conv_strided(self):
        net = zoo.alexnet()
        assert net.conv_layers()[0].layer.stride == 4

    def test_output_classes(self):
        assert zoo.alexnet().output_shape == TensorShape(1000, 1, 1)


class TestDarknet19:
    def test_structure(self):
        net = zoo.darknet19()
        convs = net.conv_layers()
        assert len(convs) == 19
        kernels = [i.layer.kernel_size for i in convs]
        assert (1, 1) in kernels and (3, 3) in kernels
        # Known op count: ~5.58 GOPs (2.79 GMACs) at 224x224.
        assert net.total_macs == pytest.approx(2.79e9, rel=0.02)

    def test_all_stride_1(self):
        for info in zoo.darknet19().conv_layers():
            assert info.layer.stride == 1

    def test_classifier_head(self):
        net = zoo.darknet19(classes=100)
        assert net.output_shape == TensorShape(100, 1, 1)


class TestSmallModels:
    def test_tiny_cnn_shapes(self):
        net = zoo.tiny_cnn(input_size=16, channels=8)
        assert net.input_shape == TensorShape(3, 16, 16)
        assert net.output_shape == TensorShape(16, 8, 8)

    def test_tiny_mlp(self):
        net = zoo.tiny_mlp(in_features=64, hidden=32, classes=10)
        assert net.output_shape == TensorShape(10, 1, 1)

    def test_single_conv(self):
        net = zoo.single_conv(8, 16, 14, 3, padding=1)
        assert len(net) == 1
        assert net.output_shape == TensorShape(16, 14, 14)


class TestRegistry:
    def test_get_model(self):
        assert zoo.get_model("tiny_mlp").name == "tiny_mlp"

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            zoo.get_model("resnet-9000")

    def test_all_registered_models_build(self):
        for name in zoo.MODELS:
            net = zoo.get_model(name)
            assert len(net) > 0

"""Tests for repro.serving.sweep — seeded chaos grids, two executors.

The load-bearing test is serial-vs-process byte identity: the process
executor must be the same computation scheduled differently, or a CI
sweep artifact would depend on the runner's core count.
"""

import json

import pytest

from repro.arch.params import AcceleratorConfig
from repro.compiler import CompilerOptions
from repro.errors import ServingError
from repro.fpga import get_device
from repro.ir import zoo
from repro.pipeline import PipelineSession
from repro.serving import (
    SweepGrid,
    SweepOptions,
    run_sweep,
)


def make_session(instances=1, frequency=100.0):
    device = get_device("vu9p")
    cfg = AcceleratorConfig(
        pi=4, po=4, pt=4, instances=instances, frequency_mhz=frequency,
        input_buffer_vecs=4096, weight_buffer_vecs=2048,
        output_buffer_vecs=2048,
    )
    return PipelineSession(
        zoo.tiny_cnn(input_size=16, channels=8),
        device,
        cfg=cfg,
        compiler_options=CompilerOptions(quantize=False, pack_data=False),
    )


GRID = dict(
    scenarios=(
        "none",
        "degrade:shard0@0.001..0.01x4",
        "kill:shard0@0.002,restore@0.01",
    ),
    policies=("round-robin", "shortest-latency"),
    pool_sizes=(2, 3),
)


# -- grid validation -------------------------------------------------------


class TestSweepGrid:
    def test_cells_are_scenario_major_and_seeded_by_index(self):
        grid = SweepGrid(**GRID)
        cells = grid.cells(100)
        assert len(cells) == len(grid) == 12
        assert [cell.index for cell in cells] == list(range(12))
        assert [cell.seed for cell in cells] == list(range(100, 112))
        assert cells[0].scenario == "none"
        assert cells[0].policy == "round-robin"
        assert cells[0].pool_size == 2
        assert cells[1].pool_size == 3
        assert cells[2].policy == "shortest-latency"
        assert cells[4].scenario == "degrade:shard0@0.001..0.01x4"

    def test_rejects_empty_axes(self):
        with pytest.raises(ServingError):
            SweepGrid([], ["round-robin"], [2])

    def test_rejects_unknown_policy(self):
        with pytest.raises(ServingError, match="policy"):
            SweepGrid(["none"], ["fifo"], [2])

    def test_rejects_bad_scenario_spec(self):
        with pytest.raises(ServingError):
            SweepGrid(["frobnicate:shard0@1"], ["round-robin"], [2])

    def test_rejects_shard_missing_from_smallest_pool(self):
        with pytest.raises(ServingError, match="smallest pool"):
            SweepGrid(
                ["kill:shard2@0.01"], ["round-robin"], [2, 4]
            )

    def test_rejects_bad_pool_size(self):
        with pytest.raises(ServingError):
            SweepGrid(["none"], ["round-robin"], [0])


class TestSweepOptions:
    def test_validates_eagerly(self):
        with pytest.raises(ServingError):
            SweepOptions(executor="threads")
        with pytest.raises(ServingError):
            SweepOptions(jobs=0)
        with pytest.raises(ServingError):
            SweepOptions(requests=0)
        with pytest.raises(ServingError):
            SweepOptions(load_factor=0.0)
        with pytest.raises(ServingError):
            SweepOptions(slo_action="panic")
        with pytest.raises(ServingError):
            SweepOptions(shapes=("square:1x2",))

    def test_validates_trace_eagerly(self, tmp_path):
        # A missing/unreadable trace fails at construction, not in
        # cell 0 of a sweep.
        with pytest.raises(ServingError, match="cannot read trace"):
            SweepOptions(trace=str(tmp_path / "missing.csv"))
        # Trace knobs without a trace are a spec error.
        with pytest.raises(ServingError, match="only apply"):
            SweepOptions(trace_scale=0.5)
        with pytest.raises(ServingError, match="only apply"):
            SweepOptions(trace_loop=2)
        # A bad shape fails even when it would warp a valid trace.
        trace = tmp_path / "trace.csv"
        trace.write_text("timestamp\n0.0\n0.001\n0.002\n")
        with pytest.raises(ServingError):
            SweepOptions(trace=str(trace), shapes=("square:1x2",))

    def test_trace_composes_with_shapes_at_construction(self, tmp_path):
        from repro.serving.traffic import (
            TraceSource,
            parse_shape,
            shape_arrivals,
            shaped_trace,
        )

        trace = tmp_path / "trace.csv"
        trace.write_text(
            "timestamp\n"
            + "\n".join(f"{i * 0.004:.6f}" for i in range(24))
            + "\n"
        )
        shapes = ("flash:5@0.02~0.03",)
        options = SweepOptions(
            trace=str(trace), trace_scale=0.5, trace_loop=2,
            shapes=shapes,
        )
        source = TraceSource.load(str(trace), time_scale=0.5, loop=2)
        expected = shaped_trace(
            source, [parse_shape(spec) for spec in shapes]
        )
        assert options.trace_source.arrivals == expected.arrivals
        # The warp is real: shaped arrivals differ from the replay.
        assert options.trace_source.arrivals != source.arrivals
        assert options.trace_source.arrivals == shape_arrivals(
            source.arrivals, [parse_shape(spec) for spec in shapes]
        )


# -- running ---------------------------------------------------------------


class TestRunSweep:
    @pytest.fixture(scope="class")
    def reports(self):
        grid = SweepGrid(**GRID)
        session = make_session()
        serial = run_sweep(
            session, grid, SweepOptions(requests=16), seed=7
        )
        process = run_sweep(
            session, grid,
            SweepOptions(requests=16, executor="process", jobs=2),
            seed=7,
        )
        return serial, process

    def test_serial_and_process_byte_identical(self, reports):
        serial, process = reports
        assert serial.to_json() == process.to_json()
        assert serial == process  # wall_seconds excluded from equality

    def test_every_cell_accounts_for_every_request(self, reports):
        serial, _ = reports
        for cell in serial.cells:
            assert (
                cell["served"] + cell["shed"] + cell["unserved"]
                == cell["issued"]
            ), cell

    def test_report_schema_is_trajectory_compatible(self, reports):
        serial, _ = reports
        payload = json.loads(serial.to_json())
        # The headline numbers append_trajectory.summarise reads live
        # at the top level, next to the structured breakdowns.
        for key in ("cell_count", "count", "shed", "unserved",
                    "slo_attainment", "p99_latency_s"):
            assert key in payload, key
        assert "wall_seconds" not in payload
        assert set(payload["per_scenario"]) == set(GRID["scenarios"])
        for stats in payload["per_scenario"].values():
            assert 0.0 <= stats["attainment"] <= 1.0
            assert set(stats["survival"]) == {"1x", "2x", "4x", "8x"}
            for fraction in stats["survival"].values():
                assert 0.0 <= fraction <= 1.0

    def test_survival_is_monotone_in_the_multiple(self, reports):
        serial, _ = reports
        for stats in serial.per_scenario.values():
            fractions = [
                stats["survival"][key] for key in ("1x", "2x", "4x", "8x")
            ]
            assert fractions == sorted(fractions, reverse=True)

    def test_chaos_scenarios_hurt_attainment(self, reports):
        serial, _ = reports
        per = serial.per_scenario
        baseline = per["none"]["attainment"]
        assert any(
            per[spec]["attainment"] <= baseline
            for spec in GRID["scenarios"] if spec != "none"
        )

    def test_trace_replay_drives_every_cell(self, tmp_path):
        trace = tmp_path / "trace.csv"
        trace.write_text(
            "timestamp\n"
            + "\n".join(f"{i * 0.002:.6f}" for i in range(10))
            + "\n"
        )
        grid = SweepGrid(
            ["none", "kill:shard0@0.002,restore@0.01"],
            ["round-robin"],
            [2],
        )
        session = make_session()
        options = SweepOptions(
            trace=str(trace), trace_loop=2,
            shapes=("flash:4@0.005~0.01",),
        )
        report = run_sweep(session, grid, options, seed=7)
        # Every cell replays the full looped trace, not --requests.
        for cell in report.cells:
            assert cell["issued"] == 20
            assert (
                cell["served"] + cell["shed"] + cell["unserved"]
                == cell["issued"]
            )
        assert report.grid["trace"] == str(trace)
        assert report.grid["trace_loop"] == 2

    def test_trace_serial_and_process_byte_identical(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        trace.write_text(
            "\n".join(f"{i * 0.003:.6f}" for i in range(12)) + "\n"
        )
        grid = SweepGrid(
            ["none", "degrade:shard0@0.001..0.01x4"],
            ["round-robin", "shortest-latency"],
            [2],
        )
        session = make_session()
        kwargs = dict(
            trace=str(trace),
            trace_scale=0.5,
            shapes=("diurnal:0.5x0.02",),
        )
        serial = run_sweep(
            session, grid, SweepOptions(**kwargs), seed=5
        )
        process = run_sweep(
            session, grid,
            SweepOptions(executor="process", jobs=2, **kwargs),
            seed=5,
        )
        assert serial.to_json() == process.to_json()

    def test_same_seed_reruns_identically(self):
        grid = SweepGrid(["none"], ["round-robin"], [2])
        session = make_session()
        options = SweepOptions(requests=12)
        first = run_sweep(session, grid, options, seed=3)
        second = run_sweep(session, grid, options, seed=3)
        third = run_sweep(session, grid, options, seed=4)
        assert first.to_json() == second.to_json()
        assert first.to_json() != third.to_json()

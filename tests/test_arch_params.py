"""Tests for repro.arch.params — accelerator configuration."""

import pytest

from repro.errors import ResourceError
from repro.arch.params import SUPPORTED_PT, AcceleratorConfig


class TestValidation:
    def test_pt_constraint(self):
        # Table 2: PT in {4, 6}.
        assert SUPPORTED_PT == (4, 6)
        with pytest.raises(ResourceError):
            AcceleratorConfig(pt=8)
        with pytest.raises(ResourceError):
            AcceleratorConfig(pt=5)

    def test_pi_po_ordering(self):
        # Table 2: PI >= PO >= 1.
        with pytest.raises(ResourceError):
            AcceleratorConfig(pi=2, po=4)
        AcceleratorConfig(pi=4, po=4)  # equal is fine

    def test_positive_instances(self):
        with pytest.raises(ResourceError):
            AcceleratorConfig(instances=0)

    def test_positive_buffers(self):
        with pytest.raises(ResourceError):
            AcceleratorConfig(input_buffer_vecs=0)

    def test_positive_frequency(self):
        with pytest.raises(ResourceError):
            AcceleratorConfig(frequency_mhz=0)


class TestDerived:
    def test_m_from_pt(self):
        # m = PT - r + 1 with r = 3.
        assert AcceleratorConfig(pt=4).m == 2
        assert AcceleratorConfig(pt=6).m == 4

    def test_macs_per_cycle(self):
        cfg = AcceleratorConfig(pi=4, po=4, pt=6)
        assert cfg.macs_per_cycle == 4 * 4 * 36

    def test_spatial_lanes(self):
        cfg = AcceleratorConfig(pi=4, po=2, pt=6)
        assert cfg.spatial_input_lanes == 24
        assert cfg.spatial_output_lanes == 12

    def test_peak_gops_spatial(self):
        cfg = AcceleratorConfig(pi=4, po=4, pt=6, frequency_mhz=167)
        # 2 ops x 576 MACs x 167 MHz.
        assert cfg.peak_gops("spat") == pytest.approx(192.4, rel=0.01)

    def test_peak_gops_winograd_3x3(self):
        cfg = AcceleratorConfig(pi=4, po=4, pt=6, frequency_mhz=167)
        # F(4x4,3x3): 4x multiplication reduction (Sec. 4.2.1).
        assert cfg.peak_gops("wino", kernel=3) == pytest.approx(
            4 * cfg.peak_gops("spat"), rel=1e-9
        )

    def test_peak_gops_winograd_5x5_lower_gain(self):
        cfg = AcceleratorConfig(pi=4, po=4, pt=6)
        gain5 = cfg.peak_gops("wino", kernel=5) / cfg.peak_gops("spat")
        # 25/36 * 16 / 4 blocks = 2.78x, less than the 4x of 3x3.
        assert gain5 == pytest.approx(25 * 16 / (4 * 36), rel=1e-9)

    def test_default_types(self):
        cfg = AcceleratorConfig()
        assert cfg.feature_type.width == cfg.data_width
        assert cfg.weight_type.width == cfg.weight_width

    def test_describe(self):
        text = AcceleratorConfig(pi=8, po=4, pt=4, instances=2).describe()
        assert "PI=8" in text and "x2 inst" in text

"""Tests for repro.serving — shards, scheduling, batching, metrics."""

import pytest

from repro.arch.params import AcceleratorConfig
from repro.compiler import CompilerOptions
from repro.errors import ServingError
from repro.fpga import get_device
from repro.ir import zoo
from repro.pipeline import PipelineSession
from repro.serving import (
    BatcherOptions,
    DynamicBatcher,
    Request,
    ShardPool,
    ShardServer,
    analytical_reference,
    make_requests,
    percentile,
)
from repro.serving.scheduler import Scheduler, make_policy
from repro.serving.traffic import (
    burst_arrivals,
    fixed_qps_arrivals,
    poisson_arrivals,
)


def make_session(instances=1, frequency=100.0):
    """A tiny pinned deployment that keeps the probe simulation fast."""
    device = get_device("vu9p")
    cfg = AcceleratorConfig(
        pi=4, po=4, pt=4, instances=instances, frequency_mhz=frequency,
        input_buffer_vecs=4096, weight_buffer_vecs=2048,
        output_buffer_vecs=2048,
    )
    return PipelineSession(
        zoo.tiny_cnn(input_size=16, channels=8),
        device,
        cfg=cfg,
        compiler_options=CompilerOptions(quantize=False, pack_data=False),
    )


def requests_at(arrivals):
    return [Request(index, arrival) for index, arrival in
            enumerate(arrivals)]


# -- traffic ---------------------------------------------------------------


class TestTraffic:
    def test_uniform_all_at_zero(self):
        requests = make_requests("uniform", 5)
        assert [r.arrival for r in requests] == [0.0] * 5
        assert [r.index for r in requests] == list(range(5))

    def test_fixed_qps_spacing(self):
        assert fixed_qps_arrivals(4, 10.0) == pytest.approx(
            [0.0, 0.1, 0.2, 0.3]
        )

    def test_poisson_deterministic_and_sorted(self):
        a = poisson_arrivals(50, 100.0, seed=7)
        b = poisson_arrivals(50, 100.0, seed=7)
        assert a == b
        assert a == sorted(a)
        assert all(t > 0 for t in a)
        assert poisson_arrivals(50, 100.0, seed=8) != a

    def test_burst_groups(self):
        arrivals = burst_arrivals(6, qps=10.0, burst=3)
        assert arrivals == pytest.approx([0.0, 0.0, 0.0, 0.3, 0.3, 0.3])

    def test_bad_inputs(self):
        with pytest.raises(ServingError):
            make_requests("diurnal", 4)
        with pytest.raises(ServingError):
            make_requests("poisson", 4)  # qps required
        with pytest.raises(ServingError):
            make_requests("uniform", 0)
        with pytest.raises(ServingError):
            make_requests("poisson", 4, qps=-1.0)
        with pytest.raises(ServingError):
            make_requests("burst", 4, qps=1.0, burst=0)
        with pytest.raises(ServingError):
            Request(0, -1.0)


# -- dynamic batcher -------------------------------------------------------


def flushes(requests, max_batch, max_wait_s):
    batcher = DynamicBatcher(
        BatcherOptions(max_batch=max_batch, max_wait_s=max_wait_s)
    )
    return [
        (at, [r.index for r in batch])
        for at, batch in batcher.batches(requests)
    ]


class TestDynamicBatcher:
    def test_size_trigger_on_simultaneous_arrivals(self):
        out = flushes(requests_at([0.0] * 5), max_batch=2, max_wait_s=0.0)
        assert out == [
            (0.0, [0, 1]), (0.0, [2, 3]), (0.0, [4]),
        ]

    def test_max_wait_flush(self):
        # Neither request fills the batch; the head's wait budget does.
        out = flushes(requests_at([0.0, 0.2]), max_batch=8,
                      max_wait_s=0.5)
        assert out == [(0.5, [0, 1])]

    def test_empty_queue_wakeup_uses_fresh_deadline(self):
        # After the 1.0 flush empties the queue, the next head (t=10)
        # starts a fresh window — it must not inherit the stale
        # deadline and must still fill by size at 10.2.
        out = flushes(requests_at([0.0, 10.0, 10.2]), max_batch=2,
                      max_wait_s=1.0)
        assert out == [(1.0, [0]), (10.2, [1, 2])]

    def test_no_time_travel_into_earlier_batches(self):
        # Request 1 arrives after request 0's deadline fired: it must
        # not appear in the earlier batch even though it arrived before
        # the generator got around to it.
        out = flushes(requests_at([0.0, 0.9]), max_batch=8,
                      max_wait_s=0.5)
        assert out == [(0.5, [0]), (1.4, [1])]

    def test_flush_times_nondecreasing(self):
        requests = make_requests("poisson", 40, qps=50.0, seed=3)
        out = flushes(requests, max_batch=3, max_wait_s=0.01)
        times = [at for at, _ in out]
        assert times == sorted(times)
        served = [i for _, batch in out for i in batch]
        assert sorted(served) == list(range(40))

    def test_options_validated(self):
        with pytest.raises(ServingError):
            BatcherOptions(max_batch=0)
        with pytest.raises(ServingError):
            BatcherOptions(max_wait_s=-0.1)


# -- shards and pools ------------------------------------------------------


class TestShardPool:
    def test_replicate_shares_deployment(self):
        pool = ShardPool.replicate(make_session(), 3)
        compiled = pool.shards[0].session.compiled()
        for shard in pool.shards[1:]:
            assert shard.session.compiled() is compiled
            assert shard.session.cache is pool.shards[0].session.cache
            assert shard._probe_of is pool.shards[0]
        # Runtimes must NOT be shared (mutable DRAM state per shard).
        assert pool.shards[0].runner.runtime is not \
            pool.shards[1].runner.runtime

    def test_replicated_probe_simulated_once(self):
        pool = ShardPool.replicate(make_session(instances=2), 2)
        first = pool.shards[0].probe_seconds()
        # Breaking the replica's own runtime proves delegation.
        pool.shards[1].runner.runtime = None
        assert pool.shards[1].probe_seconds() == first

    def test_pool_validation(self):
        with pytest.raises(ServingError):
            ShardPool([])
        with pytest.raises(ServingError):
            ShardPool.replicate(make_session(), 0)
        session = make_session()
        with pytest.raises(ServingError):
            ShardPool.of(session, session, names=("same", "same"))

    def test_capacity_and_instances(self):
        pool = ShardPool.replicate(make_session(instances=2), 2)
        assert pool.total_instances == 4
        assert pool.capacity_images_per_second() > 0


# -- scheduler policies ----------------------------------------------------


class TestScheduler:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ServingError):
            make_policy("fifo")
        with pytest.raises(ServingError):
            Scheduler([], "round-robin")

    def test_uneven_round_robin_tail(self):
        # 10 single-request batches over 3 shards: 4/3/3, and the
        # makespan is the most-loaded shard's chain.
        pool = ShardPool.replicate(make_session(), 3)
        server = ShardServer(pool, "round-robin",
                             BatcherOptions(max_batch=1))
        report = server.serve(make_requests("uniform", 10))
        counts = [usage.requests for usage in report.shards]
        assert counts == [4, 3, 3]
        per_image = pool.shards[0].probe_seconds()
        assert report.makespan_seconds == pytest.approx(4 * per_image)

    def test_single_shard_degenerate_case(self):
        # One shard serves everything and matches BatchRunner exactly.
        pool = ShardPool.replicate(make_session(instances=2), 1)
        server = ShardServer(pool, "least-loaded",
                             BatcherOptions(max_batch=8))
        report = server.serve(make_requests("uniform", 8))
        assert report.per_shard()["shard0"].requests == 8
        assert report.makespan_seconds == pytest.approx(
            analytical_reference(pool, 8)
        )

    @pytest.mark.parametrize("policy", ["least-loaded",
                                        "shortest-latency"])
    def test_policy_equivalence_on_identical_shards(self, policy):
        """With identical shards and equal-size back-to-back batches,
        the stateful policies degenerate to round-robin, record for
        record.  (They may legitimately diverge once the queue drains
        and every shard goes idle — round-robin's rotation is the only
        state that survives an idle gap — so the equivalence case is
        closed-loop traffic.)"""
        session = make_session(instances=2)
        requests = make_requests("uniform", 30)
        pool_a = ShardPool.replicate(session, 2)
        baseline = ShardServer(
            pool_a, "round-robin", BatcherOptions(max_batch=1)
        ).serve(requests)
        pool_b = ShardPool.replicate(session.clone(), 2)
        other = ShardServer(
            pool_b, policy, BatcherOptions(max_batch=1)
        ).serve(requests)
        assert other.records == baseline.records

    def test_shortest_latency_prefers_faster_shard(self):
        # Same design at 100 vs 25 MHz: the Eq. 12-15 estimate makes
        # the fast shard absorb most of a saturating stream.
        fast = make_session(frequency=100.0)
        slow = make_session(frequency=25.0)
        pool = ShardPool.of(fast, slow, names=("fast", "slow"))
        qps = 2.0 * pool.capacity_images_per_second()
        report = ShardServer(
            pool, "shortest-latency", BatcherOptions(max_batch=1)
        ).serve(make_requests("poisson", 40, qps=qps, seed=5))
        shares = report.per_shard()
        assert shares["fast"].requests > 2 * shares["slow"].requests

    def test_least_loaded_follows_backlog(self):
        # A pre-loaded shard receives nothing until its backlog drains.
        pool = ShardPool.replicate(make_session(), 2)
        pool.shards[0].busy_until = 1e9
        report = ShardServer(
            pool, "least-loaded", BatcherOptions(max_batch=1)
        ).serve(make_requests("uniform", 4))
        # serve() resets timelines -- reload and drive the scheduler
        # directly instead.
        scheduler = Scheduler(pool.shards, "least-loaded")
        pool.shards[0].busy_until = 1e9
        assert scheduler.assign(1, now=0.0) is pool.shards[1]
        assert report.count == 4


# -- end-to-end serving ----------------------------------------------------


class TestShardServer:
    def test_uniform_matches_batchrunner_reference(self):
        # The acceptance criterion: uniform traffic through the full
        # batcher/scheduler stack reproduces the analytical makespan.
        pool = ShardPool.replicate(make_session(instances=2), 2)
        server = ShardServer(pool, "least-loaded",
                             BatcherOptions(max_batch=4))
        report = server.serve(make_requests("uniform", 32))
        reference = analytical_reference(pool, 32)
        assert abs(report.makespan_seconds - reference) / reference < 0.01
        assert report.throughput_gops == pytest.approx(
            report.total_ops / reference / 1e9, rel=0.01
        )

    def test_serve_is_repeatable(self):
        pool = ShardPool.replicate(make_session(), 2)
        server = ShardServer(pool, "round-robin",
                             BatcherOptions(max_batch=2))
        # 13 requests / max_batch 2 = 7 batches — an odd count, so a
        # round-robin rotation surviving across runs would flip every
        # assignment of the second run.
        requests = make_requests("fixed-qps", 13, qps=1000.0)
        first = server.serve(requests)
        second = server.serve(requests)
        assert first.records == second.records
        assert first.shards == second.shards

    def test_records_sorted_and_complete(self):
        pool = ShardPool.replicate(make_session(), 2)
        report = ShardServer(pool, "round-robin").serve(
            make_requests("poisson", 17, qps=500.0)
        )
        assert [r.index for r in report.records] == list(range(17))
        for record in report.records:
            assert record.arrival <= record.dispatched <= record.started
            assert record.completed > record.started

    def test_empty_stream_rejected(self):
        pool = ShardPool.replicate(make_session(), 1)
        with pytest.raises(ServingError):
            ShardServer(pool).serve([])

    def test_batching_unlocks_instance_parallelism(self):
        # Batches of NI images keep all instances busy; singles leave
        # NI-1 idle -- the dynamic batcher's reason to exist.
        session = make_session(instances=4)
        batched = ShardServer(
            ShardPool.replicate(session, 1),
            "round-robin", BatcherOptions(max_batch=4),
        ).serve(make_requests("uniform", 16))
        singles = ShardServer(
            ShardPool.replicate(session.clone(), 1),
            "round-robin", BatcherOptions(max_batch=1),
        ).serve(make_requests("uniform", 16))
        assert batched.makespan_seconds < singles.makespan_seconds / 3


# -- run independence and heterogeneous pools ------------------------------


class TestServeIndependence:
    def test_back_to_back_serves_reset_pool_and_policy_state(self):
        """A serve() after a different workload matches a fresh server
        bit for bit: no timeline, counter or rotation state leaks."""
        session = make_session(instances=2)
        pool = ShardPool.replicate(session, 2)
        server = ShardServer(pool, "round-robin",
                             BatcherOptions(max_batch=2))
        # An odd batch count, so a leaked rotation would flip every
        # assignment of the next run; uniform-after-poisson would also
        # expose leaked busy_until timelines.
        server.serve(make_requests("poisson", 13, qps=500.0, seed=3))
        second = server.serve(make_requests("uniform", 12))
        fresh_pool = ShardPool.replicate(session.clone(), 2)
        fresh = ShardServer(
            fresh_pool, "round-robin", BatcherOptions(max_batch=2)
        ).serve(make_requests("uniform", 12))
        assert second.records == fresh.records
        assert second.shards == fresh.shards
        assert second.total_ops == fresh.total_ops

    def test_serve_resets_scenario_damage(self):
        """A failed shard from a scenario run is back for the next
        serve() — pool.reset() restores availability."""
        from repro.serving import FailureScenario

        pool = ShardPool.replicate(make_session(), 2)
        server = ShardServer(pool, "least-loaded",
                             BatcherOptions(max_batch=1))
        requests = make_requests("uniform", 8)
        baseline = server.serve(requests)
        killed = server.serve(
            requests, scenario=FailureScenario.kill("shard0", at=0.0)
        )
        assert killed.per_shard()["shard0"].requests == 0
        again = server.serve(requests)
        assert again.records == baseline.records
        assert again.per_shard()["shard0"].requests > 0


class TestHeterogeneousPools:
    def test_named_pool_serves_and_reports_by_name(self):
        fast = make_session(instances=2, frequency=100.0)
        slow = make_session(instances=1, frequency=50.0)
        pool = ShardPool.of(fast, slow, names=("cloud", "edge"))
        assert [shard.name for shard in pool] == ["cloud", "edge"]
        assert pool.total_instances == 3
        assert "cloud" in pool.describe() and "edge" in pool.describe()
        report = ShardServer(
            pool, "shortest-latency", BatcherOptions(max_batch=2)
        ).serve(make_requests("uniform", 18))
        assert report.count == 18
        assert set(report.per_shard()) == {"cloud", "edge"}
        # Both shards contribute, the fast one more.
        shares = report.per_shard()
        assert shares["cloud"].requests > shares["edge"].requests > 0

    def test_default_names_and_name_mismatch(self):
        a, b = make_session(), make_session()
        pool = ShardPool.of(a, b)
        assert [shard.name for shard in pool] == ["shard0", "shard1"]
        with pytest.raises(ServingError):
            ShardPool.of(a, b, names=("only-one",))


# -- metrics ---------------------------------------------------------------


class TestMetrics:
    def test_percentile_nearest_rank(self):
        values = list(range(1, 11))
        assert percentile(values, 0) == 1
        assert percentile(values, 50) == 5
        assert percentile(values, 90) == 9
        assert percentile(values, 99) == 10
        assert percentile(values, 100) == 10

    def test_percentile_validation(self):
        with pytest.raises(ServingError):
            percentile([], 50)
        with pytest.raises(ServingError):
            percentile([1.0], 101)

    def test_report_latency_includes_queueing(self):
        pool = ShardPool.replicate(make_session(), 1)
        report = ShardServer(
            pool, "round-robin", BatcherOptions(max_batch=1)
        ).serve(make_requests("uniform", 3))
        per_image = pool.shards[0].probe_seconds()
        # Requests run back to back on one instance: latencies are
        # 1x, 2x, 3x the per-image time.
        assert report.latencies() == pytest.approx(
            [per_image, 2 * per_image, 3 * per_image]
        )
        assert report.mean_queue_seconds == pytest.approx(per_image)
        assert report.describe()  # renders without crashing

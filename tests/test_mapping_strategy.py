"""Tests for repro.mapping.strategy — mode/dataflow selections."""

import pytest

from repro.errors import CompileError
from repro.ir import zoo
from repro.mapping import LayerMapping, NetworkMapping
from repro.mapping.strategy import winograd_supported


class TestLayerMapping:
    def test_valid(self):
        m = LayerMapping("conv1", "wino", "ws")
        assert m.mode == "wino"

    def test_invalid_mode(self):
        with pytest.raises(CompileError):
            LayerMapping("conv1", "fft", "is")

    def test_invalid_dataflow(self):
        with pytest.raises(CompileError):
            LayerMapping("conv1", "spat", "os")


class TestWinogradSupported:
    def test_stride1_conv_supported(self):
        net = zoo.vgg16()
        for info in net.conv_layers():
            assert winograd_supported(info)

    def test_strided_conv_unsupported(self):
        # AlexNet conv1 has stride 4 — Spatial only.
        net = zoo.alexnet()
        conv1 = net.compute_layers()[0]
        assert conv1.layer.stride == 4
        assert not winograd_supported(conv1)

    def test_dense_supported(self):
        net = zoo.tiny_mlp()
        assert winograd_supported(net.compute_layers()[0])


class TestNetworkMapping:
    def test_uniform_covers_compute_layers(self):
        net = zoo.vgg16()
        mapping = NetworkMapping.uniform(net, "wino", "ws")
        assert len(mapping) == 16  # 13 conv + 3 fc
        mapping.validate_against(net)

    def test_uniform_downgrades_strided(self):
        net = zoo.alexnet()
        mapping = NetworkMapping.uniform(net, "wino", "is")
        assert mapping.for_layer("conv1").mode == "spat"
        assert mapping.for_layer("conv3").mode == "wino"

    def test_for_layer_missing(self):
        mapping = NetworkMapping("x", [LayerMapping("a", "spat", "is")])
        with pytest.raises(CompileError):
            mapping.for_layer("b")

    def test_duplicate_rejected(self):
        with pytest.raises(CompileError):
            NetworkMapping(
                "x",
                [
                    LayerMapping("a", "spat", "is"),
                    LayerMapping("a", "wino", "ws"),
                ],
            )

    def test_validate_detects_missing_layer(self):
        net = zoo.tiny_cnn()
        mapping = NetworkMapping(
            net.name, [LayerMapping("conv1", "spat", "is")]
        )
        with pytest.raises(CompileError, match="missing"):
            mapping.validate_against(net)

    def test_validate_detects_extra_layer(self):
        net = zoo.tiny_cnn()
        layers = [
            LayerMapping(i.layer.name, "spat", "is")
            for i in net.compute_layers()
        ]
        layers.append(LayerMapping("ghost", "spat", "is"))
        with pytest.raises(CompileError, match="extra"):
            NetworkMapping(net.name, layers).validate_against(net)

    def test_validate_rejects_wino_on_strided(self):
        net = zoo.alexnet()
        layers = []
        for info in net.compute_layers():
            layers.append(LayerMapping(info.layer.name, "wino", "ws"))
        with pytest.raises(CompileError, match="Winograd"):
            NetworkMapping(net.name, layers).validate_against(net)

    def test_counts(self):
        net = zoo.tiny_cnn()
        mapping = NetworkMapping.uniform(net, "wino", "is")
        counts = mapping.counts()
        assert counts["wino"] == 3
        assert counts["is"] == 3
        assert counts["spat"] == 0

"""Tests for repro.sim.simulator — timing behaviour and module overlap."""

import numpy as np
import pytest

from repro.compiler import CompilerOptions, compile_network
from repro.errors import SimulationError
from repro.ir import zoo
from repro.isa.program import Program
from repro.mapping import NetworkMapping
from repro.runtime import HostRuntime, generate_parameters
from repro.sim.simulator import (
    AcceleratorSimulator,
    SimulationResult,
)


def run_tiny(cfg, device, mode="wino", dataflow="ws", functional=False,
             net=None):
    net = net or zoo.tiny_cnn(input_size=16, channels=8)
    params = generate_parameters(net, seed=1)
    mapping = NetworkMapping.uniform(net, mode, dataflow)
    compiled = compile_network(
        net, cfg, mapping, params,
        CompilerOptions(quantize=False, pack_data=functional),
    )
    runtime = HostRuntime(compiled, device, functional=functional)
    result = runtime.infer(np.zeros(net.input_shape.as_tuple()))
    return result.sim, compiled


class TestTiming:
    def test_deterministic(self, cfg_pt4, pynq):
        a, _ = run_tiny(cfg_pt4, pynq)
        b, _ = run_tiny(cfg_pt4, pynq)
        assert a.cycles == b.cycles

    def test_modules_overlap(self, cfg_pt4, pynq):
        # Ping-pong + handshake FIFOs must overlap module activity:
        # total busy cycles across modules exceeds the makespan.
        sim, _ = run_tiny(cfg_pt4, pynq)
        busy = sum(m.busy_cycles for m in sim.modules.values())
        assert busy > sim.cycles

    def test_makespan_bounded_by_serial_execution(self, cfg_pt4, pynq):
        sim, _ = run_tiny(cfg_pt4, pynq)
        busy = sum(m.busy_cycles for m in sim.modules.values())
        assert sim.cycles <= busy

    def test_winograd_faster_than_spatial(self, cfg_pt4, pynq):
        wino, _ = run_tiny(cfg_pt4, pynq, mode="wino")
        spat, _ = run_tiny(cfg_pt4, pynq, mode="spat")
        assert wino.cycles < spat.cycles

    def test_higher_bandwidth_not_slower(self, cfg_pt4, pynq, vu9p):
        # Same config, cloud memory system and frequency-normalised:
        # more bandwidth can only help.
        from dataclasses import replace

        slow_dev = replace(pynq)
        fast_dev = replace(
            pynq, memory=replace(pynq.memory, bandwidth_gbps=100.0)
        )
        slow, _ = run_tiny(cfg_pt4, slow_dev)
        fast, _ = run_tiny(cfg_pt4, fast_dev)
        assert fast.cycles <= slow.cycles

    def test_layer_timings_cover_program(self, cfg_pt4, pynq):
        sim, compiled = run_tiny(cfg_pt4, pynq)
        assert {t.layer_name for t in sim.layers} == set(
            compiled.partitions
        )
        for timing in sim.layers:
            assert timing.finish_cycle > timing.start_cycle
            assert timing.cycles > 0

    def test_seconds_from_frequency(self, cfg_pt4, pynq):
        sim, _ = run_tiny(cfg_pt4, pynq)
        assert sim.seconds == pytest.approx(
            sim.cycles / cfg_pt4.frequency_hz
        )

    def test_instruction_count_reported(self, cfg_pt4, pynq):
        sim, compiled = run_tiny(cfg_pt4, pynq)
        assert sim.instructions == compiled.total_instructions


class TestFunctionalBookkeeping:
    def test_dram_traffic_counted(self, cfg_pt4, pynq):
        sim, _ = run_tiny(cfg_pt4, pynq, functional=True)
        assert sim.dram_read_elems > 0
        assert sim.dram_written_elems > 0

    def test_timing_identical_with_and_without_functional(self, cfg_pt4, pynq):
        # The functional datapath must not perturb timing.
        t, _ = run_tiny(cfg_pt4, pynq, functional=False)
        f, _ = run_tiny(cfg_pt4, pynq, functional=True)
        assert t.cycles == f.cycles


class TestErrors:
    def test_program_without_descriptors_rejected(self, cfg_pt4, pynq):
        from repro.arch.dram import ExternalMemoryModel

        dram = ExternalMemoryModel(1024, 1.0)
        sim = AcceleratorSimulator(cfg_pt4, pynq, dram, functional=False)
        with pytest.raises(SimulationError, match="descriptors"):
            sim.run(Program())

    def test_merge_empty_rejected(self):
        with pytest.raises(SimulationError):
            SimulationResult.merge([])

    def test_merge_accumulates(self, cfg_pt4, pynq):
        a, _ = run_tiny(cfg_pt4, pynq)
        merged = SimulationResult.merge([a, a])
        assert merged.cycles == 2 * a.cycles
        assert merged.instructions == 2 * a.instructions
        assert len(merged.layers) == 2 * len(a.layers)
        # Second copy's layer windows shifted by the first's makespan.
        assert merged.layers[len(a.layers)].start_cycle >= a.cycles

    def test_layer_lookup(self, cfg_pt4, pynq):
        sim, _ = run_tiny(cfg_pt4, pynq)
        assert sim.layer("conv1").layer_name == "conv1"
        with pytest.raises(KeyError):
            sim.layer("nope")

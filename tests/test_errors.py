"""Tests for the exception hierarchy."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.ShapeError,
    errors.GraphError,
    errors.UnsupportedLayerError,
    errors.DeviceError,
    errors.ResourceError,
    errors.EncodingError,
    errors.CompileError,
    errors.SimulationError,
    errors.DseError,
    errors.RuntimeHostError,
]


@pytest.mark.parametrize("cls", ALL_ERRORS)
def test_all_derive_from_repro_error(cls):
    assert issubclass(cls, errors.ReproError)
    assert issubclass(cls, Exception)


def test_catchable_as_base():
    with pytest.raises(errors.ReproError):
        raise errors.CompileError("x")


def test_distinct_subsystem_errors():
    # Catching one subsystem's errors must not swallow another's.
    with pytest.raises(errors.EncodingError):
        try:
            raise errors.EncodingError("bits")
        except errors.SimulationError:  # pragma: no cover
            pytest.fail("wrong handler caught the error")

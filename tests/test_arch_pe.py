"""Tests for repro.arch.pe — the hybrid PE functional and cycle models."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.arch import pe
from repro.arch.params import AcceleratorConfig
from repro.winograd import direct_conv2d, transform_weight
from repro.winograd.matrices import get_algorithm


class TestGemmCore:
    def test_gemv(self):
        weights = np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        vec = np.array([10.0, 1.0])
        np.testing.assert_array_equal(
            pe.gemm_core(weights, vec), [12.0, 34.0, 56.0]
        )

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            pe.gemm_core(np.zeros((2, 3)), np.zeros(2))


class TestSpatialCompute:
    def test_matches_direct_conv(self, rng):
        strip = rng.normal(size=(6, 5, 12))
        kernels = rng.normal(size=(7, 6, 3, 3))
        out = pe.spatial_compute(strip, kernels, stride=1, out_rows=3)
        ref = direct_conv2d(strip, kernels)[:, :3, :]
        np.testing.assert_allclose(out, ref, atol=1e-10)

    def test_strided(self, rng):
        strip = rng.normal(size=(4, 7, 11))
        kernels = rng.normal(size=(3, 4, 3, 3))
        out = pe.spatial_compute(strip, kernels, stride=2, out_rows=3)
        ref = direct_conv2d(strip, kernels, stride=2)[:, :3, :]
        np.testing.assert_allclose(out, ref, atol=1e-10)

    def test_1x1_kernel(self, rng):
        strip = rng.normal(size=(5, 1, 9))
        kernels = rng.normal(size=(2, 5, 1, 1))
        out = pe.spatial_compute(strip, kernels, stride=1, out_rows=1)
        ref = direct_conv2d(strip, kernels)
        np.testing.assert_allclose(out, ref, atol=1e-10)

    def test_insufficient_rows(self, rng):
        strip = rng.normal(size=(2, 3, 8))
        kernels = rng.normal(size=(2, 2, 3, 3))
        with pytest.raises(ShapeError):
            pe.spatial_compute(strip, kernels, stride=1, out_rows=2)


class TestWinogradCompute:
    @pytest.mark.parametrize("pt", [4, 6])
    def test_matches_direct_conv(self, pt, rng):
        alg = get_algorithm(pt - 2, 3)
        strip = rng.normal(size=(6, pt, 14))
        kernels = rng.normal(size=(5, 6, 3, 3))
        u = transform_weight(alg, kernels)
        partial, n_tiles = pe.winograd_compute(strip, u, pt=pt)
        ref = direct_conv2d(strip, kernels)
        out_w = ref.shape[2]
        np.testing.assert_allclose(
            partial[:, : alg.m, :out_w], ref[:, : alg.m, :], atol=1e-9
        )
        assert n_tiles == -(-out_w // alg.m)

    def test_extra_rows_ignored(self, rng):
        # Strips may carry decomposition overlap rows beyond PT.
        strip = rng.normal(size=(2, 9, 10))
        kernels = rng.normal(size=(2, 2, 3, 3))
        alg = get_algorithm(4, 3)
        u = transform_weight(alg, kernels)
        a, _ = pe.winograd_compute(strip, u, pt=6)
        b, _ = pe.winograd_compute(strip[:, :6, :], u, pt=6)
        np.testing.assert_array_equal(a, b)

    def test_too_few_rows(self, rng):
        strip = rng.normal(size=(2, 3, 10))
        u = np.zeros((2, 2, 6, 6))
        with pytest.raises(ShapeError):
            pe.winograd_compute(strip, u, pt=6)

    def test_weight_shape_checked(self, rng):
        strip = rng.normal(size=(2, 6, 10))
        with pytest.raises(ShapeError):
            pe.winograd_compute(strip, np.zeros((2, 3, 6, 6)), pt=6)


class TestCycleModels:
    @pytest.fixture
    def cfg(self):
        return AcceleratorConfig(pi=4, po=4, pt=6)

    def test_spatial_cycles_flattened_reduction(self, cfg):
        # C*R*S = 64*9 = 576 reduction elems over 24 lanes = 24 steps.
        cycles = pe.spatial_cycles(cfg, k_g=24, c=64, r=3, s=3,
                                   out_rows=1, out_w=10)
        assert cycles == 24 * 1 * 10 + pe.PIPELINE_DEPTH

    def test_spatial_cycles_output_rounding(self, cfg):
        # 25 output channels need 2 PO*PT=24 vectors.
        a = pe.spatial_cycles(cfg, 24, 24, 3, 3, 1, 10)
        b = pe.spatial_cycles(cfg, 25, 24, 3, 3, 1, 10)
        assert b > a

    def test_winograd_cycles(self, cfg):
        # ceil(C/PI) * ceil(K/PO) * tiles.
        cycles = pe.winograd_cycles(cfg, k_g=8, c=16, n_tiles=14)
        assert cycles == 4 * 2 * 14 + pe.PIPELINE_DEPTH

    def test_more_parallelism_fewer_cycles(self):
        small = AcceleratorConfig(pi=2, po=2, pt=4)
        big = AcceleratorConfig(pi=8, po=8, pt=4)
        assert pe.winograd_cycles(big, 64, 64, 10) < pe.winograd_cycles(
            small, 64, 64, 10
        )

"""Tests for multi-tenant serving and the WorkloadSpec serve API."""

import json
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.params import AcceleratorConfig
from repro.compiler import CompilerOptions
from repro.errors import ServingError
from repro.fpga import get_device
from repro.ir import zoo
from repro.pipeline import PipelineSession
from repro.serving import (
    BatcherOptions,
    ClosedLoopClientPool,
    Request,
    ShardPool,
    ShardServer,
    TenantSet,
    TenantSpec,
    TraceSource,
    WeightedFair,
    WorkloadSpec,
    assign_tenants,
    make_requests,
    merge_streams,
    parse_tenant,
    parse_tenants,
)
from repro.serving.scheduler import Scheduler
from repro.serving.tenancy import DEFAULT_TENANT, split_clients
from repro.serving.traffic import load_tagged_trace


def make_session(instances=1, frequency=100.0):
    """A tiny pinned deployment that keeps the probe simulation fast."""
    device = get_device("vu9p")
    cfg = AcceleratorConfig(
        pi=4, po=4, pt=4, instances=instances, frequency_mhz=frequency,
        input_buffer_vecs=4096, weight_buffer_vecs=2048,
        output_buffer_vecs=2048,
    )
    return PipelineSession(
        zoo.tiny_cnn(input_size=16, channels=8),
        device,
        cfg=cfg,
        compiler_options=CompilerOptions(quantize=False, pack_data=False),
    )


@pytest.fixture(scope="module")
def session():
    return make_session(instances=2)


TWO_TENANTS = TenantSet([
    TenantSpec("fast", weight=3.0, p99_slo_s=0.010),
    TenantSpec("bulk", weight=1.0, tier="batch", max_outstanding=4),
])


# -- tenancy primitives ----------------------------------------------------


class TestTenantSpec:
    def test_defaults(self):
        spec = TenantSpec("a")
        assert spec.weight == 1.0
        assert spec.tier == "interactive"
        assert spec.p99_slo_s is None
        assert spec.max_outstanding is None

    def test_validation(self):
        with pytest.raises(ServingError):
            TenantSpec("")
        with pytest.raises(ServingError):
            TenantSpec("a,b")
        with pytest.raises(ServingError):
            TenantSpec("a", weight=0.0)
        with pytest.raises(ServingError):
            TenantSpec("a", tier="gold")
        with pytest.raises(ServingError):
            TenantSpec("a", p99_slo_s=-1.0)
        with pytest.raises(ServingError):
            TenantSpec("a", max_outstanding=0)

    def test_parse_grammar(self):
        spec = parse_tenant("fast:weight=2.5:tier=batch:p99=12:cap=8")
        assert spec.name == "fast"
        assert spec.weight == 2.5
        assert spec.tier == "batch"
        assert spec.p99_slo_s == pytest.approx(0.012)
        assert spec.max_outstanding == 8
        assert parse_tenant("x").weight == 1.0
        with pytest.raises(ServingError):
            parse_tenant("x:weight")
        with pytest.raises(ServingError):
            parse_tenant("x:speed=2")
        with pytest.raises(ServingError):
            parse_tenant("x:cap=nope")


class TestTenantSet:
    def test_registration_and_lookups(self):
        assert TWO_TENANTS.names == ("fast", "bulk")
        assert TWO_TENANTS.tier_of("fast") == "interactive"
        assert TWO_TENANTS.tier_of("bulk") == "batch"
        assert TWO_TENANTS.total_weight == pytest.approx(4.0)
        assert TWO_TENANTS.slo_targets() == {"fast": 0.010}
        assert TWO_TENANTS.admission_caps() == {"bulk": 4}
        assert not TWO_TENANTS.trivial
        assert TenantSet.default().trivial

    def test_duplicate_names_rejected(self):
        with pytest.raises(ServingError):
            TenantSet([TenantSpec("a"), TenantSpec("a")])

    def test_default_set_with_slo_is_not_trivial(self):
        tuned = TenantSet([TenantSpec(DEFAULT_TENANT, p99_slo_s=0.01)])
        assert not tuned.trivial

    def test_parse_tenants(self):
        tenants = parse_tenants(["a:weight=2", "b:tier=batch"])
        assert tenants.names == ("a", "b")
        assert tenants.get("b").tier == "batch"


class TestAssignment:
    def test_weight_proportional_counts(self):
        requests = [Request(i, i * 1e-3) for i in range(8)]
        tagged = assign_tenants(
            requests,
            TenantSet([TenantSpec("a", weight=3.0), TenantSpec("b")]),
        )
        counts = {}
        for request in tagged:
            counts[request.tenant] = counts.get(request.tenant, 0) + 1
        assert counts == {"a": 6, "b": 2}
        # Arrival order and indices are untouched.
        assert [r.index for r in tagged] == [r.index for r in requests]
        assert [r.arrival for r in tagged] == [
            r.arrival for r in requests
        ]

    def test_existing_tags_kept(self):
        requests = [Request(0, 0.0, tenant="keep"), Request(1, 0.0)]
        tagged = assign_tenants(
            requests, TenantSet([TenantSpec("keep"), TenantSpec("x")])
        )
        assert tagged[0].tenant == "keep"

    def test_split_clients_largest_remainder(self):
        groups = split_clients(
            5, TenantSet([TenantSpec("a", weight=3.0), TenantSpec("b")])
        )
        assert dict(groups) == {"a": 4, "b": 1}
        assert sum(count for _, count in groups) == 5


class TestMergeStreams:
    def test_indices_reminted_and_sorted(self):
        a = make_requests("fixed-qps", 3, qps=100.0, tenant="a")
        b = make_requests("fixed-qps", 3, qps=150.0, tenant="b")
        merged = merge_streams(a, b)
        assert [r.index for r in merged] == list(range(6))
        arrivals = [r.arrival for r in merged]
        assert arrivals == sorted(arrivals)
        assert {r.tenant for r in merged} == {"a", "b"}
        with pytest.raises(ServingError):
            merge_streams()


# -- weighted-fair policy --------------------------------------------------


class TestWeightedFair:
    def test_slices_follow_weights(self):
        policy = WeightedFair(TenantSet([
            TenantSpec("a", weight=3.0), TenantSpec("b", weight=1.0),
        ]))
        assert policy._slice("a", 4) == range(0, 3)
        assert policy._slice("b", 4) == range(3, 4)
        # Unregistered tenants and empty slices fall back to the pool.
        assert policy._slice("ghost", 4) == range(4)
        assert policy._slice("b", 1) == range(1)

    def test_slices_partition_the_pool_despite_float_error(self):
        # 3 * 1.9 / 1.9 floats to 2.999...96; the last slice must
        # still end at the pool boundary.
        solo = WeightedFair(TenantSet([TenantSpec("a", weight=1.9)]))
        assert solo._slice("a", 3) == range(0, 3)
        pair = WeightedFair(TenantSet([
            TenantSpec("a", weight=1.9), TenantSpec("b", weight=0.2),
        ]))
        assert pair._slice("a", 7).start == 0
        assert pair._slice("b", 7).stop == 7
        assert pair._slice("a", 7).stop == pair._slice("b", 7).start

    def test_single_tenant_is_round_robin(self, session):
        pool = ShardPool.replicate(session, 3)
        fair = Scheduler(pool.shards, "weighted-fair")
        robin = Scheduler(pool.shards, "round-robin")
        for step in range(7):
            assert fair.assign(1, 0.0).name == robin.assign(1, 0.0).name

    def test_flood_stays_in_slice(self, session):
        pool = ShardPool.replicate(session, 4)
        policy = WeightedFair(TenantSet([
            TenantSpec("fast", weight=3.0), TenantSpec("bulk"),
        ]))
        scheduler = Scheduler(pool.shards, policy)
        picks = {
            scheduler.assign(1, 0.0, tenant="bulk").name
            for _ in range(10)
        }
        assert picks == {"shard3"}
        fast_picks = {
            scheduler.assign(1, 0.0, tenant="fast").name
            for _ in range(9)
        }
        assert fast_picks == {"shard0", "shard1", "shard2"}


# -- the WorkloadSpec API --------------------------------------------------


class TestWorkloadSpec:
    def test_eager_validation(self):
        with pytest.raises(ServingError):
            WorkloadSpec(policy="warp-speed")
        with pytest.raises(ServingError):
            WorkloadSpec(engine="psychic")
        with pytest.raises(ServingError):
            WorkloadSpec(max_events=0)
        with pytest.raises(ServingError):
            WorkloadSpec(batcher="not options")

    def test_tagged_traffic_needs_registered_tenants(self):
        traffic = [Request(0, 0.0, tenant="ghost")]
        with pytest.raises(ServingError):
            WorkloadSpec(traffic=traffic)
        with pytest.raises(ServingError):
            WorkloadSpec(
                traffic=traffic, tenants=TenantSet([TenantSpec("real")])
            )
        spec = WorkloadSpec(
            traffic=traffic, tenants=[TenantSpec("ghost")]
        )
        assert spec.tenants.names == ("ghost",)

    def test_traffic_generator_materialised(self):
        spec = WorkloadSpec(
            traffic=(Request(i, 0.0) for i in range(3))
        )
        assert len(spec.traffic) == 3
        assert len(spec.with_traffic(spec.traffic).traffic) == 3

    def test_scenario_excludes_autoscaler(self):
        from repro.serving import AutoscalerOptions, FailureScenario

        with pytest.raises(ServingError):
            WorkloadSpec(
                scenario=FailureScenario.kill("shard0", at=0.01),
                autoscale=AutoscalerOptions(
                    min_shards=1, max_shards=2,
                    target_utilisation=0.5, warmup_s=0.01, tick_s=0.01,
                ),
            )

    def test_run_requires_traffic(self, session):
        pool = ShardPool.replicate(session, 1)
        with pytest.raises(ServingError):
            ShardServer(pool).run(WorkloadSpec())

    def test_describe_mentions_tenants(self):
        spec = WorkloadSpec(
            policy="weighted-fair", tenants=TWO_TENANTS
        )
        text = spec.describe()
        assert "weighted-fair" in text
        assert "fast" in text and "bulk" in text


class TestDeprecatedConstructor:
    def test_warns_and_builds_equivalent_spec(self, session):
        pool = ShardPool.replicate(session, 2)
        options = BatcherOptions(max_batch=3, max_wait_s=5e-4)
        with pytest.warns(DeprecationWarning):
            legacy = ShardServer(pool, "least-loaded", options)
        assert legacy.spec.policy == "least-loaded"
        assert legacy.spec.batcher == options

    def test_event_identical_to_spec_form(self, session):
        pool = ShardPool.replicate(session, 2)
        traffic = make_requests("poisson", 24, qps=600.0, seed=3)
        options = BatcherOptions(max_batch=3, max_wait_s=5e-4)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old = ShardServer(pool, "least-loaded", options).serve(
                list(traffic), engine="kernel"
            )
        new = ShardServer(pool, spec=WorkloadSpec(
            policy="least-loaded", batcher=options
        )).serve(list(traffic), engine="kernel")
        assert old == new

    def test_spec_plus_knobs_rejected(self, session):
        pool = ShardPool.replicate(session, 1)
        with pytest.raises(ServingError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                ShardServer(
                    pool, "round-robin", spec=WorkloadSpec()
                )


# -- serving with tenants --------------------------------------------------


def two_tenant_traffic(count=24, seed=5):
    fast = make_requests(
        "poisson", count, qps=800.0, seed=seed, tenant="fast"
    )
    bulk = make_requests(
        "poisson", count, qps=1200.0, seed=seed + 1, tenant="bulk"
    )
    return merge_streams(fast, bulk)


class TestTenantServing:
    def test_tiers_never_mix_in_a_batch(self, session):
        pool = ShardPool.replicate(session, 2)
        report = ShardServer(pool).run(WorkloadSpec(
            traffic=two_tenant_traffic(),
            policy="weighted-fair",
            batcher=BatcherOptions(max_batch=4, max_wait_s=2e-3),
            tenants=TWO_TENANTS,
        ))
        by_batch = {}
        for record in report.records:
            by_batch.setdefault(
                (record.shard, record.started), set()
            ).add(TWO_TENANTS.tier_of(record.tenant))
        assert by_batch, "no batches dispatched"
        for tiers in by_batch.values():
            assert len(tiers) == 1, "a batch mixed incompatible tiers"

    def test_shared_mode_mixes(self, session):
        pool = ShardPool.replicate(session, 2)
        tenants = TenantSet([
            TenantSpec("fast", weight=3.0),
            TenantSpec("bulk", tier="batch"),
        ])
        report = ShardServer(pool).run(WorkloadSpec(
            traffic=[
                Request(0, 0.0, tenant="fast"),
                Request(1, 0.0, tenant="bulk"),
            ],
            batcher=BatcherOptions(max_batch=2, tenant_mode="shared"),
            tenants=tenants,
        ))
        sizes = {record.batch_size for record in report.records}
        assert sizes == {2}

    def test_admission_cap_sheds_and_accounts(self, session):
        pool = ShardPool.replicate(session, 1)
        tenants = TenantSet([TenantSpec("bulk", max_outstanding=2)])
        burst = [
            Request(i, 0.0, tenant="bulk") for i in range(8)
        ]
        report = ShardServer(pool).run(WorkloadSpec(
            traffic=burst,
            batcher=BatcherOptions(max_batch=2),
            tenants=tenants,
        ))
        assert report.admission_shed > 0
        assert report.admission_shed == report.shed
        assert report.admission_shed_by_tenant == {
            "bulk": report.admission_shed
        }
        assert report.count + report.shed + report.unserved == 8
        breakdown = report.per_tenant()["bulk"]
        assert breakdown.admission_shed == report.admission_shed
        assert breakdown.issued == 8

    def test_per_tenant_slo_sheds_surgically(self, session):
        pool = ShardPool.replicate(session, 1)
        tenants = TenantSet([
            # An unholdable target: every window breaches immediately.
            TenantSpec("fast", p99_slo_s=1e-7),
            TenantSpec("steady"),
        ])
        fast = make_requests(
            "fixed-qps", 20, qps=2000.0, tenant="fast"
        )
        steady = make_requests(
            "fixed-qps", 20, qps=2000.0, seed=1, tenant="steady"
        )
        report = ShardServer(pool).run(WorkloadSpec(
            traffic=merge_streams(fast, steady),
            batcher=BatcherOptions(max_batch=2),
            tenants=tenants,
        ))
        assert report.shed_by_tenant.get("fast", 0) > 0
        assert report.shed_by_tenant.get("steady", 0) == 0
        assert report.tenant_slo_targets == {"fast": 1e-7}
        served_tenants = {r.tenant for r in report.records}
        assert "steady" in served_tenants

    def test_closed_loop_tenant_groups(self, session):
        pool = ShardPool.replicate(session, 2)
        tenants = TenantSet([
            TenantSpec("a", weight=2.0), TenantSpec("b"),
        ])
        source = ClosedLoopClientPool(
            clients=3, requests=12, think_time_s=0.0, tenants=tenants
        )
        report = ShardServer(pool).run(WorkloadSpec(
            traffic=source, tenants=tenants,
        ))
        counts = {}
        for record in report.records:
            counts[record.tenant] = counts.get(record.tenant, 0) + 1
        assert set(counts) == {"a", "b"}
        assert sum(counts.values()) == 12

    def test_trace_tenant_column(self, session, tmp_path):
        trace = tmp_path / "tagged.csv"
        trace.write_text(
            "arrival,tenant\n0.0,a\n0.001,b\n0.002,a\n"
        )
        pairs = load_tagged_trace(trace)
        assert pairs == [(0.0, "a"), (0.001, "b"), (0.002, "a")]
        source = TraceSource.load(trace)
        assert source.tenanted
        pool = ShardPool.replicate(session, 1)
        report = ShardServer(pool).run(WorkloadSpec(
            traffic=source,
            tenants=TenantSet([TenantSpec("a"), TenantSpec("b")]),
        ))
        assert report.per_tenant()["a"].count == 2
        assert report.per_tenant()["b"].count == 1


# -- report schema ---------------------------------------------------------


class TestReportSchema:
    def test_schema_2_and_tenant_breakdowns(self, session):
        pool = ShardPool.replicate(session, 2)
        report = ShardServer(pool).run(WorkloadSpec(
            traffic=two_tenant_traffic(),
            policy="weighted-fair",
            batcher=BatcherOptions(max_batch=4, max_wait_s=2e-3),
            tenants=TWO_TENANTS,
        ))
        payload = report.to_dict()
        assert payload["schema"] == 2
        assert set(payload["tenants"]) == {"fast", "bulk"}
        fast = payload["tenants"]["fast"]
        assert fast["slo_target_s"] == pytest.approx(0.010)
        assert fast["count"] + fast["shed"] + fast["unserved"] == (
            fast["issued"]
        )
        json.dumps(payload)  # round-trippable

    def test_all_shed_note_in_describe(self, session):
        pool = ShardPool.replicate(session, 1)
        tenants = TenantSet([TenantSpec("x", p99_slo_s=1e-9)])
        report = ShardServer(pool).run(WorkloadSpec(
            traffic=[Request(i, 0.0, tenant="x") for i in range(4)],
            batcher=BatcherOptions(max_batch=1),
            tenants=tenants,
        ))
        if report.shed and not report.records:
            assert "all requests shed" in report.describe()

    def test_default_run_schema_unchanged_otherwise(self, session):
        pool = ShardPool.replicate(session, 1)
        report = ShardServer(pool).serve(make_requests("uniform", 4))
        payload = report.to_dict()
        assert payload["schema"] == 2
        assert payload["admission_shed"] == 0
        assert payload["tenants"] == {
            DEFAULT_TENANT: payload["tenants"][DEFAULT_TENANT]
        }


# -- engine identity and properties ----------------------------------------


class TestEngineIdentity:
    def test_default_tenant_byte_identity(self, session):
        pool = ShardPool.replicate(session, 2)
        server = ShardServer(pool, spec=WorkloadSpec(
            policy="weighted-fair",
            batcher=BatcherOptions(max_batch=3, max_wait_s=5e-4),
        ))
        traffic = make_requests("poisson", 30, qps=900.0, seed=9)
        kernel = server.serve(list(traffic), engine="kernel")
        fast = server.serve(list(traffic), engine="fastforward")
        assert fast == kernel

    def test_tenanted_run_falls_back_to_kernel(self, session):
        pool = ShardPool.replicate(session, 2)
        server = ShardServer(pool)
        report = server.run(WorkloadSpec(
            traffic=two_tenant_traffic(),
            tenants=TWO_TENANTS,
            engine="auto",
        ))
        assert server.last_engine == "kernel"
        assert report.count > 0

    def test_forced_fastforward_rejects_tenants(self, session):
        pool = ShardPool.replicate(session, 2)
        with pytest.raises(ServingError):
            ShardServer(pool).run(WorkloadSpec(
                traffic=two_tenant_traffic(),
                tenants=TWO_TENANTS,
                engine="fastforward",
            ))


class TestProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        weight=st.floats(min_value=0.25, max_value=8.0,
                         allow_nan=False, allow_infinity=False),
        pool_size=st.integers(min_value=1, max_value=3),
        max_batch=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_single_tenant_weighted_fair_is_round_robin(
        self, session, weight, pool_size, max_batch, seed
    ):
        """Any single-tenant weight: weighted-fair == round-robin,
        event for event."""
        pool = ShardPool.replicate(session, pool_size)
        traffic = make_requests("poisson", 24, qps=700.0, seed=seed)
        tenants = TenantSet([TenantSpec("solo", weight=weight)])
        tagged = [
            Request(r.index, r.arrival, tenant="solo") for r in traffic
        ]
        options = BatcherOptions(max_batch=max_batch, max_wait_s=1e-3)
        fair = ShardServer(pool).run(WorkloadSpec(
            traffic=tagged, policy="weighted-fair",
            batcher=options, tenants=tenants, engine="kernel",
        ))
        robin = ShardServer(pool).run(WorkloadSpec(
            traffic=tagged, policy="round-robin",
            batcher=options, tenants=tenants, engine="kernel",
        ))
        def strip(report):
            return [
                (r.index, r.arrival, r.dispatched, r.started,
                 r.completed, r.shard, r.batch_size)
                for r in report.records
            ]

        assert strip(fair) == strip(robin)

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        max_batch=st.integers(min_value=1, max_value=4),
        cap=st.one_of(st.none(), st.integers(min_value=1, max_value=3)),
        slo_ms=st.one_of(
            st.none(), st.floats(min_value=0.01, max_value=5.0)
        ),
    )
    def test_per_tenant_accounting_sums_to_global(
        self, session, seed, max_batch, cap, slo_ms
    ):
        """served + shed + unserved per tenant folds to the report's
        global counters for random tenant mixes and controls."""
        pool = ShardPool.replicate(session, 2)
        tenants = TenantSet([
            TenantSpec("fast", weight=2.0, p99_slo_s=(
                slo_ms * 1e-3 if slo_ms is not None else None
            )),
            TenantSpec("bulk", tier="batch", max_outstanding=cap),
        ])
        report = ShardServer(pool).run(WorkloadSpec(
            traffic=two_tenant_traffic(count=16, seed=seed),
            policy="weighted-fair",
            batcher=BatcherOptions(max_batch=max_batch),
            tenants=tenants,
            engine="kernel",
        ))
        breakdowns = report.per_tenant()
        assert sum(b.count for b in breakdowns.values()) == report.count
        assert sum(b.shed for b in breakdowns.values()) == report.shed
        assert sum(
            b.admission_shed for b in breakdowns.values()
        ) == report.admission_shed
        assert sum(
            b.unserved for b in breakdowns.values()
        ) == report.unserved
        assert (
            report.count + report.shed + report.unserved == 32
        )
        for breakdown in breakdowns.values():
            assert breakdown.count + breakdown.shed + (
                breakdown.unserved
            ) == breakdown.issued
            assert breakdown.admission_shed <= breakdown.shed

"""Hypothesis properties of the DSE: the search must stay inside the
Table-2 constraint set and behave monotonically in its options."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse import explore_hardware, run_dse
from repro.dse.space import DseOptions
from repro.fpga import get_device
from repro.ir import zoo


@settings(max_examples=10, deadline=None)
@given(
    device_name=st.sampled_from(["vu9p", "zcu102", "pynq-z1", "ku115"]),
    max_instances=st.one_of(st.none(), st.integers(1, 4)),
)
def test_candidates_respect_constraints(device_name, max_instances):
    device = get_device(device_name)
    candidates = explore_hardware(
        device, DseOptions(max_instances=max_instances)
    )
    assert candidates
    for cand in candidates:
        cfg = cand.cfg
        # Table 2's constraint set.
        assert cfg.pi >= cfg.po >= 1
        assert cfg.pt in (4, 6)
        assert cand.total.fits_in(device.resources)
        if max_instances is not None:
            assert cfg.instances <= max_instances
        # Consistency of the reported budgets.
        assert cand.total.dsps == cand.per_instance.dsps * cfg.instances


@settings(max_examples=6, deadline=None)
@given(cap=st.integers(1, 3))
def test_capping_instances_never_helps_throughput(cap):
    device = get_device("vu9p")
    net = zoo.tiny_cnn(input_size=32)
    capped = run_dse(device, net, DseOptions(max_instances=cap))
    free = run_dse(device, net, DseOptions())
    assert free.throughput_gops >= capped.throughput_gops - 1e-9


def test_bigger_buffers_never_hurt_latency():
    """Under the latency objective, larger on-chip buffers can only
    reduce group counts / widen the feasible mapping set.  (Under the
    throughput objective the comparison is not monotone: more BRAM per
    instance competes with instance count.)"""
    device = get_device("zcu102")
    net = zoo.vgg16(input_size=64, include_fc=False)
    small = run_dse(
        device, net,
        DseOptions(buffer_presets=(8192, 4096, 4096),
                   objective="latency"),
    )
    big = run_dse(
        device, net,
        DseOptions(buffer_presets=(32768, 16384, 16384),
                   objective="latency"),
    )
    assert big.estimate.latency <= small.estimate.latency * 1.0001


def test_dse_deterministic():
    device = get_device("pynq-z1")
    net = zoo.tiny_cnn(input_size=32)
    a = run_dse(device, net)
    b = run_dse(device, net)
    assert a.cfg == b.cfg
    assert [(m.layer_name, m.mode, m.dataflow) for m in a.mapping] == [
        (m.layer_name, m.mode, m.dataflow) for m in b.mapping
    ]
    assert a.estimate.latency == pytest.approx(b.estimate.latency)

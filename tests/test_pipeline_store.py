"""Tests for repro.pipeline.store — on-disk persistence of the
evaluation cache — and the process-pool DSE executor."""

import pickle
import zlib

import pytest

from repro.dse import run_dse
from repro.dse.space import DseOptions
from repro.errors import DseError, ReproError
from repro.estimator.calibration import get_calibration
from repro.ir import zoo
from repro.pipeline import EvaluationCache, EvaluationStore, PipelineSession
from repro.pipeline.store import MAGIC, STORE_VERSION


def _populate(cache, cfg, device, *, with_error=False):
    """Run a few real estimates (and optionally a memoized failure)."""
    cal = get_calibration(device.name)
    net = zoo.tiny_cnn()
    for info in net.compute_layers():
        for dataflow in ("is", "ws"):
            try:
                cache.estimate(cfg, device, info, "spat", dataflow, cal)
            except ReproError:
                pass
    if with_error:
        # fc6 of VGG16 needs GC > 1 on embedded buffers, which IS
        # rejects — a memoized failure entry.
        info = zoo.vgg16().find("fc6")
        with pytest.raises(ReproError):
            cache.estimate(cfg, device, info, "spat", "is", cal)


class TestStoreRoundTrip:
    def test_estimates_and_partitions_round_trip(
        self, tmp_path, cfg_pt4, pynq
    ):
        cache = EvaluationCache()
        _populate(cache, cfg_pt4, pynq)
        store = EvaluationStore(tmp_path / "cache")
        written = store.flush(cache)
        assert written > 0

        estimates, partitions = cache.snapshot_entries()
        loaded_est, loaded_part = EvaluationStore(tmp_path / "cache").load()
        assert loaded_est == estimates
        assert loaded_part == partitions

    def test_warm_cache_serves_hits_without_recompute(
        self, tmp_path, cfg_pt4, pynq
    ):
        first = EvaluationCache()
        _populate(first, cfg_pt4, pynq)
        store = EvaluationStore(tmp_path)
        store.flush(first)

        second = EvaluationCache()
        EvaluationStore(tmp_path).warm(second)
        _populate(second, cfg_pt4, pynq)
        stats = second.stats
        assert stats.misses == 0
        assert stats.hits == stats.lookups > 0

    def test_memoized_failures_round_trip(self, tmp_path, cfg_pynq_paper,
                                          pynq):
        first = EvaluationCache()
        _populate(first, cfg_pynq_paper, pynq, with_error=True)
        store = EvaluationStore(tmp_path)
        store.flush(first)

        second = EvaluationCache()
        EvaluationStore(tmp_path).warm(second)
        info = zoo.vgg16().find("fc6")
        cal = get_calibration(pynq.name)
        with pytest.raises(ReproError) as excinfo:
            second.estimate(cfg_pynq_paper, pynq, info, "spat", "is", cal)
        assert "fc6" in str(excinfo.value)
        assert second.stats.misses == 0  # served from the persisted entry

    def test_flush_is_delta_only_and_idempotent(self, tmp_path, cfg_pt4,
                                                pynq):
        cache = EvaluationCache()
        _populate(cache, cfg_pt4, pynq)
        store = EvaluationStore(tmp_path)
        assert store.flush(cache) > 0
        # Nothing new computed: the second flush writes nothing.
        assert store.flush(cache) == 0
        assert len(store.segments()) == 1

    def test_warmed_entries_are_not_reflushed(self, tmp_path, cfg_pt4,
                                              pynq):
        first = EvaluationCache()
        _populate(first, cfg_pt4, pynq)
        EvaluationStore(tmp_path).flush(first)

        second = EvaluationCache()
        store = EvaluationStore(tmp_path)
        store.warm(second)
        assert store.flush(second) == 0  # all warm, no dirty delta

    def test_concurrent_writers_use_distinct_segments(self, tmp_path,
                                                      cfg_pt4, cfg_pt6,
                                                      pynq):
        store = EvaluationStore(tmp_path)
        a, b = EvaluationCache(), EvaluationCache()
        _populate(a, cfg_pt4, pynq)
        _populate(b, cfg_pt6, pynq)
        store.flush(a)
        store.flush(b)
        assert len(store.segments()) == 2
        estimates, _ = EvaluationStore(tmp_path).load()
        merged = dict(a.snapshot_entries()[0])
        merged.update(b.snapshot_entries()[0])
        assert estimates == merged

    def test_compact_merges_segments(self, tmp_path, cfg_pt4, cfg_pt6,
                                     pynq):
        store = EvaluationStore(tmp_path)
        for cfg in (cfg_pt4, cfg_pt6):
            cache = EvaluationCache()
            _populate(cache, cfg, pynq)
            store.flush(cache)
        before, _ = EvaluationStore(tmp_path).load()
        assert store.compact() == 2
        assert len(store.segments()) == 1
        after, _ = EvaluationStore(tmp_path).load()
        assert after == before


class TestStoreRobustness:
    def _flushed_store(self, tmp_path, cfg, device):
        cache = EvaluationCache()
        _populate(cache, cfg, device)
        store = EvaluationStore(tmp_path)
        store.flush(cache)
        return store

    def test_version_mismatch_rejected(self, tmp_path, cfg_pt4, pynq):
        cache = EvaluationCache()
        _populate(cache, cfg_pt4, pynq)
        EvaluationStore(tmp_path, version=STORE_VERSION + 1).flush(cache)
        reader = EvaluationStore(tmp_path)
        estimates, partitions = reader.load()
        assert estimates == {} and partitions == {}
        assert reader.stats.segments_skipped == 1

    def test_truncated_segment_skipped(self, tmp_path, cfg_pt4, pynq):
        store = self._flushed_store(tmp_path, cfg_pt4, pynq)
        segment = store.segments()[0]
        blob = segment.read_bytes()
        segment.write_bytes(blob[: len(blob) // 2])
        reader = EvaluationStore(tmp_path)
        estimates, _ = reader.load()
        assert estimates == {}
        assert reader.stats.segments_skipped == 1

    def test_flipped_byte_fails_checksum(self, tmp_path, cfg_pt4, pynq):
        store = self._flushed_store(tmp_path, cfg_pt4, pynq)
        segment = store.segments()[0]
        blob = bytearray(segment.read_bytes())
        blob[-1] ^= 0xFF
        segment.write_bytes(bytes(blob))
        reader = EvaluationStore(tmp_path)
        assert reader.load() == ({}, {})
        assert reader.stats.segments_skipped == 1

    def test_foreign_file_skipped_good_segment_survives(
        self, tmp_path, cfg_pt4, pynq
    ):
        store = self._flushed_store(tmp_path, cfg_pt4, pynq)
        (tmp_path / "zz-garbage.seg").write_bytes(b"not a segment")
        # Well-formed envelope around a non-store payload is skipped too.
        payload = pickle.dumps(["not", "a", "store", "dict"])
        (tmp_path / "zz-list.seg").write_bytes(
            MAGIC + zlib.crc32(payload).to_bytes(4, "little") + payload
        )
        reader = EvaluationStore(tmp_path)
        estimates, _ = reader.load()
        assert len(estimates) > 0
        assert reader.stats.segments_loaded == 1
        assert reader.stats.segments_skipped == 2

    def test_failed_flush_keeps_delta_dirty(self, tmp_path, cfg_pt4,
                                            pynq, monkeypatch):
        cache = EvaluationCache()
        _populate(cache, cfg_pt4, pynq)
        store = EvaluationStore(tmp_path)

        def explode(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(type(store), "flush_entries", explode)
        with pytest.raises(OSError):
            store.flush(cache)
        monkeypatch.undo()
        # The delta survived the failure and persists on retry.
        assert store.flush(cache) > 0
        loaded_est, _ = EvaluationStore(tmp_path).load()
        assert loaded_est == cache.snapshot_entries()[0]

    def test_no_tmp_files_left_behind(self, tmp_path, cfg_pt4, pynq):
        self._flushed_store(tmp_path, cfg_pt4, pynq)
        assert [p.name for p in tmp_path.iterdir() if ".tmp" in p.name] == []

    def test_path_collides_with_file(self, tmp_path):
        target = tmp_path / "occupied"
        target.write_text("hello")
        with pytest.raises(ReproError):
            EvaluationStore(target)

    def test_empty_store_loads_empty(self, tmp_path):
        store = EvaluationStore(tmp_path / "never-created")
        assert store.load() == ({}, {})
        assert store.stats.segments_loaded == 0


# -- session integration ----------------------------------------------------


class TestSessionStore:
    def test_session_close_flushes_and_warms_next(self, tmp_path, pynq):
        network = zoo.tiny_cnn(input_size=32)
        with PipelineSession(network, pynq, store=tmp_path) as session:
            cold = session.dse()
        assert session.store.stats.estimates_flushed > 0

        warm_session = PipelineSession(network, pynq, store=tmp_path)
        warm = warm_session.dse()
        stats = warm_session.cache_stats
        assert stats.misses == 0
        assert stats.estimate_hit_rate == 1.0
        assert (warm.cfg, warm.mapping, warm.estimate) == (
            cold.cfg, cold.mapping, cold.estimate
        )
        assert warm_session.close() == 0  # nothing new to persist

    def test_store_accepts_instance(self, tmp_path, pynq):
        store = EvaluationStore(tmp_path)
        session = PipelineSession(zoo.tiny_cnn(input_size=32), pynq,
                                  store=store)
        assert session.store is store

    def test_sessionless_close_is_noop(self, pynq):
        session = PipelineSession(zoo.tiny_cnn(input_size=32), pynq)
        assert session.close() == 0


# -- process executor -------------------------------------------------------


def _design_point(result):
    return result.cfg, result.mapping, result.estimate


class TestProcessExecutor:
    @pytest.mark.parametrize("model", ["tiny_cnn", "tiny_mlp"])
    def test_matches_brute_force(self, pynq, model):
        network = zoo.get_model(model)
        seed = run_dse(pynq, network, DseOptions(use_cache=False,
                                                 prune=False))
        proc = run_dse(
            pynq, network,
            DseOptions(jobs=2, executor="process", best_first=True),
        )
        assert _design_point(proc) == _design_point(seed)
        assert [_design_point(r) for r in proc.runners_up] == [
            _design_point(r) for r in seed.runners_up
        ]

    def test_uncached_process_run_matches(self, pynq):
        network = zoo.tiny_cnn(input_size=32)
        seed = run_dse(pynq, network, DseOptions(use_cache=False,
                                                 prune=False))
        proc = run_dse(
            pynq, network,
            DseOptions(jobs=2, executor="process", use_cache=False,
                       prune=False),
        )
        assert _design_point(proc) == _design_point(seed)
        assert proc.cache_stats is None

    def test_worker_deltas_merge_into_parent_cache(self, pynq):
        network = zoo.tiny_cnn(input_size=32)
        cache = EvaluationCache()
        run_dse(
            pynq, network,
            DseOptions(jobs=2, executor="process", prune=False),
            cache=cache,
        )
        assert len(cache) > 0
        # Merged entries are dirty: a store flush would persist them.
        estimates, partitions = cache.take_dirty()
        assert len(estimates) == len(cache)
        assert len(partitions) > 0

    def test_process_run_can_persist_through_store(self, tmp_path, pynq):
        network = zoo.tiny_cnn(input_size=32)
        options = DseOptions(jobs=2, executor="process", prune=False)
        with PipelineSession(network, pynq, options,
                             store=tmp_path) as session:
            cold = session.dse()
        warm_session = PipelineSession(network, pynq, options,
                                       store=tmp_path)
        warm = warm_session.dse()
        assert _design_point(warm) == _design_point(cold)
        # Workers are seeded from the warmed parent cache: no recompute,
        # so nothing new to flush.
        assert warm_session.close() == 0


class TestExecutorOption:
    def test_serial_with_jobs_upgrades_to_thread(self):
        assert DseOptions(jobs=2).executor == "thread"
        assert DseOptions(jobs=2, executor="thread").executor == "thread"

    def test_serial_default(self):
        assert DseOptions().executor == "serial"

    def test_process_kept(self):
        assert DseOptions(jobs=2, executor="process").executor == "process"

    def test_unknown_executor_rejected(self):
        with pytest.raises(DseError):
            DseOptions(executor="gpu")


# -- CLI --------------------------------------------------------------------


class TestCliCacheDir:
    def test_dse_cache_dir_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        argv = ["dse", "--model", "tiny_cnn", "--device", "pynq-z1",
                "--cache-dir", str(tmp_path / "cache"), "-v"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "store" in first and "flushed" in first
        assert main(argv) == 0  # second invocation starts warm
        second = capsys.readouterr().out
        assert "100.0%" in second  # estimate hit rate served from disk

    def test_dse_process_executor(self, capsys):
        from repro.cli import main

        assert main([
            "dse", "--model", "tiny_cnn", "--device", "pynq-z1",
            "--jobs", "2", "--executor", "process",
        ]) == 0
        assert "PI=" in capsys.readouterr().out

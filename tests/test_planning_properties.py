"""Property tests for the capacity planner's two analytic claims.

Hypothesis attacks what ``docs/planning.md`` argues on paper:

* **admissibility** — the Tier A prune reasons are proofs: on
  randomized small grids and workloads, a plan the scorer prunes is
  *never* feasible under event-kernel replay, whatever the batcher,
  policy and batch mix end up doing;
* **monotonicity** — the ranking surrogate responds sanely to load:
  utilisation and the queueing-wait tail never decrease as the
  arrival rate grows, and neither does the projected p99 once the
  batch-fill credit (which legitimately shrinks with rate) is off.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline.session import _load_network
from repro.planning import (
    AnalyticPlanScorer,
    ArrivalProfile,
    KindSpec,
    PlanGrid,
    ReplayJob,
    resolve_kinds,
)
from repro.planning.replay import _ReplayState
from repro.serving.traffic import make_requests

SEED = 2020

#: Resolved once per test module: kind resolution runs the estimator
#: stack, and the properties only need the (fixed) timing truths.
_KINDS = None


def planner_kinds():
    global _KINDS
    if _KINDS is None:
        _KINDS = resolve_kinds(
            _load_network("tiny_cnn"),
            (KindSpec("vu9p", 0, 2), KindSpec("pynq-z1", 0, 3)),
            seed=SEED,
        )
    return _KINDS


# -- admissibility ---------------------------------------------------------


@settings(max_examples=8, deadline=None)
@given(
    vu9p_max=st.integers(1, 2),
    pynq_max=st.integers(1, 3),
    batches=st.sets(
        st.sampled_from([1, 2, 6, 12]), min_size=1, max_size=3
    ),
    rate=st.floats(2e5, 3e6),
    slo_us=st.floats(20.0, 250.0),
    seed=st.integers(0, 1023),
)
def test_pruned_plans_never_replay_feasible(
    vu9p_max, pynq_max, batches, rate, slo_us, seed
):
    """Every pruned plan of a randomized grid is replayed through the
    event kernel; none may meet the SLO (the bounds are admissible)."""
    kinds = planner_kinds()
    grid = PlanGrid(
        (
            KindSpec("vu9p", 0, vu9p_max),
            KindSpec("pynq-z1", 0, pynq_max),
        ),
        tuple(sorted(batches)),
    )
    scorer = AnalyticPlanScorer(
        service_seconds=[kind.probe_seconds() for kind in kinds],
        instances=[kind.instances for kind in kinds],
        weights=[kind.weight for kind in kinds],
    )
    requests = make_requests("poisson", 48, qps=rate, seed=seed)
    profile = ArrivalProfile.from_requests(requests)
    slo_s = slo_us * 1e-6
    max_wait_s = 2.0 * max(kind.probe_seconds() for kind in kinds)
    scores = scorer.score(
        grid.counts, grid.batches, profile, slo_s,
        max_wait_s=max_wait_s,
    )

    pruned = [
        index for index in range(len(grid))
        if scores.pruned[index] != 0
    ]
    if not pruned:
        return
    state = _ReplayState(
        kinds,
        tuple(request.arrival for request in requests),
        "shortest-latency",
        max_wait_s,
        None,
        slo_s,
    )
    for index in pruned:
        row = state.run(ReplayJob(index, *grid.plan(index)))
        assert not row["slo_ok"], (
            f"plan {grid.plan(index)} was pruned as "
            f"{scores.pruned[index]} but replays at p99 "
            f"{row['p99_latency_s']} <= SLO {slo_s}"
        )


# -- monotonicity ----------------------------------------------------------


def _nondecreasing(low, high):
    """Elementwise ``high >= low`` with float slack; inf-inf pairs and
    the finite-to-inf transition both count as nondecreasing."""
    both_inf = np.isinf(low) & np.isinf(high)
    ok = both_inf | (high >= low * (1.0 - 1e-9) - 1e-18)
    return bool(np.all(ok))


@settings(max_examples=40, deadline=None)
@given(
    service_us=st.lists(
        st.floats(1.0, 500.0), min_size=1, max_size=3
    ),
    instances=st.data(),
    rows=st.integers(1, 6),
    rate_low=st.floats(1e3, 5e6),
    rate_step=st.floats(1.01, 50.0),
)
def test_surrogate_monotone_in_arrival_rate(
    service_us, instances, rows, rate_low, rate_step
):
    """Raising only the arrival rate never lowers utilisation, the
    queue-wait tail, or (with no batch-fill credit) the projected
    p99."""
    kinds = len(service_us)
    ni = instances.draw(
        st.lists(
            st.integers(1, 6), min_size=kinds, max_size=kinds
        ),
        label="instances",
    )
    counts = np.array(
        instances.draw(
            st.lists(
                st.lists(
                    st.integers(0, 3), min_size=kinds, max_size=kinds
                ).filter(lambda row: sum(row) > 0),
                min_size=rows,
                max_size=rows,
            ),
            label="counts",
        ),
        dtype=float,
    )
    batches = np.array(
        instances.draw(
            st.lists(
                st.integers(1, 12), min_size=rows, max_size=rows
            ),
            label="batches",
        ),
        dtype=float,
    )
    scorer = AnalyticPlanScorer(
        service_seconds=[value * 1e-6 for value in service_us],
        instances=ni,
    )
    count = 64
    # A permissive SLO keeps every plan un-pruned in both profiles, so
    # the surrogate columns stay comparable (pruned rows go NaN).
    slo_s = 1e9

    def columns(rate):
        profile = ArrivalProfile(
            count=count, rate=rate, last_arrival_s=(count - 1) / rate
        )
        return scorer.score(
            counts, batches, profile, slo_s, max_wait_s=0.0
        )

    low = columns(rate_low)
    high = columns(rate_low * rate_step)
    assert _nondecreasing(low.utilisation, high.utilisation)
    assert _nondecreasing(low.queue_wait_p99_s, high.queue_wait_p99_s)
    assert _nondecreasing(low.p99_s, high.p99_s)

"""Tests for repro.pipeline — evaluation cache, pruned/parallel DSE
equivalence, and the PipelineSession facade."""

import pytest

from repro.dse import latency_lower_bound, map_network, objective_lower_bound, run_dse
from repro.dse.space import DseOptions, explore_hardware
from repro.errors import DseError, ReproError
from repro.estimator.calibration import get_calibration
from repro.estimator.latency import estimate_layer, estimate_network
from repro.ir import zoo
from repro.pipeline import CacheStats, EvaluationCache, PipelineSession, layer_signature


# -- cache keying and dedup ------------------------------------------------


class TestLayerSignature:
    def test_identical_shapes_share_signature(self):
        net = zoo.vgg16()
        conv5_1 = net.find("conv5_1")
        conv5_2 = net.find("conv5_2")
        assert conv5_1.layer.name != conv5_2.layer.name
        assert layer_signature(conv5_1) == layer_signature(conv5_2)

    def test_fused_pool_distinguishes(self):
        net = zoo.vgg16()
        info = net.find("conv5_3")
        assert layer_signature(info, 1) != layer_signature(info, 2)

    def test_different_shapes_differ(self):
        net = zoo.vgg16()
        assert layer_signature(net.find("conv1_1")) != layer_signature(
            net.find("conv1_2")
        )
        assert layer_signature(net.find("fc6")) != layer_signature(
            net.find("fc7")
        )


class TestEvaluationCache:
    def test_hit_returns_identical_estimate(self, cfg_pt4, pynq):
        cache = EvaluationCache()
        info = zoo.tiny_cnn().compute_layers()[0]
        cal = get_calibration(pynq.name)
        first = cache.estimate(cfg_pt4, pynq, info, "spat", "is", cal)
        second = cache.estimate(cfg_pt4, pynq, info, "spat", "is", cal)
        direct = estimate_layer(cfg_pt4, pynq, info, "spat", "is", cal)
        assert first == second == direct
        stats = cache.stats
        assert stats.hits == 1 and stats.misses == 1

    def test_shape_dedup_relabels_layer_name(self, cfg_vu9p_paper, vu9p):
        cache = EvaluationCache()
        net = zoo.vgg16()
        cal = get_calibration(vu9p.name)
        a = cache.estimate(
            cfg_vu9p_paper, vu9p, net.find("conv5_1"), "wino", "ws", cal
        )
        b = cache.estimate(
            cfg_vu9p_paper, vu9p, net.find("conv5_2"), "wino", "ws", cal
        )
        assert a.layer_name == "conv5_1"
        assert b.layer_name == "conv5_2"
        assert a.latency == b.latency
        stats = cache.stats
        assert stats.shape_dedup_hits == 1

    def test_mode_dataflow_cfg_are_distinct_keys(self, cfg_pt4, cfg_pt6, pynq):
        cache = EvaluationCache()
        info = zoo.tiny_cnn().compute_layers()[0]
        cache.estimate(cfg_pt4, pynq, info, "spat", "is")
        cache.estimate(cfg_pt4, pynq, info, "spat", "ws")
        cache.estimate(cfg_pt4, pynq, info, "wino", "ws")
        cache.estimate(cfg_pt6, pynq, info, "spat", "is")
        assert cache.stats.misses == 4
        assert cache.stats.hits == 0

    def test_errors_are_memoized_and_reraised(self, cfg_pynq_paper, pynq):
        cache = EvaluationCache()
        # fc6 of full VGG16 needs an input-channel split (GC > 1) on the
        # embedded buffers, which the IS dataflow rejects.
        info = zoo.vgg16().find("fc6")
        with pytest.raises(ReproError):
            cache.estimate(cfg_pynq_paper, pynq, info, "spat", "is")
        with pytest.raises(ReproError):
            cache.estimate(cfg_pynq_paper, pynq, info, "spat", "is")
        stats = cache.stats
        assert stats.misses == 1 and stats.hits == 1
        assert stats.error_entries == 1

    def test_memoized_error_relabelled_on_dedup_hit(
        self, cfg_vu9p_paper, vu9p
    ):
        cache = EvaluationCache()
        net = zoo.vgg16()
        # conv5_1 and conv5_2 share a shape; GK > 1 makes IS infeasible
        # once buffers shrink enough — force it with a tiny weight buffer.
        from dataclasses import replace

        cfg = replace(cfg_vu9p_paper, weight_buffer_vecs=64)
        with pytest.raises(ReproError) as first:
            cache.estimate(cfg, vu9p, net.find("conv5_1"), "spat", "is")
        with pytest.raises(ReproError) as second:
            cache.estimate(cfg, vu9p, net.find("conv5_2"), "spat", "is")
        assert "conv5_1" in str(first.value)
        assert "conv5_2" in str(second.value)
        assert "conv5_1" not in str(second.value)
        assert type(second.value) is type(first.value)

    def test_partition_memo_shared_across_dataflows(self, cfg_pt4, pynq):
        cache = EvaluationCache()
        info = zoo.tiny_cnn().compute_layers()[0]
        cache.estimate(cfg_pt4, pynq, info, "spat", "is")
        cache.estimate(cfg_pt4, pynq, info, "spat", "ws")
        stats = cache.stats
        # Second dataflow misses the estimate level but reuses the
        # partition geometry.
        assert stats.partition_misses == 1
        assert stats.partition_hits == 1

    def test_partition_memo_instance_independent(self, cfg_pt4, pynq):
        from dataclasses import replace

        cache = EvaluationCache()
        info = zoo.tiny_cnn().compute_layers()[0]
        cache.estimate(cfg_pt4, pynq, info, "spat", "is")
        cache.estimate(replace(cfg_pt4, instances=2), pynq, info, "spat", "is")
        stats = cache.stats
        assert stats.misses == 2  # different bandwidth share => new estimate
        assert stats.partition_hits == 1  # ... but the same partition

    def test_clear_resets(self, cfg_pt4, pynq):
        cache = EvaluationCache()
        info = zoo.tiny_cnn().compute_layers()[0]
        cache.estimate(cfg_pt4, pynq, info, "spat", "is")
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.lookups == 0

    def test_stats_subtraction(self):
        a = CacheStats(hits=5, misses=5, partition_hits=2, partition_misses=2)
        b = CacheStats(hits=2, misses=1, partition_hits=1, partition_misses=0)
        delta = a - b
        assert delta.hits == 3 and delta.misses == 4
        assert delta.lookups == 7
        assert 0.0 <= delta.hit_rate <= 1.0


# -- prune-bound admissibility --------------------------------------------


class TestPruneBound:
    @pytest.mark.parametrize("model", ["tiny_cnn", "tiny_mlp", "alexnet"])
    @pytest.mark.parametrize("objective", ["throughput", "latency"])
    def test_bound_is_admissible(self, pynq, model, objective):
        """The compute-bound objective bound never exceeds the truth."""
        network = zoo.get_model(model)
        cal = get_calibration(pynq.name)
        total_ops = sum(i.ops for i in network.compute_layers())
        for candidate in explore_hardware(pynq, cal=cal):
            try:
                _, estimate = map_network(candidate.cfg, pynq, network, cal)
            except DseError:
                continue
            lb_latency = latency_lower_bound(candidate.cfg, pynq, network)
            assert lb_latency <= estimate.latency
            bound = objective_lower_bound(
                lb_latency, objective, total_ops, candidate.cfg.instances
            )
            if objective == "latency":
                assert bound <= estimate.latency
            else:
                assert bound <= -estimate.gops

    def test_unknown_objective_rejected(self):
        with pytest.raises(DseError):
            objective_lower_bound(1.0, "area", 100, 1)

    def test_bound_includes_bandwidth_terms(self, pynq):
        """The bound exceeds pure compute time on a memory-bound layer.

        tiny_mlp is dominated by Dense layers, whose weight streaming
        (Eq. 8) dwarfs T_CP on a small device — the Eq. 8-11 terms must
        make the bound strictly tighter than the compute-only sum.
        """
        from repro.estimator.latency import _module_times

        network = zoo.tiny_mlp()
        cfg = explore_hardware(pynq)[-1].cfg
        compute_only = sum(
            _module_times(cfg, pynq, info, "spat")[0]
            for info in network.compute_layers()
        )
        assert latency_lower_bound(cfg, pynq, network) > compute_only

    @pytest.mark.parametrize("objective", ["throughput", "latency"])
    def test_bandwidth_bound_equivalence(self, pynq, objective):
        """Pruning with the tightened bound keeps the selection *and*
        the runner-up ranking byte-identical to brute force."""
        network = zoo.tiny_mlp()  # memory-bound: the new terms do prune
        seed = run_dse(
            pynq, network,
            DseOptions(objective=objective, use_cache=False, prune=False),
        )
        fast = run_dse(
            pynq, network,
            DseOptions(objective=objective, prune=True, best_first=True),
        )
        assert fast.candidates_pruned > 0
        assert _design_point(fast) == _design_point(seed)
        assert [_design_point(r) for r in fast.runners_up] == [
            _design_point(r) for r in seed.runners_up
        ]


# -- DSE equivalence: cached / pruned / parallel vs brute force ------------


BRUTE_FORCE = DseOptions(use_cache=False, prune=False)


def _design_point(result):
    return result.cfg, result.mapping, result.estimate


class TestDseEquivalence:
    @pytest.mark.parametrize(
        "model", ["tiny_cnn", "tiny_mlp", "alexnet", "darknet19", "vgg16"]
    )
    def test_pipeline_matches_brute_force_on_zoo(self, pynq, model):
        network = zoo.get_model(model)
        seed = run_dse(pynq, network, BRUTE_FORCE)
        fast = run_dse(
            pynq, network,
            DseOptions(use_cache=True, prune=True, best_first=True, jobs=2),
        )
        assert _design_point(fast) == _design_point(seed)
        assert [_design_point(r) for r in fast.runners_up] == [
            _design_point(r) for r in seed.runners_up
        ]

    def test_vgg16_full_sweep_vu9p(self, vu9p):
        network = zoo.vgg16()
        seed = run_dse(vu9p, network,
                       DseOptions(frequency_mhz=167, **_brute_kwargs()))
        fast = run_dse(
            vu9p, network,
            DseOptions(frequency_mhz=167, best_first=True, jobs=2),
        )
        assert _design_point(fast) == _design_point(seed)
        assert fast.candidates_considered == seed.candidates_considered
        assert fast.candidates_pruned > 0
        assert fast.cache_stats is not None
        assert fast.cache_stats.hits > 0

    def test_latency_objective_equivalence(self, pynq):
        network = zoo.tiny_cnn(input_size=32)
        options = dict(objective="latency", top_k=3)
        seed = run_dse(pynq, network, DseOptions(**options, **_brute_kwargs()))
        fast = run_dse(pynq, network, DseOptions(**options, best_first=True))
        assert _design_point(fast) == _design_point(seed)
        assert [_design_point(r) for r in fast.runners_up] == [
            _design_point(r) for r in seed.runners_up
        ]

    def test_use_cache_false_wins_over_explicit_cache(self, pynq):
        network = zoo.tiny_cnn(input_size=32)
        cache = EvaluationCache()
        result = run_dse(
            pynq, network, DseOptions(use_cache=False), cache=cache
        )
        assert result.cache_stats is None
        assert cache.stats.lookups == 0  # cache untouched

    def test_precomputed_candidates(self, pynq):
        from repro.dse import explore_hardware

        network = zoo.tiny_cnn(input_size=32)
        candidates = explore_hardware(pynq)
        direct = run_dse(pynq, network, DseOptions())
        seeded = run_dse(pynq, network, DseOptions(), candidates=candidates)
        assert _design_point(direct) == _design_point(seeded)

    def test_shared_cache_across_runs(self, pynq):
        network = zoo.tiny_cnn(input_size=32)
        cache = EvaluationCache()
        first = run_dse(pynq, network, DseOptions(), cache=cache)
        second = run_dse(pynq, network, DseOptions(), cache=cache)
        assert _design_point(first) == _design_point(second)
        # The second run re-reads every estimate from the shared cache.
        assert second.cache_stats.misses == 0
        assert second.cache_stats.hits > 0

    def test_map_network_cached_equivalence(self, cfg_pynq_paper, pynq):
        network = zoo.tiny_cnn()
        cal = get_calibration(pynq.name)
        plain = map_network(cfg_pynq_paper, pynq, network, cal)
        cached = map_network(
            cfg_pynq_paper, pynq, network, cal, cache=EvaluationCache()
        )
        assert plain == cached

    def test_estimate_network_cached_equivalence(self, cfg_pynq_paper, pynq):
        network = zoo.tiny_cnn()
        cal = get_calibration(pynq.name)
        mapping, _ = map_network(cfg_pynq_paper, pynq, network, cal)
        plain = estimate_network(cfg_pynq_paper, pynq, network, mapping, cal)
        cached = estimate_network(
            cfg_pynq_paper, pynq, network, mapping, cal, EvaluationCache()
        )
        assert plain == cached


def _brute_kwargs():
    return dict(use_cache=False, prune=False)


# -- eager DseOptions validation -------------------------------------------


class TestDseOptionsValidation:
    def test_unknown_objective(self):
        with pytest.raises(DseError):
            DseOptions(objective="area")

    def test_non_positive_top_k(self):
        with pytest.raises(DseError):
            DseOptions(top_k=0)

    def test_non_positive_max_instances(self):
        with pytest.raises(DseError):
            DseOptions(max_instances=0)

    def test_non_positive_jobs(self):
        with pytest.raises(DseError):
            DseOptions(jobs=0)

    def test_bad_frequency(self):
        with pytest.raises(DseError):
            DseOptions(frequency_mhz=-100.0)

    def test_bad_buffer_presets(self):
        with pytest.raises(DseError):
            DseOptions(buffer_presets=(1024, 0, 1024))

    def test_valid_options_construct(self):
        options = DseOptions(jobs=4, top_k=1, best_first=True)
        assert options.jobs == 4


# -- NetworkEstimate memoization -------------------------------------------


class TestNetworkEstimateMemo:
    def test_latency_and_ops_cached(self, cfg_pynq_paper, pynq):
        network = zoo.tiny_cnn()
        mapping, estimate = map_network(cfg_pynq_paper, pynq, network)
        first = estimate.latency
        assert estimate.latency == first  # second read: cached
        assert "latency" in estimate.__dict__
        assert "ops" not in estimate.__dict__
        assert estimate.ops == sum(l.ops for l in estimate.layers)
        assert "ops" in estimate.__dict__


# -- PipelineSession -------------------------------------------------------


class TestPipelineSession:
    def test_dse_computed_once(self, pynq):
        session = PipelineSession(zoo.tiny_cnn(input_size=32), pynq)
        assert session.dse() is session.dse()

    def test_matches_direct_run_dse(self, pynq):
        network = zoo.tiny_cnn(input_size=32)
        session = PipelineSession(network, pynq)
        direct = run_dse(pynq, network, DseOptions())
        assert _design_point(session.dse()) == _design_point(direct)

    def test_accepts_names(self):
        session = PipelineSession("tiny_cnn", "pynq-z1")
        assert session.network.name == "tiny_cnn"
        assert session.device.name == "pynq-z1"
        assert session.calibration.name == "pynq-z1"

    def test_unknown_model_name(self):
        with pytest.raises(ReproError):
            PipelineSession("resnet-9000", "pynq-z1")

    def test_pinned_cfg_matches_map_network(self, cfg_pynq_paper, pynq):
        network = zoo.tiny_cnn()
        session = PipelineSession(network, pynq, cfg=cfg_pynq_paper)
        cal = get_calibration(pynq.name)
        mapping, estimate = map_network(cfg_pynq_paper, pynq, network, cal)
        assert session.cfg == cfg_pynq_paper
        assert session.mapping() == mapping
        assert session.estimate() == estimate

    def test_pinned_cfg_forbids_dse(self, cfg_pynq_paper, pynq):
        session = PipelineSession(zoo.tiny_cnn(), pynq, cfg=cfg_pynq_paper)
        with pytest.raises(ReproError):
            session.dse()

    def test_pinned_mapping_requires_cfg(self, pynq):
        from repro.mapping.strategy import NetworkMapping

        network = zoo.tiny_cnn()
        mapping = NetworkMapping.uniform(network)
        with pytest.raises(ReproError):
            PipelineSession(network, pynq, mapping=mapping)

    def test_pinned_mapping_used_verbatim(self, cfg_pynq_paper, pynq):
        from repro.mapping.strategy import NetworkMapping

        network = zoo.tiny_cnn()
        mapping = NetworkMapping.uniform(network, mode="spat", dataflow="ws")
        session = PipelineSession(
            network, pynq, cfg=cfg_pynq_paper, mapping=mapping
        )
        assert session.mapping() is mapping
        estimate = session.estimate()
        assert {l.mode for l in estimate.layers} == {"spat"}

    def test_compiled_and_runtime_cached(self, cfg_pynq_paper, pynq):
        session = PipelineSession(
            zoo.tiny_cnn(), pynq, cfg=cfg_pynq_paper, seed=7
        )
        assert session.compiled() is session.compiled()
        assert session.runtime(False) is session.runtime(False)

    def test_simulate_matches_simulate_network(self, cfg_pynq_paper, pynq):
        from repro.experiments.common import simulate_network

        network = zoo.tiny_cnn()
        session = PipelineSession(
            network, pynq, cfg=cfg_pynq_paper,
            compiler_options=_timing_compiler_options(),
        )
        direct = simulate_network(
            network, cfg_pynq_paper, pynq, session.mapping()
        )
        assert session.simulate().cycles == direct.cycles

    def test_describe_renders(self, pynq):
        session = PipelineSession(zoo.tiny_cnn(), pynq)
        text = session.describe()
        assert "tiny_cnn" in text and "pynq-z1" in text

    def test_sessions_share_cache(self, pynq, vu9p):
        cache = EvaluationCache()
        net = zoo.tiny_cnn(input_size=32)
        PipelineSession(net, pynq, cache=cache).dse()
        lookups_after_first = cache.stats.lookups
        PipelineSession(net, pynq, cache=cache).dse()
        stats = cache.stats
        # Second session repeats the same lookups, all hits.
        assert stats.lookups == 2 * lookups_after_first
        assert stats.misses < lookups_after_first


def _timing_compiler_options():
    from repro.compiler import CompilerOptions

    return CompilerOptions(quantize=True, pack_data=False)

"""Additional HostRuntime API coverage: memory images, fmap round
trips, host-step variants, DRAM sizing."""

import numpy as np

from repro.compiler import CompilerOptions, compile_network
from repro.ir import NetworkBuilder, zoo
from repro.mapping import NetworkMapping
from repro.runtime import HostRuntime, generate_parameters
from repro.sim.simulator import CTRL_ISSUE_CYCLES


def make_runtime(cfg, device, net=None, quantize=False, **kwargs):
    net = net or zoo.tiny_cnn(input_size=16, channels=8)
    params = generate_parameters(net, seed=1)
    mapping = NetworkMapping.uniform(net, "wino", "ws")
    compiled = compile_network(
        net, cfg, mapping, params, CompilerOptions(quantize=quantize)
    )
    return HostRuntime(compiled, device, **kwargs), net


class TestMemoryImage:
    def test_regions_allocated_for_everything(self, cfg_pt4, pynq):
        runtime, net = make_runtime(cfg_pt4, pynq)
        regions = runtime.dram.regions
        assert "fmap:in" in regions
        for info in net.compute_layers():
            assert f"wgt:{info.layer.name}" in regions
            assert f"bias:{info.layer.name}" in regions

    def test_weight_image_written(self, cfg_pt4, pynq):
        runtime, net = make_runtime(cfg_pt4, pynq)
        region = runtime.dram.region("wgt:conv1")
        data = runtime.dram.read(region.base, region.size)
        assert np.abs(data).sum() > 0

    def test_input_roundtrip(self, cfg_pt4, pynq, rng):
        runtime, net = make_runtime(cfg_pt4, pynq)
        image = rng.normal(size=net.input_shape.as_tuple())
        runtime.load_input(image)
        back = runtime._read_fmap(runtime.compiled.input_spec)
        np.testing.assert_allclose(back, image)

    def test_quantized_input_lands_on_grid(self, cfg_pt4, pynq, rng):
        runtime, net = make_runtime(cfg_pt4, pynq, quantize=True)
        image = rng.normal(size=net.input_shape.as_tuple())
        runtime.load_input(image)
        back = runtime._read_fmap(runtime.compiled.input_spec)
        ft = cfg_pt4.feature_type
        np.testing.assert_allclose(back, ft.quantize(image))

    def test_dram_sized_with_margin(self, cfg_pt4, pynq):
        runtime, _ = make_runtime(cfg_pt4, pynq)
        used = sum(r.size for r in runtime.dram.regions.values())
        assert runtime.dram.size > used


class TestHostSteps:
    def _run(self, builder_fn, cfg, device, rng):
        net = builder_fn()
        params = generate_parameters(net, seed=2)
        mapping = NetworkMapping.uniform(net, "spat", "ws")
        compiled = compile_network(
            net, cfg, mapping, params, CompilerOptions(quantize=False)
        )
        runtime = HostRuntime(compiled, device)
        image = rng.normal(size=net.input_shape.as_tuple())
        from repro.runtime import reference_inference

        out = runtime.infer(image)
        ref = reference_inference(net, params, image)
        return out, ref

    def test_avgpool_host_step(self, cfg_pt4, pynq, rng):
        def build():
            return (
                NetworkBuilder("avg", (3, 12, 12))
                .conv2d(4, padding=1, name="c")
                .avgpool2d(2, name="gap")
                .build()
            )

        out, ref = self._run(build, cfg_pt4, pynq, rng)
        np.testing.assert_allclose(out.output, ref, atol=1e-9)
        assert out.host_ops == 1

    def test_standalone_relu_host_step(self, cfg_pt4, pynq, rng):
        def build():
            # ReLU separated from the conv by a pool: not fusable.
            return (
                NetworkBuilder("r", (3, 12, 12))
                .conv2d(4, padding=1, name="c")
                .maxpool2d(3, stride=2, name="p")  # host pool
                .relu(name="act")
                .flatten(name="fl")
                .dense(5, name="fc")
                .build()
            )

        out, ref = self._run(build, cfg_pt4, pynq, rng)
        np.testing.assert_allclose(out.output, ref, atol=1e-9)
        assert out.host_ops == 3  # pool + relu + flatten


class TestCtrlPipeline:
    def test_issue_rate_lower_bounds_makespan(self, cfg_pt4, pynq):
        runtime, net = make_runtime(cfg_pt4, pynq, functional=False)
        sim = runtime.infer(np.zeros(net.input_shape.as_tuple())).sim
        # The CTRL 4-stage pipeline issues one instruction every
        # CTRL_ISSUE_CYCLES; the last one cannot start earlier.
        assert sim.cycles >= (sim.instructions - 1) * CTRL_ISSUE_CYCLES

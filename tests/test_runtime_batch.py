"""Tests for repro.runtime.batch — multi-instance batch throughput."""

import numpy as np
import pytest

from repro.arch.params import AcceleratorConfig
from repro.compiler import CompilerOptions, compile_network
from repro.dse.engine import map_network
from repro.errors import RuntimeHostError
from repro.fpga import get_device
from repro.ir import zoo
from repro.runtime import generate_parameters
from repro.runtime.batch import BatchRunner


def make_runner(instances=2, functional=False):
    device = get_device("vu9p")
    cfg = AcceleratorConfig(
        pi=4, po=4, pt=4, instances=instances, frequency_mhz=167.0,
        input_buffer_vecs=4096, weight_buffer_vecs=2048,
        output_buffer_vecs=2048,
    )
    net = zoo.tiny_cnn(input_size=16, channels=8)
    mapping, _ = map_network(cfg, device, net)
    params = generate_parameters(net)
    compiled = compile_network(
        net, cfg, mapping, params,
        CompilerOptions(quantize=False, pack_data=functional),
    )
    ops = sum(i.ops for i in net.compute_layers())
    return BatchRunner(compiled, device, ops, functional=functional), net


class TestBatchTiming:
    def test_round_robin_makespan(self):
        runner, net = make_runner(instances=2)
        images = [np.zeros(net.input_shape.as_tuple())] * 5
        result = runner.run(images)
        # 5 images over 2 instances: most-loaded runs 3 back to back.
        assert result.makespan_seconds == pytest.approx(
            3 * result.per_image_seconds
        )

    def test_full_batch_scales_throughput(self):
        single, net = make_runner(instances=1)
        multi, _ = make_runner(instances=2)
        images = [np.zeros(net.input_shape.as_tuple())] * 8
        t1 = single.run(images)
        t2 = multi.run(images)
        # Two instances halve the makespan count but each is slower
        # (shared bandwidth) -> speedup in (1, 2].
        speedup = t1.makespan_seconds / t2.makespan_seconds
        assert 1.0 < speedup <= 2.0

    def test_throughput_definition(self):
        runner, net = make_runner(instances=2)
        result = runner.run([np.zeros(net.input_shape.as_tuple())] * 4)
        assert result.throughput_gops == pytest.approx(
            result.total_ops / result.makespan_seconds / 1e9
        )
        assert result.images_per_second == pytest.approx(
            4 / result.makespan_seconds
        )

    def test_empty_batch_rejected(self):
        runner, _ = make_runner()
        with pytest.raises(RuntimeHostError):
            runner.run([])

    def test_bad_ops_rejected(self):
        device = get_device("vu9p")
        runner, net = make_runner()
        with pytest.raises(RuntimeHostError):
            BatchRunner(runner.compiled, device, 0)


class TestPerShardExecutor:
    def test_probe_simulates_once(self):
        runner, net = make_runner(instances=2)
        first = runner.probe_seconds()
        sim = runner.runtime
        runner.runtime = None  # a second probe would crash
        assert runner.probe_seconds() == first
        runner.runtime = sim

    def test_completion_offsets_round_robin(self):
        runner, net = make_runner(instances=2)
        per_image = runner.probe_seconds()
        offsets = runner.completion_offsets(5)
        # Images 0/1 finish after one latency, 2/3 after two, 4 after 3.
        assert offsets == pytest.approx(
            [per_image, per_image, 2 * per_image, 2 * per_image,
             3 * per_image]
        )
        result = runner.run([np.zeros(net.input_shape.as_tuple())] * 5)
        assert result.makespan_seconds == pytest.approx(offsets[-1])

    def test_completion_groups_coalesce_offsets(self):
        # Groups are completion_offsets with equal instants merged:
        # 5 images on 2 instances finish in rounds of 2, 2, 1.
        runner, _ = make_runner(instances=2)
        offsets = runner.completion_offsets(5)
        groups = runner.completion_groups(5)
        assert [images for _, images in groups] == [2, 2, 1]
        assert sum(images for _, images in groups) == 5
        expanded = [
            offset for offset, images in groups for _ in range(images)
        ]
        assert expanded == pytest.approx(offsets)
        assert groups[-1][0] == pytest.approx(offsets[-1])
        with pytest.raises(RuntimeHostError):
            runner.completion_groups(0)

    def test_empty_offsets_rejected(self):
        runner, _ = make_runner()
        with pytest.raises(RuntimeHostError):
            runner.completion_offsets(0)

    def test_wrong_image_shape_rejected_without_functional(self):
        # Timing-only runs still validate inputs: the probe no longer
        # touches the caller's images, so run() checks shapes itself.
        runner, _ = make_runner(instances=2, functional=False)
        with pytest.raises(RuntimeHostError):
            runner.run([np.zeros((3, 224, 224))])


class TestBatchFunctional:
    def test_outputs_returned_per_image(self):
        runner, net = make_runner(functional=True)
        rng = np.random.default_rng(0)
        images = [rng.normal(size=net.input_shape.as_tuple())
                  for _ in range(3)]
        result = runner.run(images)
        assert len(result.outputs) == 3
        from repro.runtime import reference_inference

        params = generate_parameters(net)
        for image, output in zip(images, result.outputs):
            ref = reference_inference(net, params, image)
            np.testing.assert_allclose(output, ref, atol=1e-9)

    def test_functional_reuses_first_inference_as_probe(self):
        """Functional mode pays exactly one inference per image — the
        first one doubles as the timing probe."""
        runner, net = make_runner(functional=True)
        calls = []
        real_infer = runner.runtime.infer

        def counting_infer(image):
            calls.append(1)
            return real_infer(image)

        runner.runtime.infer = counting_infer
        result = runner.run([np.zeros(net.input_shape.as_tuple())] * 3)
        assert len(calls) == 3
        assert result.per_image_seconds > 0
        # The probe is cached: a second batch still pays only per-image.
        calls.clear()
        runner.run([np.zeros(net.input_shape.as_tuple())] * 2)
        assert len(calls) == 2

"""Tests for repro.hls — template configuration and emission."""

import pytest

from repro.hls import HlsConfig, emit_config_header, emit_project, emit_top


@pytest.fixture
def hls_cfg(cfg_vu9p_paper, vu9p):
    return HlsConfig.from_config(cfg_vu9p_paper, vu9p, project="vgg16_vu9p")


class TestConfig:
    def test_from_config(self, hls_cfg, cfg_vu9p_paper):
        assert hls_cfg.pi == cfg_vu9p_paper.pi
        assert hls_cfg.pt == cfg_vu9p_paper.pt
        assert hls_cfg.m == cfg_vu9p_paper.m
        assert hls_cfg.clock_ns == pytest.approx(1000 / 167.0)
        assert hls_cfg.instances == 6


class TestEmission:
    def test_header_contains_all_parameters(self, hls_cfg):
        header = emit_config_header(hls_cfg)
        for macro in (
            "HD_PI", "HD_PO", "HD_PT", "HD_M", "HD_DATA_WIDTH",
            "HD_WEIGHT_WIDTH", "HD_INP_BUF_VECS", "HD_INSTANCES",
        ):
            assert macro in header
        assert "#define HD_PT              6" in header
        assert header.count("#ifndef") == 1

    def test_top_has_four_modules_and_ctrl(self, hls_cfg):
        top = emit_top(hls_cfg)
        for symbol in (
            "load_inp", "load_wgt", "comp", "save", "gemm_core",
            "hybriddnn_top",
        ):
            assert symbol in top

    def test_top_has_handshake_streams(self, hls_cfg):
        top = emit_top(hls_cfg)
        # The three producer/consumer pairs of Section 4.1, both ways.
        for stream in (
            "tok_inp", "tok_wgt", "tok_out",
            "free_inp", "free_wgt", "free_out",
        ):
            assert stream in top
        assert top.count("depth=2") == 6  # ping-pong depth

    def test_top_has_partition_pragmas(self, hls_cfg):
        top = emit_top(hls_cfg)
        assert "ARRAY_PARTITION" in top
        assert "#pragma HLS DATAFLOW" in top

    def test_project_files_written(self, hls_cfg, tmp_path):
        files = emit_project(hls_cfg, tmp_path)
        assert set(files) == {"config", "top", "testbench", "script"}
        for path in files.values():
            assert path.exists()
            assert path.read_text()
        script = files["script"].read_text()
        assert "csynth_design" in script
        assert "csim_design" in script
        assert f"{hls_cfg.clock_ns:.3f}" in script

    def test_field_macros_match_isa_layouts(self, hls_cfg):
        """The generated C accessors must use the exact bit offsets of
        the Python encoder — one source of truth for the ISA."""
        from repro.isa.encoding import COMP_LAYOUT

        header = emit_config_header(hls_cfg)
        for f in COMP_LAYOUT.fields:
            hi = f.offset + f.width - 1
            assert (
                f"#define HD_COMP_{f.name.upper()}(w) "
                f"((w).range({hi}, {f.offset}))" in header
            )

    def test_winograd_matrices_embedded(self, hls_cfg):
        """B^T and A^T constants must match the algorithm exactly."""
        import numpy as np

        from repro.winograd.matrices import algorithm_for_tile

        top = emit_top(hls_cfg)
        alg = algorithm_for_tile(hls_cfg.pt)
        first_bt_row = ", ".join(str(int(v)) for v in alg.bt[0])
        assert first_bt_row in top
        first_at_row = ", ".join(str(int(v)) for v in alg.at[0])
        assert first_at_row in top
        # Both matrices must really be integer for hardware use.
        assert np.array_equal(alg.bt, np.round(alg.bt))
        assert np.array_equal(alg.at, np.round(alg.at))

    def test_testbench_reads_binary_programs(self, hls_cfg):
        from repro.hls.emitter import emit_testbench

        tb = emit_testbench(hls_cfg)
        assert "fread" in tb
        assert "program.bin" in tb
        assert "hybriddnn_top" in tb

    def test_emission_reflects_parameters(self, cfg_pt4, pynq):
        cfg = HlsConfig.from_config(cfg_pt4, pynq, project="small")
        header = emit_config_header(cfg)
        assert "#define HD_PT              4" in header
        assert "#define HD_M               2" in header

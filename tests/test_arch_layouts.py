"""Tests for repro.arch.layouts — the Figure-5 data layouts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.arch import layouts


class TestChannelVectors:
    def test_exact_and_ragged(self):
        assert layouts.channel_vectors(8, 4) == 2
        assert layouts.channel_vectors(9, 4) == 3
        assert layouts.channel_vectors(3, 4) == 1

    def test_invalid(self):
        with pytest.raises(ShapeError):
            layouts.channel_vectors(0, 4)


class TestElementIndex:
    def test_spat_column_innermost_within_vector(self):
        # SPAT: [row][channel-vector][column][lane].
        base = layouts.element_index(layouts.SPAT, 0, 0, 0, 8, 4, 6, 4)
        nxt_col = layouts.element_index(layouts.SPAT, 0, 0, 1, 8, 4, 6, 4)
        assert nxt_col - base == 4  # one vector over

    def test_wino_channel_innermost(self):
        # WINO: [row][column][channel-vector][lane].
        base = layouts.element_index(layouts.WINO, 0, 0, 0, 8, 4, 6, 4)
        nxt_cv = layouts.element_index(layouts.WINO, 4, 0, 0, 8, 4, 6, 4)
        assert nxt_cv - base == 4

    def test_rows_outermost_in_both(self):
        # Figure 5 / Sec 4.2.4: row groups are contiguous in both modes.
        for lay in (layouts.SPAT, layouts.WINO):
            row0_max = max(
                layouts.element_index(lay, c, 0, x, 8, 4, 6, 4)
                for c in range(8)
                for x in range(6)
            )
            row1_min = min(
                layouts.element_index(lay, c, 1, x, 8, 4, 6, 4)
                for c in range(8)
                for x in range(6)
            )
            assert row1_min == row0_max + 1

    def test_row_base(self):
        words_per_row = layouts.channel_vectors(8, 4) * 4 * 6
        assert layouts.row_base(layouts.SPAT, 2, 8, 4, 6, 4) == 2 * words_per_row

    def test_out_of_range(self):
        with pytest.raises(ShapeError):
            layouts.element_index(layouts.SPAT, 8, 0, 0, 8, 4, 6, 4)
        with pytest.raises(ShapeError):
            layouts.row_base(layouts.SPAT, 4, 8, 4, 6, 4)

    def test_bijection_over_all_elements(self):
        c, h, w, lanes = 5, 3, 4, 4
        for lay in (layouts.SPAT, layouts.WINO):
            seen = {
                layouts.element_index(lay, ci, y, x, c, h, w, lanes)
                for ci in range(c)
                for y in range(h)
                for x in range(w)
            }
            assert len(seen) == c * h * w  # injective


class TestPackUnpack:
    @pytest.mark.parametrize("lay", [layouts.SPAT, layouts.WINO])
    def test_roundtrip(self, lay, rng):
        feature = rng.normal(size=(5, 7, 9))
        words = layouts.pack_feature(lay, feature, lanes=4)
        assert words.size == layouts.feature_words(5, 7, 9, 4)
        back = layouts.unpack_feature(lay, words, 5, 7, 9, 4)
        np.testing.assert_array_equal(back, feature)

    @pytest.mark.parametrize("lay", [layouts.SPAT, layouts.WINO])
    def test_pack_agrees_with_element_index(self, lay, rng):
        feature = rng.normal(size=(6, 4, 5))
        words = layouts.pack_feature(lay, feature, lanes=4)
        for (c, y, x) in [(0, 0, 0), (5, 3, 4), (2, 1, 3), (4, 2, 0)]:
            idx = layouts.element_index(lay, c, y, x, 6, 4, 5, 4)
            assert words[idx] == feature[c, y, x]

    def test_channel_padding_zeros(self):
        feature = np.ones((3, 2, 2))
        words = layouts.pack_feature(layouts.SPAT, feature, lanes=4)
        assert words.size == 4 * 2 * 2
        assert words.sum() == 12  # padding lane contributes zeros

    def test_unpack_size_check(self):
        with pytest.raises(ShapeError):
            layouts.unpack_feature(layouts.SPAT, np.zeros(10), 4, 2, 2, 4)


class TestRelayout:
    def test_all_four_transforms(self, rng):
        # The SAVE module supports WINO/SPAT -> WINO/SPAT (Figure 5).
        feature = rng.normal(size=(8, 6, 6))
        for src in (layouts.SPAT, layouts.WINO):
            src_words = layouts.pack_feature(src, feature, 4)
            for dst in (layouts.SPAT, layouts.WINO):
                out = layouts.relayout(src_words, src, dst, 8, 6, 6, 4)
                back = layouts.unpack_feature(dst, out, 8, 6, 6, 4)
                np.testing.assert_array_equal(back, feature)

    def test_same_layout_is_copy(self, rng):
        feature = rng.normal(size=(4, 3, 3))
        words = layouts.pack_feature(layouts.SPAT, feature, 4)
        out = layouts.relayout(words, layouts.SPAT, layouts.SPAT, 4, 3, 3, 4)
        np.testing.assert_array_equal(out, words)
        assert out is not words


@settings(max_examples=30, deadline=None)
@given(
    c=st.integers(1, 12),
    h=st.integers(1, 8),
    w=st.integers(1, 8),
    lanes=st.sampled_from([2, 4, 8]),
    src=st.sampled_from([layouts.SPAT, layouts.WINO]),
    dst=st.sampled_from([layouts.SPAT, layouts.WINO]),
    seed=st.integers(0, 2**31),
)
def test_relayout_preserves_feature_property(c, h, w, lanes, src, dst, seed):
    """Property: any layout transform preserves the logical feature."""
    rng = np.random.default_rng(seed)
    feature = rng.normal(size=(c, h, w))
    words = layouts.pack_feature(src, feature, lanes)
    out = layouts.relayout(words, src, dst, c, h, w, lanes)
    back = layouts.unpack_feature(dst, out, c, h, w, lanes)
    np.testing.assert_array_equal(back, feature)

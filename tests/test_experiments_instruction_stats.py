"""Tests for the instruction-stream statistics experiment."""

import pytest

from repro.experiments.instruction_stats import (
    format_instruction_stats,
    run_instruction_stats,
)


@pytest.fixture(scope="module")
def vgg_stats():
    return run_instruction_stats("vgg16", "vu9p")


class TestInstructionStats:
    def test_all_compute_layers_present(self, vgg_stats):
        names = {layer.layer_name for layer in vgg_stats.layers}
        assert len(names) == 16  # 13 conv + 3 fc

    def test_programs_validate_clean(self, vgg_stats):
        assert vgg_stats.valid

    def test_comp_counts_match_partitions(self, vgg_stats):
        for layer in vgg_stats.layers:
            assert layer.comp_instructions == (
                layer.row_groups * layer.k_groups * layer.c_groups
            )

    def test_opcode_mix_consistent(self, vgg_stats):
        assert sum(vgg_stats.by_opcode.values()) == (
            vgg_stats.total_instructions
        )
        assert vgg_stats.by_opcode["COMP"] > 0
        assert vgg_stats.by_opcode["SAVE"] <= vgg_stats.by_opcode["COMP"]

    def test_bytes_are_16_per_instruction(self, vgg_stats):
        assert vgg_stats.bytes == 16 * vgg_stats.total_instructions

    def test_format(self, vgg_stats):
        text = format_instruction_stats(vgg_stats)
        assert "conv1_1" in text
        assert "opcode mix" in text
        assert "clean" in text

    def test_embedded_has_more_instructions(self, vgg_stats):
        # Smaller buffers -> more groups -> more instructions.
        pynq = run_instruction_stats("vgg16", "pynq-z1")
        assert pynq.total_instructions > vgg_stats.total_instructions
        assert pynq.valid

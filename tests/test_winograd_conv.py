"""Winograd convolution vs direct convolution — exactness across kernel
sizes, paddings and both algorithm variants, plus hypothesis property
tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError, UnsupportedLayerError
from repro.winograd import direct_conv2d, winograd_conv2d
from repro.winograd.conv import (
    spatial_multiplications,
    winograd_multiplications,
)


def random_case(rng, c, k, h, w, kr, ks):
    feature = rng.normal(size=(c, h, w))
    kernels = rng.normal(size=(k, c, kr, ks))
    bias = rng.normal(size=k)
    return feature, kernels, bias


class TestExactness:
    @pytest.mark.parametrize("m", [2, 4])
    @pytest.mark.parametrize("padding", [0, 1, 2])
    def test_3x3(self, m, padding):
        rng = np.random.default_rng(0)
        feature, kernels, bias = random_case(rng, 5, 7, 17, 13, 3, 3)
        got = winograd_conv2d(feature, kernels, bias, m=m, padding=padding)
        ref = direct_conv2d(feature, kernels, bias, padding=padding)
        assert got.shape == ref.shape
        np.testing.assert_allclose(got, ref, atol=1e-10)

    @pytest.mark.parametrize("m", [2, 4])
    @pytest.mark.parametrize("kernel", [(1, 1), (5, 5), (7, 7), (11, 7), (5, 3)])
    def test_kernel_decomposition(self, m, kernel):
        # Section 4.2.5: larger kernels via ceil(R/r) x ceil(S/r) blocks.
        rng = np.random.default_rng(1)
        kr, ks = kernel
        feature, kernels, bias = random_case(rng, 4, 3, 19, 16, kr, ks)
        pad = max(kr, ks) // 2
        got = winograd_conv2d(feature, kernels, bias, m=m, padding=pad)
        ref = direct_conv2d(feature, kernels, bias, padding=pad)
        np.testing.assert_allclose(got, ref, atol=1e-9)

    def test_single_pixel_output(self):
        rng = np.random.default_rng(2)
        feature, kernels, _ = random_case(rng, 2, 2, 3, 3, 3, 3)
        got = winograd_conv2d(feature, kernels, m=4)
        ref = direct_conv2d(feature, kernels)
        assert got.shape == (2, 1, 1)
        np.testing.assert_allclose(got, ref, atol=1e-10)

    def test_single_channel(self):
        rng = np.random.default_rng(3)
        feature, kernels, _ = random_case(rng, 1, 1, 8, 8, 3, 3)
        np.testing.assert_allclose(
            winograd_conv2d(feature, kernels, m=2),
            direct_conv2d(feature, kernels),
            atol=1e-10,
        )


class TestRestrictions:
    def test_stride_rejected(self):
        # Winograd mode requires stride 1; strided layers run Spatial.
        feature = np.zeros((1, 8, 8))
        kernels = np.zeros((1, 1, 3, 3))
        with pytest.raises(UnsupportedLayerError):
            winograd_conv2d(feature, kernels, stride=2)

    def test_channel_mismatch(self):
        with pytest.raises(ShapeError):
            winograd_conv2d(np.zeros((2, 8, 8)), np.zeros((1, 3, 3, 3)))

    def test_bad_bias(self):
        with pytest.raises(ShapeError):
            winograd_conv2d(
                np.zeros((1, 8, 8)), np.zeros((2, 1, 3, 3)),
                bias=np.zeros(3),
            )

    def test_kernel_larger_than_input(self):
        with pytest.raises(ShapeError):
            winograd_conv2d(np.zeros((1, 4, 4)), np.zeros((1, 1, 7, 7)))


class TestMultiplicationCounts:
    def test_f4x4_3x3_reduction_is_4x(self):
        # Section 4.2.1's headline: 36 vs 144 multiplications per tile.
        wino = winograd_multiplications(1, 1, 3, 3, 4, 4, m=4)
        spat = spatial_multiplications(1, 1, 3, 3, 4, 4)
        assert spat / wino == 4.0

    def test_decomposed_5x5_overhead_matches_paper(self):
        # Paper example (Sec. 5.2): 5x5 kernel with m=4 loads
        # 2*2*36/25 = 5.76x more weight data; the multiplication ratio
        # follows the same 4-block structure.
        wino = winograd_multiplications(1, 1, 5, 5, 4, 4, m=4)
        assert wino == 4 * 36  # 4 blocks x 36 mults for one tile


class TestDirectConvReference:
    def test_strided(self):
        rng = np.random.default_rng(4)
        feature, kernels, _ = random_case(rng, 3, 2, 11, 11, 3, 3)
        out = direct_conv2d(feature, kernels, stride=2)
        assert out.shape == (2, 5, 5)
        # Spot-check one output against a manual dot product.
        manual = np.sum(feature[:, 2:5, 4:7] * kernels[1])
        assert out[1, 1, 2] == pytest.approx(manual)

    def test_identity_kernel(self):
        feature = np.arange(27, dtype=float).reshape(3, 3, 3)
        kernels = np.zeros((3, 3, 1, 1))
        for i in range(3):
            kernels[i, i, 0, 0] = 1.0
        np.testing.assert_array_equal(
            direct_conv2d(feature, kernels), feature
        )


@settings(max_examples=25, deadline=None)
@given(
    c=st.integers(1, 4),
    k=st.integers(1, 4),
    h=st.integers(3, 12),
    w=st.integers(3, 12),
    m=st.sampled_from([2, 4]),
    padding=st.integers(0, 2),
    seed=st.integers(0, 2**31),
)
def test_winograd_equals_direct_property(c, k, h, w, m, padding, seed):
    """Property: Winograd == direct convolution for any geometry."""
    rng = np.random.default_rng(seed)
    feature = rng.normal(size=(c, h, w))
    kernels = rng.normal(size=(k, c, 3, 3))
    got = winograd_conv2d(feature, kernels, m=m, padding=padding)
    ref = direct_conv2d(feature, kernels, padding=padding)
    np.testing.assert_allclose(got, ref, atol=1e-8)


@settings(max_examples=15, deadline=None)
@given(
    kr=st.integers(1, 9),
    ks=st.integers(1, 9),
    m=st.sampled_from([2, 4]),
    seed=st.integers(0, 2**31),
)
def test_decomposition_any_kernel_property(kr, ks, m, seed):
    """Property: kernel decomposition handles any R x S."""
    rng = np.random.default_rng(seed)
    h = kr + 5
    w = ks + 5
    feature = rng.normal(size=(2, h, w))
    kernels = rng.normal(size=(2, 2, kr, ks))
    got = winograd_conv2d(feature, kernels, m=m)
    ref = direct_conv2d(feature, kernels)
    np.testing.assert_allclose(got, ref, atol=1e-8)

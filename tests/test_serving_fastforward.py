"""Oracle tests for the fast-forward replay engine.

The event kernel is the oracle: on every eligible configuration the
fast-forward recurrence must reproduce its :class:`ServingReport`
field for field (wall-clock perf fields use the *equivalent* event
count, asserted explicitly since they are ``compare=False``), and on
every ineligible configuration ``engine="auto"`` must quietly select
the kernel.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.params import AcceleratorConfig
from repro.compiler import CompilerOptions
from repro.errors import ServingError
from repro.fpga import get_device
from repro.ir import zoo
from repro.pipeline import PipelineSession
from repro.serving import (
    ENGINES,
    BatcherOptions,
    Request,
    ShardPool,
    ShardServer,
    TraceSource,
    ineligible_reason,
    make_requests,
    parse_scenario,
    percentile,
)
from repro.serving.autoscaler import AutoscalerOptions
from repro.serving.scheduler import POLICIES
from repro.serving.slo import SloOptions
from repro.serving.traffic import ClosedLoopClientPool

#: Report keys that measure the host, not the modeled system — the
#: only ones the two engines may legitimately disagree on.
WALL_KEYS = (
    "events_processed",
    "wall_seconds",
    "events_per_second",
    "replay_requests_per_second",
)


def make_session(instances=1):
    device = get_device("vu9p")
    cfg = AcceleratorConfig(
        pi=4, po=4, pt=4, instances=instances, frequency_mhz=100.0,
        input_buffer_vecs=4096, weight_buffer_vecs=2048,
        output_buffer_vecs=2048,
    )
    return PipelineSession(
        zoo.tiny_cnn(input_size=16, channels=8),
        device,
        cfg=cfg,
        compiler_options=CompilerOptions(quantize=False, pack_data=False),
    )


@pytest.fixture(scope="module")
def session():
    return make_session(instances=2)


def comparable(report):
    return {
        key: value for key, value in report.to_dict().items()
        if key not in WALL_KEYS
    }


def serve_both(server, traffic):
    """The same workload on both engines; returns (kernel, fast)."""
    kernel = server.serve(list(traffic), engine="kernel")
    assert server.last_engine == "kernel"
    fast = server.serve(list(traffic), engine="fastforward")
    assert server.last_engine == "fastforward"
    return kernel, fast


class TestByteIdentity:
    @settings(max_examples=30, deadline=None)
    @given(
        policy=st.sampled_from(POLICIES),
        pool_size=st.integers(min_value=1, max_value=3),
        max_batch=st.integers(min_value=1, max_value=6),
        wait_ms=st.sampled_from([0.0, 0.05, 0.5, 2.0]),
        kind=st.sampled_from(
            ["uniform", "fixed-qps", "poisson", "burst"]
        ),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_fastforward_equals_kernel(
        self, session, policy, pool_size, max_batch, wait_ms, kind, seed
    ):
        pool = ShardPool.replicate(session, pool_size)
        server = ShardServer(
            pool, policy,
            BatcherOptions(
                max_batch=max_batch, max_wait_s=wait_ms * 1e-3
            ),
        )
        traffic = make_requests(kind, 40, qps=500.0, seed=seed, burst=5)
        kernel, fast = serve_both(server, traffic)
        # Dataclass equality covers records, usage, counters and
        # shard_seconds; the wall fields are compare=False, so the
        # equivalent event count gets its own assertion.
        assert fast == kernel
        assert fast.events_processed == kernel.events_processed
        assert comparable(fast) == comparable(kernel)

    def test_trace_source_replays_identically(self, session):
        pool = ShardPool.replicate(session, 2)
        server = ShardServer(
            pool, "round-robin", BatcherOptions(max_batch=3)
        )
        arrivals = [0.0, 0.0, 1e-4, 2.5e-4, 2.5e-4, 2.5e-4, 9e-4]
        kernel = server.serve(
            TraceSource(arrivals, time_scale=0.5, loop=3),
            engine="kernel",
        )
        fast = server.serve(
            TraceSource(arrivals, time_scale=0.5, loop=3),
            engine="fastforward",
        )
        assert fast == kernel
        assert fast.events_processed == kernel.events_processed

    def test_post_run_state_mirrors_kernel(self, session):
        pool = ShardPool.replicate(session, 2)
        server = ShardServer(
            pool, "round-robin", BatcherOptions(max_batch=2)
        )
        traffic = make_requests("poisson", 17, qps=800.0, seed=4)
        server.serve(list(traffic), engine="kernel")
        kernel_busy = [shard.busy_until for shard in pool]
        kernel_next = server.scheduler.policy._next
        server.serve(list(traffic), engine="fastforward")
        assert [shard.busy_until for shard in pool] == kernel_busy
        assert server.scheduler.policy._next == kernel_next

    def test_event_budget_error_matches_kernel(self, session):
        pool = ShardPool.replicate(session, 2)
        server = ShardServer(
            pool, "round-robin", BatcherOptions(max_batch=4)
        )
        traffic = make_requests("poisson", 30, qps=500.0, seed=1)
        with pytest.raises(ServingError) as kernel_error:
            server.serve(list(traffic), engine="kernel", max_events=20)
        with pytest.raises(ServingError) as fast_error:
            server.serve(
                list(traffic), engine="fastforward", max_events=20
            )
        assert str(fast_error.value) == str(kernel_error.value)


class TestEligibility:
    def plain_server(self, session, **kwargs):
        pool = ShardPool.replicate(session, 2)
        return ShardServer(
            pool, "round-robin", BatcherOptions(max_batch=2), **kwargs
        )

    def test_auto_selects_fastforward_on_plain_open_loop(self, session):
        server = self.plain_server(session)
        server.serve(make_requests("poisson", 8, qps=500.0))
        assert server.last_engine == "fastforward"

    def test_explicit_kernel_forces_kernel(self, session):
        server = self.plain_server(session)
        server.serve(make_requests("poisson", 8, qps=500.0),
                     engine="kernel")
        assert server.last_engine == "kernel"

    def test_closed_loop_selects_kernel(self, session):
        server = self.plain_server(session)
        server.serve(ClosedLoopClientPool(
            clients=2, requests=6, think_time_s=0.0
        ))
        assert server.last_engine == "kernel"

    def test_chaos_scenario_selects_kernel(self, session):
        server = self.plain_server(session)
        scenario = parse_scenario("kill:shard0@0.001,restore@0.002")
        server.serve(
            make_requests("poisson", 8, qps=500.0), scenario=scenario
        )
        assert server.last_engine == "kernel"

    def test_slo_controller_selects_kernel(self, session):
        server = self.plain_server(
            session, slo=SloOptions(p99_target_s=0.5)
        )
        server.serve(make_requests("poisson", 8, qps=500.0))
        assert server.last_engine == "kernel"

    def test_autoscaler_selects_kernel(self, session):
        pool = ShardPool.replicate(session, 2)
        server = ShardServer(
            pool, "round-robin", BatcherOptions(max_batch=2),
            autoscale=AutoscalerOptions(
                min_shards=1, max_shards=2, target_utilisation=0.5,
            ),
        )
        server.serve(make_requests("poisson", 8, qps=500.0))
        assert server.last_engine == "kernel"

    def test_forced_fastforward_on_ineligible_run_raises(self, session):
        server = self.plain_server(session)
        scenario = parse_scenario("kill:shard0@0.001,restore@0.002")
        with pytest.raises(ServingError, match="plain open-loop"):
            server.serve(
                make_requests("poisson", 8, qps=500.0),
                scenario=scenario,
                engine="fastforward",
            )

    def test_unknown_engine_rejected(self, session):
        server = self.plain_server(session)
        with pytest.raises(ServingError, match="unknown serve engine"):
            server.serve(
                make_requests("poisson", 4, qps=500.0), engine="warp"
            )
        assert ENGINES == ("auto", "kernel", "fastforward")

    def test_ineligible_reason_spells_out_each_gate(self, session):
        server = self.plain_server(session)
        from repro.serving.traffic import OpenLoopSource

        open_loop = OpenLoopSource([Request(0, 0.0)])
        assert ineligible_reason(server, open_loop, None) is None
        assert "scenario" in ineligible_reason(
            server, open_loop, parse_scenario("kill:shard0@0.001")
        )
        closed = ClosedLoopClientPool(
            clients=1, requests=2, think_time_s=0.0
        )
        assert "open-loop" in ineligible_reason(server, closed, None)


class TestPercentileSelection:
    """The numpy.partition rewrite must reproduce the sorted-list
    nearest-rank values exactly."""

    @staticmethod
    def legacy(values, q):
        rank = max(1, math.ceil(q / 100 * len(values)))
        return sorted(values)[min(rank, len(values)) - 1]

    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(
            st.floats(
                min_value=-1e6, max_value=1e6,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=1, max_size=200,
        ),
        q=st.floats(min_value=0.0, max_value=100.0),
    )
    def test_matches_sorted_nearest_rank(self, values, q):
        assert percentile(values, q) == self.legacy(values, q)

    def test_tied_samples(self):
        values = [3.0, 1.0, 3.0, 3.0, 2.0, 1.0, 3.0, 3.0]
        for q in (0, 10, 25, 50, 75, 90, 99, 100):
            assert percentile(values, q) == self.legacy(values, q)

    def test_empty_sample_raises(self):
        with pytest.raises(ServingError):
            percentile([], 50)

    def test_out_of_range_q_raises(self):
        with pytest.raises(ServingError):
            percentile([1.0], 101)

    def test_nan_sample_keeps_legacy_sorted_semantics(self):
        values = [2.0, float("nan"), 1.0]
        for q in (0, 50, 100):
            result = percentile(values, q)
            expected = self.legacy(values, q)
            assert result == expected or (
                math.isnan(result) and math.isnan(expected)
            )


class TestServeCli:
    def test_profile_writes_top_cumulative_json(self, tmp_path, capsys):
        import json

        from repro.cli import main

        out = tmp_path / "profile.json"
        rc = main([
            "serve", "--model", "tiny_cnn", "--device", "pynq-z1",
            "--shards", "2", "--traffic", "poisson", "--requests", "8",
            "--qps", "500", "--profile", str(out),
        ])
        assert rc == 0
        printed = capsys.readouterr().out
        assert f"profile written to {out}" in printed
        assert "engine: fastforward" in printed
        rows = json.loads(out.read_text())
        assert 0 < len(rows) <= 25
        assert set(rows[0]) == {
            "function", "file", "line", "ncalls",
            "primitive_calls", "tottime", "cumtime",
        }
        # Rows come ordered by descending cumulative time.
        cumtimes = [row["cumtime"] for row in rows]
        assert cumtimes == sorted(cumtimes, reverse=True)

    def test_engine_flag_forces_kernel(self, capsys):
        from repro.cli import main

        rc = main([
            "serve", "--model", "tiny_cnn", "--device", "pynq-z1",
            "--shards", "2", "--traffic", "poisson", "--requests", "8",
            "--qps", "500", "--engine", "kernel",
        ])
        assert rc == 0
        assert "engine: kernel" in capsys.readouterr().out

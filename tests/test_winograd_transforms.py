"""Tests for repro.winograd.transforms — tiling and the three
transforms of Eq. 1."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.winograd.matrices import get_algorithm
from repro.winograd.transforms import (
    assemble_output_tiles,
    extract_input_tiles,
    pad_feature_for_tiling,
    transform_input,
    transform_output,
    transform_weight,
)


@pytest.fixture(params=[2, 4], ids=["m2", "m4"])
def alg(request):
    return get_algorithm(request.param, 3)


class TestTransforms:
    def test_weight_transform_shape(self, alg):
        kernels = np.ones((5, 3, alg.r, alg.r))
        u = transform_weight(alg, kernels)
        assert u.shape == (5, 3, alg.tile, alg.tile)

    def test_weight_transform_rejects_bad_tail(self, alg):
        with pytest.raises(ShapeError):
            transform_weight(
                alg,
                np.ones((5, 3, 4, 4)) if alg.r == 3
                else np.ones((5, 3, 2, 2)),
            )

    def test_input_transform_preserves_shape(self, alg):
        tiles = np.random.default_rng(0).normal(size=(7, alg.tile, alg.tile))
        v = transform_input(alg, tiles)
        assert v.shape == tiles.shape

    def test_output_transform_shape(self, alg):
        tiles = np.ones((2, 3, alg.tile, alg.tile))
        y = transform_output(alg, tiles)
        assert y.shape == (2, 3, alg.m, alg.m)

    def test_transforms_are_linear(self, alg):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(alg.tile, alg.tile))
        b = rng.normal(size=(alg.tile, alg.tile))
        assert np.allclose(
            transform_input(alg, a + b),
            transform_input(alg, a) + transform_input(alg, b),
        )

    def test_constant_kernel_transform_known_value(self):
        # For F(2x2,3x3) with an all-ones kernel, G g G^T row 0 is
        # [1, 0, 0] outer structure: U[0,0] = 1.
        alg = get_algorithm(2, 3)
        u = transform_weight(alg, np.ones((1, 1, 3, 3)))[0, 0]
        assert u[0, 0] == pytest.approx(1.0)


class TestTiling:
    def test_extract_shapes(self, alg):
        m, t = alg.m, alg.tile
        feature = np.arange(2 * (2 * m + 2) * (3 * m + 2), dtype=float).reshape(
            2, 2 * m + 2, 3 * m + 2
        )
        tiles = extract_input_tiles(alg, feature)
        assert tiles.shape == (2, 2, 3, t, t)

    def test_tiles_overlap_by_r_minus_1(self, alg):
        m, t = alg.m, alg.tile
        feature = np.arange((m * 2 + 2) ** 2, dtype=float).reshape(
            1, m * 2 + 2, m * 2 + 2
        )
        tiles = extract_input_tiles(alg, feature)
        # Tile (0,1) starts m columns after tile (0,0): overlap = t - m = r-1.
        overlap = tiles[0, 0, 0][:, m:]
        assert np.array_equal(overlap, tiles[0, 0, 1][:, : t - m])

    def test_untileable_rejected(self, alg):
        bad = np.zeros((1, alg.tile + 1, alg.tile))
        with pytest.raises(ShapeError):
            extract_input_tiles(alg, bad)

    def test_pad_for_tiling_pads_bottom_right(self, alg):
        feature = np.ones((1, alg.r, alg.r))
        padded = pad_feature_for_tiling(alg, feature, 1, 1)
        assert padded.shape == (1, alg.tile, alg.tile)
        assert padded[0, -1, -1] == 0.0

    def test_pad_for_tiling_crops_excess(self, alg):
        # A window larger than the tiled coverage is cropped losslessly.
        feature = np.ones((1, 5 * alg.tile, 5 * alg.tile))
        padded = pad_feature_for_tiling(alg, feature, alg.m, alg.m)
        assert padded.shape == (1, alg.tile, alg.tile)

    def test_assemble_inverse_of_extract_for_outputs(self, alg):
        m = alg.m
        k, ny, nx = 3, 2, 4
        rng = np.random.default_rng(2)
        tiles = rng.normal(size=(k, ny, nx, m, m))
        full = assemble_output_tiles(tiles, ny * m, nx * m)
        assert full.shape == (k, ny * m, nx * m)
        # Check one specific tile position.
        assert np.array_equal(full[:, m : 2 * m, 0:m], tiles[:, 1, 0])

    def test_assemble_crops(self, alg):
        m = alg.m
        tiles = np.ones((1, 2, 2, m, m))
        full = assemble_output_tiles(tiles, 2 * m - 1, 2 * m - 1)
        assert full.shape == (1, 2 * m - 1, 2 * m - 1)

    def test_assemble_rejects_undersized(self, alg):
        m = alg.m
        tiles = np.ones((1, 1, 1, m, m))
        with pytest.raises(ShapeError):
            assemble_output_tiles(tiles, m + 1, m)

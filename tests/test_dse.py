"""Tests for repro.dse — the 3-step design space exploration."""

import pytest

from repro.dse import explore_hardware, map_network, run_dse
from repro.dse.space import DseOptions, default_buffers
from repro.errors import DseError
from repro.ir import zoo


class TestStep1Explore:
    def test_all_candidates_fit(self, vu9p):
        for cand in explore_hardware(vu9p):
            assert cand.total.fits_in(vu9p.resources)
            assert cand.cfg.pi >= cand.cfg.po  # Table-2 constraint
            assert cand.cfg.pt in (4, 6)

    def test_pynq_space_smaller_than_vu9p(self, pynq, vu9p):
        assert len(explore_hardware(pynq)) < len(explore_hardware(vu9p))

    def test_max_instances_option(self, vu9p):
        capped = explore_hardware(vu9p, DseOptions(max_instances=2))
        assert all(c.cfg.instances <= 2 for c in capped)

    def test_buffer_presets(self, vu9p, pynq):
        assert default_buffers(vu9p)[0] > default_buffers(pynq)[0]

    def test_paper_configs_in_space(self, vu9p, pynq):
        vu_space = {
            (c.cfg.pi, c.cfg.po, c.cfg.pt, c.cfg.instances)
            for c in explore_hardware(vu9p)
        }
        assert (4, 4, 6, 6) in vu_space
        pynq_space = {
            (c.cfg.pi, c.cfg.po, c.cfg.pt, c.cfg.instances)
            for c in explore_hardware(pynq)
        }
        assert (4, 4, 4, 1) in pynq_space


class TestStep2Mapping:
    def test_vgg16_all_conv_wino_on_vu9p(self, cfg_vu9p_paper, vu9p):
        # Section 6.1: "the DSE selects all CONV layers of VGG16 to be
        # implemented in Winograd mode".
        net = zoo.vgg16()
        mapping, estimate = map_network(cfg_vu9p_paper, vu9p, net)
        conv_names = {i.layer.name for i in net.conv_layers()}
        for m in mapping:
            if m.layer_name in conv_names:
                assert m.mode == "wino", m.layer_name

    def test_fc_layers_spatial(self, cfg_vu9p_paper, vu9p):
        net = zoo.vgg16()
        mapping, _ = map_network(cfg_vu9p_paper, vu9p, net)
        for name in ("fc6", "fc7", "fc8"):
            assert mapping.for_layer(name).mode == "spat"

    def test_strided_layer_forced_spatial(self, cfg_vu9p_paper, vu9p):
        net = zoo.alexnet()
        mapping, _ = map_network(cfg_vu9p_paper, vu9p, net)
        assert mapping.for_layer("conv1").mode == "spat"

    def test_estimate_validates(self, cfg_pynq_paper, pynq):
        net = zoo.tiny_cnn()
        mapping, estimate = map_network(cfg_pynq_paper, pynq, net)
        mapping.validate_against(net)
        assert estimate.latency > 0


class TestStep3Selection:
    def test_vu9p_recovers_paper_design(self, vu9p):
        # The headline DSE check: PI=4 PO=4 PT=6, 6 instances.
        result = run_dse(vu9p, zoo.vgg16(), DseOptions(frequency_mhz=167))
        assert (result.cfg.pi, result.cfg.po, result.cfg.pt) == (4, 4, 6)
        assert result.cfg.instances == 6

    def test_pynq_recovers_paper_design(self, pynq):
        result = run_dse(pynq, zoo.vgg16(), DseOptions(frequency_mhz=100))
        assert (result.cfg.pi, result.cfg.po, result.cfg.pt) == (4, 4, 4)
        assert result.cfg.instances == 1

    def test_latency_objective_prefers_single_instance(self, vu9p):
        result = run_dse(
            vu9p, zoo.tiny_cnn(input_size=32),
            DseOptions(objective="latency"),
        )
        # Batch instances don't reduce single-image latency but do share
        # bandwidth, so latency mode picks NI=1.
        assert result.cfg.instances == 1

    def test_runners_up_sorted(self, pynq):
        result = run_dse(pynq, zoo.tiny_cnn(input_size=32), DseOptions(top_k=4))
        gops = [result.throughput_gops] + [
            r.throughput_gops for r in result.runners_up
        ]
        assert gops == sorted(gops, reverse=True)

    def test_summary_renders(self, pynq):
        result = run_dse(pynq, zoo.tiny_cnn(input_size=32))
        text = result.summary()
        assert "pynq-z1" in text
        assert "GOPS" in text

    def test_bad_objective(self, pynq):
        with pytest.raises(DseError):
            run_dse(pynq, zoo.tiny_cnn(), DseOptions(objective="area"))

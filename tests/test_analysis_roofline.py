"""Tests for repro.analysis.roofline."""

import pytest

from repro.analysis.roofline import layer_roofline
from repro.errors import UnsupportedLayerError
from repro.ir import zoo


def info_of(c, k, h, kernel):
    net = zoo.single_conv(c, k, h, kernel, padding=kernel // 2)
    return net.compute_layers()[0]


class TestRooflineModel:
    def test_winograd_raises_roof_lowers_intensity(self, cfg_vu9p_paper,
                                                   vu9p):
        info = info_of(256, 256, 28, 3)
        spat = layer_roofline(cfg_vu9p_paper, vu9p, info, "spat")
        wino = layer_roofline(cfg_vu9p_paper, vu9p, info, "wino")
        # The hybrid trade-off in one assertion pair:
        assert wino.peak_gops == pytest.approx(4 * spat.peak_gops)
        assert wino.operational_intensity < spat.operational_intensity

    def test_attainable_never_exceeds_roofs(self, cfg_vu9p_paper, vu9p):
        for kernel in (1, 3, 5):
            info = info_of(128, 128, 28, kernel)
            for mode in ("spat", "wino"):
                point = layer_roofline(cfg_vu9p_paper, vu9p, info, mode)
                assert point.attainable_gops <= point.peak_gops + 1e-9
                memory_roof = (
                    point.bandwidth_gbs * point.operational_intensity
                )
                assert point.attainable_gops <= memory_roof + 1e-9

    def test_compute_bound_conv(self, cfg_vu9p_paper, vu9p):
        # Deep 3x3 conv with big feature maps: high OI -> compute bound.
        info = info_of(256, 256, 56, 3)
        point = layer_roofline(cfg_vu9p_paper, vu9p, info, "spat")
        assert point.bound == "compute"

    def test_fc_memory_bound(self, cfg_vu9p_paper, vu9p):
        # FC layers: one use per weight -> OI ~ 2 ops/byte -> memory.
        net = zoo.tiny_mlp(in_features=4096, hidden=4096)
        info = net.compute_layers()[0]
        point = layer_roofline(cfg_vu9p_paper, vu9p, info, "spat")
        assert point.bound == "memory"
        assert point.operational_intensity < 5

    def test_roofline_predicts_simulator_bound(self, cfg_vu9p_paper, vu9p):
        """Where the roofline says memory-bound, the simulator must not
        reach the compute roof — the Figure-6 Winograd dips."""
        import numpy as np

        from repro.compiler import CompilerOptions, compile_network
        from repro.mapping import NetworkMapping
        from repro.runtime import HostRuntime, generate_parameters

        # Small feature map, deep channels: Winograd OI (~54 ops/byte)
        # falls below the 6-instance VU9P ridge (~60 ops/byte).
        info_net = zoo.single_conv(512, 512, 7, 3, padding=1)
        info = info_net.compute_layers()[0]
        point = layer_roofline(cfg_vu9p_paper, vu9p, info, "wino")
        assert point.bound == "memory"
        compiled = compile_network(
            info_net, cfg_vu9p_paper,
            NetworkMapping.uniform(info_net, "wino", "ws"),
            generate_parameters(info_net),
            CompilerOptions(quantize=True, pack_data=False),
        )
        runtime = HostRuntime(compiled, vu9p, functional=False)
        sim = runtime.infer(np.zeros(info_net.input_shape.as_tuple())).sim
        achieved = info.ops / sim.seconds / 1e9
        assert achieved < point.peak_gops * 0.8

    def test_instances_share_bandwidth(self, cfg_vu9p_paper, vu9p):
        from dataclasses import replace

        info = info_of(64, 64, 28, 3)
        six = layer_roofline(cfg_vu9p_paper, vu9p, info, "wino")
        one = layer_roofline(
            replace(cfg_vu9p_paper, instances=1), vu9p, info, "wino"
        )
        assert one.bandwidth_gbs == pytest.approx(6 * six.bandwidth_gbs)

    def test_pooling_layer_rejected(self, cfg_vu9p_paper, vu9p):
        net = zoo.tiny_cnn()
        pool_info = next(
            i for i in net if type(i.layer).__name__ == "MaxPool2D"
        )
        with pytest.raises(UnsupportedLayerError):
            layer_roofline(cfg_vu9p_paper, vu9p, pool_info, "spat")

    def test_ridge_point(self, cfg_pynq_paper, pynq):
        info = info_of(64, 64, 28, 3)
        point = layer_roofline(cfg_pynq_paper, pynq, info, "spat")
        assert point.ridge_intensity == pytest.approx(
            point.peak_gops / point.bandwidth_gbs
        )

"""Tests for repro.baselines and repro.analysis."""

import pytest

from repro.analysis import (
    Table,
    dsp_efficiency,
    energy_efficiency,
    format_table,
    gops,
    relative_error,
    speedup,
)
from repro.baselines import PUBLISHED, spatial_only_estimate
from repro.baselines.published import PAPER_RESULTS, best_prior
from repro.errors import ReproError
from repro.ir import zoo


class TestPublished:
    def test_table4_rows_verbatim(self):
        by_key = {p.key: p for p in PUBLISHED}
        assert by_key["tgpa"].gops == 1510.0
        assert by_key["opencl-a10"].gops == 1790.0
        assert by_key["cloud-dnn"].gops == 1828.6
        assert by_key["cloud-dnn"].dsps == 5349

    def test_best_prior_vu9p(self):
        # Cloud-DNN is the best published VU9P design in Table 4.
        assert best_prior("Xilinx VU9P").key == "cloud-dnn"

    def test_paper_speedup_claim(self):
        # 3375.7 / 1828.6 = 1.85x — the paper's "1.8x" headline.
        ours = PAPER_RESULTS["vu9p"]
        assert ours.gops / best_prior("Xilinx VU9P").gops == pytest.approx(
            1.85, abs=0.01
        )

    def test_efficiencies(self):
        a10 = next(p for p in PUBLISHED if p.key == "opencl-a10")
        assert a10.dsp_efficiency == pytest.approx(0.65, abs=0.01)
        assert a10.energy_efficiency == pytest.approx(47.7, abs=0.1)
        tgpa = next(p for p in PUBLISHED if p.key == "tgpa")
        assert tgpa.energy_efficiency is None


class TestSpatialOnly:
    def test_slower_than_hybrid(self, cfg_vu9p_paper, vu9p):
        from repro.dse.engine import map_network

        net = zoo.vgg16(include_fc=False)
        _, hybrid = map_network(cfg_vu9p_paper, vu9p, net)
        mapping, spatial = spatial_only_estimate(cfg_vu9p_paper, vu9p, net)
        assert all(m.mode == "spat" for m in mapping)
        assert spatial.latency > hybrid.latency
        # 3x3-dominated network: hybrid gains should approach the 4x
        # Winograd bound but stay above 1x.
        gain = spatial.latency / hybrid.latency
        assert 1.5 < gain <= 4.5


class TestMetrics:
    def test_gops(self):
        assert gops(2e9, 1.0) == 2.0
        assert gops(2e9, 1.0, instances=6) == 12.0

    def test_dsp_efficiency(self):
        assert dsp_efficiency(3375.7, 5163) == pytest.approx(0.65, abs=0.01)

    def test_energy_efficiency(self):
        assert energy_efficiency(3375.7, 45.9) == pytest.approx(73.5, abs=0.1)

    def test_speedup(self):
        assert speedup(3375.7, 1828.6) == pytest.approx(1.85, abs=0.01)

    def test_relative_error(self):
        assert relative_error(104.27, 100.0) == pytest.approx(0.0427)

    def test_validation(self):
        with pytest.raises(ReproError):
            gops(1, 0)
        with pytest.raises(ReproError):
            dsp_efficiency(1.0, 0)
        with pytest.raises(ReproError):
            speedup(1.0, 0)


class TestReport:
    def test_table_renders_aligned(self):
        table = Table("T", ["a", "bb"])
        table.add_row(1, 2.5)
        table.add_row("xxx", 10000.0)
        table.add_note("note")
        text = table.render()
        assert "T\n=" in text
        assert "* note" in text
        assert "10,000.0" in text

    def test_row_width_checked(self):
        table = Table("T", ["a"])
        with pytest.raises(ValueError):
            table.add_row(1, 2)

    def test_format_table_plain(self):
        text = format_table("X", ["h"], [["v"]])
        assert "X" in text and "v" in text

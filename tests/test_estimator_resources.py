"""Tests for repro.estimator.resources — Eq. 3-5 and Table 3."""

import pytest

from repro.estimator import (
    estimate_resources,
    hybrid_lut_overhead,
    spatial_only_resources,
)
from repro.estimator.calibration import get_calibration
from repro.estimator.resources import (
    bram_count,
    dsp_count,
    instances_per_die,
    lut_count,
)


class TestTable3Reproduction:
    """The headline resource numbers of Table 3."""

    def test_vu9p_matches_paper(self, cfg_vu9p_paper, vu9p):
        res = estimate_resources(cfg_vu9p_paper, vu9p)
        # Paper: 706353 LUTs / 5163 DSPs / 3169 BRAMs (within 0.2%).
        assert res.luts == pytest.approx(706_353, rel=0.002)
        assert res.dsps == pytest.approx(5_163, rel=0.002)
        assert res.brams == pytest.approx(3_169, rel=0.002)

    def test_pynq_matches_paper(self, cfg_pynq_paper, pynq):
        res = estimate_resources(cfg_pynq_paper, pynq)
        # Paper: 37034 LUTs / 220 DSPs (100%) / 277 BRAMs.
        assert res.luts == pytest.approx(37_034, rel=0.002)
        assert res.dsps == 220
        assert res.brams == 277

    def test_fits_devices(self, cfg_vu9p_paper, vu9p, cfg_pynq_paper, pynq):
        assert estimate_resources(cfg_vu9p_paper, vu9p).fits_in(vu9p.resources)
        assert estimate_resources(cfg_pynq_paper, pynq).fits_in(pynq.resources)

    def test_two_instances_per_vu9p_die(self, cfg_vu9p_paper, vu9p):
        # Section 6.1: two instances fit one die; six across three dies.
        assert instances_per_die(cfg_vu9p_paper, vu9p) == 2


class TestEq3Dsp:
    def test_scales_with_pe_array(self, cfg_pt4, cfg_pt6, pynq):
        cal = get_calibration("generic")
        assert dsp_count(cfg_pt6, cal) > dsp_count(cfg_pt4, cal)

    def test_dsp_packing_halves_pe_term(self, cfg_pt4):
        unpacked = get_calibration("generic")
        packed = get_calibration("pynq-z1")
        pe_full = cfg_pt4.pi * cfg_pt4.po * cfg_pt4.pt**2
        delta = dsp_count(cfg_pt4, unpacked) - dsp_count(cfg_pt4, packed)
        assert delta == pe_full // 2

    def test_per_instance_flag(self, cfg_vu9p_paper, vu9p):
        one = estimate_resources(cfg_vu9p_paper, vu9p, per_instance=True)
        total = estimate_resources(cfg_vu9p_paper, vu9p)
        assert total.dsps == one.dsps * 6


class TestEq5LutOverhead:
    def test_vu9p_overhead_26_4_percent(self, cfg_vu9p_paper, vu9p):
        # Section 6.1: hybrid support costs 26.4% extra LUTs on VU9P.
        assert hybrid_lut_overhead(cfg_vu9p_paper, vu9p) == pytest.approx(
            0.264, abs=0.002
        )

    def test_zero_dsp_overhead(self, cfg_vu9p_paper, vu9p):
        hybrid = estimate_resources(cfg_vu9p_paper, vu9p)
        spatial = spatial_only_resources(cfg_vu9p_paper, vu9p)
        assert hybrid.dsps == spatial.dsps
        assert hybrid.brams == spatial.brams
        assert hybrid.luts > spatial.luts

    def test_overhead_scales_with_m(self, cfg_pt4, cfg_pt6, vu9p):
        cal = get_calibration("vu9p")
        over4 = lut_count(cfg_pt4, cal) / lut_count(cfg_pt4, cal, hybrid=False)
        over6 = lut_count(cfg_pt6, cal) / lut_count(cfg_pt6, cal, hybrid=False)
        # delta * m^2: m=4 costs 4x the m=2 overhead (up to the integer
        # rounding of the LUT counts).
        assert (over6 - 1) == pytest.approx(4 * (over4 - 1), rel=0.01)


class TestEq4Bram:
    def test_counts_table1_banks(self, cfg_pt6):
        cal = get_calibration("generic")
        count = bram_count(cfg_pt6, cal, bram_width_bits=18)
        banks = (
            cfg_pt6.pi * cfg_pt6.pt**2
            + cfg_pt6.pi * cfg_pt6.po * cfg_pt6.pt**2
            + cfg_pt6.po * cfg_pt6.m**2
        )
        assert count == round(cfg_pt6.data_width / 18 * banks)

    def test_wider_data_more_brams(self, cfg_pt4):
        from dataclasses import replace

        cal = get_calibration("generic")
        wide = replace(cfg_pt4, data_width=16)
        assert bram_count(wide, cal) > bram_count(cfg_pt4, cal)

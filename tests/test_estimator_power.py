"""Tests for repro.estimator.power — board power model."""

import pytest

from repro.errors import DeviceError
from repro.estimator import estimate_power, estimate_resources
from repro.estimator.power import PowerEstimate
from repro.fpga.resources import ResourceBudget


class TestCalibration:
    def test_vu9p_matches_table4_power(self, vu9p):
        # Paper Table 4: 45.9 W for the six-instance VGG16 design.
        paper = ResourceBudget(706_353, 5_163, 3_169)
        power = estimate_power(paper, vu9p)
        assert power.total_w == pytest.approx(45.9, abs=0.2)

    def test_pynq_matches_table4_power(self, pynq):
        # Paper Table 4: 2.6 W.
        paper = ResourceBudget(37_034, 220, 277)
        power = estimate_power(paper, pynq)
        assert power.total_w == pytest.approx(2.6, abs=0.05)

    def test_our_designs_in_band(self, cfg_vu9p_paper, vu9p,
                                 cfg_pynq_paper, pynq):
        v = estimate_power(estimate_resources(cfg_vu9p_paper, vu9p), vu9p)
        p = estimate_power(estimate_resources(cfg_pynq_paper, pynq), pynq)
        assert v.total_w == pytest.approx(45.9, rel=0.02)
        assert p.total_w == pytest.approx(2.6, rel=0.02)


class TestModelBehaviour:
    def test_breakdown_sums(self, pynq):
        power = estimate_power(ResourceBudget(1000, 10, 10), pynq)
        assert power.total_w == pytest.approx(
            power.static_w + power.dsp_w + power.bram_w + power.lut_w
        )

    def test_monotone_in_resources(self, vu9p):
        small = estimate_power(ResourceBudget(1000, 100, 100), vu9p)
        large = estimate_power(ResourceBudget(2000, 200, 200), vu9p)
        assert large.total_w > small.total_w
        assert large.static_w == small.static_w

    def test_over_capacity_rejected(self, pynq):
        with pytest.raises(DeviceError):
            estimate_power(ResourceBudget(10**6, 10**4, 10**4), pynq)

    def test_unknown_device_uses_default_static(self):
        from repro.fpga import get_device
        from repro.estimator.power import DEFAULT_STATIC_W

        # ku115 has an entry; fabricate by checking a catalogued device
        # with default: use zcu102 (has entry) vs expected values.
        dev = get_device("zcu102")
        power = estimate_power(ResourceBudget(0, 0, 0), dev)
        assert power.total_w > 0
        assert isinstance(power, PowerEstimate)
        assert DEFAULT_STATIC_W > 0

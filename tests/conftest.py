"""Shared fixtures: small configurations and networks that keep the
functional simulator fast while exercising every architectural path."""

import numpy as np
import pytest

from repro.arch.params import AcceleratorConfig
from repro.fpga import get_device
from repro.ir import zoo
from repro.runtime import generate_parameters


@pytest.fixture(scope="session")
def pynq():
    return get_device("pynq-z1")


@pytest.fixture(scope="session")
def vu9p():
    return get_device("vu9p")


@pytest.fixture(scope="session")
def cfg_pt4():
    """Small PT=4 instance (F(2x2,3x3)) with modest buffers."""
    return AcceleratorConfig(
        pi=4, po=4, pt=4, instances=1, frequency_mhz=100.0,
        input_buffer_vecs=4096, weight_buffer_vecs=2048,
        output_buffer_vecs=2048,
    )


@pytest.fixture(scope="session")
def cfg_pt6():
    """Small PT=6 instance (F(4x4,3x3))."""
    return AcceleratorConfig(
        pi=4, po=4, pt=6, instances=1, frequency_mhz=100.0,
        input_buffer_vecs=4096, weight_buffer_vecs=2048,
        output_buffer_vecs=2048,
    )


@pytest.fixture(scope="session")
def cfg_vu9p_paper():
    """The paper's VU9P case-study configuration."""
    return AcceleratorConfig(
        pi=4, po=4, pt=6, instances=6, frequency_mhz=167.0,
        input_buffer_vecs=32768, weight_buffer_vecs=16384,
        output_buffer_vecs=16384,
    )


@pytest.fixture(scope="session")
def cfg_pynq_paper():
    """The paper's PYNQ-Z1 case-study configuration."""
    return AcceleratorConfig(
        pi=4, po=4, pt=4, instances=1, frequency_mhz=100.0,
        input_buffer_vecs=8192, weight_buffer_vecs=4096,
        output_buffer_vecs=4096,
    )


@pytest.fixture(scope="session")
def tiny_net():
    return zoo.tiny_cnn(input_size=16, channels=8)


@pytest.fixture(scope="session")
def tiny_params(tiny_net):
    return generate_parameters(tiny_net, seed=7)


@pytest.fixture(scope="session")
def tiny_image(tiny_net):
    rng = np.random.default_rng(3)
    return rng.normal(size=tiny_net.input_shape.as_tuple())


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(42)

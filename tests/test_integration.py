"""Cross-module integration tests: the whole framework pipeline from
model + device to verified simulated inference, plus hypothesis
properties spanning compiler + simulator."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AcceleratorConfig,
    CompilerOptions,
    HostRuntime,
    NetworkMapping,
    compile_network,
    generate_parameters,
    get_device,
    reference_inference,
    run_dse,
)
from repro.dse.space import DseOptions
from repro.ir import NetworkBuilder, zoo


class TestFullPipeline:
    """parser -> DSE -> compiler -> runtime -> verified output."""

    def test_dse_to_verified_inference(self, pynq):
        net = zoo.tiny_cnn(input_size=16, channels=8)
        result = run_dse(
            pynq, net,
            DseOptions(buffer_presets=(4096, 2048, 2048)),
        )
        params = generate_parameters(net, seed=11)
        compiled = compile_network(
            net, result.cfg, result.mapping, params,
            CompilerOptions(quantize=False),
        )
        runtime = HostRuntime(compiled, pynq)
        rng = np.random.default_rng(12)
        image = rng.normal(size=net.input_shape.as_tuple())
        out = runtime.infer(image)
        ref = reference_inference(net, params, image)
        np.testing.assert_allclose(out.output, ref, atol=1e-9)

    def test_simulated_latency_close_to_estimate(self, pynq):
        # The estimation-error claim on a small network.
        from repro.dse.engine import map_network

        net = zoo.tiny_cnn(input_size=32, channels=16)
        cfg = AcceleratorConfig(
            pi=4, po=4, pt=4, frequency_mhz=100.0,
            input_buffer_vecs=8192, weight_buffer_vecs=4096,
            output_buffer_vecs=4096,
        )
        mapping, estimate = map_network(cfg, pynq, net)
        params = generate_parameters(net)
        compiled = compile_network(
            net, cfg, mapping, params, CompilerOptions(quantize=True)
        )
        runtime = HostRuntime(compiled, pynq, functional=False)
        sim = runtime.infer(np.zeros(net.input_shape.as_tuple())).sim
        error = abs(estimate.latency - sim.seconds) / sim.seconds
        assert error < 0.25

    def test_alexnet_compiles_and_runs(self, vu9p):
        """Large kernels + strides + overlapping pools + FC stack."""
        net = zoo.alexnet(input_size=67)  # scaled-down geometry
        cfg = AcceleratorConfig(
            pi=4, po=4, pt=6, frequency_mhz=167.0,
            input_buffer_vecs=32768, weight_buffer_vecs=16384,
            output_buffer_vecs=16384,
        )
        from repro.dse.engine import map_network

        mapping, _ = map_network(cfg, vu9p, net)
        assert mapping.for_layer("conv1").mode == "spat"  # stride 4
        params = generate_parameters(net)
        compiled = compile_network(
            net, cfg, mapping, params,
            CompilerOptions(quantize=True, pack_data=False),
        )
        runtime = HostRuntime(compiled, vu9p, functional=False)
        sim = runtime.infer(np.zeros(net.input_shape.as_tuple())).sim
        assert sim.cycles > 0

    def test_binary_program_roundtrip_preserves_stream(self, cfg_pt4, pynq):
        from repro.isa.program import Program

        net = zoo.tiny_cnn(input_size=16)
        params = generate_parameters(net)
        mapping = NetworkMapping.uniform(net, "wino", "ws")
        compiled = compile_network(net, cfg_pt4, mapping, params)
        program = compiled.steps[0].program
        back = Program.from_bytes(program.to_bytes())
        assert back.instructions == program.instructions


@settings(max_examples=10, deadline=None)
@given(
    channels=st.sampled_from([3, 4, 8]),
    out_channels=st.sampled_from([4, 8, 12]),
    size=st.sampled_from([8, 11, 16]),
    kernel=st.sampled_from([1, 3, 5]),
    mode=st.sampled_from(["spat", "wino"]),
    dataflow=st.sampled_from(["is", "ws"]),
    pt=st.sampled_from([4, 6]),
    seed=st.integers(0, 1000),
)
def test_accelerator_equals_reference_property(
    channels, out_channels, size, kernel, mode, dataflow, pt, seed
):
    """Property: for any single-conv geometry and any mapping, the
    simulated accelerator reproduces the reference convolution."""
    cfg = AcceleratorConfig(
        pi=4, po=4, pt=pt, frequency_mhz=100.0,
        input_buffer_vecs=4096, weight_buffer_vecs=4096,
        output_buffer_vecs=4096,
    )
    device = get_device("pynq-z1")
    net = zoo.single_conv(
        channels, out_channels, size, kernel, padding=kernel // 2
    )
    params = generate_parameters(net, seed=seed)
    mapping = NetworkMapping.uniform(net, mode, dataflow)
    compiled = compile_network(
        net, cfg, mapping, params, CompilerOptions(quantize=False)
    )
    runtime = HostRuntime(compiled, device)
    rng = np.random.default_rng(seed)
    image = rng.normal(size=net.input_shape.as_tuple())
    out = runtime.infer(image)
    ref = reference_inference(net, params, image)
    np.testing.assert_allclose(out.output, ref, atol=1e-8)


@settings(max_examples=8, deadline=None)
@given(
    depth=st.integers(1, 3),
    width=st.sampled_from([4, 8]),
    relu=st.booleans(),
    pool=st.booleans(),
    seed=st.integers(0, 1000),
)
def test_random_network_property(depth, width, relu, pool, seed):
    """Property: randomly-shaped small CNNs run exactly end to end."""
    builder = NetworkBuilder("rand", (3, 16, 16))
    for i in range(depth):
        builder.conv2d(width, padding=1, relu=relu, name=f"c{i}")
    if pool:
        builder.maxpool2d(2, name="p")
    net = builder.build()
    cfg = AcceleratorConfig(
        pi=4, po=4, pt=4, frequency_mhz=100.0,
        input_buffer_vecs=4096, weight_buffer_vecs=2048,
        output_buffer_vecs=2048,
    )
    device = get_device("pynq-z1")
    params = generate_parameters(net, seed=seed)
    mapping = NetworkMapping.uniform(net, "wino", "ws")
    compiled = compile_network(
        net, cfg, mapping, params, CompilerOptions(quantize=False)
    )
    runtime = HostRuntime(compiled, device)
    rng = np.random.default_rng(seed)
    image = rng.normal(size=(3, 16, 16))
    out = runtime.infer(image)
    ref = reference_inference(net, params, image)
    np.testing.assert_allclose(out.output, ref, atol=1e-8)

"""Tests for repro.serving.events — the kernel, sources, closed loops."""

import pytest

from repro.arch.params import AcceleratorConfig
from repro.compiler import CompilerOptions
from repro.errors import ServingError
from repro.fpga import get_device
from repro.ir import zoo
from repro.pipeline import PipelineSession
from repro.serving import (
    Arrival,
    BatcherOptions,
    ClosedLoopClientPool,
    DynamicBatcher,
    EventKernel,
    Flush,
    OpenLoopSource,
    PolicyTick,
    Request,
    ServingReport,
    ShardDown,
    ShardPool,
    ShardServer,
    make_requests,
)


def make_session(instances=1, frequency=100.0):
    device = get_device("vu9p")
    cfg = AcceleratorConfig(
        pi=4, po=4, pt=4, instances=instances, frequency_mhz=frequency,
        input_buffer_vecs=4096, weight_buffer_vecs=2048,
        output_buffer_vecs=2048,
    )
    return PipelineSession(
        zoo.tiny_cnn(input_size=16, channels=8),
        device,
        cfg=cfg,
        compiler_options=CompilerOptions(quantize=False, pack_data=False),
    )


# -- kernel ----------------------------------------------------------------


class TestEventKernel:
    def test_orders_by_time_then_priority_then_sequence(self):
        kernel = EventKernel()
        seen = []
        for kind in (Arrival, Flush, PolicyTick, ShardDown):
            kernel.subscribe(
                kind, lambda _k, e: seen.append(type(e).__name__)
            )
        # Same instant: ShardDown(0) < PolicyTick(3) < Arrival(4) <
        # Flush(5); later instants strictly after.
        kernel.push(Flush(time=1.0))
        kernel.push(Arrival(time=1.0, request=Request(0, 1.0)))
        kernel.push(PolicyTick(time=1.0))
        kernel.push(ShardDown(time=1.0, shard="s"))
        kernel.push(Arrival(time=0.5, request=Request(1, 0.5)))
        assert kernel.run() == 5
        assert seen == [
            "Arrival", "ShardDown", "PolicyTick", "Arrival", "Flush",
        ]
        assert kernel.now == 1.0

    def test_same_type_same_time_pops_in_push_order(self):
        kernel = EventKernel()
        seen = []
        kernel.subscribe(
            Arrival, lambda _k, e: seen.append(e.request.index)
        )
        for index in (3, 1, 2):
            kernel.push(Arrival(time=0.0, request=Request(index, 0.0)))
        kernel.run()
        assert seen == [3, 1, 2]

    def test_push_into_the_past_rejected(self):
        kernel = EventKernel()
        kernel.push(Arrival(time=1.0, request=Request(0, 1.0)))
        kernel.run()
        with pytest.raises(ServingError):
            kernel.push(Arrival(time=0.5, request=Request(1, 0.5)))

    def test_cancel_skips_and_updates_pending(self):
        kernel = EventKernel()
        seen = []
        kernel.subscribe(Flush, lambda _k, e: seen.append(e.token))
        keep = kernel.push(Flush(time=0.0, token=1))
        drop = kernel.push(Flush(time=0.0, token=2))
        assert kernel.pending(Flush) == 2
        kernel.cancel(drop)
        kernel.cancel(drop)  # idempotent
        assert kernel.pending(Flush) == 1
        assert kernel.pending() == 1
        assert kernel.run() == 1
        assert seen == [1]
        assert keep.cancelled is False

    def test_handlers_can_push_followup_events(self):
        kernel = EventKernel()
        seen = []

        def chain(k, event):
            seen.append(event.time)
            if event.time < 3.0:
                k.push(PolicyTick(time=event.time + 1.0))

        kernel.subscribe(PolicyTick, chain)
        kernel.push(PolicyTick(time=0.0))
        kernel.run()
        assert seen == [0.0, 1.0, 2.0, 3.0]

    def test_event_budget_guards_runaway_loops(self):
        kernel = EventKernel()
        kernel.subscribe(
            PolicyTick, lambda k, e: k.push(PolicyTick(time=e.time))
        )
        kernel.push(PolicyTick(time=0.0))
        with pytest.raises(ServingError):
            kernel.run(max_events=100)


# -- batcher on the kernel -------------------------------------------------


def reference_batches(requests, max_batch, max_wait):
    """The pre-kernel batcher algorithm, kept as the oracle."""
    from collections import deque

    queue = deque()
    out = []

    def drain(at):
        batch = []
        while queue and len(batch) < max_batch and queue[0].arrival <= at:
            batch.append(queue.popleft())
        return batch

    for request in sorted(requests, key=lambda r: (r.arrival, r.index)):
        while queue and queue[0].arrival + max_wait < request.arrival:
            deadline = queue[0].arrival + max_wait
            out.append((deadline, drain(deadline)))
        queue.append(request)
        if len(queue) >= max_batch:
            out.append((request.arrival, drain(request.arrival)))
    while queue:
        deadline = queue[0].arrival + max_wait
        out.append((deadline, drain(deadline)))
    return out


class TestBatcherOnKernel:
    @pytest.mark.parametrize("max_batch,max_wait", [
        (1, 0.0), (3, 0.0), (3, 0.01), (8, 0.002), (64, 0.05),
    ])
    @pytest.mark.parametrize("model,kwargs", [
        ("uniform", {}),
        ("poisson", {"qps": 400.0, "seed": 5}),
        ("burst", {"qps": 300.0, "burst": 5}),
    ])
    def test_matches_pre_kernel_batcher(self, max_batch, max_wait,
                                        model, kwargs):
        """The kernel-driven batcher reproduces the inline algorithm
        flush for flush on every traffic shape."""
        requests = make_requests(model, 40, **kwargs)
        batcher = DynamicBatcher(
            BatcherOptions(max_batch=max_batch, max_wait_s=max_wait)
        )
        got = list(batcher.batches(requests))
        assert got == reference_batches(requests, max_batch, max_wait)

    def test_empty_stream_yields_nothing(self):
        assert list(DynamicBatcher().batches([])) == []


# -- sources ---------------------------------------------------------------


class TestOpenLoopSource:
    def test_rejects_empty(self):
        with pytest.raises(ServingError):
            OpenLoopSource([])

    def test_primes_sorted_arrivals(self):
        kernel = EventKernel()
        seen = []
        kernel.subscribe(
            Arrival, lambda _k, e: seen.append(e.request.index)
        )
        OpenLoopSource([
            Request(0, 2.0), Request(1, 1.0), Request(2, 1.0),
        ]).prime(kernel)
        kernel.run()
        assert seen == [1, 2, 0]


class TestClosedLoopClientPool:
    def test_validation(self):
        with pytest.raises(ServingError):
            ClosedLoopClientPool(clients=0, requests=4)
        with pytest.raises(ServingError):
            ClosedLoopClientPool(clients=1, requests=-1)
        with pytest.raises(ServingError):
            ClosedLoopClientPool(clients=1, requests=4, think_time_s=-1.0)
        with pytest.raises(ServingError):
            ClosedLoopClientPool(clients=1, requests=4,
                                 distribution="uniform")

    def test_serves_exactly_the_request_budget(self):
        pool = ShardPool.replicate(make_session(instances=2), 2)
        source = ClosedLoopClientPool(clients=3, requests=17,
                                      think_time_s=0.0, seed=4)
        report = ShardServer(
            pool, "least-loaded", BatcherOptions(max_batch=2)
        ).serve(source)
        assert report.count == 17
        assert [r.index for r in report.records] == list(range(17))

    def test_one_outstanding_request_per_client(self):
        pool = ShardPool.replicate(make_session(), 1)
        per_image = pool.shards[0].probe_seconds()
        think = 0.5 * per_image
        source = ClosedLoopClientPool(clients=2, requests=10,
                                      think_time_s=think, seed=4)
        report = ShardServer(
            pool, "round-robin", BatcherOptions(max_batch=1)
        ).serve(source)
        assert report.count == 10
        # At most 2 requests are ever in flight, and a client's next
        # arrival is exactly one think time after a completion.
        events = sorted(
            [(r.arrival, 1) for r in report.records]
            + [(r.completed, -1) for r in report.records]
        )
        outstanding = high_water = 0
        for _, delta in events:
            outstanding += delta
            high_water = max(high_water, outstanding)
        assert high_water <= 2
        completions = {r.completed for r in report.records}
        for record in report.records[2:]:
            assert any(
                record.arrival == pytest.approx(done + think)
                for done in completions
            )

    def test_closed_loop_run_is_deterministic(self):
        pool = ShardPool.replicate(make_session(instances=2), 2)
        server = ShardServer(pool, "least-loaded",
                             BatcherOptions(max_batch=2))
        source = ClosedLoopClientPool(
            clients=4, requests=20, think_time_s=1e-5,
            distribution="exponential", seed=9,
        )
        first = server.serve(source)
        second = server.serve(source)  # prime() resets per-run state
        assert first.records == second.records
        other = server.serve(ClosedLoopClientPool(
            clients=4, requests=20, think_time_s=1e-5,
            distribution="exponential", seed=10,
        ))
        assert other.records != first.records

    def test_zero_requests_gives_empty_report(self):
        pool = ShardPool.replicate(make_session(), 1)
        report = ShardServer(pool, "round-robin").serve(
            ClosedLoopClientPool(clients=2, requests=0)
        )
        assert report.count == 0
        assert report.makespan_seconds == 0.0


# -- empty-report guards ---------------------------------------------------


class TestEmptyReport:
    def test_empty_report_is_well_formed(self):
        report = ServingReport(records=[], shards=[], total_ops=0,
                               shed=5)
        assert report.count == 0
        assert report.makespan_seconds == 0.0
        # Undefined rates are consistently NaN, defined counts are 0.
        assert report.images_per_second != report.images_per_second
        assert report.throughput_gops != report.throughput_gops  # NaN
        assert report.mean_latency != report.mean_latency
        assert report.mean_queue_seconds != report.mean_queue_seconds
        assert report.latency_percentile(99) != report.latency_percentile(99)
        text = report.describe()
        assert "0 requests" in text
        assert "5 shed" in text

    def test_mixed_traffic_types_rejected(self):
        pool = ShardPool.replicate(make_session(), 1)
        server = ShardServer(pool)
        with pytest.raises(ServingError):
            server.serve([Request(0, 0.0), OpenLoopSource([Request(1, 0.0)])])

    def test_multiple_sources_rejected(self):
        # Independent sources would mint colliding request indices and
        # cross-advance each other's clients — one source per run.
        pool = ShardPool.replicate(make_session(), 1)
        server = ShardServer(pool)
        with pytest.raises(ServingError):
            server.serve([
                ClosedLoopClientPool(clients=1, requests=2, seed=1),
                ClosedLoopClientPool(clients=1, requests=2, seed=2),
            ])

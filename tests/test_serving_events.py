"""Tests for repro.serving.events — the kernel, sources, closed loops."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.params import AcceleratorConfig
from repro.compiler import CompilerOptions
from repro.errors import ServingError
from repro.fpga import get_device
from repro.ir import zoo
from repro.pipeline import PipelineSession
from repro.serving import (
    Arrival,
    BatchDone,
    BatcherOptions,
    ClosedLoopClientPool,
    DynamicBatcher,
    EventKernel,
    Flush,
    OpenLoopSource,
    PolicyTick,
    Request,
    ServingReport,
    ShardDown,
    ShardPool,
    ShardServer,
    ShardUp,
    make_requests,
)


def make_session(instances=1, frequency=100.0):
    device = get_device("vu9p")
    cfg = AcceleratorConfig(
        pi=4, po=4, pt=4, instances=instances, frequency_mhz=frequency,
        input_buffer_vecs=4096, weight_buffer_vecs=2048,
        output_buffer_vecs=2048,
    )
    return PipelineSession(
        zoo.tiny_cnn(input_size=16, channels=8),
        device,
        cfg=cfg,
        compiler_options=CompilerOptions(quantize=False, pack_data=False),
    )


# -- kernel ----------------------------------------------------------------


class TestEventKernel:
    def test_orders_by_time_then_priority_then_sequence(self):
        kernel = EventKernel()
        seen = []
        for kind in (Arrival, Flush, PolicyTick, ShardDown):
            kernel.subscribe(
                kind, lambda _k, e: seen.append(type(e).__name__)
            )
        # Same instant: ShardDown(0) < PolicyTick(3) < Arrival(4) <
        # Flush(5); later instants strictly after.
        kernel.push(Flush(time=1.0))
        kernel.push(Arrival(time=1.0, request=Request(0, 1.0)))
        kernel.push(PolicyTick(time=1.0))
        kernel.push(ShardDown(time=1.0, shard="s"))
        kernel.push(Arrival(time=0.5, request=Request(1, 0.5)))
        assert kernel.run() == 5
        assert seen == [
            "Arrival", "ShardDown", "PolicyTick", "Arrival", "Flush",
        ]
        assert kernel.now == 1.0

    def test_same_type_same_time_pops_in_push_order(self):
        kernel = EventKernel()
        seen = []
        kernel.subscribe(
            Arrival, lambda _k, e: seen.append(e.request.index)
        )
        for index in (3, 1, 2):
            kernel.push(Arrival(time=0.0, request=Request(index, 0.0)))
        kernel.run()
        assert seen == [3, 1, 2]

    def test_push_into_the_past_rejected(self):
        kernel = EventKernel()
        kernel.push(Arrival(time=1.0, request=Request(0, 1.0)))
        kernel.run()
        with pytest.raises(ServingError):
            kernel.push(Arrival(time=0.5, request=Request(1, 0.5)))

    def test_cancel_skips_and_updates_pending(self):
        kernel = EventKernel()
        seen = []
        kernel.subscribe(Flush, lambda _k, e: seen.append(e.token))
        keep = kernel.push(Flush(time=0.0, token=1))
        drop = kernel.push(Flush(time=0.0, token=2))
        assert kernel.pending(Flush) == 2
        kernel.cancel(drop)
        kernel.cancel(drop)  # idempotent
        assert kernel.pending(Flush) == 1
        assert kernel.pending() == 1
        assert kernel.run() == 1
        assert seen == [1]
        assert keep.cancelled is False

    def test_handlers_can_push_followup_events(self):
        kernel = EventKernel()
        seen = []

        def chain(k, event):
            seen.append(event.time)
            if event.time < 3.0:
                k.push(PolicyTick(time=event.time + 1.0))

        kernel.subscribe(PolicyTick, chain)
        kernel.push(PolicyTick(time=0.0))
        kernel.run()
        assert seen == [0.0, 1.0, 2.0, 3.0]

    def test_event_budget_guards_runaway_loops(self):
        kernel = EventKernel()
        kernel.subscribe(
            PolicyTick, lambda k, e: k.push(PolicyTick(time=e.time))
        )
        kernel.push(PolicyTick(time=0.0))
        with pytest.raises(ServingError):
            kernel.run(max_events=100)


#: Every event kind, with its class priority — the ordering axis the
#: fast-path properties pin down.
EVENT_KINDS = (ShardDown, ShardUp, BatchDone, PolicyTick, Arrival, Flush)


def _make_event(kind, time):
    if kind is Arrival:
        return Arrival(time=time, request=Request(0, time))
    if kind in (ShardDown, ShardUp):
        return kind(time=time, shard="s")
    return kind(time=time)


class TestKernelOrderingProperties:
    """The same-instant batch pop / tuple-heap rewrite must be
    observationally identical to the one-pop-at-a-time kernel: events
    pop in (time, priority, push-sequence) order, always."""

    @settings(max_examples=60, deadline=None)
    @given(
        stream=st.lists(
            st.tuples(
                st.sampled_from([0.0, 0.25, 0.5, 0.5, 1.0]),
                st.integers(0, len(EVENT_KINDS) - 1),
            ),
            min_size=1,
            max_size=40,
        ),
        cancel_seed=st.integers(0, 2**16),
    )
    def test_pops_follow_time_priority_sequence(self, stream, cancel_seed):
        """Random pushes (heavy same-instant collisions) with a random
        cancellation subset pop exactly in the stable (time, priority)
        sort of the survivors."""
        kernel = EventKernel()
        seen = []
        order_of = {}
        for kind in EVENT_KINDS:
            kernel.subscribe(
                kind, lambda _k, e: seen.append(order_of[id(e)])
            )
        entries = []
        events = []
        for seq, (time, kind_index) in enumerate(stream):
            event = _make_event(EVENT_KINDS[kind_index], time)
            order_of[id(event)] = seq
            events.append(event)
            entries.append(kernel.push(event))
        rng = random.Random(cancel_seed)
        cancelled = {
            seq for seq in range(len(entries)) if rng.random() < 0.25
        }
        for seq in cancelled:
            kernel.cancel(entries[seq])
        survivors = [
            seq for seq in range(len(events)) if seq not in cancelled
        ]
        assert kernel.pending() == len(survivors)
        processed = kernel.run()
        assert processed == len(survivors)
        # Stable sort by (time, priority) == (time, priority, seq)
        # order, because sorted() preserves push order on ties.
        expected = sorted(
            survivors,
            key=lambda seq: (
                events[seq].time, type(events[seq]).priority
            ),
        )
        assert seen == expected
        assert kernel.pending() == 0
        assert kernel.events_processed == processed

    def test_same_instant_handler_push_interleaves_by_priority(self):
        """An event pushed by a handler at the *current* instant must
        still dispatch in priority order relative to events already
        popped into the same-instant batch."""
        kernel = EventKernel()
        seen = []

        def on_tick(k, event):
            seen.append("tick")
            k.push(Arrival(time=event.time, request=Request(9, event.time)))

        kernel.subscribe(PolicyTick, on_tick)
        kernel.subscribe(Arrival, lambda _k, e: seen.append("arrival"))
        kernel.subscribe(Flush, lambda _k, e: seen.append("flush"))
        kernel.push(Flush(time=1.0))
        kernel.push(PolicyTick(time=1.0))
        assert kernel.run() == 3
        # PolicyTick(3) first; its same-instant Arrival(4) beats the
        # pre-batched Flush(5).
        assert seen == ["tick", "arrival", "flush"]

    def test_same_instant_same_priority_followup_pops_last(self):
        """A handler-pushed event with the same time and priority gets
        a later sequence number, so it pops after the batched ones."""
        kernel = EventKernel()
        seen = []

        def on_flush(k, event):
            seen.append(event.token)
            if event.token == 1:
                k.push(Flush(time=event.time, token=3))

        kernel.subscribe(Flush, on_flush)
        kernel.push(Flush(time=1.0, token=1))
        kernel.push(Flush(time=1.0, token=2))
        kernel.run()
        assert seen == [1, 2, 3]

    def test_handler_can_cancel_batched_same_instant_event(self):
        """Cancellation must be honoured even for events already popped
        into the same-instant batch (the shard-failure path cancels
        in-flight completions exactly like this)."""
        kernel = EventKernel()
        seen = []
        handles = {}

        def on_down(k, _event):
            seen.append("down")
            k.cancel(handles["flush"])

        kernel.subscribe(ShardDown, on_down)
        kernel.subscribe(Flush, lambda _k, e: seen.append("flush"))
        handles["flush"] = kernel.push(Flush(time=1.0))
        kernel.push(ShardDown(time=1.0, shard="s"))
        assert kernel.run() == 1
        assert seen == ["down"]
        assert kernel.pending() == 0

    def test_report_carries_kernel_throughput(self):
        pool = ShardPool.replicate(make_session(), 1)
        report = ShardServer(pool, "round-robin").serve(
            make_requests("uniform", 8)
        )
        assert report.events_processed > 0
        assert report.wall_seconds > 0.0
        assert report.events_per_second > 0.0
        payload = report.to_dict()
        assert payload["events_processed"] == report.events_processed
        assert payload["events_per_second"] == pytest.approx(
            report.events_per_second
        )
        assert "events/s" in report.describe()

    def test_kernel_counters_excluded_from_report_equality(self):
        """Two runs of the same scenario compare equal even though the
        host wall clock differs."""
        fast = ServingReport(records=[], shards=[], total_ops=0,
                             events_processed=10, wall_seconds=0.5)
        slow = ServingReport(records=[], shards=[], total_ops=0,
                             events_processed=99, wall_seconds=9.0)
        assert fast == slow
        assert fast.events_per_second == pytest.approx(20.0)
        # Unmeasured reports stay NaN, like the other undefined rates.
        unmeasured = ServingReport(records=[], shards=[], total_ops=0)
        assert unmeasured.events_per_second != unmeasured.events_per_second


# -- batcher on the kernel -------------------------------------------------


def reference_batches(requests, max_batch, max_wait):
    """The pre-kernel batcher algorithm, kept as the oracle."""
    from collections import deque

    queue = deque()
    out = []

    def drain(at):
        batch = []
        while queue and len(batch) < max_batch and queue[0].arrival <= at:
            batch.append(queue.popleft())
        return batch

    for request in sorted(requests, key=lambda r: (r.arrival, r.index)):
        while queue and queue[0].arrival + max_wait < request.arrival:
            deadline = queue[0].arrival + max_wait
            out.append((deadline, drain(deadline)))
        queue.append(request)
        if len(queue) >= max_batch:
            out.append((request.arrival, drain(request.arrival)))
    while queue:
        deadline = queue[0].arrival + max_wait
        out.append((deadline, drain(deadline)))
    return out


class TestBatcherOnKernel:
    @pytest.mark.parametrize("max_batch,max_wait", [
        (1, 0.0), (3, 0.0), (3, 0.01), (8, 0.002), (64, 0.05),
    ])
    @pytest.mark.parametrize("model,kwargs", [
        ("uniform", {}),
        ("poisson", {"qps": 400.0, "seed": 5}),
        ("burst", {"qps": 300.0, "burst": 5}),
    ])
    def test_matches_pre_kernel_batcher(self, max_batch, max_wait,
                                        model, kwargs):
        """The kernel-driven batcher reproduces the inline algorithm
        flush for flush on every traffic shape."""
        requests = make_requests(model, 40, **kwargs)
        batcher = DynamicBatcher(
            BatcherOptions(max_batch=max_batch, max_wait_s=max_wait)
        )
        got = list(batcher.batches(requests))
        assert got == reference_batches(requests, max_batch, max_wait)

    def test_empty_stream_yields_nothing(self):
        assert list(DynamicBatcher().batches([])) == []


# -- sources ---------------------------------------------------------------


class TestOpenLoopSource:
    def test_rejects_empty(self):
        with pytest.raises(ServingError):
            OpenLoopSource([])

    def test_primes_sorted_arrivals(self):
        kernel = EventKernel()
        seen = []
        kernel.subscribe(
            Arrival, lambda _k, e: seen.append(e.request.index)
        )
        OpenLoopSource([
            Request(0, 2.0), Request(1, 1.0), Request(2, 1.0),
        ]).prime(kernel)
        kernel.run()
        assert seen == [1, 2, 0]


class TestClosedLoopClientPool:
    def test_validation(self):
        with pytest.raises(ServingError):
            ClosedLoopClientPool(clients=0, requests=4)
        with pytest.raises(ServingError):
            ClosedLoopClientPool(clients=1, requests=-1)
        with pytest.raises(ServingError):
            ClosedLoopClientPool(clients=1, requests=4, think_time_s=-1.0)
        with pytest.raises(ServingError):
            ClosedLoopClientPool(clients=1, requests=4,
                                 distribution="uniform")

    def test_serves_exactly_the_request_budget(self):
        pool = ShardPool.replicate(make_session(instances=2), 2)
        source = ClosedLoopClientPool(clients=3, requests=17,
                                      think_time_s=0.0, seed=4)
        report = ShardServer(
            pool, "least-loaded", BatcherOptions(max_batch=2)
        ).serve(source)
        assert report.count == 17
        assert [r.index for r in report.records] == list(range(17))

    def test_one_outstanding_request_per_client(self):
        pool = ShardPool.replicate(make_session(), 1)
        per_image = pool.shards[0].probe_seconds()
        think = 0.5 * per_image
        source = ClosedLoopClientPool(clients=2, requests=10,
                                      think_time_s=think, seed=4)
        report = ShardServer(
            pool, "round-robin", BatcherOptions(max_batch=1)
        ).serve(source)
        assert report.count == 10
        # At most 2 requests are ever in flight, and a client's next
        # arrival is exactly one think time after a completion.
        events = sorted(
            [(r.arrival, 1) for r in report.records]
            + [(r.completed, -1) for r in report.records]
        )
        outstanding = high_water = 0
        for _, delta in events:
            outstanding += delta
            high_water = max(high_water, outstanding)
        assert high_water <= 2
        completions = {r.completed for r in report.records}
        for record in report.records[2:]:
            assert any(
                record.arrival == pytest.approx(done + think)
                for done in completions
            )

    def test_closed_loop_run_is_deterministic(self):
        pool = ShardPool.replicate(make_session(instances=2), 2)
        server = ShardServer(pool, "least-loaded",
                             BatcherOptions(max_batch=2))
        source = ClosedLoopClientPool(
            clients=4, requests=20, think_time_s=1e-5,
            distribution="exponential", seed=9,
        )
        first = server.serve(source)
        second = server.serve(source)  # prime() resets per-run state
        assert first.records == second.records
        other = server.serve(ClosedLoopClientPool(
            clients=4, requests=20, think_time_s=1e-5,
            distribution="exponential", seed=10,
        ))
        assert other.records != first.records

    def test_zero_requests_gives_empty_report(self):
        pool = ShardPool.replicate(make_session(), 1)
        report = ShardServer(pool, "round-robin").serve(
            ClosedLoopClientPool(clients=2, requests=0)
        )
        assert report.count == 0
        assert report.makespan_seconds == 0.0


# -- empty-report guards ---------------------------------------------------


class TestEmptyReport:
    def test_empty_report_is_well_formed(self):
        report = ServingReport(records=[], shards=[], total_ops=0,
                               shed=5)
        assert report.count == 0
        assert report.makespan_seconds == 0.0
        # Undefined rates are consistently NaN, defined counts are 0.
        assert report.images_per_second != report.images_per_second
        assert report.throughput_gops != report.throughput_gops  # NaN
        assert report.mean_latency != report.mean_latency
        assert report.mean_queue_seconds != report.mean_queue_seconds
        assert report.latency_percentile(99) != report.latency_percentile(99)
        text = report.describe()
        assert "0 requests" in text
        assert "5 shed" in text

    def test_mixed_traffic_types_rejected(self):
        pool = ShardPool.replicate(make_session(), 1)
        server = ShardServer(pool)
        with pytest.raises(ServingError):
            server.serve([Request(0, 0.0), OpenLoopSource([Request(1, 0.0)])])

    def test_multiple_sources_rejected(self):
        # Independent sources would mint colliding request indices and
        # cross-advance each other's clients — one source per run.
        pool = ShardPool.replicate(make_session(), 1)
        server = ShardServer(pool)
        with pytest.raises(ServingError):
            server.serve([
                ClosedLoopClientPool(clients=1, requests=2, seed=1),
                ClosedLoopClientPool(clients=1, requests=2, seed=2),
            ])

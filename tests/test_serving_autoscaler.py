"""Tests for repro.serving.autoscaler + trace replay.

The elasticity invariants are property-tested: whatever the seeded
trace and the autoscaler contract, the shard count stays within
[min, max], no request is ever dispatched to a shard still in
warm-up, and the open-loop request set is served in full (scale-downs
re-queue, never drop).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.arch.params import AcceleratorConfig
from repro.compiler import CompilerOptions
from repro.errors import ServingError
from repro.fpga import get_device
from repro.ir import zoo
from repro.pipeline import PipelineSession
from repro.serving import (
    AutoscalerOptions,
    BatcherOptions,
    Request,
    RequestRecord,
    ScaleEvent,
    ServingReport,
    ShardPool,
    ShardServer,
    ShardUsage,
    SloOptions,
    TraceSource,
    load_trace,
    make_requests,
)


def make_session(instances=2, frequency=100.0):
    device = get_device("vu9p")
    cfg = AcceleratorConfig(
        pi=4, po=4, pt=4, instances=instances, frequency_mhz=frequency,
        input_buffer_vecs=4096, weight_buffer_vecs=2048,
        output_buffer_vecs=2048,
    )
    return PipelineSession(
        zoo.tiny_cnn(input_size=16, channels=8),
        device,
        cfg=cfg,
        compiler_options=CompilerOptions(quantize=False, pack_data=False),
    )


@pytest.fixture(scope="module")
def pool4():
    """One 4-shard pool shared by every test: ``serve`` resets all
    per-run state, so back-to-back runs are independent."""
    return ShardPool.replicate(make_session(), 4)


@pytest.fixture(scope="module")
def probe(pool4):
    return pool4.shards[0].probe_seconds()


def serve(pool, traffic, autoscale, policy="least-loaded", max_batch=2,
          slo=None):
    server = ShardServer(
        pool, policy, BatcherOptions(max_batch=max_batch),
        slo=slo, autoscale=autoscale,
    )
    return server, server.serve(traffic)


def p99_options(probe, **kw):
    base = dict(
        min_shards=1, max_shards=4, target_p99_s=6 * probe,
        warmup_s=2 * probe, tick_s=probe, cooldown_s=0.0,
        min_samples=2, window=16,
    )
    base.update(kw)
    return AutoscalerOptions(**base)


def overload_requests(probe, count=64, factor=3.0, burst=16):
    """Bursty open-loop traffic at ``factor``x one 2-instance shard."""
    qps = factor * 2.0 / probe
    return make_requests("burst", count, qps=qps, burst=burst)


# -- options validation ----------------------------------------------------


class TestAutoscalerOptions:
    def test_rejects_bad_configs(self):
        bad = [
            dict(min_shards=0, max_shards=2, target_p99_s=1.0),
            dict(min_shards=3, max_shards=2, target_p99_s=1.0),
            dict(min_shards=1, max_shards=2),  # no target
            dict(min_shards=1, max_shards=2, target_p99_s=1.0,
                 target_utilisation=0.5),  # both targets
            dict(min_shards=1, max_shards=2, target_utilisation=0.0),
            dict(min_shards=1, max_shards=2, target_utilisation=1.5),
            dict(min_shards=1, max_shards=2, target_p99_s=-1.0),
            dict(min_shards=1, max_shards=2, target_p99_s=1.0,
                 warmup_s=-0.1),
            dict(min_shards=1, max_shards=2, target_p99_s=1.0,
                 cooldown_s=-0.1),
            dict(min_shards=1, max_shards=2, target_p99_s=1.0,
                 tick_s=0.0),
            dict(min_shards=1, max_shards=2, target_p99_s=1.0,
                 window=4, min_samples=8),
            dict(min_shards=1, max_shards=2, target_p99_s=1.0,
                 scale_down_margin=1.0),
            dict(min_shards=1, max_shards=2, target_utilisation=0.5,
                 utilisation_window_s=0.0),
        ]
        for kwargs in bad:
            with pytest.raises(ServingError):
                AutoscalerOptions(**kwargs)

    def test_defaults_derive_from_the_target(self):
        p99 = AutoscalerOptions(
            min_shards=1, max_shards=2, target_p99_s=0.1
        )
        assert p99.metric == "p99"
        assert p99.effective_tick_s == pytest.approx(0.05)
        assert p99.effective_cooldown_s == pytest.approx(0.1)
        util = AutoscalerOptions(
            min_shards=1, max_shards=2, target_utilisation=0.8,
            tick_s=0.01,
        )
        assert util.metric == "utilisation"
        assert util.effective_utilisation_window_s == pytest.approx(0.08)

    def test_pool_smaller_than_max_is_rejected(self):
        pool = ShardPool.replicate(make_session(), 2)
        _server, _ = (None, None)
        with pytest.raises(ServingError):
            ShardServer(
                pool, autoscale=AutoscalerOptions(
                    min_shards=1, max_shards=4, target_p99_s=1.0
                ),
            ).serve(make_requests("uniform", 4))


# -- elasticity behaviour --------------------------------------------------


class TestAutoscaling:
    def test_overload_scales_up_and_spreads_the_backlog(
        self, pool4, probe
    ):
        requests = overload_requests(probe)
        server, report = serve(pool4, requests, p99_options(probe))
        assert report.count == len(requests)
        assert report.scale_ups >= 1
        # The rebalance on scale-up moves queued work onto the new
        # shards: the run must beat a single fixed shard.
        _, fixed = serve(
            ShardPool.replicate(make_session(), 1), requests, None
        )
        assert report.makespan_seconds < fixed.makespan_seconds
        served_by_new = sum(
            report.per_shard()[shard.name].requests
            for shard in pool4.shards[1:]
        )
        assert served_by_new > 0
        assert server.last_autoscaler is not None
        assert "autoscaler" in server.last_autoscaler.describe()

    def test_min_equals_max_matches_the_fixed_pool(self, pool4, probe):
        requests = overload_requests(probe)
        _, fixed = serve(pool4, requests, None)
        _, pinned = serve(
            pool4, requests,
            p99_options(probe, min_shards=4, max_shards=4),
        )
        assert pinned.records == fixed.records
        assert pinned.scale_events == []
        # The only difference is the explicit elasticity accounting.
        assert pinned.shard_seconds is not None
        assert fixed.shard_seconds is None
        assert pinned.total_shard_seconds() == pytest.approx(
            fixed.total_shard_seconds()
        )

    def test_warming_shard_takes_no_work(self, pool4, probe):
        warmup = 5 * probe
        _, report = serve(
            pool4, overload_requests(probe),
            p99_options(probe, warmup_s=warmup),
        )
        assert report.scale_ups >= 1
        for event in report.scale_events:
            if event.action != "up":
                continue
            for record in report.records:
                if record.shard == event.shard:
                    assert not (
                        event.time <= record.dispatched
                        < event.time + warmup
                    )

    def test_lull_earns_a_scale_down(self, pool4, probe):
        # A dense head then a long sparse tail: the p99 window drains
        # to tail latencies, which sit far under the target.
        head = [Request(i, 0.0) for i in range(32)]
        tail = [
            Request(32 + i, 20 * probe + i * 6 * probe) for i in range(24)
        ]
        _, report = serve(
            pool4, head + tail,
            p99_options(probe, min_samples=4),
        )
        assert report.scale_ups >= 1
        assert report.scale_downs >= 1
        assert report.count == len(head) + len(tail)
        downs = [e for e in report.scale_events if e.action == "down"]
        ups = {e.shard: e.time for e in report.scale_events
               if e.action == "up"}
        for event in downs:
            # No dispatch lands on a downed shard until it is re-upped.
            revived = [
                t for shard, t in ups.items()
                if shard == event.shard and t > event.time
            ]
            horizon = min(revived) if revived else float("inf")
            for record in report.records:
                if record.shard == event.shard:
                    assert not (event.time <= record.dispatched < horizon)

    def test_cooldown_bounds_the_decision_rate(self, pool4, probe):
        cooldown = 10 * probe
        _, report = serve(
            pool4, overload_requests(probe),
            p99_options(probe, cooldown_s=cooldown),
        )
        times = [event.time for event in report.scale_events]
        for earlier, later in zip(times, times[1:]):
            assert later - earlier >= cooldown - 1e-12

    def test_utilisation_mode_scales_up(self, pool4, probe):
        options = AutoscalerOptions(
            min_shards=1, max_shards=4, target_utilisation=0.75,
            warmup_s=probe, tick_s=probe, cooldown_s=0.0,
            utilisation_window_s=4 * probe,
        )
        _, report = serve(pool4, overload_requests(probe), options)
        assert report.scale_ups >= 1
        assert all(e.metric == "utilisation" for e in report.scale_events)
        # Window-clipped busy: at most 1.0 per active shard (readings
        # right after a scale-down may exceed 1 — busy accrued by the
        # decommissioned shard weighed against surviving capacity).
        assert all(0.0 <= e.observed <= 2.0 for e in report.scale_events)

    def test_composes_with_the_slo_controller(self, pool4, probe):
        # Both controllers tick on one kernel; owner tags keep their
        # chains apart (without them every tick would re-schedule
        # twice — a tick explosion).
        slo = SloOptions(
            p99_target_s=8 * probe, action="shed", window=16,
            min_samples=4, tick_s=probe,
        )
        server, report = serve(
            pool4, overload_requests(probe), p99_options(probe), slo=slo,
        )
        assert server.last_slo_controller.ticks > 0
        assert server.last_autoscaler.ticks > 0
        assert report.count + report.shed == 64


# -- report plumbing -------------------------------------------------------


class TestElasticityReporting:
    def test_shard_seconds_and_spans(self, pool4, probe):
        requests = overload_requests(probe)
        _, report = serve(pool4, requests, p99_options(probe))
        assert report.shard_seconds is not None
        # Elastic bill strictly under the full-pool bill (standby
        # shards start parked), and at least the single-shard bill.
        assert report.total_shard_seconds() < (
            len(pool4) * report.makespan_seconds
        )
        assert report.total_shard_seconds() >= report.makespan_seconds
        for usage in report.shards:
            assert usage.active_spans is not None
            for start, end in usage.active_spans:
                assert 0.0 <= start <= end
        # shard0 is active for the whole run.
        first = report.per_shard()["shard0"]
        assert first.active_seconds(report.makespan_seconds) == (
            pytest.approx(report.makespan_seconds)
        )

    def test_report_json_round_trips(self, pool4, probe):
        _, report = serve(pool4, overload_requests(probe),
                          p99_options(probe))
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["count"] == report.count
        assert payload["scale_ups"] == report.scale_ups >= 1
        assert payload["shard_seconds"] == pytest.approx(
            report.total_shard_seconds()
        )
        assert len(payload["scale_events"]) == len(report.scale_events)
        assert len(payload["shards"]) == 4

    def test_empty_report_json_has_no_nans(self):
        report = ServingReport(records=[], shards=[], total_ops=0)
        text = json.dumps(report.to_dict())
        assert "NaN" not in text
        assert json.loads(text)["images_per_second"] is None

    def test_describe_surfaces_only_nonzero_counters(self):
        usage = [ShardUsage("s0", 1, 1, 0.5)]
        record = RequestRecord(
            index=0, arrival=0.0, dispatched=0.0, started=0.0,
            completed=1.0, shard="s0", batch_size=1,
        )
        plain = ServingReport([record], usage, total_ops=10)
        assert "shed" not in plain.describe()
        assert "rerouted" not in plain.describe()
        assert "autoscaler" not in plain.describe()
        shed_only = ServingReport([record], usage, total_ops=10, shed=3)
        assert "3 request(s) shed" in shed_only.describe()
        assert "rerouted" not in shed_only.describe()
        reroute_only = ServingReport(
            [record], usage, total_ops=10, rerouted=2
        )
        assert "2 request(s) rerouted" in reroute_only.describe()
        assert "shed" not in reroute_only.describe()

    def test_describe_includes_scale_counts(self, pool4, probe):
        _, report = serve(pool4, overload_requests(probe),
                          p99_options(probe))
        text = report.describe()
        assert f"{report.scale_ups} scale-up(s)" in text
        assert "shard-ms" in text
        assert "active" in text

    def test_scale_event_validates_action(self):
        with pytest.raises(ServingError):
            ScaleEvent(0.0, "sideways", "s0", 1, 0.5, "p99")


# -- trace replay ----------------------------------------------------------


class TestTraceReplay:
    def test_csv_with_header_and_extra_columns(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "shape,timestamp\n3x224x224,100.5\n3x224x224,100.0\n"
            "3x224x224,101.0\n"
        )
        assert load_trace(path) == [100.5, 100.0, 101.0]
        source = TraceSource.load(path)
        # Rebased to the earliest arrival, sorted.
        assert source.arrivals == [0.0, 0.5, 1.0]

    def test_csv_without_header(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("0.0\n0.25\n0.5\n")
        assert load_trace(path) == [0.0, 0.25, 0.5]

    def test_jsonl_numbers_and_objects(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '1.5\n{"timestamp": 2.0, "shape": [3, 224, 224]}\n'
            '{"arrival": 0.5}\n'
        )
        assert load_trace(path) == [1.5, 2.0, 0.5]

    def test_json_top_level_array(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text('[\n  0.1,\n  {"ts": 0.2},\n  0.3\n]\n')
        assert load_trace(path) == [0.1, 0.2, 0.3]

    def test_time_scale_and_loop(self):
        source = TraceSource([0.0, 1.0, 2.0], time_scale=0.5, loop=2)
        # Scaled span 1.0, mean gap 0.5: the second pass starts one
        # mean gap after the first ends.
        assert source.arrivals == [0.0, 0.5, 1.0, 1.5, 2.0, 2.5]
        requests = source.requests()
        assert [r.index for r in requests] == list(range(6))
        assert source.mean_qps() == pytest.approx(2.0)

    def test_epoch_timestamps_rebase(self):
        source = TraceSource([1690000000.0, 1690000001.0])
        assert source.arrivals == [0.0, 1.0]

    def test_serves_like_the_equivalent_request_list(self, pool4):
        source = TraceSource([0.0, 0.001, 0.002, 0.003], loop=2)
        _, from_source = serve(pool4, source, None)
        _, from_list = serve(pool4, source.requests(), None)
        assert from_source.records == from_list.records

    def test_bad_traces_are_rejected(self, tmp_path):
        cases = {
            "empty.csv": "",
            "badts.csv": "timestamp\nsoon\n",
            "nokey.jsonl": '{"shape": "3x3"}\n',
            "notjson.jsonl": "{nope\n",
            "noheader.csv": "shape,size\n3x3,1\n",
            "inf.csv": "timestamp\ninf\n",
        }
        for name, text in cases.items():
            path = tmp_path / name
            path.write_text(text)
            with pytest.raises(ServingError):
                load_trace(path)
        with pytest.raises(ServingError):
            load_trace(tmp_path / "missing.csv")
        with pytest.raises(ServingError):
            TraceSource([])
        with pytest.raises(ServingError):
            TraceSource([0.0], time_scale=0.0)
        with pytest.raises(ServingError):
            TraceSource([0.0], loop=0)

    def test_describe_names_the_trace(self, tmp_path):
        path = tmp_path / "prod.csv"
        path.write_text("0.0\n1.0\n")
        source = TraceSource.load(path, time_scale=0.5, loop=3)
        assert "prod.csv" in source.describe()
        assert "6 arrivals" in source.describe()


# -- the elasticity properties ---------------------------------------------


@settings(max_examples=20, deadline=None)
@given(
    data=hst.data(),
    min_shards=hst.integers(1, 2),
    max_shards=hst.integers(2, 4),
    warmup_ticks=hst.floats(0.0, 3.0),
    cooldown_ticks=hst.floats(0.0, 2.0),
    use_util=hst.booleans(),
)
def test_elasticity_invariants(
    pool4, probe, data, min_shards, max_shards, warmup_ticks,
    cooldown_ticks, use_util,
):
    """For any seeded trace and autoscaler contract: the shard count
    stays within [min, max], no request is dispatched to a shard
    still in warm-up (or parked in standby), and every open-loop
    request is served."""
    min_shards = min(min_shards, max_shards)
    arrivals = data.draw(
        hst.lists(
            hst.floats(0.0, 30.0 * probe), min_size=1, max_size=48
        ),
        label="arrivals",
    )
    if use_util:
        target = dict(
            target_utilisation=data.draw(
                hst.floats(0.5, 0.95), label="target_util"
            ),
            utilisation_window_s=4 * probe,
        )
    else:
        target = dict(
            target_p99_s=data.draw(
                hst.floats(2.0, 12.0), label="target_p99_ticks"
            ) * probe,
            min_samples=2,
            window=16,
        )
    options = AutoscalerOptions(
        min_shards=min_shards,
        max_shards=max_shards,
        warmup_s=warmup_ticks * probe,
        tick_s=probe,
        cooldown_s=cooldown_ticks * probe,
        **target,
    )
    trace = TraceSource(arrivals)
    _, report = serve(pool4, trace, options)

    # Every request served: scale-downs re-queue, never drop.
    assert report.count == len(arrivals)

    # No decision on a drained system: every scale event precedes the
    # last completion (the windows hold only past evidence there).
    last_completed = max(r.completed for r in report.records)
    assert all(e.time <= last_completed for e in report.scale_events)

    # Spans never invert, even for decisions near the end of the run.
    for usage in report.shards:
        for start, end in usage.active_spans:
            assert start <= end

    # The provisioned count walks within [min, max].
    count = min_shards
    for event in sorted(report.scale_events, key=lambda e: e.time):
        count += 1 if event.action == "up" else -1
        assert min_shards <= count <= max_shards
        assert event.shards_after == count
    assert count == report.scale_ups - report.scale_downs + min_shards

    # No dispatch to a warming or standby shard: a shard beyond the
    # initial min takes work only inside a provisioned span that
    # started warmup_s after its scale-up decision.
    ups = {}
    for event in report.scale_events:
        if event.action == "up":
            ups.setdefault(event.shard, []).append(event.time)
    initial = {shard.name for shard in pool4.shards[:min_shards]}
    for record in report.records:
        if record.shard in initial:
            continue
        active_at = [
            t + options.warmup_s for t in ups.get(record.shard, [])
        ]
        assert any(
            record.dispatched >= ready - 1e-12 for ready in active_at
        ), (
            f"{record.shard} took work at {record.dispatched} but "
            f"activates at {active_at}"
        )

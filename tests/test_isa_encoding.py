"""Tests for repro.isa.encoding — 128-bit instruction words (Figure 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.isa import Comp, DeptFlag, LoadBias, LoadInp, LoadWgt, Save, decode, encode
from repro.isa.encoding import LAYOUTS, encode_bytes
from repro.isa.instructions import Opcode


class TestEncodeDecode:
    def test_opcode_in_low_bits(self):
        assert encode(LoadInp()) & 0xF == Opcode.LOAD_INP
        assert encode(Comp()) & 0xF == Opcode.COMP
        assert encode(Save()) & 0xF == Opcode.SAVE

    def test_words_are_128_bit(self):
        for inst in (LoadInp(), LoadWgt(), LoadBias(), Comp(), Save()):
            word = encode(inst)
            assert 0 <= word < (1 << 128)
            assert len(encode_bytes(inst)) == 16

    @pytest.mark.parametrize(
        "inst",
        [
            LoadInp(
                dept_flag=DeptFlag.WAIT_FREE | DeptFlag.EMIT,
                buff_id=1, buff_base=123, dram_base=99999,
                size_chan=64, size_rows=6, size_cols=226,
                pads_top=1, pads_bottom=2, pads_left=1, pads_right=1,
                wino_flag=1, wino_offset=7,
            ),
            LoadWgt(size_chan=256, size_rows=6, size_cols=6, wino_flag=1),
            LoadBias(size_chan=16),
            Comp(
                dept_flag=DeptFlag.WAIT_INP | DeptFlag.WAIT_WGT
                | DeptFlag.EMIT | DeptFlag.FREE_INP | DeptFlag.FREE_WGT
                | DeptFlag.WAIT_FREE,
                iw_number=224, ic_number=128, oc_number=16,
                stride_size=2, relu_flag=1, quan_param=6, wino_flag=1,
                wino_offset=5, accum_clear=0, accum_flush=1,
                inp_buff_id=1, wgt_buff_id=0, out_buff_id=1,
            ),
            Save(
                buff_id=1, size_chan=8, size_rows=4, size_cols=112,
                wino_flag=1, dst_wino_flag=0, pool_size=2,
                iw_blk_number=3, oc_blk_number=8, ow_blk_number=2,
            ),
        ],
        ids=["load_inp", "load_wgt", "load_bias", "comp", "save"],
    )
    def test_roundtrip(self, inst):
        assert decode(encode(inst)) == inst
        assert decode(encode_bytes(inst)) == inst

    def test_field_overflow_raises(self):
        with pytest.raises(EncodingError):
            encode(Comp(iw_number=1 << 12))

    def test_unknown_opcode(self):
        with pytest.raises(EncodingError):
            decode(0xF)

    def test_wrong_byte_length(self):
        with pytest.raises(EncodingError):
            decode(b"\x01" * 15)

    def test_dept_flag_type_restored(self):
        inst = decode(encode(LoadInp(dept_flag=DeptFlag.WAIT_FREE)))
        assert isinstance(inst.dept_flag, DeptFlag)
        assert inst.dept_flag & DeptFlag.WAIT_FREE


class TestLayouts:
    def test_all_layouts_fit_128_bits(self):
        for layout in LAYOUTS.values():
            assert layout.used_bits <= 128

    def test_shared_header(self):
        # Every layout starts with opcode(4), dept_flag(6), buff_id(2).
        for layout in LAYOUTS.values():
            assert layout.field("opcode").offset == 0
            assert layout.field("opcode").width == 4
            assert layout.field("dept_flag").offset == 4
            assert layout.field("buff_id").offset == 10

    def test_wino_flag_everywhere(self):
        # Figure 2: every instruction carries a WINO_FLAG domain.
        for layout in LAYOUTS.values():
            assert "wino_flag" in layout


comp_values = st.fixed_dictionaries(
    {
        "iw_number": st.integers(0, 4095),
        "ic_number": st.integers(0, 4095),
        "oc_number": st.integers(0, 4095),
        "stride_size": st.integers(0, 15),
        "relu_flag": st.integers(0, 1),
        "quan_param": st.integers(0, 255),
        "wino_flag": st.integers(0, 1),
        "wino_offset": st.integers(0, 255),
        "accum_clear": st.integers(0, 1),
        "accum_flush": st.integers(0, 1),
        "inp_buff_id": st.integers(0, 1),
        "wgt_buff_id": st.integers(0, 1),
        "out_buff_id": st.integers(0, 1),
        "inp_buff_base": st.integers(0, 65535),
        "out_buff_base": st.integers(0, 65535),
        "wgt_buff_base": st.integers(0, 65535),
        "buff_id": st.integers(0, 3),
    }
)


@settings(max_examples=60, deadline=None)
@given(values=comp_values)
def test_comp_roundtrip_property(values):
    inst = Comp(**values)
    assert decode(encode(inst)) == inst

"""Append one perf line per CI run to a serving trajectory file.

``BENCH_serving.json`` is JSON Lines: one object per run, carrying the
headline numbers of each labelled ``repro serve --report-json`` smoke,
so consecutive PRs can be compared by diffing (or plotting) the file
the workflow uploads as an artifact.

Usage::

    python benchmarks/append_trajectory.py [--file BENCH_serving.json] \
        label=path/to/report.json [label=...]

The commit id comes from ``$GITHUB_SHA`` (CI) or ``git rev-parse``
(local), falling back to ``unknown``.
"""

import argparse
import datetime
import json
import os
import subprocess
import sys
from pathlib import Path

#: The per-run numbers worth tracking across PRs.  Serve smokes and
#: sweep reports share the tracked keys (``count``/``shed``/
#: ``unserved``/``p99_latency_s``); ``slo_attainment`` and
#: ``cell_count`` only appear in sweep reports, ``plans_per_second``
#: and ``billed_shard_seconds`` only in ProvisioningPlan reports, and
#: each stays ``None`` for the other report kinds.
SUMMARY_FIELDS = (
    "count",
    "throughput_gops",
    "images_per_second",
    "p99_latency_s",
    "shard_seconds",
    "scale_ups",
    "scale_downs",
    "shed",
    "admission_shed",
    "unserved",
    "events_per_second",
    "replay_requests_per_second",
    "slo_attainment",
    "cell_count",
    "plans_per_second",
    "billed_shard_seconds",
)

#: ``ServingReport.to_dict`` schema versions this folder understands.
#: Schema 1 (pre-tenancy) has no ``schema`` key at all; schema 2 adds
#: the key plus ``admission_shed`` and the per-tenant ``tenants`` map.
KNOWN_SCHEMAS = (1, 2)


def commit_id() -> str:
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha[:12]
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def summarise(report_path: Path) -> dict:
    report = json.loads(report_path.read_text())
    schema = report.get("schema", 1)
    if schema not in KNOWN_SCHEMAS:
        raise ValueError(
            f"{report_path}: unknown report schema {schema!r}; "
            f"this folder understands {KNOWN_SCHEMAS}"
        )
    summary = {field: report.get(field) for field in SUMMARY_FIELDS}
    tenants = report.get("tenants")
    if tenants:
        # Keep the full per-tenant breakdowns: they are small, and
        # nested --require paths (tenants.NAME.FIELD) guard them.
        summary["tenants"] = tenants
    return summary


def lookup(run: dict, path: str):
    """Resolve a dotted --require path inside one run's summary."""
    value = run
    for part in path.split("."):
        if not isinstance(value, dict):
            return None
        value = value.get(part)
    return value


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--file",
        default=str(Path(__file__).parent / "BENCH_serving.json"),
        help="trajectory file to append to (JSON Lines)",
    )
    parser.add_argument(
        "runs", nargs="+", metavar="LABEL=REPORT.json",
        help="labelled ServingReport JSON files to fold in",
    )
    parser.add_argument(
        "--require", action="append", default=[], metavar="FIELD",
        help="fail unless at least one folded run carries this summary "
             "field (guards CI against silently losing a tracked "
             "figure; repeatable).  Dotted paths reach the schema-2 "
             "per-tenant map, e.g. tenants.interactive.p99_latency_s",
    )
    args = parser.parse_args(argv)

    runs = {}
    for spec in args.runs:
        label, sep, path = spec.partition("=")
        if not sep or not label:
            print(f"error: expected LABEL=REPORT.json, got {spec!r}",
                  file=sys.stderr)
            return 2
        try:
            runs[label] = summarise(Path(path))
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    for field in args.require:
        if "." not in field and field not in SUMMARY_FIELDS:
            print(f"error: --require {field!r} is not a tracked "
                  f"summary field {SUMMARY_FIELDS} (dotted paths "
                  "reach nested tenant fields)", file=sys.stderr)
            return 2
        if all(lookup(run, field) is None for run in runs.values()):
            print(f"error: no folded run carries {field!r} "
                  f"(runs: {sorted(runs)})", file=sys.stderr)
            return 1

    line = {
        "commit": commit_id(),
        "date": datetime.datetime.now(datetime.timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"
        ),
        "runs": runs,
    }
    trajectory = Path(args.file)
    # Create-and-fold: a fresh checkout (or a wiped workspace) gets
    # the file and its directory on first use, so the bench-smoke job
    # can assert the trajectory is non-empty afterwards.
    trajectory.parent.mkdir(parents=True, exist_ok=True)
    with trajectory.open("a") as handle:
        handle.write(json.dumps(line, sort_keys=True) + "\n")
    entries = sum(
        1 for text in trajectory.read_text().splitlines() if text.strip()
    )
    print(f"{trajectory}: appended run {line['commit']} "
          f"({len(runs)} smoke(s), {entries} entr(y/ies) total)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Benchmark: design-choice ablations (mode-vs-bandwidth and
dataflow-vs-feature-size crossovers the paper describes
qualitatively in Sections 4.2.5 and 6.2)."""

from repro.experiments.ablation import (
    format_bandwidth_ablation,
    format_dataflow_ablation,
    run_bandwidth_ablation,
    run_dataflow_ablation,
)


def test_bandwidth_ablation(benchmark, once, capsys):
    points = once(benchmark, run_bandwidth_ablation)
    with capsys.disabled():
        print()
        print(format_bandwidth_ablation(points))
    # Ample bandwidth: Winograd wins clearly; starved: advantage gone.
    assert points[-1].best_mode == "wino"
    assert points[-1].wino_gops / points[-1].spat_gops > 1.5
    assert points[0].wino_gops / points[0].spat_gops < 1.1


def test_dataflow_ablation(benchmark, once, capsys):
    points = once(benchmark, run_dataflow_ablation)
    with capsys.disabled():
        print()
        print(format_dataflow_ablation(points))
    # Small features -> WS; large features -> IS (Sec. 4.2.5).
    assert points[0].best_dataflow == "ws"
    assert points[-1].best_dataflow == "is"

"""Benchmark: regenerate Figure 6 (per-layer Winograd/Spatial
performance, estimated vs real, on both platforms).

Shape assertions, matching Section 6.2's narrative:
* Spatial "Real" is stable and close to its peak;
* Winograd beats Spatial on most 3x3+ layers but *fluctuates* and loses
  where the higher bandwidth demand is memory-bound;
* estimates track simulation on compute-bound layers.
"""

import numpy as np

from repro.experiments.figure6 import format_figure6, run_figure6


def _checks(points, peak_spat_gops):
    k3 = [p for p in points if p.kernel == 3]
    assert all(p.wino_real_gops > p.spat_real_gops for p in k3), (
        "Winograd must win every 3x3 layer"
    )
    k1 = [p for p in points if p.kernel == 1]
    assert all(p.spat_real_gops > p.wino_real_gops for p in k1), (
        "Spatial must win 1x1 layers (tile overhead)"
    )
    spat = np.array([p.spat_real_gops for p in points if p.kernel != 1])
    assert spat.std() / spat.mean() < 0.25, "Spatial should be stable"
    wino = np.array([p.wino_real_gops for p in points if p.kernel == 3])
    assert wino.max() / wino.min() > 1.2, (
        "Winograd should fluctuate (memory-bound dips)"
    )
    assert spat.max() <= peak_spat_gops * 1.01


def test_figure6_vu9p(benchmark, once, capsys):
    points = once(benchmark, run_figure6, "vu9p")
    with capsys.disabled():
        print()
        print(format_figure6("vu9p", points))
    assert len(points) == 60  # the paper's 60 evaluated CONV layers
    from repro.experiments.common import paper_config

    cfg, _ = paper_config("vu9p")
    _checks(points, cfg.peak_gops("spat"))


def test_figure6_pynq(benchmark, once, capsys):
    points = once(benchmark, run_figure6, "pynq-z1")
    with capsys.disabled():
        print()
        print(format_figure6("pynq-z1", points))
    assert len(points) == 40  # the paper's 40 evaluated CONV layers
    from repro.experiments.common import paper_config

    cfg, _ = paper_config("pynq-z1")
    _checks(points, cfg.peak_gops("spat"))

"""Benchmark: a 108-cell chaos sweep under both executors.

The grid is 6 scenarios x 3 policies x 6 pool sizes = 108 seeded
cells on the fast tiny-CNN session (the scenario tests' workload, so
one cell simulates in milliseconds and the sweep's cost is the
orchestration itself).  Scenarios span the whole algebra: baseline,
legacy kill/restore, a windowed kill, a degraded shard, a correlated
outage and a seeded straggler pulse train.

Checked claims:

* **the process executor changes the schedule, not the result** — the
  108-cell grid's aggregate JSON under ``executor="process"`` is
  *byte-identical* to the serial run (the determinism contract CI
  relies on; on this millisecond-scale workload the fork overhead
  dominates, so the printed wall times are a cost report, not a race);
* **nothing is lost under chaos** — every one of the 108 cells
  accounts for every issued request: served + shed + unserved ==
  issued;
* **chaos is visible in the aggregates** — the unperturbed baseline's
  SLO attainment is at least that of the worst chaos scenario, and
  every per-scenario survival curve is monotone in the multiple.
"""

from repro.arch.params import AcceleratorConfig
from repro.compiler import CompilerOptions
from repro.fpga import get_device
from repro.ir import zoo
from repro.pipeline import PipelineSession
from repro.serving import SweepGrid, SweepOptions, run_sweep

SCENARIOS = (
    "none",
    "kill:shard0@0.002,restore@0.01",
    "kill:shard0@0.002..0.01",
    "degrade:shard0@0.001..0.01x8",
    "outage:shard0+shard1@0.002..0.008",
    "stragglers:shard0+shard1@0..0.015x6*3",
)
POLICIES = ("round-robin", "least-loaded", "shortest-latency")
POOLS = (2, 3, 4, 5, 6, 8)
REQUESTS = 24
SEED = 2020


def make_session():
    device = get_device("vu9p")
    cfg = AcceleratorConfig(
        pi=4, po=4, pt=4, instances=1, frequency_mhz=100.0,
        input_buffer_vecs=4096, weight_buffer_vecs=2048,
        output_buffer_vecs=2048,
    )
    return PipelineSession(
        zoo.tiny_cnn(input_size=16, channels=8),
        device,
        cfg=cfg,
        compiler_options=CompilerOptions(quantize=False, pack_data=False),
    )


def test_chaos_sweep_process_matches_serial(benchmark, once, capsys):
    session = make_session()
    grid = SweepGrid(SCENARIOS, POLICIES, POOLS)
    assert len(grid) == 108
    options = SweepOptions(requests=REQUESTS)
    serial = run_sweep(session, grid, options, seed=SEED)
    process = once(
        benchmark, run_sweep, session, grid,
        SweepOptions(requests=REQUESTS, executor="process", jobs=4),
        seed=SEED,
    )

    assert serial.to_json() == process.to_json(), (
        "process sweep diverged from the serial oracle"
    )

    for cell in serial.cells:
        assert (
            cell["served"] + cell["shed"] + cell["unserved"]
            == cell["issued"]
        ), f"cell {cell['cell']} lost requests: {cell}"

    per = serial.per_scenario
    baseline = per["none"]["attainment"]
    worst = min(stats["attainment"] for stats in per.values())
    assert baseline >= worst
    for stats in per.values():
        curve = [stats["survival"][key] for key in ("1x", "2x", "4x", "8x")]
        assert curve == sorted(curve, reverse=True)

    with capsys.disabled():
        print()
        print(serial.describe())
        print(f"  serial {serial.wall_seconds:.2f} s vs "
              f"process(4) {process.wall_seconds:.2f} s "
              f"for {len(grid)} cells")

"""Benchmark: regenerate Table 4 (comparison with previous works).

Runs the full pipeline — DSE, compilation, cycle-approximate simulation
of VGG16 — on both paper platforms and prints the comparison rows.
Shape assertions: our VU9P design beats the best prior VU9P work by
>1.5x (paper: 1.8x) and our DSP efficiency matches the best published
(~0.65 GOPS/DSP).
"""

from repro.analysis.metrics import speedup
from repro.baselines.published import best_prior
from repro.experiments.table4 import format_table4, run_table4


def test_table4(benchmark, once, capsys):
    rows = once(benchmark, run_table4)
    with capsys.disabled():
        print()
        print(format_table4(rows))
    ours_vu9p = next(r for r in rows if r.design == "Ours (vu9p)")
    ours_pynq = next(r for r in rows if r.design == "Ours (pynq-z1)")
    prior = best_prior("Xilinx VU9P")
    # Who wins, and by roughly what factor (paper: 1.8x, 3375.7 GOPS).
    assert speedup(ours_vu9p.gops, prior.gops) > 1.5
    assert 2500 < ours_vu9p.gops < 4200
    # Embedded design in the tens of GOPS (paper: 83.3).
    assert 60 < ours_pynq.gops < 130
    # DSP efficiency in the ballpark of the best prior (paper: 0.65).
    assert ours_vu9p.dsp_eff > 0.5

"""Benchmark: regenerate the Section-6.2 estimation-error numbers.

Paper: 4.27 % (VU9P) and 4.03 % (PYNQ-Z1) between the analytical model
and the measured hardware; here between the model and the simulator.
The assertion keeps both in the single-digit band.
"""

from repro.experiments.estimation_error import (
    format_estimation_error,
    run_estimation_error,
)


def test_estimation_error(benchmark, once, capsys):
    rows = once(benchmark, run_estimation_error)
    with capsys.disabled():
        print()
        print(format_estimation_error(rows))
    for row in rows:
        assert row.error < 0.10, (
            f"{row.device}: estimation error {row.error:.1%} "
            "outside the paper's single-digit band"
        )

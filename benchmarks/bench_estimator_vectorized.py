"""Benchmark: the vectorized candidate-batch estimator vs the scalar
oracle on the VU9P VGG16 two-objective sweep.

The scalar path (``estimator="scalar"`` with the PR-2 evaluation cache)
is the selection oracle; ``estimator="vectorized"`` routes Step 2/3
through :class:`~repro.estimator.vectorized.BatchLayerEstimator`, which
evaluates Eq. 6-15 for the whole 621-candidate batch as numpy column
operations.  Both paths run the *full unpruned* sweep — the pruned
best-first path evaluates a handful of survivors, which is exactly the
regime where batching has nothing to batch, so the speedup claim is
made where the work is.

Checked claims:

* the vectorized sweep selects the byte-identical design point *and*
  runner-up ranking per objective — equality on cfg, mapping and
  estimate (every term of every layer), not a tolerance;
* >= 5x wall-clock speedup over the cached scalar sweep;
* the pruned best-first vectorized sweep matches too (batch-granular
  pruning may prune a different *count*, never a different selection).
"""

import time

from repro.dse import run_dse
from repro.dse.space import DseOptions, explore_hardware
from repro.fpga import get_device
from repro.ir import zoo

OBJECTIVES = ("throughput", "latency")


def _sweep(device, network, candidates, estimator):
    return {
        objective: run_dse(
            device, network,
            DseOptions(frequency_mhz=device.frequency_mhz,
                       objective=objective, use_cache=True, prune=False,
                       estimator=estimator),
            candidates=candidates,
        )
        for objective in OBJECTIVES
    }


def _design_point(result):
    return result.cfg, result.mapping, result.estimate


def _ranking(result):
    return [_design_point(result)] + [
        _design_point(r) for r in result.runners_up
    ]


def test_vectorized_sweep_equivalence_and_speedup(benchmark, once, capsys):
    device = get_device("vu9p")
    network = zoo.vgg16()
    # Shared candidate list: enumeration is identical either way and
    # not what this benchmark measures.
    candidates = explore_hardware(
        device, DseOptions(frequency_mhz=device.frequency_mhz)
    )

    start = time.perf_counter()
    scalar = _sweep(device, network, candidates, "scalar")
    scalar_seconds = time.perf_counter() - start

    start = time.perf_counter()
    vectorized = once(
        benchmark, _sweep, device, network, candidates, "vectorized"
    )
    vectorized_seconds = time.perf_counter() - start

    speedup = scalar_seconds / vectorized_seconds
    with capsys.disabled():
        print()
        print(f"VGG16 full sweep on vu9p ({len(candidates)} candidates "
              f"x {len(OBJECTIVES)} objectives)")
        print(f"  scalar (cached):  {scalar_seconds * 1e3:8.1f} ms")
        print(f"  vectorized:       {vectorized_seconds * 1e3:8.1f} ms "
              f"({speedup:.1f}x)")

    # Byte-identical selection, winner and runners-up alike.
    for objective in OBJECTIVES:
        assert _ranking(vectorized[objective]) == _ranking(
            scalar[objective]
        ), objective
    assert speedup >= 5.0, f"speedup {speedup:.2f}x < 5x"


def test_vectorized_pruned_sweep_equivalence(capsys):
    """Pruning composes: bounds prune first, the vector path only
    evaluates survivor batches, and the selection never moves."""
    device = get_device("vu9p")
    network = zoo.vgg16()
    for objective in OBJECTIVES:
        options = dict(frequency_mhz=device.frequency_mhz,
                       objective=objective, best_first=True)
        scalar = run_dse(device, network, DseOptions(**options))
        vectorized = run_dse(
            device, network,
            DseOptions(estimator="vectorized", **options),
        )
        with capsys.disabled():
            print(f"\n  {objective}: vectorized evaluated "
                  f"{vectorized.candidates_evaluated}, pruned "
                  f"{vectorized.candidates_pruned} of "
                  f"{vectorized.candidates_considered} "
                  f"(scalar pruned {scalar.candidates_pruned})")
        assert _ranking(vectorized) == _ranking(scalar), objective

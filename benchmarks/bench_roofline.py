"""Benchmark: roofline classification of the Figure-6 sweep, with a
simulator cross-check on both a compute-bound and a memory-bound layer.
"""

import numpy as np

from repro.compiler import CompilerOptions, compile_network
from repro.experiments.common import paper_config
from repro.experiments.roofline_study import (
    format_roofline_study,
    run_roofline_study,
)
from repro.ir import zoo
from repro.mapping import NetworkMapping
from repro.runtime import HostRuntime, generate_parameters


def _simulated_gops(cfg, device, net, mode):
    info = net.compute_layers()[0]
    compiled = compile_network(
        net, cfg, NetworkMapping.uniform(net, mode, "ws"),
        generate_parameters(net),
        CompilerOptions(quantize=True, pack_data=False),
    )
    runtime = HostRuntime(compiled, device, functional=False)
    sim = runtime.infer(np.zeros(net.input_shape.as_tuple())).sim
    return info.ops / sim.seconds / 1e9


def test_roofline_study(benchmark, once, capsys):
    rows = once(benchmark, run_roofline_study, "vu9p")
    with capsys.disabled():
        print()
        print(format_roofline_study("vu9p", rows))

    # Shape: 3x3 layers predicted Winograd; 1x1 layers predicted Spatial.
    for row in rows:
        if row.kernel == 3:
            assert row.predicted_winner == "wino"
        if row.kernel == 1:
            assert row.predicted_winner == "spat"

    # Cross-check: the simulator respects both roofs.
    cfg, device = paper_config("vu9p")
    compute_bound = zoo.single_conv(256, 256, 56, 3, padding=1)
    memory_bound = zoo.single_conv(512, 512, 7, 3, padding=1)
    from repro.analysis.roofline import layer_roofline

    cb = layer_roofline(
        cfg, device, compute_bound.compute_layers()[0], "wino"
    )
    mb = layer_roofline(
        cfg, device, memory_bound.compute_layers()[0], "wino"
    )
    assert cb.bound == "compute" and mb.bound == "memory"
    cb_gops = _simulated_gops(cfg, device, compute_bound, "wino")
    mb_gops = _simulated_gops(cfg, device, memory_bound, "wino")
    # Compute-bound layer approaches its roof; memory-bound one cannot.
    assert cb_gops > 0.8 * cb.peak_gops
    assert mb_gops < 0.8 * mb.peak_gops
    assert mb_gops <= mb.attainable_gops * 1.3  # within model slack

"""Benchmark: regenerate the Section-6.1 VGG16 case study.

The full 3-step DSE must independently select the paper's design
points: VU9P PI=PO=4 PT=6 x6 (two per die), PYNQ-Z1 PI=PO=4 PT=4 x1,
with every CONV layer mapped to Winograd mode.
"""

from repro.experiments.vgg16_case import format_vgg16_case, run_vgg16_case


def test_vgg16_case(benchmark, once, capsys):
    rows = once(benchmark, run_vgg16_case)
    with capsys.disabled():
        print()
        print(format_vgg16_case(rows))
    for row in rows:
        assert row.matches_paper, row.device
        assert row.conv_wino_layers == row.conv_layers == 13
    vu9p = next(r for r in rows if r.device == "vu9p")
    assert vu9p.per_die == 2  # two instances per die, three dies

"""Benchmark configuration.

Every benchmark regenerates one paper artifact (table or figure) and
prints the same rows the paper reports; pytest-benchmark measures the
underlying computation.  Expensive end-to-end runs use pedantic mode
with a single round — the quantity of interest is the artifact, not
micro-variance.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with exactly one warm round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once

"""Benchmark: the abstract's flexibility/scalability claim — the same
flow targets cloud and embedded platforms with vastly different
resource constraints, and throughput scales with the platform."""

from repro.experiments.scalability import (
    format_scalability,
    run_scalability,
)


def test_scalability(benchmark, once, capsys):
    rows = once(benchmark, run_scalability, "vgg16")
    with capsys.disabled():
        print()
        print(format_scalability(rows, "vgg16"))
    by_dev = {r.device: r for r in rows}
    # Cloud >> mid-range >> embedded ordering must hold.
    assert by_dev["vu9p"].gops > by_dev["zcu102"].gops
    assert by_dev["zcu102"].gops > by_dev["pynq-z1"].gops
    # Two orders of magnitude between the extremes (3375 vs 83 in the
    # paper: ~40x).
    ratio = by_dev["vu9p"].gops / by_dev["pynq-z1"].gops
    assert 15 < ratio < 80
    # Every platform gets a legal design.
    for row in rows:
        assert 0 < row.dsp_utilisation <= 1.0

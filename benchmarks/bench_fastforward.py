"""Benchmark: fast-forward replay engine vs the event kernel.

The fast-forward engine (``repro.serving.fastforward``) replaces the
event heap with batch-granular recurrences on eligible runs — plain
open-loop traffic, no scenario/SLO/autoscaler.  Its contract is
*byte identity*: every report field except the wall-clock ones
(``events_processed`` is the kernel-equivalent count, the rest measure
the host) must match the kernel exactly.  This bench enforces both
halves of the deal:

* **identity** — a policy x traffic matrix and the bursty-trace replay
  (100k arrivals) produce reports the kernel path reproduces field for
  field, dataclass-equal down to the per-request records;
* **speedup** — on the 1M-arrival trace replay (the CI smoke's exact
  workload) fast-forward beats the kernel by at least 5x wall clock.
  Clean dev-box runs sit near 10x; the floor absorbs runner noise.

Measurement note: the kernel report is dropped and the collector run
before the fast-forward leg, so the second measurement never pays GC
pressure from a million dead records of the first.
"""

import gc
from pathlib import Path

from repro.arch.params import AcceleratorConfig
from repro.compiler import CompilerOptions
from repro.fpga import get_device
from repro.ir import zoo
from repro.pipeline import PipelineSession
from repro.serving import (
    BatcherOptions,
    ShardPool,
    ShardServer,
    TraceSource,
    make_requests,
)

TRACE = Path(__file__).resolve().parent / "data" / "trace_bursty.csv"

#: Host-side fields — the only report keys the engines may differ on.
WALL_KEYS = (
    "events_processed",
    "wall_seconds",
    "events_per_second",
    "replay_requests_per_second",
)


def _session(device="vu9p", instances=2):
    dev = get_device(device)
    cfg = AcceleratorConfig(
        pi=4, po=4, pt=4, instances=instances, frequency_mhz=100.0,
        input_buffer_vecs=4096, weight_buffer_vecs=2048,
        output_buffer_vecs=2048,
    )
    return PipelineSession(
        zoo.tiny_cnn(input_size=16, channels=8),
        dev,
        cfg=cfg,
        compiler_options=CompilerOptions(quantize=False, pack_data=False),
    )


def _trace_server():
    session = _session(device="pynq-z1", instances=1)
    pool = ShardPool.replicate(session, 2)
    return ShardServer(pool, "round-robin", BatcherOptions(max_batch=4))


def _trace(loop):
    return TraceSource.load(str(TRACE), time_scale=0.00002, loop=loop)


def _summary(report):
    return {
        key: value for key, value in report.to_dict().items()
        if key not in WALL_KEYS
    }


def test_fastforward_matches_kernel_matrix(capsys):
    session = _session()
    checked = 0
    for policy in ("round-robin", "least-loaded", "shortest-latency"):
        for kind in ("uniform", "fixed-qps", "poisson", "burst"):
            pool = ShardPool.replicate(session, 3)
            server = ShardServer(
                pool, policy,
                BatcherOptions(max_batch=4, max_wait_s=5e-4),
            )
            traffic = make_requests(kind, 60, qps=400.0, seed=11, burst=5)
            kernel = server.serve(list(traffic), engine="kernel")
            fast = server.serve(list(traffic), engine="fastforward")
            label = f"{policy}/{kind}"
            # Dataclass equality covers the per-request records; the
            # equivalent event count is compare=False so it gets its
            # own assertion.
            assert fast == kernel, f"records diverge: {label}"
            assert fast.events_processed == kernel.events_processed, label
            assert _summary(fast) == _summary(kernel), label
            checked += 1
    with capsys.disabled():
        print()
        print(f"  {checked} policy x traffic cells byte-identical")


def test_fastforward_matches_kernel_on_trace_replay(capsys):
    server = _trace_server()
    kernel = server.serve(_trace(1316), engine="kernel")
    fast = server.serve(_trace(1316), engine="fastforward")
    assert fast == kernel
    assert fast.events_processed == kernel.events_processed
    assert _summary(fast) == _summary(kernel)
    with capsys.disabled():
        print()
        print(f"  100k-arrival trace byte-identical "
              f"({kernel.events_processed} equivalent events; kernel "
              f"{kernel.wall_seconds:.2f} s, fast-forward "
              f"{fast.wall_seconds:.2f} s)")


def test_fastforward_speedup_floor(benchmark, once, capsys):
    server = _trace_server()

    kernel = server.serve(
        _trace(13158), engine="kernel", max_events=4_000_000
    )
    kernel_wall = kernel.wall_seconds
    kernel_summary = _summary(kernel)
    kernel_events = kernel.events_processed
    # Drop the million kernel records before timing the fast-forward
    # leg so its record build never pays the first run's GC debt.
    del kernel
    gc.collect()

    fast = once(
        benchmark, server.serve,
        _trace(13158), engine="fastforward", max_events=4_000_000,
    )
    speedup = kernel_wall / fast.wall_seconds

    with capsys.disabled():
        print()
        print(f"  1M-arrival trace replay ({kernel_events} equivalent "
              "events)")
        print(f"  kernel:       {kernel_wall:6.2f} s "
              f"({kernel_events / kernel_wall / 1e3:6.0f}k events/s)")
        print(f"  fast-forward: {fast.wall_seconds:6.2f} s "
              f"({fast.events_processed / fast.wall_seconds / 1e3:6.0f}k "
              f"events/s, "
              f"{fast.count / fast.wall_seconds / 1e3:.0f}k requests/s)")
        print(f"  speedup:      {speedup:6.1f}x")

    assert _summary(fast) == kernel_summary, "1M replay summary diverges"
    assert fast.events_processed == kernel_events
    assert speedup >= 5.0, (
        f"fast-forward only {speedup:.1f}x over the kernel (< 5x floor)"
    )

"""Benchmark: the two-tier capacity planner's speed and its oracles.

Checked claims:

* **Tier A is effectively free** — the vectorized analytic scorer
  handles a 2,400-plan grid in well under a second (the bench floor
  CI tracks is ``plans_per_second``), so the planner's wall clock is
  Tier B replay of a handful of finalists, not the grid size;
* **pruning is admissible and the surrogate ranks well** — on a
  seeded reference grid, *every* plan is replayed through the event
  kernel: no pruned plan ever meets the SLO in replay (the bounds are
  proofs, not heuristics), and the replay-optimal plan sits inside
  the surrogate's top-K finalists — two-tier search returns the same
  winner exhaustive replay would;
* **the planner earns its keep** — the ``experiments plan`` study's
  mixed vu9p+pynq-z1 winner meets the SLO at strictly lower billed
  shard-seconds than the best homogeneous pool, and the
  ``plans_per_second`` figure folds into the ``BENCH_serving.json``
  trajectory via ``append_trajectory.py``.
"""

import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
import append_trajectory  # noqa: E402

from repro.experiments import planning_study  # noqa: E402
from repro.pipeline.session import _load_network  # noqa: E402
from repro.planning import (  # noqa: E402
    AnalyticPlanScorer,
    ArrivalProfile,
    PlanGrid,
    ReplayJob,
    parse_devices,
    resolve_kinds,
)
from repro.planning.replay import _ReplayState  # noqa: E402
from repro.serving.traffic import make_requests  # noqa: E402

SEED = 2020
#: Tier A floor: a fresh grid this size must score in under a second
#: (it actually takes milliseconds; the slack absorbs CI runners).
BIG_GRID_DEVICES = "vu9p:0..24+pynq-z1:0..23"
BIG_GRID_BATCHES = (1, 6, 12, 24)
TIER_A_BUDGET_S = 1.0
PLANS_PER_SECOND_FLOOR = 10_000.0

#: Seeded reference grid small enough to replay *exhaustively*.
REF_DEVICES = "vu9p:0..2+pynq-z1:0..4"
REF_BATCHES = (1, 6)
REF_REQUESTS = 512
REF_RATE = 1_050_000.0
REF_SLO_S = 60e-6
REF_TOP_K = 6


def reference_kinds():
    network = _load_network(planning_study.MODEL)
    return resolve_kinds(
        network, parse_devices(REF_DEVICES), seed=SEED
    )


def test_tier_a_scores_big_grid_under_a_second(benchmark, once, capsys):
    kinds = reference_kinds()
    grid = PlanGrid(parse_devices(BIG_GRID_DEVICES), BIG_GRID_BATCHES)
    assert len(grid) >= 2000, grid.describe()
    scorer = AnalyticPlanScorer(
        service_seconds=[kind.probe_seconds() for kind in kinds],
        instances=[kind.instances for kind in kinds],
        weights=[kind.weight for kind in kinds],
    )
    profile = ArrivalProfile.from_requests(
        make_requests("poisson", 256, qps=REF_RATE, seed=SEED)
    )
    start = time.perf_counter()
    scores = once(
        benchmark, scorer.score, grid.counts, grid.batches, profile,
        200e-6, 50e-6,
    )
    elapsed = time.perf_counter() - start
    plans_per_second = len(grid) / max(elapsed, 1e-9)

    assert elapsed < TIER_A_BUDGET_S, (
        f"tier A took {elapsed:.3f} s for {len(grid)} plans"
    )
    assert plans_per_second >= PLANS_PER_SECOND_FLOOR
    assert len(scores) == len(grid)
    kept = scores.pruned == 0
    assert kept.any() and (~kept).any(), (
        "the big grid should exercise both branches"
    )
    assert np.all(np.isfinite(scores.p99_s[scores.feasible]))

    with capsys.disabled():
        print()
        print(f"  tier A: {len(grid)} plans in {elapsed * 1e3:.1f} ms "
              f"({plans_per_second:,.0f} plans/s); "
              f"{int(kept.sum())} kept, {int((~kept).sum())} pruned")


def test_pruning_admissible_and_top_k_contains_replay_optimal(
    benchmark, once, capsys
):
    kinds = reference_kinds()
    grid = PlanGrid(parse_devices(REF_DEVICES), REF_BATCHES)
    scorer = AnalyticPlanScorer(
        service_seconds=[kind.probe_seconds() for kind in kinds],
        instances=[kind.instances for kind in kinds],
        weights=[kind.weight for kind in kinds],
    )
    requests = make_requests(
        "poisson", REF_REQUESTS, qps=REF_RATE, seed=SEED
    )
    profile = ArrivalProfile.from_requests(requests)
    max_wait_s = 2.0 * max(kind.probe_seconds() for kind in kinds)
    scores = scorer.score(
        grid.counts, grid.batches, profile, REF_SLO_S,
        max_wait_s=max_wait_s,
    )

    state = _ReplayState(
        kinds,
        tuple(request.arrival for request in requests),
        "shortest-latency",
        max_wait_s,
        None,
        REF_SLO_S,
    )

    def replay_everything():
        return [
            state.run(ReplayJob(index, *grid.plan(index)))
            for index in range(len(grid))
        ]

    replays = once(benchmark, replay_everything)

    # Admissibility: a pruned plan NEVER meets the SLO in replay.
    pruned_ok = [
        row["plan"] for row in replays
        if scores.pruned[row["plan"]] != 0 and row["slo_ok"]
    ]
    assert not pruned_ok, (
        f"pruned plans met the SLO in replay: {pruned_ok}"
    )

    # The replay-optimal plan (exhaustive oracle) must be inside the
    # surrogate's top-K — the two-tier search finds the true winner.
    oracle = min(
        replays,
        key=lambda row: (
            0 if row["slo_ok"] else 1,
            row["billed_shard_seconds"],
            row["p99_latency_s"]
            if row["p99_latency_s"] is not None else float("inf"),
            row["plan"],
        ),
    )
    assert oracle["slo_ok"], "the reference grid must be satisfiable"
    kept = [i for i in range(len(grid)) if scores.pruned[i] == 0]
    kept.sort(
        key=lambda i: (
            0 if scores.feasible[i] else 1,
            float(scores.billed_shard_seconds[i]),
            float(scores.p99_s[i]),
            i,
        )
    )
    top_k = kept[:REF_TOP_K]
    assert oracle["plan"] in top_k, (
        f"replay-optimal plan {grid.plan(oracle['plan'])} missing from "
        f"surrogate top-{REF_TOP_K} {[grid.plan(i) for i in top_k]}"
    )

    with capsys.disabled():
        pruned_count = int((scores.pruned != 0).sum())
        print()
        print(f"  exhaustive oracle: {len(grid)} plans replayed; "
              f"{pruned_count} pruned (none replay-feasible); "
              f"optimal plan {grid.plan(oracle['plan'])} is surrogate "
              f"rank {top_k.index(oracle['plan']) + 1}")


def test_mixed_fleet_beats_homogeneous_and_folds_trajectory(
    benchmark, once, capsys, tmp_path
):
    plans = once(benchmark, planning_study.run_study, seed=SEED)
    mixed = plans["mixed"]
    assert mixed is not None and mixed.slo_met

    homogeneous = [
        plan for name, plan in plans.items()
        if name != "mixed" and plan is not None and plan.slo_met
    ]
    assert homogeneous, "at least one homogeneous fleet must be feasible"
    best = min(
        plan.winner["replay"]["billed_shard_seconds"]
        for plan in homogeneous
    )
    ours = mixed.winner["replay"]["billed_shard_seconds"]
    assert ours < best, (
        f"mixed fleet bills {ours} shard-seconds vs {best} homogeneous"
    )
    assert (
        mixed.winner["replay"]["p99_latency_s"]
        <= planning_study.SLO_P99_S
    )
    # The pynq-only fleet is provably infeasible at this rate.
    assert plans["pynq-z1 only"] is None

    # plans_per_second folds into the trajectory via append_trajectory.
    report_path = tmp_path / "plan_report.json"
    report_path.write_text(mixed.to_json(indent=2) + "\n")
    trajectory = tmp_path / "BENCH_serving.json"
    code = append_trajectory.main([
        "--file", str(trajectory),
        f"plan-study={report_path}",
        "--require", "plans_per_second",
    ])
    assert code == 0
    lines = [
        json.loads(text)
        for text in trajectory.read_text().splitlines() if text.strip()
    ]
    assert len(lines) == 1
    folded = lines[0]["runs"]["plan-study"]
    assert folded["plans_per_second"] > 0
    assert folded["billed_shard_seconds"] == ours

    with capsys.disabled():
        print()
        print(f"  mixed {mixed.winner['counts']} bills {ours * 1e3:.2f} "
              f"shard-ms vs {best * 1e3:.2f} best homogeneous "
              f"({(1 - ours / best) * 100:.0f}% cheaper); "
              f"{mixed.plans_per_second:,.0f} plans/s in tier A")

"""Benchmark: regenerate Table 3 (resource utilisation).

Asserts our calibrated Eq. 3-5 models land within 0.5 % of the paper's
reported utilisation on both devices.
"""

import pytest

from repro.experiments.table3 import format_table3, run_table3


def test_table3(benchmark, once, capsys):
    rows = once(benchmark, run_table3)
    with capsys.disabled():
        print()
        print(format_table3(rows))
    for row in rows:
        for kind in ("luts", "dsps", "brams"):
            assert getattr(row.ours, kind) == pytest.approx(
                getattr(row.paper, kind), rel=0.005
            )

"""Benchmark: multi-shard serving throughput and batching behaviour.

The workload is the scaled VGG16 stack (64x64 input, no FC tail) on
the paper's VU9P configuration — the ``batch_throughput`` example's
model, small enough that the timing probe simulates in about a second.
Traffic is open-loop Poisson at 2.5x the *two-shard* pool's analytical
capacity, so both the 1-shard and the 2-shard runs are service-bound
and the shard count is the only variable.

Checked claims:

* **uniform closed-loop traffic reproduces the analytical number** —
  the full batcher/scheduler/shard stack reports makespan throughput
  within 1% of :class:`~repro.runtime.batch.BatchRunner`'s round-robin
  accounting (it is the same arithmetic, reached through the serving
  layer);
* **two shards give >= 1.8x aggregate GOPS over one** on saturating
  Poisson traffic (each shard is its own device, so scaling is limited
  only by the arrival tail);
* **dynamic batching unlocks intra-shard batch parallelism** — full
  batches (max_batch = NI) beat per-request dispatch by more than 3x
  on a 6-instance shard;
* **closed-loop saturation reaches open-loop capacity** — a client
  pool with zero think time (2 clients per instance) sustains
  aggregate GOPS within 5% of the uniform closed-batch number: the
  event kernel's completion-driven arrivals keep every instance fed;
* **a shard failure degrades gracefully** — killing 1 of N shards at
  t=0 under least-loaded costs at most ``1/N + epsilon`` of the
  baseline throughput (the survivors absorb the stream), and a
  mid-stream kill + restore still serves every request (the lost
  in-flight work is re-queued, never dropped);
* **autoscaling beats the peak-sized pool on cost at equal SLO** — on
  bursty traffic at 2x one shard, both the p99-driven and the
  utilisation-driven elastic pools meet the p99 objective the single
  fixed shard misses, for measurably fewer shard-seconds than the
  fixed pool sized for peak (the ``repro experiments autoscale``
  headline).

Every number is printed (not only asserted) so the CI log doubles as
a perf trajectory record (``benchmarks/append_trajectory.py`` folds
the serve smokes' JSON reports into ``BENCH_serving.json``).
"""

from repro.experiments.common import paper_config
from repro.experiments import autoscale_study
from repro.compiler import CompilerOptions
from repro.ir import zoo
from repro.pipeline import PipelineSession
from repro.serving import (
    BatcherOptions,
    ClosedLoopClientPool,
    FailureScenario,
    ShardPool,
    ShardServer,
    analytical_reference,
    make_requests,
)

REQUESTS = 96


def _session():
    cfg, device = paper_config("vu9p")
    return PipelineSession(
        zoo.vgg16(input_size=64, include_fc=False),
        device,
        cfg=cfg,
        compiler_options=CompilerOptions(quantize=True, pack_data=False),
    )


def _serve(pool, traffic, qps=None, policy="least-loaded", max_batch=6):
    requests = make_requests(traffic, REQUESTS, qps=qps)
    server = ShardServer(pool, policy, BatcherOptions(max_batch=max_batch))
    return server.serve(requests)


def test_serving_scales_and_matches_analytical(benchmark, once, capsys):
    session = _session()
    single = ShardPool.replicate(session, 1)
    double = ShardPool.replicate(session.clone(), 2)

    # Uniform closed loop vs the BatchRunner arithmetic.
    uniform = _serve(double, "uniform")
    reference_makespan = analytical_reference(double, REQUESTS)
    reference_gops = uniform.total_ops / reference_makespan / 1e9
    ratio = uniform.throughput_gops / reference_gops

    # Poisson at 2.5x the double pool's capacity saturates both pools.
    qps = 2.5 * double.capacity_images_per_second()
    one = _serve(single, "poisson", qps=qps)
    two = once(benchmark, _serve, double, "poisson", qps=qps)
    scaling = two.throughput_gops / one.throughput_gops

    with capsys.disabled():
        print()
        print(f"VGG16-64 serving on vu9p ({REQUESTS} requests, "
              f"poisson @ {qps:.0f} req/s, max_batch=6)")
        print(f"  uniform vs BatchRunner: {uniform.throughput_gops:8.1f} "
              f"vs {reference_gops:8.1f} GOPS (ratio {ratio:.4f})")
        print(f"  1 shard : {one.throughput_gops:8.1f} GOPS, "
              f"p99 {one.latency_percentile(99) * 1e3:7.2f} ms")
        print(f"  2 shards: {two.throughput_gops:8.1f} GOPS, "
              f"p99 {two.latency_percentile(99) * 1e3:7.2f} ms "
              f"({scaling:.2f}x)")

    # Acceptance: within 1% of the analytical number; >= 1.8x scaling.
    assert abs(ratio - 1.0) < 0.01, f"ratio {ratio:.4f} off by >= 1%"
    assert scaling >= 1.8, f"2-shard scaling {scaling:.2f}x < 1.8x"


def test_dynamic_batching_fills_instances(capsys):
    session = _session()
    pool = ShardPool.replicate(session, 1)
    instances = pool.shards[0].instances

    batched = _serve(pool, "uniform", max_batch=instances)
    singles = _serve(pool, "uniform", max_batch=1)
    gain = singles.makespan_seconds / batched.makespan_seconds

    with capsys.disabled():
        print()
        print(f"  batch={instances}: {batched.throughput_gops:8.1f} GOPS; "
              f"batch=1: {singles.throughput_gops:8.1f} GOPS "
              f"({gain:.2f}x from filling the instances)")

    assert gain > 3.0, f"batching gain {gain:.2f}x <= 3x"


def test_closed_loop_saturates_open_loop_capacity(capsys):
    session = _session()
    pool = ShardPool.replicate(session, 2)

    open_loop = _serve(pool, "uniform")
    clients = 2 * pool.total_instances  # one batch serving, one queued
    closed = ShardServer(
        pool, "least-loaded", BatcherOptions(max_batch=6)
    ).serve(ClosedLoopClientPool(
        clients=clients, requests=REQUESTS, think_time_s=0.0, seed=11,
    ))
    ratio = closed.throughput_gops / open_loop.throughput_gops

    with capsys.disabled():
        print()
        print(f"  closed loop ({clients} clients, zero think): "
              f"{closed.throughput_gops:8.1f} GOPS vs open-loop "
              f"{open_loop.throughput_gops:8.1f} GOPS "
              f"(ratio {ratio:.4f})")

    # Acceptance: saturated closed loop within 5% of open-loop capacity.
    assert abs(ratio - 1.0) < 0.05, f"closed/open ratio {ratio:.4f}"
    assert closed.count == REQUESTS


def test_shard_failure_degrades_gracefully(capsys):
    session = _session()
    pool = ShardPool.replicate(session, 2)
    server = ShardServer(pool, "least-loaded", BatcherOptions(max_batch=6))

    baseline = server.serve(make_requests("uniform", REQUESTS))
    dead = server.serve(
        make_requests("uniform", REQUESTS),
        scenario=FailureScenario.kill("shard0", at=0.0),
    )
    degradation = 1.0 - dead.throughput_gops / baseline.throughput_gops
    restore = server.serve(
        make_requests("uniform", REQUESTS),
        scenario=FailureScenario.kill(
            "shard0",
            at=0.3 * baseline.makespan_seconds,
            restore_at=0.7 * baseline.makespan_seconds,
        ),
    )
    stretch = restore.makespan_seconds / baseline.makespan_seconds

    with capsys.disabled():
        print()
        print(f"  kill 1/2 shards @ t=0:   "
              f"{dead.throughput_gops:8.1f} GOPS vs baseline "
              f"{baseline.throughput_gops:8.1f} "
              f"({degradation * 100:.1f}% degradation)")
        print(f"  kill @ 30% + restore @ 70%: {restore.count} / "
              f"{REQUESTS} served, makespan stretch {stretch:.2f}x")

    # Acceptance: losing 1 of N shards costs <= 1/N + epsilon, and a
    # restored shard means no request is ever lost.
    assert degradation <= 0.5 + 0.1, f"degradation {degradation:.2f}"
    assert degradation >= 0.3, "kill@0 barely degraded - scenario inert?"
    assert restore.count == REQUESTS, "kill+restore dropped requests"
    assert dead.per_shard()["shard0"].requests == 0


def test_autoscaler_meets_p99_with_fewer_shard_seconds(capsys):
    rows = autoscale_study.run_burst_study()
    (_, target, fixed_one) = rows[0]
    (_, _, fixed_peak) = rows[1]
    elastic = rows[2:]

    with capsys.disabled():
        print()
        print(f"  autoscale (burst @ "
              f"{autoscale_study.BURST_OVERLOAD:.1f}x one shard, "
              f"p99 objective {target * 1e3:.1f} ms):")
        for label, _, report in rows:
            print(f"    {label:22s} p99 "
                  f"{report.latency_percentile(99) * 1e3:7.2f} ms, "
                  f"{report.total_shard_seconds() * 1e3:6.1f} shard-ms, "
                  f"{report.scale_ups}/{report.scale_downs} up/down")

    # Acceptance: the objective is binding (one fixed shard misses
    # it), and each elastic mode meets it for less provisioned
    # shard-time than the fixed pool sized for peak.
    assert fixed_one.latency_percentile(99) > target, (
        "a single shard meets the target - the objective is not binding"
    )
    assert fixed_peak.latency_percentile(99) <= target
    peak_bill = fixed_peak.total_shard_seconds()
    for label, _, report in elastic:
        assert report.count == autoscale_study.REQUESTS, label
        assert report.scale_ups >= 1, f"{label}: autoscaler inert"
        assert report.latency_percentile(99) <= target, (
            f"{label}: p99 {report.latency_percentile(99) * 1e3:.2f} ms "
            f"misses the {target * 1e3:.1f} ms objective"
        )
        assert report.total_shard_seconds() <= 0.9 * peak_bill, (
            f"{label}: {report.total_shard_seconds() * 1e3:.1f} "
            f"shard-ms is not under 90% of the peak pool's "
            f"{peak_bill * 1e3:.1f}"
        )

"""Benchmark: regenerate the Section-6.1 hybrid-overhead ablation.

Paper: adding the Winograd-supported hybrid structure costs 26.4 %
extra LUTs and **no** extra DSPs on VU9P.
"""

import pytest

from repro.experiments.overhead import (
    PAPER_LUT_OVERHEAD,
    format_overhead,
    run_overhead,
)


def test_overhead(benchmark, once, capsys):
    rows = once(benchmark, run_overhead)
    with capsys.disabled():
        print()
        print(format_overhead(rows))
    vu9p = next(r for r in rows if r.device == "vu9p")
    assert vu9p.lut_overhead == pytest.approx(PAPER_LUT_OVERHEAD, abs=0.002)
    for row in rows:
        assert row.dsp_overhead == 0

"""Benchmark: full-sweep DSE wall-clock and cache hit rate, seed vs
pipeline.

The sweep is the VGG16 tradeoff study on VU9P: the full 621-candidate
space explored once per objective (throughput, then latency) — the
many-scenario pattern the unified pipeline exists for.  The *seed* path
is the brute-force configuration (no cache, no pruning); the *pipeline*
path shares one :class:`~repro.pipeline.cache.EvaluationCache` across
the two runs and enables lower-bound pruning with best-first ordering.

Checked claims:

* the pipeline selects the byte-identical design point per objective;
* >= 3x wall-clock speedup over the seed path;
* >= 50% cache hit rate across the sweep.
"""

import time

from repro.dse import run_dse
from repro.dse.space import DseOptions
from repro.fpga import get_device
from repro.ir import zoo
from repro.pipeline import EvaluationCache

OBJECTIVES = ("throughput", "latency")


def _sweep_seed(device, network):
    return {
        objective: run_dse(
            device, network,
            DseOptions(frequency_mhz=device.frequency_mhz,
                       objective=objective, use_cache=False, prune=False),
        )
        for objective in OBJECTIVES
    }


def _sweep_pipeline(device, network, cache):
    return {
        objective: run_dse(
            device, network,
            DseOptions(frequency_mhz=device.frequency_mhz,
                       objective=objective, best_first=True),
            cache=cache,
        )
        for objective in OBJECTIVES
    }


def _design_point(result):
    return result.cfg, result.mapping, result.estimate


def test_dse_cache_speedup(benchmark, once, capsys):
    device = get_device("vu9p")
    network = zoo.vgg16()

    start = time.perf_counter()
    seed = _sweep_seed(device, network)
    seed_seconds = time.perf_counter() - start

    cache = EvaluationCache()
    start = time.perf_counter()
    fast = once(benchmark, _sweep_pipeline, device, network, cache)
    fast_seconds = time.perf_counter() - start

    stats = cache.stats
    speedup = seed_seconds / fast_seconds
    with capsys.disabled():
        print()
        print("VGG16 full sweep on vu9p "
              f"({seed['throughput'].candidates_considered} candidates "
              f"x {len(OBJECTIVES)} objectives)")
        print(f"  seed (brute force): {seed_seconds * 1e3:8.1f} ms")
        print(f"  pipeline:           {fast_seconds * 1e3:8.1f} ms "
              f"({speedup:.1f}x)")
        print(f"  cache: {stats.describe()}")
        for objective in OBJECTIVES:
            result = fast[objective]
            print(f"  {objective}: evaluated {result.candidates_evaluated}, "
                  f"pruned {result.candidates_pruned} of "
                  f"{result.candidates_considered}")

    # Identical selection per objective.
    for objective in OBJECTIVES:
        assert _design_point(fast[objective]) == _design_point(
            seed[objective]
        ), objective
    # Acceptance: >= 3x wall-clock, >= 50% cache hit rate.
    assert speedup >= 3.0, f"speedup {speedup:.2f}x < 3x"
    assert stats.hit_rate >= 0.5, f"hit rate {stats.hit_rate:.2%} < 50%"

"""Benchmark: full-sweep DSE wall-clock and cache hit rate, seed vs
pipeline vs warm on-disk store.

The sweep is the VGG16 tradeoff study on VU9P: the full 621-candidate
space explored once per objective (throughput, then latency) — the
many-scenario pattern the unified pipeline exists for.  The *seed* path
is the brute-force configuration (no cache, no pruning); the *pipeline*
path shares one :class:`~repro.pipeline.cache.EvaluationCache` across
the two runs and enables lower-bound pruning with best-first ordering.
The *store* path repeats the sweep in a fresh cache warmed from an
:class:`~repro.pipeline.store.EvaluationStore` flushed by a cold run —
the repeated-fleet workload persistent caching exists for.

Checked claims:

* the pipeline selects the byte-identical design point per objective;
* >= 3x wall-clock speedup over the seed path;
* >= 50% cache hit rate across the sweep;
* a store-warmed repeat reports > 90% estimate-level hit rate and the
  byte-identical selection of the cold brute-force run.
"""

import time

from repro.dse import run_dse
from repro.dse.space import DseOptions
from repro.fpga import get_device
from repro.ir import zoo
from repro.pipeline import EvaluationCache, EvaluationStore

OBJECTIVES = ("throughput", "latency")


def _sweep_seed(device, network):
    return {
        objective: run_dse(
            device, network,
            DseOptions(frequency_mhz=device.frequency_mhz,
                       objective=objective, use_cache=False, prune=False),
        )
        for objective in OBJECTIVES
    }


def _sweep_pipeline(device, network, cache):
    return {
        objective: run_dse(
            device, network,
            DseOptions(frequency_mhz=device.frequency_mhz,
                       objective=objective, best_first=True),
            cache=cache,
        )
        for objective in OBJECTIVES
    }


def _design_point(result):
    return result.cfg, result.mapping, result.estimate


def test_dse_cache_speedup(benchmark, once, capsys):
    device = get_device("vu9p")
    network = zoo.vgg16()

    start = time.perf_counter()
    seed = _sweep_seed(device, network)
    seed_seconds = time.perf_counter() - start

    cache = EvaluationCache()
    start = time.perf_counter()
    fast = once(benchmark, _sweep_pipeline, device, network, cache)
    fast_seconds = time.perf_counter() - start

    stats = cache.stats
    speedup = seed_seconds / fast_seconds
    with capsys.disabled():
        print()
        print("VGG16 full sweep on vu9p "
              f"({seed['throughput'].candidates_considered} candidates "
              f"x {len(OBJECTIVES)} objectives)")
        print(f"  seed (brute force): {seed_seconds * 1e3:8.1f} ms")
        print(f"  pipeline:           {fast_seconds * 1e3:8.1f} ms "
              f"({speedup:.1f}x)")
        print(f"  cache: {stats.describe()}")
        for objective in OBJECTIVES:
            result = fast[objective]
            print(f"  {objective}: evaluated {result.candidates_evaluated}, "
                  f"pruned {result.candidates_pruned} of "
                  f"{result.candidates_considered}")

    # Identical selection per objective.
    for objective in OBJECTIVES:
        assert _design_point(fast[objective]) == _design_point(
            seed[objective]
        ), objective
    # Acceptance: >= 3x wall-clock, >= 50% cache hit rate.
    assert speedup >= 3.0, f"speedup {speedup:.2f}x < 3x"
    assert stats.hit_rate >= 0.5, f"hit rate {stats.hit_rate:.2%} < 50%"


def test_dse_store_warm_sweep(tmp_path, once, benchmark, capsys):
    """Repeat the two-objective sweep out of a warm on-disk store."""
    device = get_device("vu9p")
    network = zoo.vgg16()
    store = EvaluationStore(tmp_path / "cache")

    # Cold run: evaluate everything once, flush the delta to disk.
    cold_cache = EvaluationCache()
    start = time.perf_counter()
    cold = _sweep_pipeline(device, network, cold_cache)
    cold_seconds = time.perf_counter() - start
    flushed = store.flush(cold_cache)

    # Warm run: a fresh cache in a "new invocation", warmed from disk.
    warm_cache = EvaluationCache()
    store.warm(warm_cache)
    start = time.perf_counter()
    warm = once(benchmark, _sweep_pipeline, device, network, warm_cache)
    warm_seconds = time.perf_counter() - start

    stats = warm_cache.stats
    with capsys.disabled():
        print()
        print("VGG16 warm-store sweep on vu9p")
        print(f"  cold (empty cache): {cold_seconds * 1e3:8.1f} ms, "
              f"{flushed} entries flushed")
        print(f"  warm (from store):  {warm_seconds * 1e3:8.1f} ms "
              f"({cold_seconds / warm_seconds:.1f}x)")
        print(f"  cache: {stats.describe()}")
        print(f"  {store.describe()}")

    # Identical selection, served almost entirely from the store.
    for objective in OBJECTIVES:
        assert _design_point(warm[objective]) == _design_point(
            cold[objective]
        ), objective
    assert stats.estimate_hit_rate > 0.9, (
        f"warm estimate hit rate {stats.estimate_hit_rate:.2%} <= 90%"
    )


def test_dse_process_executor_equivalence(capsys):
    """executor="process" reproduces the brute-force VGG16 selection."""
    device = get_device("vu9p")
    network = zoo.vgg16()
    options = DseOptions(frequency_mhz=device.frequency_mhz,
                         use_cache=False, prune=False)
    seed = run_dse(device, network, options)
    start = time.perf_counter()
    proc = run_dse(
        device, network,
        DseOptions(frequency_mhz=device.frequency_mhz, best_first=True,
                   jobs=2, executor="process"),
    )
    seconds = time.perf_counter() - start
    with capsys.disabled():
        print()
        print(f"VGG16 process-executor sweep on vu9p: {seconds * 1e3:.1f} ms,"
              f" evaluated {proc.candidates_evaluated}, pruned "
              f"{proc.candidates_pruned} of {proc.candidates_considered}")
    assert _design_point(proc) == _design_point(seed)
    assert [_design_point(r) for r in proc.runners_up] == [
        _design_point(r) for r in seed.runners_up
    ]

"""Accelerator configuration — the hardware-perspective DSE parameters.

``PI``, ``PO`` and ``PT`` are the three parallel-factor dimensions of the
PE (Section 4.2.2): a ``PT x PT`` array of GEMM cores, each a ``PI x PO``
broadcast array.  ``PT`` doubles as the Winograd input-tile edge, so it
must be 4 or 6 (Table 2); the Winograd output tile is ``m = PT - 2`` for
the 3x3 kernels both algorithms target.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ResourceError
from repro.ir.tensor import DataType

#: PT values allowed by Table 2 (F(2x2,3x3) -> 4, F(4x4,3x3) -> 6).
SUPPORTED_PT = (4, 6)


@dataclass(frozen=True)
class AcceleratorConfig:
    """One accelerator instance's hardware parameters.

    Attributes
    ----------
    pi, po, pt:
        Parallel factors.  The Table-2 constraint ``PI >= PO >= 1`` and
        ``PT in {4, 6}`` is enforced.
    data_width:
        Feature-map bit width (paper: 12, widened by the Winograd input
        transform).
    weight_width:
        DNN parameter bit width (paper: 8).
    instances:
        Number of accelerator instances on the FPGA (``NI`` in Table 2).
    input_buffer_vecs / weight_buffer_vecs / output_buffer_vecs:
        Ping-pong half capacities, counted in channel vectors (PI
        elements for input, PI*PO for weights, PO for output).
    frequency_mhz:
        Operating clock (device-dependent; copied from the FPGA spec by
        the DSE).
    """

    pi: int = 4
    po: int = 4
    pt: int = 6
    data_width: int = 12
    weight_width: int = 8
    instances: int = 1
    input_buffer_vecs: int = 32768
    weight_buffer_vecs: int = 8192
    output_buffer_vecs: int = 16384
    frequency_mhz: float = 200.0
    feature_type: DataType = field(default=None, compare=False)
    weight_type: DataType = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.pt not in SUPPORTED_PT:
            raise ResourceError(
                f"PT must be one of {SUPPORTED_PT}, got {self.pt}"
            )
        if not (self.pi >= self.po >= 1):
            raise ResourceError(
                f"Table 2 requires PI >= PO >= 1, got PI={self.pi} PO={self.po}"
            )
        if self.instances < 1:
            raise ResourceError(f"instances must be >= 1, got {self.instances}")
        if self.data_width <= 0 or self.weight_width <= 0:
            raise ResourceError("data widths must be positive")
        for name in (
            "input_buffer_vecs",
            "weight_buffer_vecs",
            "output_buffer_vecs",
        ):
            if getattr(self, name) <= 0:
                raise ResourceError(f"{name} must be positive")
        if self.frequency_mhz <= 0:
            raise ResourceError("frequency must be positive")
        if self.feature_type is None:
            object.__setattr__(
                self,
                "feature_type",
                DataType(width=self.data_width, frac=self.data_width // 2),
            )
        if self.weight_type is None:
            object.__setattr__(
                self,
                "weight_type",
                DataType(width=self.weight_width, frac=self.weight_width - 2),
            )

    # -- derived quantities ----------------------------------------------

    @property
    def m(self) -> int:
        """Winograd output-tile edge (``PT - r + 1`` with r = 3)."""
        return self.pt - 2

    @property
    def macs_per_cycle(self) -> int:
        """Multipliers active per cycle: the PT x PT x PI x PO array."""
        return self.pi * self.po * self.pt * self.pt

    @property
    def spatial_input_lanes(self) -> int:
        """Input channels consumed per cycle in Spatial mode (PI * PT)."""
        return self.pi * self.pt

    @property
    def spatial_output_lanes(self) -> int:
        """Output channels produced per cycle in Spatial mode (PO * PT)."""
        return self.po * self.pt

    @property
    def frequency_hz(self) -> float:
        return self.frequency_mhz * 1e6

    def peak_gops(self, mode: str = "spat", kernel: int = 3) -> float:
        """Peak throughput in GOPS (2 ops per MAC).

        In Winograd mode each multiplication carries
        ``(r^2 * m^2) / PT^2`` equivalent spatial MACs for an ``r x r``
        kernel (Section 4.2.1), so the effective peak is higher.
        """
        base = 2.0 * self.macs_per_cycle * self.frequency_hz / 1e9
        if mode == "spat":
            return base
        blocks = (-(-kernel // 3)) ** 2
        equivalent = (kernel * kernel * self.m * self.m) / (
            blocks * self.pt * self.pt
        )
        return base * equivalent

    def describe(self) -> str:
        return (
            f"PI={self.pi} PO={self.po} PT={self.pt} (m={self.m}) "
            f"x{self.instances} inst @ {self.frequency_mhz:.0f} MHz, "
            f"{self.data_width}b act / {self.weight_width}b wgt"
        )

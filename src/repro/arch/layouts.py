"""Feature-map data layouts and reordering transforms (Figure 5).

Feature maps live in external memory as arrays of *channel vectors* (PI
elements each, the paper's Figure-5 "Vec." granularity).  Channels are
padded up to a whole number of vectors.  Two layouts exist:

``SPAT``  — ``[row][channel-vector][column][lane]``: columns of one
  channel vector are contiguous, matching the Spatial broadcast order.
``WINO``  — ``[row][column][channel-vector][lane]``: the channel vectors
  of one pixel are contiguous, matching the channel-innermost GEMM order
  of the Winograd EWMM (Eq. 2).

Rows are outermost in both layouts, so the row-group partitioning of
Section 4.2.4 maps to contiguous DRAM ranges regardless of mode, and the
SAVE module can retarget any of the four transforms (WINO/SPAT ->
WINO/SPAT) while writing one group — exactly the Figure-5 mechanism that
confines data reordering to the SAVE module.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

#: Layout selector values (= WINO_FLAG encoding).
SPAT = 0
WINO = 1

LAYOUT_NAMES = {SPAT: "SPAT", WINO: "WINO"}


def channel_vectors(channels: int, lanes: int) -> int:
    """Number of ``lanes``-wide channel vectors covering ``channels``."""
    if channels <= 0 or lanes <= 0:
        raise ShapeError(
            f"channels={channels} and lanes={lanes} must be positive"
        )
    return -(-channels // lanes)


def feature_words(channels: int, height: int, width: int, lanes: int) -> int:
    """Total elements (including channel padding) of a stored feature map."""
    return channel_vectors(channels, lanes) * lanes * height * width


def element_index(
    layout: int,
    c: int,
    y: int,
    x: int,
    channels: int,
    height: int,
    width: int,
    lanes: int,
) -> int:
    """Linear element offset of logical element ``(c, y, x)``."""
    if not (0 <= c < channels and 0 <= y < height and 0 <= x < width):
        raise ShapeError(
            f"element ({c},{y},{x}) outside {channels}x{height}x{width}"
        )
    cv, lane = divmod(c, lanes)
    n_cv = channel_vectors(channels, lanes)
    if layout == SPAT:
        vec = (y * n_cv + cv) * width + x
    elif layout == WINO:
        vec = (y * width + x) * n_cv + cv
    else:
        raise ShapeError(f"unknown layout {layout}")
    return vec * lanes + lane


def row_base(
    layout: int, y: int, channels: int, height: int, width: int, lanes: int
) -> int:
    """Element offset where row ``y`` starts (rows are outermost)."""
    if not 0 <= y < height:
        raise ShapeError(f"row {y} outside height {height}")
    del layout  # identical for both layouts by construction
    return y * channel_vectors(channels, lanes) * lanes * width


def pack_feature(
    layout: int, feature: np.ndarray, lanes: int
) -> np.ndarray:
    """Linearise a ``(C, H, W)`` feature map into the given layout.

    Channels are zero-padded to a whole number of vectors.  Returns a 1-D
    float64 array of :func:`feature_words` elements.
    """
    feature = np.asarray(feature, dtype=np.float64)
    if feature.ndim != 3:
        raise ShapeError(f"feature must be CHW, got {feature.shape}")
    c, h, w = feature.shape
    n_cv = channel_vectors(c, lanes)
    padded = np.zeros((n_cv * lanes, h, w), dtype=np.float64)
    padded[:c] = feature
    # (cv, lane, y, x) -> layout order
    grouped = padded.reshape(n_cv, lanes, h, w)
    if layout == SPAT:
        # [row][cv][col][lane]
        arranged = grouped.transpose(2, 0, 3, 1)
    elif layout == WINO:
        # [row][col][cv][lane]
        arranged = grouped.transpose(2, 3, 0, 1)
    else:
        raise ShapeError(f"unknown layout {layout}")
    return np.ascontiguousarray(arranged).reshape(-1)


def unpack_feature(
    layout: int,
    words: np.ndarray,
    channels: int,
    height: int,
    width: int,
    lanes: int,
) -> np.ndarray:
    """Inverse of :func:`pack_feature`; returns ``(C, H, W)``."""
    words = np.asarray(words, dtype=np.float64)
    n_cv = channel_vectors(channels, lanes)
    expected = n_cv * lanes * height * width
    if words.size != expected:
        raise ShapeError(
            f"linearised feature has {words.size} elements, "
            f"expected {expected}"
        )
    if layout == SPAT:
        arranged = words.reshape(height, n_cv, width, lanes)
        grouped = arranged.transpose(1, 3, 0, 2)
    elif layout == WINO:
        arranged = words.reshape(height, width, n_cv, lanes)
        grouped = arranged.transpose(2, 3, 0, 1)
    else:
        raise ShapeError(f"unknown layout {layout}")
    full = np.ascontiguousarray(grouped).reshape(n_cv * lanes, height, width)
    return full[:channels].copy()


def relayout(
    words: np.ndarray,
    src_layout: int,
    dst_layout: int,
    channels: int,
    height: int,
    width: int,
    lanes: int,
) -> np.ndarray:
    """Reorder a linearised feature between layouts.

    This is the data-path operation behind the SAVE module's four
    transform modes: ``src_layout`` is the COMP output layout (current
    layer's WINO_FLAG), ``dst_layout`` the layout expected by the next
    layer (DST_WINO_FLAG).
    """
    if src_layout == dst_layout:
        return np.asarray(words, dtype=np.float64).copy()
    feature = unpack_feature(src_layout, words, channels, height, width, lanes)
    return pack_feature(dst_layout, feature, lanes)

"""Handshake FIFOs between producer/consumer module pairs (Section 4.1).

The accelerator uses token FIFOs in both directions of each pair
("LOAD_INP and COMP", "LOAD_WGT and COMP", "COMP and SAVE"): the consumer
waits for a *data* token before reading a ping-pong half, the producer
waits for a *free* token before overwriting one.  In the timing
simulator a token is simply the timestamp at which it becomes available.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.errors import SimulationError


class HandshakeFifo:
    """Timestamped token FIFO.

    ``depth`` bounds the number of outstanding tokens (ping-pong buffers
    have depth 2).  ``preload`` tokens available at time 0 model the
    initially-free buffer halves.
    """

    def __init__(self, name: str, depth: int = 2, preload: int = 0):
        if depth <= 0:
            raise SimulationError(f"{name}: FIFO depth must be positive")
        if preload < 0 or preload > depth:
            raise SimulationError(
                f"{name}: preload {preload} outside [0, {depth}]"
            )
        self.name = name
        self.depth = depth
        self._tokens: Deque[float] = deque([0.0] * preload)
        self.pushes = preload
        self.pops = 0
        self.max_occupancy = preload

    def push(self, timestamp: float) -> None:
        """Emit a token that becomes visible at ``timestamp``."""
        if len(self._tokens) >= self.depth:
            raise SimulationError(
                f"{self.name}: token overflow (depth {self.depth}); "
                "the compiler emitted unbalanced handshake flags"
            )
        if self._tokens and timestamp < self._tokens[-1]:
            # Tokens are produced by an in-order module; a timestamp going
            # backwards indicates a scheduling bug.
            raise SimulationError(
                f"{self.name}: non-monotonic token time {timestamp} "
                f"after {self._tokens[-1]}"
            )
        self._tokens.append(timestamp)
        self.pushes += 1
        self.max_occupancy = max(self.max_occupancy, len(self._tokens))

    def pop(self) -> float:
        """Consume the oldest token; returns its availability time."""
        if not self._tokens:
            raise SimulationError(
                f"{self.name}: token underflow; a consumer waited on a "
                "token that is never produced (deadlock in program order)"
            )
        self.pops += 1
        return self._tokens.popleft()

    @property
    def occupancy(self) -> int:
        return len(self._tokens)

    def __repr__(self) -> str:
        return (
            f"HandshakeFifo({self.name!r}, depth={self.depth}, "
            f"occupancy={self.occupancy})"
        )

"""External memory model.

Holds the accelerator's DRAM image (instructions, weights, biases and
feature maps) as one flat float64 element array plus named regions, and
accounts for transfer time:

``cycles = ceil(elements / min(bw_elems_per_cycle, port_elems_per_cycle))
          + fixed_latency``

which is the discrete version of the paper's
``T = size / min(BW, FREQ * port)`` (Eq. 8-11), with ``fixed_latency``
modelling the DDR access/burst setup the analytical model folds into the
``T_penalty`` term.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.errors import SimulationError


@dataclass(frozen=True)
class MemoryRegion:
    """A named, contiguous element range inside the DRAM image."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int, count: int = 1) -> bool:
        return self.base <= address and address + count <= self.end


class ExternalMemoryModel:
    """Flat element-addressed DRAM with bandwidth accounting.

    Parameters
    ----------
    size:
        Capacity in elements.
    bandwidth_elems_per_cycle:
        Sustained external bandwidth, converted to elements per clock
        cycle by the caller (this is where multi-instance sharing and the
        byte width of the element type are applied).
    fixed_latency:
        Per-transfer setup cycles (DDR protocol + burst start).
    """

    def __init__(
        self,
        size: int,
        bandwidth_elems_per_cycle: float,
        fixed_latency: int = 64,
    ):
        if size <= 0:
            raise SimulationError("DRAM size must be positive")
        if bandwidth_elems_per_cycle <= 0:
            raise SimulationError("bandwidth must be positive")
        if fixed_latency < 0:
            raise SimulationError("fixed latency must be >= 0")
        self.size = size
        self.bandwidth = float(bandwidth_elems_per_cycle)
        self.fixed_latency = int(fixed_latency)
        self.data = np.zeros(size, dtype=np.float64)
        self.regions: Dict[str, MemoryRegion] = {}
        self._next_free = 0
        self.total_read_elems = 0
        self.total_written_elems = 0

    # -- allocation -------------------------------------------------------

    def allocate(self, name: str, size: int, align: int = 64) -> MemoryRegion:
        """Reserve a named region; simple bump allocator."""
        if name in self.regions:
            raise SimulationError(f"region {name!r} already allocated")
        if size <= 0:
            raise SimulationError(f"region {name!r}: size must be positive")
        base = -(-self._next_free // align) * align
        if base + size > self.size:
            raise SimulationError(
                f"DRAM exhausted allocating {name!r} "
                f"({base + size} > {self.size} elements)"
            )
        region = MemoryRegion(name, base, size)
        self.regions[name] = region
        self._next_free = base + size
        return region

    def region(self, name: str) -> MemoryRegion:
        try:
            return self.regions[name]
        except KeyError:
            raise SimulationError(f"unknown DRAM region {name!r}") from None

    # -- data access -------------------------------------------------------

    def _check(self, address: int, count: int) -> None:
        if address < 0 or address + count > self.size:
            raise SimulationError(
                f"DRAM access [{address}, {address + count}) out of range"
            )

    def read(self, address: int, count: int) -> np.ndarray:
        """Read ``count`` elements (functional; no timing)."""
        self._check(address, count)
        self.total_read_elems += count
        return self.data[address : address + count].copy()

    def write(self, address: int, values: np.ndarray) -> None:
        """Write elements (functional; no timing)."""
        values = np.asarray(values, dtype=np.float64).reshape(-1)
        self._check(address, values.size)
        self.total_written_elems += values.size
        self.data[address : address + values.size] = values

    # -- timing --------------------------------------------------------

    def transfer_cycles(self, elements: int, port_elems_per_cycle: float) -> int:
        """Cycles to move ``elements`` over the DDR interface.

        ``port_elems_per_cycle`` is the on-chip side's consumption or
        production rate (``PI*PT``, ``PI*PO*PT`` or ``PO*PT`` per Eq.
        8-11); the slower of DDR and port limits throughput.
        """
        if elements <= 0:
            return 0
        rate = min(self.bandwidth, float(port_elems_per_cycle))
        return int(np.ceil(elements / rate)) + self.fixed_latency

"""Functional model of the hybrid Spatial/Winograd PE (Section 4.2.2).

The PE is a ``PT x PT`` array of GEMM cores; each core is a ``PI x PO``
broadcast array computing one GEMV per cycle.

* **Spatial mode** merges all cores into one ``(PI*PT) x (PO*PT)``
  broadcast array: per cycle it consumes ``PI*PT`` input channels and
  produces partial sums for ``PO*PT`` output channels of one pixel.
* **Winograd mode** assigns core ``(i, j)`` to element ``(i, j)`` of the
  EWMM in Eq. 2: per cycle the array consumes one transformed input tile
  column (``PI`` channels x ``PT x PT`` elements) and accumulates ``PO``
  output channels of the transformed output tile.

The functions below compute whole row-groups at once with numpy (the
simulator's COMP module calls them), structured so the reduction order
matches the hardware: channels reduce inside GEMM cores, tile positions
never mix before the output transform.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ShapeError
from repro.arch.params import AcceleratorConfig
from repro.winograd.matrices import algorithm_for_tile
from repro.winograd.transforms import (
    extract_input_tiles,
    pad_feature_for_tiling,
    transform_input,
    transform_output,
)

#: Cycles to fill the MAC/transform pipeline once per COMP instruction.
PIPELINE_DEPTH = 12


def gemm_core(weights: np.ndarray, vector: np.ndarray) -> np.ndarray:
    """One GEMM core step: ``(PO, PI) @ (PI,) -> (PO,)`` broadcast GEMV."""
    weights = np.asarray(weights, dtype=np.float64)
    vector = np.asarray(vector, dtype=np.float64)
    if weights.ndim != 2 or weights.shape[1] != vector.shape[0]:
        raise ShapeError(
            f"GEMM core shapes {weights.shape} x {vector.shape} mismatch"
        )
    return weights @ vector


def spatial_compute(
    strip: np.ndarray,
    kernels: np.ndarray,
    stride: int,
    out_rows: int,
) -> np.ndarray:
    """Spatial-mode execution over one input strip.

    Parameters
    ----------
    strip:
        ``(C, rows, W_padded)`` input rows (already zero padded).
    kernels:
        ``(K_g, C, R, S)`` weight group.
    stride:
        Convolution stride.
    out_rows:
        Number of output rows this group produces; the strip must hold
        ``(out_rows - 1) * stride + R`` rows.

    Returns ``(K_g, out_rows, W_out)``.
    """
    strip = np.asarray(strip, dtype=np.float64)
    kernels = np.asarray(kernels, dtype=np.float64)
    if strip.ndim != 3 or kernels.ndim != 4:
        raise ShapeError("spatial_compute expects CHW strip and KCRS kernels")
    c, rows, width = strip.shape
    k_g, kc, r, s = kernels.shape
    if kc != c:
        raise ShapeError(f"channel mismatch {c} vs {kc}")
    need = (out_rows - 1) * stride + r
    if rows < need:
        raise ShapeError(
            f"strip has {rows} rows, spatial group needs {need}"
        )
    out_w = (width - s) // stride + 1
    out = np.zeros((k_g, out_rows, out_w), dtype=np.float64)
    # The hardware broadcasts one input pixel-vector per cycle and every
    # GEMM core accumulates; numerically this is the (dr, ds)-ordered
    # accumulation below.
    for dr in range(r):
        for ds in range(s):
            patch = strip[
                :,
                dr : dr + (out_rows - 1) * stride + 1 : stride,
                ds : ds + (out_w - 1) * stride + 1 : stride,
            ]
            out += np.einsum(
                "kc,chw->khw", kernels[:, :, dr, ds], patch, optimize=True
            )
    return out


def winograd_compute(
    strip: np.ndarray,
    transformed: np.ndarray,
    pt: int,
    out_w: int = None,
) -> Tuple[np.ndarray, int]:
    """Winograd-mode execution over one tile-row strip for one
    decomposition block.

    Parameters
    ----------
    strip:
        ``(C, rows, W_padded)`` input rows covering one tile row — at
        least ``PT`` rows (extra rows are ignored: they belong to the
        next tile row's overlap).
    transformed:
        ``(K_g, C, PT, PT)`` offline-transformed weights ``U = G g G^T``
        of this decomposition block.
    pt:
        Tile edge (selects F(2x2,3x3) or F(4x4,3x3)).
    out_w:
        Output columns to produce.  Shifted windows of a decomposed
        kernel can be narrower than the full output; the missing
        columns multiply the block's zero padding, so the window is
        zero-extended (default: as many as the window yields).

    Returns
    -------
    (partial, n_tiles):
        ``partial`` is ``(K_g, m, n_tiles * m)`` — the *partial* output
        rows of this block (callers accumulate across blocks);
        ``n_tiles`` is the tile count along the width (one GEMM-array
        pass each).
    """
    strip = np.asarray(strip, dtype=np.float64)
    transformed = np.asarray(transformed, dtype=np.float64)
    alg = algorithm_for_tile(pt)
    if strip.ndim != 3:
        raise ShapeError("winograd_compute expects a CHW strip")
    c = strip.shape[0]
    if transformed.shape[1:] != (c, pt, pt):
        raise ShapeError(
            f"transformed weights {transformed.shape} do not match "
            f"C={c}, PT={pt}"
        )
    if strip.shape[1] < pt:
        raise ShapeError(
            f"strip has {strip.shape[1]} rows, Winograd needs {pt}"
        )
    window = strip[:, :pt, :]
    if out_w is None:
        out_w = window.shape[2] - alg.r + 1
    window = pad_feature_for_tiling(alg, window, alg.m, out_w)
    tiles = extract_input_tiles(alg, window)  # (C, 1, n_tiles, PT, PT)
    v = transform_input(alg, tiles)
    # Eq. 2: core (i, j) computes the GEMM over channels for element
    # (i, j); all PT*PT cores run the same (K_g x C) GEMV schedule.
    ewmm = np.einsum("kcij,cyxij->kyxij", transformed, v, optimize=True)
    y = transform_output(alg, ewmm)  # (K_g, 1, n_tiles, m, m)
    n_tiles = y.shape[2]
    partial = (
        y[:, 0].transpose(0, 2, 1, 3).reshape(y.shape[0], alg.m, n_tiles * alg.m)
    )
    return partial, n_tiles


# -- cycle models ------------------------------------------------------------


def spatial_cycles(
    cfg: AcceleratorConfig,
    k_g: int,
    c: int,
    r: int,
    s: int,
    out_rows: int,
    out_w: int,
) -> int:
    """Cycles for one Spatial COMP instruction.

    One GEMV per cycle over the merged ``(PI*PT) x (PO*PT)`` array.  The
    reduction dimension is the flattened ``C x R x S`` (im2col order), so
    lane padding costs at most one step per output — plus the output
    channels rounded to whole ``PO*PT`` vectors.  These ceilings are the
    discretisation the analytical Eq. 6 ignores, one source of its
    estimation error.
    """
    red_steps = -(-(c * r * s) // cfg.spatial_input_lanes)
    oc_steps = -(-k_g // cfg.spatial_output_lanes)
    return red_steps * oc_steps * out_rows * out_w + PIPELINE_DEPTH


def winograd_cycles(cfg: AcceleratorConfig, k_g: int, c: int, n_tiles: int) -> int:
    """Cycles for one Winograd COMP instruction (one decomposition block,
    one tile row): each GEMM core performs ``ceil(C/PI) * ceil(K_g/PO)``
    GEMVs per tile."""
    ic_steps = -(-c // cfg.pi)
    oc_steps = -(-k_g // cfg.po)
    return ic_steps * oc_steps * n_tiles + PIPELINE_DEPTH

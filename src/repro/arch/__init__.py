"""Accelerator architecture model (Section 4 of the paper).

Components
----------
``AcceleratorConfig``
    The hardware-perspective design parameters: PI, PO, PT, data widths,
    buffer depths, instance count.
``layouts``
    The WINO / SPAT feature-map data layouts of Figure 5 and the
    reordering transforms implemented by the SAVE module.
``buffers``
    On-chip buffer models with the Table-1 partition factors.
``HandshakeFifo``
    Token FIFOs between producer/consumer module pairs (Section 4.1).
``pe``
    Functional model of the hybrid Spatial/Winograd PE: a PT x PT array
    of PI x PO GEMM cores (Section 4.2.2).
``ExternalMemoryModel``
    Byte-accurate DRAM image plus bandwidth/latency accounting.
"""

from repro.arch.params import AcceleratorConfig
from repro.arch.fifo import HandshakeFifo
from repro.arch.dram import ExternalMemoryModel, MemoryRegion
from repro.arch import layouts, buffers, pe

__all__ = [
    "AcceleratorConfig",
    "ExternalMemoryModel",
    "HandshakeFifo",
    "MemoryRegion",
    "buffers",
    "layouts",
    "pe",
]

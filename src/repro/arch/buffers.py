"""On-chip buffer models.

Two concerns live here:

* **Functional storage** — :class:`PingPongBuffer` holds the payloads the
  load managers deposit and the COMP/SAVE paths consume.  Capacity is
  checked in channel vectors so compiler sizing bugs fail loudly.
* **Bank geometry** — the Table-1 partition factors, used by the
  resource estimator (the bank counts are the terms of Eq. 4) and by the
  HLS emitter (ARRAY_PARTITION pragmas).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import SimulationError
from repro.arch.params import AcceleratorConfig


@dataclass
class BufferPayload:
    """What one ping-pong half currently holds.

    ``data`` is an arbitrary numpy payload (strip, weight group, ...)
    whose logical geometry is described by ``meta``; ``vecs`` is the
    occupancy in channel vectors used for the capacity check.
    """

    data: object
    vecs: int
    meta: dict


class PingPongBuffer:
    """A double-buffered on-chip memory.

    The accelerator allocates ping-pong buffers for input/output data so
    data access and computation overlap (Section 4.1).  ``halves`` is 2
    for all buffers in the generated design.
    """

    def __init__(self, name: str, capacity_vecs: int, halves: int = 2):
        if capacity_vecs <= 0:
            raise SimulationError(f"{name}: capacity must be positive")
        if halves <= 0:
            raise SimulationError(f"{name}: need at least one half")
        self.name = name
        self.capacity_vecs = capacity_vecs
        self.halves: List[Optional[BufferPayload]] = [None] * halves
        self.peak_vecs = 0

    def write(self, half: int, data, vecs: int, **meta) -> None:
        """Deposit a payload into ``half``."""
        self._check_half(half)
        if vecs < 0:
            raise SimulationError(f"{self.name}: negative occupancy")
        if vecs > self.capacity_vecs:
            raise SimulationError(
                f"{self.name}: payload of {vecs} vectors exceeds half "
                f"capacity {self.capacity_vecs}; the compiler mis-sized "
                "a group"
            )
        self.halves[half] = BufferPayload(data=data, vecs=vecs, meta=meta)
        self.peak_vecs = max(self.peak_vecs, vecs)

    def read(self, half: int) -> BufferPayload:
        """Fetch the payload of ``half`` (must have been written)."""
        self._check_half(half)
        payload = self.halves[half]
        if payload is None:
            raise SimulationError(
                f"{self.name}: read of half {half} before any write — "
                "handshake tokens out of order"
            )
        return payload

    def _check_half(self, half: int) -> None:
        if not 0 <= half < len(self.halves):
            raise SimulationError(
                f"{self.name}: half {half} outside 0..{len(self.halves) - 1}"
            )


# -- Table-1 partition factors ---------------------------------------------


@dataclass(frozen=True)
class BankGeometry:
    """Partition-factor product of one buffer in one mode."""

    buffer: str
    mode: str
    banks: int
    factors: dict


def input_buffer_banks(cfg: AcceleratorConfig, mode: str) -> BankGeometry:
    """In Buffer row of Table 1.

    Winograd: ``PI`` (channel) x ``PT`` (row) x ``PT`` (col).
    Spatial:  ``PI*PT`` (channel) x 1 x 1.
    """
    if mode == "wino":
        factors = {"in_channel": cfg.pi, "fmap_row": cfg.pt, "fmap_col": cfg.pt}
    elif mode == "spat":
        factors = {"in_channel": cfg.pi * cfg.pt, "fmap_row": 1, "fmap_col": 1}
    else:
        raise SimulationError(f"unknown mode {mode!r}")
    banks = 1
    for value in factors.values():
        banks *= value
    return BankGeometry("input", mode, banks, factors)


def weight_buffer_banks(cfg: AcceleratorConfig, mode: str) -> BankGeometry:
    """Weight Buffer row of Table 1 (same product in both modes)."""
    if mode == "wino":
        factors = {
            "in_channel": cfg.pi,
            "out_channel": cfg.po,
            "weight_row": cfg.pt,
            "weight_col": cfg.pt,
        }
    elif mode == "spat":
        factors = {
            "in_channel": cfg.pi * cfg.pt,
            "out_channel": cfg.po * cfg.pt,
            "weight_row": 1,
            "weight_col": 1,
        }
    else:
        raise SimulationError(f"unknown mode {mode!r}")
    banks = 1
    for value in factors.values():
        banks *= value
    return BankGeometry("weight", mode, banks, factors)


def output_buffer_banks(cfg: AcceleratorConfig, mode: str) -> BankGeometry:
    """Out Buffer row of Table 1.

    Winograd: ``PO`` (channel) x ``m`` (row) x ``m`` (col).
    Spatial:  ``PO*PT`` (channel) x 1 x 1.
    """
    if mode == "wino":
        factors = {"out_channel": cfg.po, "fmap_row": cfg.m, "fmap_col": cfg.m}
    elif mode == "spat":
        factors = {"out_channel": cfg.po * cfg.pt, "fmap_row": 1, "fmap_col": 1}
    else:
        raise SimulationError(f"unknown mode {mode!r}")
    banks = 1
    for value in factors.values():
        banks *= value
    return BankGeometry("output", mode, banks, factors)


def hybrid_bank_counts(cfg: AcceleratorConfig) -> dict:
    """Worst-case bank count per buffer across the two modes.

    A hybrid design must satisfy both modes' parallel access patterns,
    so each physical buffer is partitioned by the maximum factor — these
    are exactly the three terms inside Eq. 4.
    """
    return {
        "input": max(
            input_buffer_banks(cfg, "wino").banks,
            input_buffer_banks(cfg, "spat").banks,
        ),
        "weight": max(
            weight_buffer_banks(cfg, "wino").banks,
            weight_buffer_banks(cfg, "spat").banks,
        ),
        "output": max(
            output_buffer_banks(cfg, "wino").banks,
            output_buffer_banks(cfg, "spat").banks,
        ),
    }

"""Design-choice ablations.

Two studies backing the paper's qualitative claims in Sections 4.2.5
and 6.2:

* ``run_bandwidth_ablation`` — "Winograd CONV requires higher memory
  access bandwidth than the Spatial one ... in scenarios where the
  available memory bandwidth is limited, Spatial CONV may outperform
  Winograd": sweep the external bandwidth and find the mode crossover.
* ``run_dataflow_ablation`` — "IS prefers larger feature maps compared
  to WS": sweep the feature size and find the dataflow crossover.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Tuple

from repro.analysis.report import Table
from repro.arch.params import AcceleratorConfig
from repro.errors import ReproError
from repro.estimator import estimate_layer
from repro.experiments.common import EMBEDDED_BUFFERS
from repro.fpga.device import ExternalMemory, FpgaDevice
from repro.fpga import get_device
from repro.ir import zoo


@dataclass(frozen=True)
class BandwidthPoint:
    bandwidth_gbps: float
    wino_gops: float
    spat_gops: float

    @property
    def best_mode(self) -> str:
        return "wino" if self.wino_gops >= self.spat_gops else "spat"


def _with_bandwidth(device: FpgaDevice, gbps: float) -> FpgaDevice:
    return replace(device, memory=ExternalMemory(bandwidth_gbps=gbps))


def run_bandwidth_ablation(
    bandwidths: Tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0),
    channels: int = 256,
    feature: int = 28,
    kernel: int = 3,
) -> List[BandwidthPoint]:
    """Best-dataflow GOPS of each mode as bandwidth shrinks (PYNQ-class
    accelerator, one representative mid-network layer)."""
    base = get_device("pynq-z1")
    cfg = AcceleratorConfig(
        pi=4, po=4, pt=4, instances=1, frequency_mhz=100.0,
        input_buffer_vecs=EMBEDDED_BUFFERS[0],
        weight_buffer_vecs=EMBEDDED_BUFFERS[1],
        output_buffer_vecs=EMBEDDED_BUFFERS[2],
    )
    network = zoo.single_conv(
        channels, channels, feature, kernel, padding=kernel // 2
    )
    info = network.compute_layers()[0]
    points = []
    for gbps in bandwidths:
        device = _with_bandwidth(base, gbps)
        gops = {}
        for mode in ("wino", "spat"):
            best = None
            for dataflow in ("is", "ws"):
                try:
                    est = estimate_layer(cfg, device, info, mode, dataflow)
                except ReproError:
                    continue
                if best is None or est.latency < best:
                    best = est.latency
            gops[mode] = info.ops / best / 1e9 if best else 0.0
        points.append(
            BandwidthPoint(
                bandwidth_gbps=gbps,
                wino_gops=gops["wino"],
                spat_gops=gops["spat"],
            )
        )
    return points


@dataclass(frozen=True)
class DataflowPoint:
    feature: int
    is_latency_ms: float
    ws_latency_ms: float

    @property
    def best_dataflow(self) -> str:
        return "is" if self.is_latency_ms <= self.ws_latency_ms else "ws"


def run_dataflow_ablation(
    features: Tuple[int, ...] = (7, 14, 28, 56, 112),
    channels: int = 64,
    kernel: int = 3,
    device_name: str = "pynq-z1",
) -> List[DataflowPoint]:
    """IS vs WS latency of a Winograd layer as the feature map grows.

    With a weight buffer too small to hold all weight groups at once
    (GK > 1), IS re-loads weights per row group while WS re-loads inputs
    per weight group — so larger feature maps favour IS, matching
    Section 4.2.5.
    """
    device = get_device(device_name)
    cfg = AcceleratorConfig(
        pi=4, po=4, pt=4, instances=1,
        frequency_mhz=device.frequency_mhz,
        input_buffer_vecs=EMBEDDED_BUFFERS[0],
        weight_buffer_vecs=256,  # deliberately small: force GK > 1
        output_buffer_vecs=EMBEDDED_BUFFERS[2],
    )
    points = []
    for feature in features:
        network = zoo.single_conv(
            channels, channels, feature, kernel, padding=kernel // 2
        )
        info = network.compute_layers()[0]
        latencies = {}
        for dataflow in ("is", "ws"):
            est = estimate_layer(cfg, device, info, "wino", dataflow)
            latencies[dataflow] = est.latency
        points.append(
            DataflowPoint(
                feature=feature,
                is_latency_ms=latencies["is"] * 1e3,
                ws_latency_ms=latencies["ws"] * 1e3,
            )
        )
    return points


def format_bandwidth_ablation(points: List[BandwidthPoint]) -> str:
    table = Table(
        "Mode crossover vs external bandwidth "
        "(256ch 28x28 3x3 layer, PYNQ-class PE)",
        ["BW (GB/s)", "Wino GOPS", "Spat GOPS", "Best mode"],
    )
    for p in points:
        table.add_row(
            p.bandwidth_gbps, f"{p.wino_gops:.1f}", f"{p.spat_gops:.1f}",
            p.best_mode,
        )
    table.add_note(
        "paper (Sec. 6.2): Spatial may outperform Winograd when memory "
        "bandwidth is limited"
    )
    return table.render()


def format_dataflow_ablation(points: List[DataflowPoint]) -> str:
    table = Table(
        "Dataflow crossover vs feature size (Winograd, small weight "
        "buffer, GK > 1)",
        ["Feature", "IS (ms)", "WS (ms)", "Best dataflow"],
    )
    for p in points:
        table.add_row(
            p.feature, f"{p.is_latency_ms:.3f}", f"{p.ws_latency_ms:.3f}",
            p.best_dataflow,
        )
    table.add_note("paper (Sec. 4.2.5): IS prefers larger feature maps")
    return table.render()


def main() -> str:
    out1 = format_bandwidth_ablation(run_bandwidth_ablation())
    out2 = format_dataflow_ablation(run_dataflow_ablation())
    print(out1)
    print(out2)
    return out1 + "\n" + out2


if __name__ == "__main__":
    main()

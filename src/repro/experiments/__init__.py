"""Experiment drivers — one module per paper table/figure.

Each module exposes a ``run_*`` function returning structured rows and
a ``main()`` that prints the corresponding table; the ``benchmarks/``
directory wires them into pytest-benchmark.  The mapping from paper
artifact to module is the experiment index in DESIGN.md.
"""

from repro.experiments import common
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.figure6 import run_figure6
from repro.experiments.estimation_error import run_estimation_error
from repro.experiments.overhead import run_overhead
from repro.experiments.vgg16_case import run_vgg16_case
from repro.experiments.ablation import (
    run_bandwidth_ablation,
    run_dataflow_ablation,
)
from repro.experiments.scalability import run_scalability
from repro.experiments.roofline_study import run_roofline_study
from repro.experiments.instruction_stats import run_instruction_stats
from repro.experiments.scenario_study import (
    run_failure_study,
    run_slo_study,
)
from repro.experiments.chaos_study import (
    run_chaos_sweep,
    run_flash_outage_study,
    run_straggler_study,
)
from repro.experiments.autoscale_study import (
    run_burst_study,
    run_trace_study,
)
from repro.experiments.planning_study import run_fleet, run_study
from repro.experiments.tenants_study import (
    run_noisy_neighbour,
    run_tenant_flash_crowd,
)

__all__ = [
    "common",
    "run_burst_study",
    "run_fleet",
    "run_study",
    "run_chaos_sweep",
    "run_flash_outage_study",
    "run_straggler_study",
    "run_trace_study",
    "run_failure_study",
    "run_noisy_neighbour",
    "run_slo_study",
    "run_tenant_flash_crowd",
    "run_bandwidth_ablation",
    "run_dataflow_ablation",
    "run_estimation_error",
    "run_figure6",
    "run_instruction_stats",
    "run_overhead",
    "run_roofline_study",
    "run_scalability",
    "run_table3",
    "run_table4",
    "run_vgg16_case",
]

"""Autoscale study — elastic pools vs fixed pools on bursty traffic.

The paper sizes one accelerator for one workload; a serving system
pays for every provisioned shard whether traffic needs it or not.
This study puts the autoscaler's economics on the table — four pool
configurations against one p99 service objective:

* **fixed 1x** — the pool the quiet hours justify: cheapest
  shard-seconds, misses the target by a wide margin under bursts;
* **fixed Nx (peak)** — the pool the bursts justify: holds the target
  and is billed ``N x makespan`` shard-seconds around the clock;
* **autoscaled, p99-driven** — the controller watches the windowed
  p99 itself.  A breach is only observable once a completion already
  exceeds it, so the controller runs at ``CONTROL_HEADROOM`` of the
  objective (control to a tighter internal target, meet the external
  one) — the classic feedback-lag compensation;
* **autoscaled, utilisation-driven** — the controller watches the
  windowed busy fraction, which saturates *before* latencies blow up,
  so it reacts earlier, holds a lower tail and earns scale-downs back
  in the lulls — at slightly more shard-seconds than the p99 mode.

Two workloads: synthetic bursts at ``BURST_OVERLOAD``x a single
shard's simulated rate, and the checked-in
``benchmarks/data/trace_bursty.csv`` (six one-second bursts, then a
sparse tail) time-scaled so its mean rate is ``TRACE_RATE_FACTOR``x
one shard — the trace-driven workload path: any CSV/JSONL arrival log
replays the same way.  ``benchmarks/bench_serving.py`` asserts the
headline: both elastic pools meet the p99 target the single shard
misses, for measurably fewer shard-seconds than the peak-sized pool.

The model is the scaled VGG16 stack the other serving studies use, so
the study runs in seconds while keeping the paper's layer mix.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Tuple

from repro.analysis.report import Table
from repro.compiler import CompilerOptions
from repro.experiments.common import paper_config
from repro.ir import zoo
from repro.pipeline import EvaluationCache, PipelineSession
from repro.serving import (
    AutoscalerOptions,
    BatcherOptions,
    ServingReport,
    ShardPool,
    ShardServer,
    TraceSource,
    WorkloadSpec,
    load_trace,
    make_requests,
)

REQUESTS = 192
MAX_BATCH = 6
#: Wait budget ~2 per-image latencies, as in the other serving
#: studies: without it every spaced arrival dispatches alone and
#: occupies a full per-image latency on some shard, so even a sparse
#: tail reads as a busy pool and no scale-down is ever earned.
MAX_WAIT_S = 0.010
#: Arrival rate of the burst study in single-shard simulated rates:
#: well over one shard, comfortably under the peak pool.
BURST_OVERLOAD = 2.0
BURST_SIZE = 12
#: Elastic bounds; PEAK is also the fixed comparison pool.
MIN_SHARDS, PEAK_SHARDS = 1, 4
#: The service objective, in batch service times, per workload.  The
#: trace's bursts are denser than the synthetic ones, so its
#: achievable tail is higher.
BURST_TARGET_BATCHES = 9
TRACE_TARGET_BATCHES = 14
#: The p99-driven controller's internal target as a fraction of the
#: objective: a p99 breach is only visible after the fact, so the
#: controller aims tighter than the SLO it must meet.
CONTROL_HEADROOM = 2.0 / 3.0
#: The utilisation-driven controller's busy-fraction target.
TARGET_UTILISATION = 0.8
#: Modeled warm-up of a scaled-up shard, in batch service times.
WARMUP_BATCHES = 1
#: Mean trace-replay rate in single-shard simulated rates, and how
#: many times the trace loops: above 1.0, each pass's burst phase
#: deepens a backlog one shard can never repay (its tail queue grows
#: pass over pass), while the peak pool coasts — the regime where
#: elasticity pays.  Looping also exercises repeated scale-up /
#: scale-down cycles rather than a single ramp.
TRACE_RATE_FACTOR = 1.3
TRACE_LOOPS = 4
TRACE_PATH = (
    Path(__file__).resolve().parents[3]
    / "benchmarks" / "data" / "trace_bursty.csv"
)


def _session(cache: EvaluationCache) -> PipelineSession:
    cfg, device = paper_config("vu9p")
    return PipelineSession(
        zoo.vgg16(input_size=64, include_fc=False),
        device,
        cfg=cfg,
        compiler_options=CompilerOptions(quantize=True, pack_data=False),
        cache=cache,
    )


def make_pools(cache: EvaluationCache) -> Tuple[ShardPool, ShardPool]:
    """(fixed single, peak-sized pool) from one deployment."""
    session = _session(cache)
    single = ShardPool.replicate(session, 1)
    peak = ShardPool.replicate(session.clone(), PEAK_SHARDS)
    return single, peak


def batch_seconds(pool: ShardPool) -> float:
    """One ``MAX_BATCH`` service time — the study's control timescale."""
    return pool.shards[0].probe_service_seconds(MAX_BATCH)


def p99_options(pool: ShardPool, target_batches: int) -> AutoscalerOptions:
    """The p99-driven contract: controller target = headroom x SLO."""
    batch_s = batch_seconds(pool)
    return AutoscalerOptions(
        min_shards=MIN_SHARDS,
        max_shards=PEAK_SHARDS,
        target_p99_s=CONTROL_HEADROOM * target_batches * batch_s,
        warmup_s=WARMUP_BATCHES * batch_s,
        tick_s=0.5 * batch_s,
        cooldown_s=0.0,
        min_samples=2,
        window=16,
    )


def utilisation_options(pool: ShardPool) -> AutoscalerOptions:
    """The utilisation-driven contract."""
    batch_s = batch_seconds(pool)
    return AutoscalerOptions(
        min_shards=MIN_SHARDS,
        max_shards=PEAK_SHARDS,
        target_utilisation=TARGET_UTILISATION,
        warmup_s=WARMUP_BATCHES * batch_s,
        tick_s=batch_s,
        cooldown_s=0.0,
        # Several batch times wide: completion-sourced utilisation
        # cannot see the batch still executing, so a narrow window
        # caps the observable busy fraction below the target.
        utilisation_window_s=8.0 * batch_s,
    )


def _serve(
    pool: ShardPool,
    traffic,
    autoscale: Optional[AutoscalerOptions] = None,
) -> ServingReport:
    return ShardServer(pool).run(WorkloadSpec(
        traffic=traffic,
        policy="least-loaded",
        batcher=BatcherOptions(max_batch=MAX_BATCH, max_wait_s=MAX_WAIT_S),
        autoscale=autoscale,
    ))


def _rows(
    single: ShardPool, peak: ShardPool, traffic_of, target_batches: int
) -> List[Tuple[str, float, ServingReport]]:
    """The four study rows; ``traffic_of()`` supplies a fresh source."""
    target = target_batches * batch_seconds(peak)
    return [
        (f"fixed {MIN_SHARDS}x", target, _serve(single, traffic_of())),
        (
            f"fixed {PEAK_SHARDS}x (peak)",
            target,
            _serve(peak, traffic_of()),
        ),
        (
            f"auto {MIN_SHARDS}:{PEAK_SHARDS} p99-driven",
            target,
            _serve(
                peak, traffic_of(),
                autoscale=p99_options(peak, target_batches),
            ),
        ),
        (
            f"auto {MIN_SHARDS}:{PEAK_SHARDS} util-driven",
            target,
            _serve(
                peak, traffic_of(),
                autoscale=utilisation_options(peak),
            ),
        ),
    ]


def run_burst_study(
    seed: int = 2020,
) -> List[Tuple[str, float, ServingReport]]:
    """(pool label, p99 objective seconds, report) per configuration."""
    cache = EvaluationCache()
    single, peak = make_pools(cache)
    qps = BURST_OVERLOAD * single.simulated_images_per_second()
    return _rows(
        single, peak,
        lambda: make_requests(
            "burst", REQUESTS, qps=qps, seed=seed, burst=BURST_SIZE
        ),
        BURST_TARGET_BATCHES,
    )


def trace_source(pool: ShardPool) -> TraceSource:
    """The checked-in bursty trace, rate-matched to ``pool``'s single
    shard (``TRACE_RATE_FACTOR``x its simulated rate)."""
    arrivals = load_trace(TRACE_PATH)
    raw = TraceSource(arrivals, name=TRACE_PATH.name)
    desired = TRACE_RATE_FACTOR * (
        pool.shards[0].instances / pool.shards[0].probe_seconds()
    )
    scale = raw.mean_qps() / desired
    return TraceSource(
        arrivals, time_scale=scale, loop=TRACE_LOOPS,
        name=TRACE_PATH.name,
    )


def run_trace_study(
    seed: int = 2020,
) -> List[Tuple[str, float, ServingReport]]:
    """The same comparison on the replayed trace (seed unused — a
    trace is deterministic — kept for CLI symmetry)."""
    del seed
    cache = EvaluationCache()
    single, peak = make_pools(cache)
    return _rows(
        single, peak,
        lambda: trace_source(peak),
        TRACE_TARGET_BATCHES,
    )


def _add_rows(
    table: Table, rows: List[Tuple[str, float, ServingReport]]
) -> None:
    for label, target, report in rows:
        p99 = report.latency_percentile(99)
        table.add_row(
            label,
            f"{report.throughput_gops:.1f}",
            f"{p99 * 1e3:.2f}",
            "yes" if p99 <= target else "NO",
            f"{report.total_shard_seconds() * 1e3:.1f}",
            f"{report.scale_ups}/{report.scale_downs}",
        )


def format_study(
    burst: List[Tuple[str, float, ServingReport]],
    trace: List[Tuple[str, float, ServingReport]],
) -> str:
    headers = ["Pool", "GOPS", "p99 ms", "meets target",
               "shard-ms", "up/down"]
    table = Table(
        f"Autoscale study: burst traffic @ {BURST_OVERLOAD:.1f}x one "
        f"shard (VGG16-64 on vu9p, p99 objective "
        f"{burst[0][1] * 1e3:.1f} ms)",
        headers,
    )
    _add_rows(table, burst)
    peak, auto_p99 = burst[1][2], burst[2][2]
    table.add_note(
        "p99-driven pool: "
        f"{auto_p99.total_shard_seconds() * 1e3:.1f} shard-ms vs "
        f"{peak.total_shard_seconds() * 1e3:.1f} for the peak-sized "
        "pool "
        f"({auto_p99.total_shard_seconds() / peak.total_shard_seconds():.2f}"
        "x) while meeting the objective the single shard misses"
    )

    trace_table = Table(
        "Autoscale study: trace replay (benchmarks/data/"
        f"trace_bursty.csv @ {TRACE_RATE_FACTOR:.1f}x one shard, p99 "
        f"objective {trace[0][1] * 1e3:.1f} ms)",
        headers,
    )
    _add_rows(trace_table, trace)
    auto_util = trace[3][2]
    trace_table.add_note(
        f"util-driven pool: {auto_util.scale_ups} scale-up(s) in the "
        f"burst phase, {auto_util.scale_downs} scale-down(s) earned "
        "back in the sparse tail"
    )
    return table.render() + "\n\n" + trace_table.render()


def main(seed: int = 2020) -> str:
    output = format_study(run_burst_study(seed=seed),
                          run_trace_study(seed=seed))
    print(output)
    return output


if __name__ == "__main__":
    main()

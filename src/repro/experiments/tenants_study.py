"""Multi-tenant serving study: noisy neighbour + tenant flash crowd.

Two tenants share one pool: ``interactive`` (latency-sensitive, three
quarters of the weight, its own p99 target) and ``bulk`` (throughput
traffic at a flooding rate).  The study contrasts two postures:

* **blind** — round-robin over the shared queue with only a *global*
  p99 SLO: the bulk flood drags every window up, the controller sheds
  indiscriminately, and the interactive tenant misses its target
  anyway (the noisy-neighbour failure mode);
* **protected** — weighted-fair scheduling (the interactive tenant
  owns three of four shards), tier-segregated batching (interactive
  requests never wait out bulk batch assembly), a per-tenant p99
  window on the interactive tenant and an admission cap on bulk
  outstanding requests.

The flash-crowd variant warps only the *bulk* tenant's arrivals with a
Gaussian intensity spike, showing the same machinery riding out a
tenant-local surge.  CI runs this study and asserts the protected
posture keeps the interactive p99 within its SLO while the blind one
misses it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Tuple

from repro.analysis.report import Table
from repro.compiler import CompilerOptions
from repro.experiments.common import paper_config
from repro.ir import zoo
from repro.pipeline import EvaluationCache, PipelineSession
from repro.serving import (
    BatcherOptions,
    FlashCrowd,
    Request,
    ServingReport,
    ShardPool,
    ShardServer,
    SloOptions,
    TenantSet,
    TenantSpec,
    WorkloadSpec,
    make_requests,
    merge_streams,
    shape_arrivals,
)

SHARDS = 4
MAX_BATCH = 6
#: Wait budget ~2 per-image latencies, as in the other serving studies.
MAX_WAIT_S = 0.010
#: Interactive p99 target in fast-shard batch-times (plus the wait
#: budget the batcher may legitimately spend assembling a batch).
#: Two batch-times is generous for a tenant at a quarter of the pool
#: rate with three of four shards to itself, and hopeless behind a
#: 1.6x shared-queue flood — exactly the contrast the study pins.
TARGET_BATCHES = 2
#: Interactive tenant: a quarter of the pool's simulated rate — easy
#: traffic that only misses its SLO when the bulk flood interferes.
INTERACTIVE_LOAD = 0.25
INTERACTIVE_REQUESTS = 64
#: Bulk tenant: a sustained overload of the whole pool.
BULK_LOAD = 1.6
BULK_REQUESTS = 192
#: Admission cap on bulk outstanding requests in the protected
#: posture: the flood queues at the door instead of inside the pool.
BULK_CAP = 12
#: Flash crowd: a 3x Gaussian bump over the bulk stream.
FLASH_AMPLITUDE = 2.0


def _pool(cache: EvaluationCache) -> ShardPool:
    cfg, device = paper_config("vu9p")
    session = PipelineSession(
        zoo.vgg16(input_size=64, include_fc=False),
        device,
        cfg=cfg,
        compiler_options=CompilerOptions(quantize=True, pack_data=False),
        cache=cache,
    )
    return ShardPool.replicate(session, SHARDS)


def interactive_target_s(pool: ShardPool) -> float:
    """The interactive tenant's p99 objective on this pool."""
    batch_s = pool.shards[0].probe_service_seconds(MAX_BATCH)
    return TARGET_BATCHES * batch_s + MAX_WAIT_S


def _traffic(pool: ShardPool, seed: int, flash: bool) -> List[Request]:
    rate = pool.simulated_images_per_second()
    interactive = make_requests(
        "poisson", INTERACTIVE_REQUESTS, qps=INTERACTIVE_LOAD * rate,
        seed=seed, tenant="interactive",
    )
    bulk = make_requests(
        "poisson", BULK_REQUESTS, qps=BULK_LOAD * rate,
        seed=seed + 1, tenant="bulk",
    )
    if flash:
        arrivals = [request.arrival for request in bulk]
        span = arrivals[-1] if arrivals[-1] > 0 else 1.0
        warped = shape_arrivals(arrivals, [FlashCrowd(
            amplitude=FLASH_AMPLITUDE, at=0.4 * span, width_s=0.1 * span,
        )])
        bulk = [
            Request(index=request.index, arrival=arrival, tenant="bulk")
            for request, arrival in zip(bulk, warped)
        ]
    return merge_streams(interactive, bulk)


def _blind_spec(traffic, target: float) -> WorkloadSpec:
    """Round-robin + global SLO: tenants registered only for the
    per-tenant report breakdowns — same tier, no targets, no caps."""
    return WorkloadSpec(
        traffic=traffic,
        policy="round-robin",
        batcher=BatcherOptions(max_batch=MAX_BATCH, max_wait_s=MAX_WAIT_S),
        tenants=TenantSet([
            TenantSpec("interactive", weight=3.0),
            TenantSpec("bulk", weight=1.0),
        ]),
        slo=SloOptions(p99_target_s=target, action="shed",
                       window=16, min_samples=4),
    )


def _protected_spec(traffic, target: float) -> WorkloadSpec:
    """Weighted-fair + tier batching + per-tenant SLO + bulk cap."""
    return WorkloadSpec(
        traffic=traffic,
        policy="weighted-fair",
        batcher=BatcherOptions(max_batch=MAX_BATCH, max_wait_s=MAX_WAIT_S),
        tenants=TenantSet([
            TenantSpec("interactive", weight=3.0, p99_slo_s=target),
            TenantSpec("bulk", weight=1.0, tier="batch",
                       max_outstanding=BULK_CAP),
        ]),
    )


def run_noisy_neighbour(
    seed: int = 2020,
) -> Tuple[float, List[Tuple[str, ServingReport]]]:
    """(interactive target, [(posture, report)]) under a steady bulk
    flood."""
    cache = EvaluationCache()
    pool = _pool(cache)
    target = interactive_target_s(pool)
    traffic = _traffic(pool, seed, flash=False)
    rows = [
        ("blind", ShardServer(pool).run(_blind_spec(traffic, target))),
        ("protected",
         ShardServer(pool).run(_protected_spec(traffic, target))),
    ]
    return target, rows


def run_tenant_flash_crowd(
    seed: int = 2020,
) -> Tuple[float, List[Tuple[str, ServingReport]]]:
    """Same postures when the bulk tenant's arrivals spike 3x."""
    cache = EvaluationCache()
    pool = _pool(cache)
    target = interactive_target_s(pool)
    traffic = _traffic(pool, seed, flash=True)
    rows = [
        ("blind", ShardServer(pool).run(_blind_spec(traffic, target))),
        ("protected",
         ShardServer(pool).run(_protected_spec(traffic, target))),
    ]
    return target, rows


def _study_table(
    title: str, target: float, rows: List[Tuple[str, ServingReport]]
) -> Table:
    table = Table(
        title,
        ["Posture", "Tenant", "served", "shed", "admit-shed",
         "p99 ms", "target met"],
    )
    for posture, report in rows:
        for name, breakdown in sorted(report.per_tenant().items()):
            p99 = breakdown.p99_latency_s
            met = "-" if name != "interactive" else (
                "yes" if p99 == p99 and p99 <= target else "MISSED"
            )
            table.add_row(
                posture,
                name,
                f"{breakdown.count}",
                f"{breakdown.shed}",
                f"{breakdown.admission_shed}",
                f"{p99 * 1e3:.2f}" if p99 == p99 else "n/a",
                met,
            )
    table.add_note(
        f"interactive p99 target {target * 1e3:.2f} ms "
        f"({TARGET_BATCHES} batch-times + the {MAX_WAIT_S * 1e3:g} ms "
        "wait budget)"
    )
    return table


def format_study(
    target: float,
    noisy: List[Tuple[str, ServingReport]],
    flash: List[Tuple[str, ServingReport]],
) -> str:
    noisy_table = _study_table(
        f"Noisy neighbour: bulk at {BULK_LOAD:.1f}x pool rate vs "
        f"interactive at {INTERACTIVE_LOAD:.2f}x "
        f"(4x vu9p, weights 3:1, bulk cap {BULK_CAP})",
        target, noisy,
    )
    flash_table = _study_table(
        f"Tenant flash crowd: bulk arrivals spiked "
        f"x{1 + FLASH_AMPLITUDE:g} (same postures)",
        target, flash,
    )
    return noisy_table.render() + "\n\n" + flash_table.render()


def main(seed: int = 2020, report_json: Optional[str] = None) -> str:
    target, noisy = run_noisy_neighbour(seed=seed)
    _, flash = run_tenant_flash_crowd(seed=seed)
    output = format_study(target, noisy, flash)
    print(output)
    if report_json is not None:
        # The protected noisy-neighbour run is the tracked artifact: a
        # schema-2 ServingReport plus the study's target and the blind
        # posture's interactive p99, so CI can assert the contrast.
        blind = dict(noisy)["blind"]
        protected = dict(noisy)["protected"]
        blind_p99 = blind.per_tenant()["interactive"].p99_latency_s
        payload = {
            **protected.to_dict(),
            "interactive_p99_target_s": target,
            "blind_interactive_p99_s": (
                None if blind_p99 != blind_p99 else blind_p99
            ),
        }
        out = Path(report_json)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"report written to {out}")
    return output


if __name__ == "__main__":
    main()

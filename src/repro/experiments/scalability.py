"""Scalability across platforms (the abstract's flexibility claim).

"HybridDNN is flexible and scalable and can target both cloud and
embedded hardware platforms with vastly different resource
constraints."  This experiment runs the identical flow — same model,
same DSE, same compiler — across every catalog device and reports the
scaled-out design each one gets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.report import Table
from repro.estimator import estimate_power, estimate_resources
from repro.fpga import DEVICES
from repro.ir import zoo
from repro.pipeline import PipelineSession


@dataclass(frozen=True)
class ScalabilityRow:
    device: str
    pi: int
    po: int
    pt: int
    instances: int
    gops: float
    latency_ms: float
    dsp_utilisation: float
    power_w: float

    @property
    def energy_efficiency(self) -> float:
        return self.gops / self.power_w


def run_scalability(
    model: str = "vgg16",
    devices: Tuple[str, ...] = None,
) -> List[ScalabilityRow]:
    """DSE the same model across the catalog."""
    network = zoo.get_model(model)
    names = devices or tuple(sorted(DEVICES))
    rows = []
    for name in names:
        session = PipelineSession(network, name)
        device = session.device
        result = session.dse()
        resources = estimate_resources(
            result.cfg, device, session.calibration
        )
        power = estimate_power(resources, device)
        rows.append(
            ScalabilityRow(
                device=name,
                pi=result.cfg.pi,
                po=result.cfg.po,
                pt=result.cfg.pt,
                instances=result.cfg.instances,
                gops=result.throughput_gops,
                latency_ms=result.latency_ms,
                dsp_utilisation=resources.dsps / device.resources.dsps,
                power_w=power.total_w,
            )
        )
    return rows


def format_scalability(rows: List[ScalabilityRow], model: str) -> str:
    table = Table(
        f"Scalability: one flow, every platform ({model})",
        ["Device", "PI", "PO", "PT", "NI", "GOPS", "ms/img",
         "DSP util", "Power(W)", "GOPS/W"],
    )
    for row in sorted(rows, key=lambda r: -r.gops):
        table.add_row(
            row.device, row.pi, row.po, row.pt, row.instances,
            f"{row.gops:.1f}", f"{row.latency_ms:.2f}",
            f"{row.dsp_utilisation * 100:.0f}%",
            f"{row.power_w:.1f}", f"{row.energy_efficiency:.1f}",
        )
    table.add_note(
        "the paper demonstrates the two extremes (VU9P cloud, PYNQ-Z1 "
        "embedded); the same DSE covers the middle of the range"
    )
    return table.render()


def main(model: str = "vgg16") -> str:
    output = format_scalability(run_scalability(model), model)
    print(output)
    return output


if __name__ == "__main__":
    main()

"""Shared experiment plumbing.

``paper_config`` returns the exact VGG16 case-study configurations
(which the DSE also discovers on its own — checked by the vgg16_case
experiment); ``simulate_network`` compiles and runs a network on the
cycle-approximate simulator, returning the merged timing.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.arch.params import AcceleratorConfig
from repro.compiler import CompilerOptions, compile_network
from repro.errors import DeviceError
from repro.fpga import FpgaDevice, get_device
from repro.ir.graph import Network
from repro.mapping.strategy import NetworkMapping
from repro.runtime import HostRuntime, generate_parameters
from repro.sim.simulator import SimulationResult

#: Buffer presets (input, weight, output ping-pong halves, in vectors).
CLOUD_BUFFERS = (32768, 16384, 16384)
EMBEDDED_BUFFERS = (8192, 4096, 4096)


def paper_config(device_name: str) -> Tuple[AcceleratorConfig, FpgaDevice]:
    """The paper's Section-6.1 configuration for ``device_name``."""
    device = get_device(device_name)
    if device.name == "vu9p":
        cfg = AcceleratorConfig(
            pi=4, po=4, pt=6, instances=6, frequency_mhz=167.0,
            input_buffer_vecs=CLOUD_BUFFERS[0],
            weight_buffer_vecs=CLOUD_BUFFERS[1],
            output_buffer_vecs=CLOUD_BUFFERS[2],
        )
    elif device.name == "pynq-z1":
        cfg = AcceleratorConfig(
            pi=4, po=4, pt=4, instances=1, frequency_mhz=100.0,
            input_buffer_vecs=EMBEDDED_BUFFERS[0],
            weight_buffer_vecs=EMBEDDED_BUFFERS[1],
            output_buffer_vecs=EMBEDDED_BUFFERS[2],
        )
    else:
        raise DeviceError(
            f"no paper configuration for {device_name!r} "
            "(use repro.dse.run_dse for other devices)"
        )
    return cfg, device


def simulate_network(
    network: Network,
    cfg: AcceleratorConfig,
    device: FpgaDevice,
    mapping: NetworkMapping,
    functional: bool = False,
    params: Optional[dict] = None,
    seed: int = 2020,
) -> SimulationResult:
    """Compile ``network`` and run it through the simulator once."""
    if params is None:
        params = generate_parameters(network, seed=seed)
    options = CompilerOptions(quantize=True, pack_data=functional)
    compiled = compile_network(network, cfg, mapping, params, options)
    runtime = HostRuntime(compiled, device, functional=functional)
    image = np.zeros(network.input_shape.as_tuple())
    result = runtime.infer(image)
    if result.sim is None:
        raise RuntimeError("network produced no accelerator segments")
    return result.sim

"""Shared experiment plumbing.

``paper_config`` returns the exact VGG16 case-study configurations
(which the DSE also discovers on its own — checked by the vgg16_case
experiment); ``paper_session`` wraps one in a
:class:`~repro.pipeline.session.PipelineSession` pinned to that
configuration; ``simulate_network`` compiles and runs a network on the
cycle-approximate simulator, returning the merged timing.  All three
feed the same session facade, so every experiment shares the
calibration-resolved, cached evaluation pipeline.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.arch.params import AcceleratorConfig
from repro.compiler import CompilerOptions
from repro.errors import DeviceError
from repro.fpga import FpgaDevice, get_device
from repro.ir.graph import Network
from repro.mapping.strategy import NetworkMapping
from repro.pipeline import EvaluationCache, EvaluationStore, PipelineSession
from repro.sim.simulator import SimulationResult

#: Buffer presets (input, weight, output ping-pong halves, in vectors).
CLOUD_BUFFERS = (32768, 16384, 16384)
EMBEDDED_BUFFERS = (8192, 4096, 4096)


def paper_config(device_name: str) -> Tuple[AcceleratorConfig, FpgaDevice]:
    """The paper's Section-6.1 configuration for ``device_name``."""
    device = get_device(device_name)
    if device.name == "vu9p":
        cfg = AcceleratorConfig(
            pi=4, po=4, pt=6, instances=6, frequency_mhz=167.0,
            input_buffer_vecs=CLOUD_BUFFERS[0],
            weight_buffer_vecs=CLOUD_BUFFERS[1],
            output_buffer_vecs=CLOUD_BUFFERS[2],
        )
    elif device.name == "pynq-z1":
        cfg = AcceleratorConfig(
            pi=4, po=4, pt=4, instances=1, frequency_mhz=100.0,
            input_buffer_vecs=EMBEDDED_BUFFERS[0],
            weight_buffer_vecs=EMBEDDED_BUFFERS[1],
            output_buffer_vecs=EMBEDDED_BUFFERS[2],
        )
    else:
        raise DeviceError(
            f"no paper configuration for {device_name!r} "
            "(use repro.dse.run_dse for other devices)"
        )
    return cfg, device


def paper_session(
    device_name: str,
    network: Network,
    functional: bool = False,
    cache: Optional[EvaluationCache] = None,
    seed: int = 2020,
    store: Optional[EvaluationStore] = None,
) -> PipelineSession:
    """A session pinned to the paper's Section-6.1 configuration.

    ``functional`` selects whether compiled data images are materialised
    (matching :func:`simulate_network`'s compile options).  ``store``
    (an :class:`EvaluationStore` or cache-dir path) makes repeated
    experiment runs start warm; close the session to flush its delta.
    """
    cfg, device = paper_config(device_name)
    return PipelineSession(
        network,
        device,
        cfg=cfg,
        compiler_options=CompilerOptions(quantize=True, pack_data=functional),
        cache=cache,
        seed=seed,
        store=store,
    )


def simulate_network(
    network: Network,
    cfg: AcceleratorConfig,
    device: FpgaDevice,
    mapping: NetworkMapping,
    functional: bool = False,
    params: Optional[dict] = None,
    seed: int = 2020,
) -> SimulationResult:
    """Compile ``network`` and run it through the simulator once."""
    session = PipelineSession(
        network,
        device,
        cfg=cfg,
        mapping=mapping,
        compiler_options=CompilerOptions(quantize=True, pack_data=functional),
        params=params,
        seed=seed,
    )
    return session.simulate(functional=functional)

"""Planning study — a mixed fleet beats every homogeneous pool.

The paper's Table 4 sizes one accelerator per deployment; a serving
fleet gets to *mix* them.  This study points the two-tier capacity
planner (:mod:`repro.planning`) at a sustained Poisson workload that
slightly exceeds one cloud shard's throughput and asks three fleets to
meet the same p99 SLO:

* **mixed vu9p + pynq-z1** — the planner's full grid.  One VU9P shard
  carries the bulk; a handful of 1-instance PYNQ-Z1 shards top up the
  missing capacity at a sixth of a VU9P's billing weight each;
* **vu9p only** — the classic answer: the workload overflows one
  shard, so provision two.  Meets the SLO easily and bills the whole
  second shard for a ~15% capacity top-up;
* **pynq-z1 only** — the embedded device alone would need ~26 shards;
  within any sane range the planner *proves* infeasibility (the
  capacity-backlog bound) before replaying anything.

Every number in the table is Tier B truth: the winning plans are
replayed through the event kernel, not estimated.
``benchmarks/bench_capacity_plan.py`` asserts the headline — the
mixed winner meets the SLO at strictly lower billed shard-seconds
than the best homogeneous pool.

The workload (rate, SLO, grid ranges) is shared with the benchmark
via the module constants below; ``tiny_cnn`` keeps a full study run
in the low seconds.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.report import Table
from repro.errors import PlanningError
from repro.planning import PlanOptions, ProvisioningPlan, plan_capacity

MODEL = "tiny_cnn"
#: Poisson arrivals at ~1.16x one VU9P shard's simulated throughput:
#: one cloud shard provably cannot hold the tail, two are ~42% idle.
RATE = 1_050_000.0
REQUESTS = 2048
#: The SLO every fleet must meet.  Loose enough that a full batch on
#: the PYNQ-Z1 (6 x 24 us service rounds) still fits, tight enough
#: that one overloaded VU9P provably cannot (its backlog bound alone
#: exceeds 300 us).
SLO_P99_S = 200e-6
TOP_K = 6
#: One batch option per kind's instance count, plus 1 and 2x the max.
BATCH_OPTIONS = (1, 6, 12)
#: The three fleets under comparison.
FLEETS = {
    "mixed": "vu9p:0..2+pynq-z1:0..6",
    "vu9p only": "vu9p:0..3",
    "pynq-z1 only": "pynq-z1:0..8",
}


def run_fleet(
    devices: str, seed: int = 2020, executor: str = "serial",
    jobs: int = 1,
) -> Optional[ProvisioningPlan]:
    """Plan one fleet; ``None`` when the planner proves the whole grid
    infeasible (the pynq-only case)."""
    options = PlanOptions(
        slo_p99_s=SLO_P99_S,
        rate=RATE,
        requests=REQUESTS,
        top_k=TOP_K,
        batch_options=BATCH_OPTIONS,
        seed=seed,
        executor=executor,
        jobs=jobs,
    )
    try:
        return plan_capacity(MODEL, devices, options)
    except PlanningError as exc:
        if "provably infeasible" not in str(exc):
            raise
        return None


def run_study(
    seed: int = 2020, executor: str = "serial", jobs: int = 1,
) -> Dict[str, Optional[ProvisioningPlan]]:
    return {
        name: run_fleet(devices, seed=seed, executor=executor, jobs=jobs)
        for name, devices in FLEETS.items()
    }


def main(seed: int = 2020) -> Dict[str, Optional[ProvisioningPlan]]:
    plans = run_study(seed=seed)
    table = Table(
        f"Planning study: {MODEL} @ {RATE:,.0f} req/s Poisson, "
        f"p99 SLO {SLO_P99_S * 1e6:.0f} us (seed {seed})",
        ["fleet", "winner", "batch", "replayed p99 (us)",
         "billed shard-ms", "SLO"],
    )
    for name, plan in plans.items():
        if plan is None:
            table.add_row(
                name, "— (provably infeasible)", "—", "—", "—", "MISS"
            )
            continue
        winner = plan.winner
        mix = " + ".join(
            f"{count}x{kind}"
            for kind, count in winner["counts"].items()
            if count
        )
        replay = winner["replay"]
        table.add_row(
            name,
            mix,
            winner["max_batch"],
            f"{replay['p99_latency_s'] * 1e6:.1f}",
            f"{replay['billed_shard_seconds'] * 1e3:.2f}",
            "ok" if replay["slo_ok"] else "MISS",
        )
    mixed = plans["mixed"]
    homogeneous = [
        plan for name, plan in plans.items()
        if name != "mixed" and plan is not None and plan.slo_met
    ]
    if mixed is not None and mixed.slo_met and homogeneous:
        best = min(
            plan.winner["replay"]["billed_shard_seconds"]
            for plan in homogeneous
        )
        ours = mixed.winner["replay"]["billed_shard_seconds"]
        table.add_note(
            f"mixed fleet bills {ours * 1e3:.2f} shard-ms vs "
            f"{best * 1e3:.2f} for the best homogeneous pool "
            f"({(1 - ours / best) * 100:.0f}% cheaper at the same SLO)"
        )
        table.add_note(
            f"tier A scored {mixed.plan_count} plans at "
            f"{mixed.plans_per_second:,.0f} plans/s; tier B replayed "
            f"{len(mixed.finalists)} finalists"
        )
    print(table.render())
    return plans


if __name__ == "__main__":
    main()

"""Figure 6 — per-layer performance of Winograd vs Spatial mode,
estimated vs real, on VU9P (60 CONV layers) and PYNQ-Z1 (40 layers).

The sweep mirrors the figure's structure: for each kernel size in
{1x1, 3x3, 5x5, 7x7} a series of layers with shrinking feature maps and
growing channel counts (the VGG-like progression the overlay curves in
the figure show).  For every layer we report four values: Winograd
Esti./Real and Spatial Esti./Real, in per-instance GOPS.

The expected shapes (Section 6.2): Spatial is stable and near peak;
Winograd is higher but fluctuates, dipping where the higher bandwidth
demand hits the memory bound; estimates track reality within a few
percent except at those memory-bound points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.report import Table
from repro.errors import ReproError
from repro.estimator.calibration import get_calibration
from repro.experiments.common import paper_config, simulate_network
from repro.ir import zoo
from repro.mapping.strategy import LayerMapping, NetworkMapping
from repro.pipeline import EvaluationCache

#: (feature size, channels) progressions of the sweep.  15 points for
#: the cloud device (x4 kernels = 60 layers), 10 for the embedded one
#: (= 40 layers), spanning the VGG16-like range of the figure.
CLOUD_SERIES: Tuple[Tuple[int, int], ...] = (
    (224, 32), (224, 64), (112, 64), (112, 128), (56, 128),
    (56, 256), (56, 512), (28, 256), (28, 512), (28, 1024),
    (14, 256), (14, 512), (14, 1024), (7, 512), (7, 1024),
)
EMBEDDED_SERIES: Tuple[Tuple[int, int], ...] = (
    (112, 32), (112, 64), (56, 64), (56, 128), (28, 128),
    (28, 256), (14, 256), (14, 512), (7, 256), (7, 512),
)
KERNELS = (1, 3, 5, 7)


@dataclass(frozen=True)
class Figure6Point:
    """One layer of the sweep with its four performance numbers."""

    index: int
    kernel: int
    feature: int
    channels: int
    wino_esti_gops: float
    wino_real_gops: float
    spat_esti_gops: float
    spat_real_gops: float

    @property
    def wino_error(self) -> float:
        return abs(self.wino_esti_gops - self.wino_real_gops) / self.wino_real_gops

    @property
    def spat_error(self) -> float:
        return abs(self.spat_esti_gops - self.spat_real_gops) / self.spat_real_gops


def _layer_perf(
    cfg, device, network, mode: str, cal, cache: EvaluationCache
) -> Tuple[float, float]:
    """(esti, real) per-instance GOPS for one single-conv network.

    ``cal`` and ``cache`` are resolved once per sweep: the calibration
    lookup happens a single time and the (mode, dataflow) estimates of
    repeated sweep shapes are memoized.
    """
    info = network.compute_layers()[0]
    best: Optional[Tuple[float, str]] = None
    for dataflow in ("is", "ws"):
        try:
            est = cache.estimate(cfg, device, info, mode, dataflow, cal)
        except ReproError:
            continue
        if best is None or est.latency < best[0]:
            best = (est.latency, dataflow)
    if best is None:
        raise ReproError(f"no feasible dataflow for {mode}")
    esti_latency, dataflow = best
    mapping = NetworkMapping(
        network.name, [LayerMapping(info.layer.name, mode, dataflow)]
    )
    sim = simulate_network(network, cfg, device, mapping, functional=False)
    esti_gops = info.ops / esti_latency / 1e9
    real_gops = info.ops / sim.seconds / 1e9
    return esti_gops, real_gops


def run_figure6(
    device_name: str = "vu9p",
    series: Optional[Tuple[Tuple[int, int], ...]] = None,
    kernels: Tuple[int, ...] = KERNELS,
) -> List[Figure6Point]:
    """Run the sweep for one device; returns one point per layer."""
    cfg, device = paper_config(device_name)
    cal = get_calibration(device.name)
    cache = EvaluationCache()
    if series is None:
        series = CLOUD_SERIES if device.name == "vu9p" else EMBEDDED_SERIES
    points = []
    index = 0
    for kernel in kernels:
        for feature, channels in series:
            network = zoo.single_conv(
                channels, channels, feature, kernel, padding=kernel // 2,
                name=f"sweep_k{kernel}_f{feature}_c{channels}",
            )
            wino_e, wino_r = _layer_perf(cfg, device, network, "wino",
                                         cal, cache)
            spat_e, spat_r = _layer_perf(cfg, device, network, "spat",
                                         cal, cache)
            points.append(
                Figure6Point(
                    index=index,
                    kernel=kernel,
                    feature=feature,
                    channels=channels,
                    wino_esti_gops=wino_e,
                    wino_real_gops=wino_r,
                    spat_esti_gops=spat_e,
                    spat_real_gops=spat_r,
                )
            )
            index += 1
    return points


def format_figure6(device_name: str, points: List[Figure6Point]) -> str:
    table = Table(
        f"Figure 6 ({device_name}): per-layer GOPS, "
        "Winograd/Spatial x Esti./Real",
        ["#", "k", "feat", "chan", "WinoEsti", "WinoReal",
         "SpatEsti", "SpatReal", "Wino/Spat"],
    )
    for p in points:
        table.add_row(
            p.index, f"{p.kernel}x{p.kernel}", p.feature, p.channels,
            f"{p.wino_esti_gops:.1f}", f"{p.wino_real_gops:.1f}",
            f"{p.spat_esti_gops:.1f}", f"{p.spat_real_gops:.1f}",
            f"{p.wino_real_gops / p.spat_real_gops:.2f}x",
        )
    wino_wins = sum(1 for p in points if p.wino_real_gops > p.spat_real_gops)
    table.add_note(
        f"Winograd wins {wino_wins}/{len(points)} layers (paper: Winograd "
        "higher except at memory-bound points)"
    )
    return table.render()


def main(device_name: str = "vu9p") -> str:
    output = format_figure6(device_name, run_figure6(device_name))
    print(output)
    return output


if __name__ == "__main__":
    main("vu9p")
    main("pynq-z1")

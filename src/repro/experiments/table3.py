"""Table 3 — resource utilisation of the VU9P and PYNQ-Z1 designs.

Regenerates the LUT / DSP / BRAM rows (absolute counts and utilisation
percentages) from the calibrated Eq. 3-5 models, next to the paper's
reported numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.report import Table
from repro.estimator import estimate_resources
from repro.experiments.common import paper_config
from repro.fpga.resources import ResourceBudget

#: Paper Table 3, verbatim.
PAPER_TABLE3 = {
    "vu9p": ResourceBudget(luts=706_353, dsps=5_163, brams=3_169),
    "pynq-z1": ResourceBudget(luts=37_034, dsps=220, brams=277),
}


@dataclass(frozen=True)
class Table3Row:
    device: str
    ours: ResourceBudget
    paper: ResourceBudget
    capacity: ResourceBudget

    def utilisation(self, kind: str) -> float:
        return getattr(self.ours, kind) / getattr(self.capacity, kind)

    def paper_utilisation(self, kind: str) -> float:
        return getattr(self.paper, kind) / getattr(self.capacity, kind)


def run_table3() -> List[Table3Row]:
    """Compute both devices' utilisation rows."""
    rows = []
    for name in ("vu9p", "pynq-z1"):
        cfg, device = paper_config(name)
        ours = estimate_resources(cfg, device)
        rows.append(
            Table3Row(
                device=name,
                ours=ours,
                paper=PAPER_TABLE3[name],
                capacity=device.resources,
            )
        )
    return rows


def format_table3(rows: List[Table3Row]) -> str:
    table = Table(
        "Table 3: Resource Utilization of VU9P and PYNQ-Z1",
        ["Device", "Resource", "Ours", "Ours %", "Paper", "Paper %"],
    )
    for row in rows:
        for kind, label in (
            ("luts", "LUTs"),
            ("dsps", "DSPs"),
            ("brams", "18Kb BRAMs"),
        ):
            table.add_row(
                row.device,
                label,
                getattr(row.ours, kind),
                f"{row.utilisation(kind) * 100:.2f}%",
                getattr(row.paper, kind),
                f"{row.paper_utilisation(kind) * 100:.2f}%",
            )
    table.add_note(
        "Ours = calibrated Eq. 3-5 models (repro.estimator.resources)."
    )
    return table.render()


def main() -> str:
    output = format_table3(run_table3())
    print(output)
    return output


if __name__ == "__main__":
    main()

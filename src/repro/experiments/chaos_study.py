"""Chaos study — the scenario algebra exercised end to end.

Three studies beyond :mod:`~repro.experiments.scenario_study`'s
kill/restore pair, all on the event kernel:

* **straggler vs policy** — a 2x VU9P pool where ``shard0`` runs 8x
  slow for the middle half of a saturating Poisson stream.  Unlike a
  kill, a degraded shard still *accepts* work, so blind round-robin
  keeps feeding it and the tail stretches by the slowdown factor;
  shortest-latency sees the scaled probe times and routes around the
  straggler.
* **flash crowd + correlated outage** — a Gaussian flash crowd warped
  onto the arrivals of a 3-shard pool while a correlated outage takes
  two shards down across the peak.  The survivor absorbs what it can;
  everything stays accounted (served + shed + unserved = issued).
* **chaos sweep** — a 12-cell scenario x policy x pool grid through
  :func:`~repro.serving.sweep.run_sweep`, the per-scenario
  SLO-attainment/survival table CI trends via ``BENCH_serving.json``.

The model is the scaled VGG16 stack the serving studies use, so the
study runs in seconds while keeping the paper's layer mix.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis.report import Table
from repro.compiler import CompilerOptions
from repro.experiments.common import paper_config
from repro.ir import zoo
from repro.pipeline import EvaluationCache, PipelineSession
from repro.serving import (
    BatcherOptions,
    ChaosScenario,
    Degrade,
    FlashCrowd,
    Outage,
    Request,
    ServingReport,
    ShardPool,
    ShardServer,
    SweepGrid,
    SweepOptions,
    SweepReport,
    WorkloadSpec,
    make_requests,
    run_sweep,
    shape_arrivals,
)

REQUESTS = 64
MAX_BATCH = 6
#: Wait budget ~2 per-image latencies, as in the serving study: spaced
#: open-loop arrivals need it to form batches at all.
MAX_WAIT_S = 0.010
POLICIES = ("round-robin", "least-loaded", "shortest-latency")
#: Straggler slowdown: large enough that routing around it is visibly
#: better than feeding it, small enough that it still finishes work.
DEGRADE_FACTOR = 8.0
#: Overload factor against the *simulated* service rate (the
#: analytical rate can be off by the estimation error).
LOAD = 1.2
#: Degrade shard0 across the middle half of the baseline makespan —
#: the stream is still arriving, so policy rebalancing is visible.
DEGRADE_WINDOW = (0.25, 0.75)
SWEEP_REQUESTS = 32
SWEEP_LOAD = 1.5


def _session(cache: EvaluationCache) -> PipelineSession:
    cfg, device = paper_config("vu9p")
    return PipelineSession(
        zoo.vgg16(input_size=64, include_fc=False),
        device,
        cfg=cfg,
        compiler_options=CompilerOptions(quantize=True, pack_data=False),
        cache=cache,
    )


def _serve(
    pool: ShardPool,
    policy: str,
    qps: float,
    seed: int,
    scenario: Optional[ChaosScenario] = None,
    shapes: Sequence = (),
) -> ServingReport:
    requests = make_requests("poisson", REQUESTS, qps=qps, seed=seed)
    if shapes:
        arrivals = shape_arrivals(
            [request.arrival for request in requests], shapes
        )
        requests = [
            Request(index=request.index, arrival=arrival)
            for request, arrival in zip(requests, arrivals)
        ]
    return ShardServer(pool).run(WorkloadSpec(
        traffic=requests,
        policy=policy,
        batcher=BatcherOptions(max_batch=MAX_BATCH, max_wait_s=MAX_WAIT_S),
        scenario=scenario,
    ))


def run_straggler_study(
    seed: int = 2020,
) -> List[Tuple[str, ServingReport, ServingReport]]:
    """Per policy: (baseline report, degraded-shard report)."""
    cache = EvaluationCache()
    pool = ShardPool.replicate(_session(cache), 2)
    qps = LOAD * pool.simulated_images_per_second()
    rows = []
    for policy in POLICIES:
        baseline = _serve(pool, policy, qps, seed)
        span = baseline.makespan_seconds
        scenario = ChaosScenario([
            Degrade("shard0", factor=DEGRADE_FACTOR,
                    at=DEGRADE_WINDOW[0] * span,
                    until=DEGRADE_WINDOW[1] * span),
        ])
        degraded = _serve(pool, policy, qps, seed, scenario=scenario)
        rows.append((policy, baseline, degraded))
    return rows


def run_flash_outage_study(
    seed: int = 2020,
) -> List[Tuple[str, ServingReport]]:
    """A 3-shard pool under least-loaded: baseline, + flash crowd,
    + a correlated 2-shard outage across the flash peak."""
    cache = EvaluationCache()
    pool = ShardPool.replicate(_session(cache), 3)
    qps = LOAD * pool.simulated_images_per_second()
    baseline = _serve(pool, "least-loaded", qps, seed)
    span = baseline.makespan_seconds
    flash = FlashCrowd(amplitude=3.0, at=0.5 * span, width_s=0.05 * span)
    shaped = _serve(pool, "least-loaded", qps, seed, shapes=(flash,))
    outage = ChaosScenario([
        Outage(("shard0", "shard1"), at=0.45 * span, until=0.70 * span),
    ])
    squeezed = _serve(pool, "least-loaded", qps, seed,
                      scenario=outage, shapes=(flash,))
    return [
        ("baseline", baseline),
        ("flash crowd", shaped),
        ("flash + outage", squeezed),
    ]


def run_chaos_sweep(seed: int = 2020) -> SweepReport:
    """A 12-cell grid (3 scenarios x 2 policies x 2 pools), serially.

    Scenario times are fractions of the expected stream span — the
    grid wants absolute virtual seconds, and the open-loop span is
    ``requests / qps`` by construction.
    """
    cache = EvaluationCache()
    session = _session(cache)
    pool = ShardPool.replicate(session, 2)
    span = SWEEP_REQUESTS / (
        SWEEP_LOAD * pool.simulated_images_per_second()
    )
    grid = SweepGrid(
        scenarios=(
            "none",
            f"degrade:shard0@{0.2 * span:.6f}..{0.7 * span:.6f}"
            f"x{DEGRADE_FACTOR:g}",
            f"kill:shard0@{0.25 * span:.6f},restore@{0.6 * span:.6f}",
        ),
        policies=("round-robin", "shortest-latency"),
        pool_sizes=(2, 3),
    )
    options = SweepOptions(requests=SWEEP_REQUESTS, load_factor=SWEEP_LOAD)
    return run_sweep(session, grid, options, seed=seed)


def format_study(
    stragglers: List[Tuple[str, ServingReport, ServingReport]],
    flash_rows: List[Tuple[str, ServingReport]],
    sweep: SweepReport,
) -> str:
    table = Table(
        f"Straggler: shard0 x{DEGRADE_FACTOR:g} slow across the middle "
        f"half (VGG16-64, 2x vu9p, Poisson @ {LOAD:.1f}x simulated "
        f"rate)",
        ["Policy", "GOPS", "GOPS (slow)", "stretch", "p99 ms",
         "p99 ms (slow)", "straggler share"],
    )
    for policy, baseline, degraded in stragglers:
        share = degraded.per_shard()["shard0"]
        table.add_row(
            policy,
            f"{baseline.throughput_gops:.1f}",
            f"{degraded.throughput_gops:.1f}",
            f"{degraded.makespan_seconds / baseline.makespan_seconds:.2f}x",
            f"{baseline.latency_percentile(99) * 1e3:.2f}",
            f"{degraded.latency_percentile(99) * 1e3:.2f}",
            f"{share.requests}/{degraded.count}",
        )
    served_all = all(
        degraded.count == REQUESTS for _, _, degraded in stragglers
    )
    table.add_note(
        "a degraded shard still serves — "
        + ("no request lost" if served_all else "REQUESTS LOST")
        + "; latency-aware policies route around it"
    )

    flash_table = Table(
        "Flash crowd + correlated outage (VGG16-64, 3x vu9p, "
        "least-loaded)",
        ["Condition", "served", "shed", "unserved", "p99 ms", "GOPS"],
    )
    for label, report in flash_rows:
        flash_table.add_row(
            label,
            f"{report.count}",
            f"{report.shed}",
            f"{report.unserved}",
            f"{report.latency_percentile(99) * 1e3:.2f}",
            f"{report.throughput_gops:.1f}",
        )
    accounted = all(
        report.count + report.shed + report.unserved == REQUESTS
        for _, report in flash_rows
    )
    flash_table.add_note(
        "served + shed + unserved == issued: "
        + ("holds for every condition" if accounted else "VIOLATED")
    )

    return (
        table.render() + "\n\n" + flash_table.render() + "\n\n"
        + sweep.describe()
    )


def main(seed: int = 2020) -> str:
    output = format_study(
        run_straggler_study(seed=seed),
        run_flash_outage_study(seed=seed),
        run_chaos_sweep(seed=seed),
    )
    print(output)
    return output


if __name__ == "__main__":
    main()

"""Serving study — policies x shard counts beyond the paper's Table 4.

The paper stops at one box: NI identical instances on one FPGA, batch
throughput measured by makespan.  This study opens the serving
scenario space the north star asks for:

* **replica scaling** — 1/2/4 identical VU9P shards under saturating
  Poisson traffic: aggregate GOPS should scale near-linearly (each
  shard is its own device, so no bandwidth sharing across shards);
* **policy comparison on a heterogeneous pool** — a cloud VU9P shard
  next to an embedded PYNQ-Z1 shard.  Blind round-robin halves the
  pool's throughput potential (every other batch waits on the slow
  shard); ``shortest-latency`` (Eq. 12-15 expected completion) routes
  traffic in the ratio of the shards' estimated speeds.

The model is the scaled VGG16 stack the ``batch_throughput`` example
uses, so the study runs in seconds while keeping the paper's layer mix.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.analysis.report import Table
from repro.compiler import CompilerOptions
from repro.experiments.common import paper_config
from repro.ir import zoo
from repro.pipeline import EvaluationCache, PipelineSession
from repro.serving import (
    BatcherOptions,
    ShardPool,
    ShardServer,
    ServingReport,
    WorkloadSpec,
    make_requests,
)

REQUESTS = 48
#: Batch budget = the VU9P instance count: a full batch occupies every
#: instance of one cloud shard (a batch of 1 would leave 5 of 6 idle —
#: dynamic batching is what unlocks intra-shard batch parallelism).
MAX_BATCH = 6
#: Wait budget ~2 per-image latencies: at 2x-capacity arrival rates the
#: size trigger fires first, so this only pads the tail batches.
MAX_WAIT_S = 0.010


def _network():
    return zoo.vgg16(input_size=64, include_fc=False)


def _session(device_name: str, cache: EvaluationCache) -> PipelineSession:
    cfg, device = paper_config(device_name)
    return PipelineSession(
        _network(),
        device,
        cfg=cfg,
        compiler_options=CompilerOptions(quantize=True, pack_data=False),
        cache=cache,
    )


def _serve(pool: ShardPool, policy: str, qps: float,
           seed: int = 2020) -> ServingReport:
    requests = make_requests("poisson", REQUESTS, qps=qps, seed=seed)
    return ShardServer(pool).run(WorkloadSpec(
        traffic=requests,
        policy=policy,
        batcher=BatcherOptions(max_batch=MAX_BATCH, max_wait_s=MAX_WAIT_S),
    ))


def run_replica_scaling(seed: int = 2020
                        ) -> List[Tuple[int, str, ServingReport]]:
    """1 / 2 / 4 identical VU9P shards under saturating Poisson."""
    cache = EvaluationCache()
    session = _session("vu9p", cache)
    rows = []
    for shards in (1, 2, 4):
        pool = ShardPool.replicate(
            session if shards == 1 else session.clone(), shards
        )
        qps = 2.0 * pool.capacity_images_per_second()
        rows.append((shards, "least-loaded",
                     _serve(pool, "least-loaded", qps, seed=seed)))
    return rows


def run_heterogeneous(seed: int = 2020) -> List[Tuple[str, ServingReport]]:
    """VU9P + PYNQ-Z1 pool: round-robin vs shortest-latency.

    One pool serves both policies — ``ShardServer.serve`` resets the
    timelines and the policy state per run, so the deployments and
    timing probes are paid once.
    """
    cache = EvaluationCache()
    pool = ShardPool.of(
        _session("vu9p", cache), _session("pynq-z1", cache),
        names=("vu9p", "pynq-z1"),
    )
    qps = 2.0 * pool.capacity_images_per_second()
    return [
        (policy, _serve(pool, policy, qps, seed=seed))
        for policy in ("round-robin", "shortest-latency")
    ]


def format_study(
    scaling: List[Tuple[int, str, ServingReport]],
    hetero: List[Tuple[str, ServingReport]],
) -> str:
    table = Table(
        "Serving study: shards x policies (VGG16-64, Poisson @ 2x "
        "capacity)",
        ["Pool", "Policy", "GOPS", "img/s", "p50 ms", "p99 ms",
         "mean batch"],
    )

    def add(pool_name: str, policy: str, report: ServingReport) -> None:
        table.add_row(
            pool_name,
            policy,
            f"{report.throughput_gops:.1f}",
            f"{report.images_per_second:.1f}",
            f"{report.latency_percentile(50) * 1e3:.2f}",
            f"{report.latency_percentile(99) * 1e3:.2f}",
            f"{report.mean_batch_size:.1f}",
        )

    for shards, policy, report in scaling:
        add(f"{shards}x vu9p", policy, report)
    for policy, report in hetero:
        add("vu9p + pynq-z1", policy, report)
    one = next(r for s, _, r in scaling if s == 1)
    two = next(r for s, _, r in scaling if s == 2)
    table.add_note(
        f"2-shard scaling: {two.throughput_gops / one.throughput_gops:.2f}x "
        "aggregate GOPS over 1 shard"
    )
    rr = next(r for p, r in hetero if p == "round-robin")
    sl = next(r for p, r in hetero if p == "shortest-latency")
    table.add_note(
        "heterogeneous pool: shortest-latency serves "
        f"{sl.images_per_second / rr.images_per_second:.2f}x the "
        "round-robin rate by loading the shards per Eq. 12-15"
    )
    return table.render()


def main(seed: int = 2020) -> str:
    output = format_study(run_replica_scaling(seed=seed),
                          run_heterogeneous(seed=seed))
    print(output)
    return output


if __name__ == "__main__":
    main()

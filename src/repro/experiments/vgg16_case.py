"""Section 6.1 — the VGG16 case study.

Checks that the full DSE independently recovers the paper's design
points:

* VU9P: six instances of PI=4, PO=4, PT=6 (two per die, three dies);
* PYNQ-Z1: one instance of PI=4, PO=4, PT=4;
* all 13 CONV layers of VGG16 mapped to Winograd mode ("the DSE selects
  all CONV layers of VGG16 to be implemented in Winograd mode due to
  the sufficient memory bandwidth").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.report import Table
from repro.dse import DseResult
from repro.dse.space import DseOptions
from repro.estimator.resources import instances_per_die
from repro.fpga import get_device
from repro.ir import zoo
from repro.pipeline import PipelineSession

#: The paper's selected configurations.
PAPER_CHOICE = {
    "vu9p": {"pi": 4, "po": 4, "pt": 6, "instances": 6},
    "pynq-z1": {"pi": 4, "po": 4, "pt": 4, "instances": 1},
}


@dataclass(frozen=True)
class CaseStudyRow:
    device: str
    result: DseResult
    per_die: int
    conv_wino_layers: int
    conv_layers: int

    @property
    def matches_paper(self) -> bool:
        choice = PAPER_CHOICE[self.device]
        cfg = self.result.cfg
        return (
            cfg.pi == choice["pi"]
            and cfg.po == choice["po"]
            and cfg.pt == choice["pt"]
            and cfg.instances == choice["instances"]
        )


def run_vgg16_case(devices=("vu9p", "pynq-z1")) -> List[CaseStudyRow]:
    network = zoo.vgg16()
    rows = []
    for name in devices:
        device = get_device(name)
        session = PipelineSession(
            network, device, DseOptions(frequency_mhz=device.frequency_mhz)
        )
        result = session.dse()
        conv_names = {i.layer.name for i in network.conv_layers()}
        conv_wino = sum(
            1
            for m in result.mapping
            if m.layer_name in conv_names and m.mode == "wino"
        )
        rows.append(
            CaseStudyRow(
                device=name,
                result=result,
                per_die=instances_per_die(result.cfg, device),
                conv_wino_layers=conv_wino,
                conv_layers=len(conv_names),
            )
        )
    return rows


def format_vgg16_case(rows: List[CaseStudyRow]) -> str:
    table = Table(
        "VGG16 case study: DSE-selected designs vs the paper's choices",
        ["Device", "PI", "PO", "PT", "NI", "per die", "conv wino",
         "GOPS", "matches paper"],
    )
    for row in rows:
        cfg = row.result.cfg
        table.add_row(
            row.device, cfg.pi, cfg.po, cfg.pt, cfg.instances,
            row.per_die,
            f"{row.conv_wino_layers}/{row.conv_layers}",
            f"{row.result.throughput_gops:.1f}",
            "yes" if row.matches_paper else "no",
        )
    table.add_note(
        "paper: VU9P PI=PO=4 PT=6 x6 (2/die x 3 dies); "
        "PYNQ-Z1 PI=PO=4 PT=4 x1; all CONV layers Winograd"
    )
    return table.render()


def main() -> str:
    output = format_vgg16_case(run_vgg16_case())
    print(output)
    return output


if __name__ == "__main__":
    main()

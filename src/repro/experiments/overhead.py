"""Section 6.1 — resource overhead of the hybrid structure.

The paper: adding Winograd support (transform networks + reconfigurable
functional modules) to a conventional spatial-only accelerator costs
26.4 % extra LUTs and **zero** extra DSPs on VU9P, because both CONV
modes reuse the same PE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.report import Table
from repro.estimator import (
    estimate_resources,
    hybrid_lut_overhead,
    spatial_only_resources,
)
from repro.experiments.common import paper_config

#: Paper-reported LUT overhead on VU9P.
PAPER_LUT_OVERHEAD = 0.264


@dataclass(frozen=True)
class OverheadRow:
    device: str
    hybrid_luts: int
    spatial_luts: int
    lut_overhead: float
    hybrid_dsps: int
    spatial_dsps: int

    @property
    def dsp_overhead(self) -> int:
        return self.hybrid_dsps - self.spatial_dsps


def run_overhead(devices=("vu9p", "pynq-z1")) -> List[OverheadRow]:
    rows = []
    for name in devices:
        cfg, device = paper_config(name)
        hybrid = estimate_resources(cfg, device)
        spatial = spatial_only_resources(cfg, device)
        rows.append(
            OverheadRow(
                device=name,
                hybrid_luts=hybrid.luts,
                spatial_luts=spatial.luts,
                lut_overhead=hybrid_lut_overhead(cfg, device),
                hybrid_dsps=hybrid.dsps,
                spatial_dsps=spatial.dsps,
            )
        )
    return rows


def format_overhead(rows: List[OverheadRow]) -> str:
    table = Table(
        "Hybrid (Spatial+Winograd) vs spatial-only resource overhead",
        ["Device", "Hybrid LUTs", "Spatial LUTs", "LUT overhead",
         "Hybrid DSPs", "Spatial DSPs", "DSP overhead"],
    )
    for row in rows:
        table.add_row(
            row.device,
            row.hybrid_luts,
            row.spatial_luts,
            f"{row.lut_overhead * 100:.1f}%",
            row.hybrid_dsps,
            row.spatial_dsps,
            row.dsp_overhead,
        )
    table.add_note(
        f"paper: {PAPER_LUT_OVERHEAD * 100:.1f}% extra LUTs, 0 extra DSPs "
        "on VU9P (PE reuse across modes)"
    )
    return table.render()


def main() -> str:
    output = format_overhead(run_overhead())
    print(output)
    return output


if __name__ == "__main__":
    main()

"""Scenario study — failures and SLO control beyond the paper's Table 4.

The paper measures one healthy box; a serving system has to survive the
scenarios the north star asks for.  Two studies on the event kernel:

* **mid-stream shard failure** — a 2x VU9P pool loses ``shard0`` a
  quarter of the way through a saturating Poisson stream and gets it
  back at 55%.  Every policy re-serves the lost in-flight work on the
  survivor (no request is dropped), but they rebalance differently:
  blind round-robin keeps alternating onto the loaded survivor after
  the restore, while the state-aware policies flood the fresh shard —
  visibly smaller stretch and a bigger restored-shard share.
* **SLO control under overload** — a heterogeneous vu9p + pynq-z1 pool
  under blind round-robin at 1.5x its simulated rate, with a p99
  target the embedded shard cannot hold.  ``shed`` trades completed
  requests for a bounded tail; ``reroute`` overrides the breached
  picks toward the cloud shard.

The model is the scaled VGG16 stack the ``batch_throughput`` example
uses, so the study runs in seconds while keeping the paper's layer mix.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.report import Table
from repro.compiler import CompilerOptions
from repro.experiments.common import paper_config
from repro.ir import zoo
from repro.pipeline import EvaluationCache, PipelineSession
from repro.serving import (
    BatcherOptions,
    FailureScenario,
    ServingReport,
    ShardPool,
    ShardServer,
    SloOptions,
    WorkloadSpec,
    make_requests,
)

REQUESTS = 96
MAX_BATCH = 6
#: Wait budget ~2 per-image latencies, as in the serving study: spaced
#: open-loop arrivals need it to form batches at all.
MAX_WAIT_S = 0.010
POLICIES = ("round-robin", "least-loaded", "shortest-latency")
#: Kill shard0 a quarter into the baseline run, restore at 55% — early
#: enough that the stream is still arriving, so the policies' post-
#: restore rebalancing is visible.
KILL_FRACTION, RESTORE_FRACTION = 0.25, 0.55
#: SLO-study overload factor (x the *simulated* service rate) and p99
#: target in fast-shard batch-times: a target the overloaded pool
#: cannot hold, reached while traffic is still arriving.
SLO_OVERLOAD = 1.5
SLO_TARGET_BATCHES = 4
SLO_REQUESTS = 64


def _pool(cache: EvaluationCache) -> ShardPool:
    cfg, device = paper_config("vu9p")
    session = PipelineSession(
        zoo.vgg16(input_size=64, include_fc=False),
        device,
        cfg=cfg,
        compiler_options=CompilerOptions(quantize=True, pack_data=False),
        cache=cache,
    )
    return ShardPool.replicate(session, 2)


def _serve(
    pool: ShardPool,
    policy: str,
    qps: float,
    seed: int,
    count: int = REQUESTS,
    scenario: Optional[FailureScenario] = None,
    slo: Optional[SloOptions] = None,
) -> ServingReport:
    requests = make_requests("poisson", count, qps=qps, seed=seed)
    return ShardServer(pool).run(WorkloadSpec(
        traffic=requests,
        policy=policy,
        batcher=BatcherOptions(max_batch=MAX_BATCH, max_wait_s=MAX_WAIT_S),
        slo=slo,
        scenario=scenario,
    ))


def run_failure_study(
    seed: int = 2020,
) -> List[Tuple[str, ServingReport, ServingReport]]:
    """Per policy: (baseline report, kill+restore report)."""
    cache = EvaluationCache()
    pool = _pool(cache)
    # The *simulated* service rate: an overload factor against the
    # analytical estimate can be off by the estimation error, turning
    # "slightly saturating" traffic into a de-facto closed batch.
    qps = 1.2 * pool.simulated_images_per_second()
    rows = []
    for policy in POLICIES:
        baseline = _serve(pool, policy, qps, seed)
        scenario = FailureScenario.kill(
            "shard0",
            at=KILL_FRACTION * baseline.makespan_seconds,
            restore_at=RESTORE_FRACTION * baseline.makespan_seconds,
        )
        failed = _serve(pool, policy, qps, seed, scenario=scenario)
        rows.append((policy, baseline, failed))
    return rows


def run_slo_study(
    seed: int = 2020,
) -> List[Tuple[str, ServingReport]]:
    """A heterogeneous vu9p + pynq-z1 pool under blind round-robin at
    ``SLO_OVERLOAD``x its simulated rate: no control vs shed vs
    reroute.

    Round-robin insists on handing every other batch to the embedded
    shard, whose latencies blow the p99 window almost immediately —
    ``shed`` then trades requests for tail, ``reroute`` overrides the
    breached picks toward the cloud shard (the controller acting as a
    measured-latency corrective on a backlog-blind policy).
    """
    cache = EvaluationCache()
    cfg_cloud, cloud = paper_config("vu9p")
    cfg_edge, edge = paper_config("pynq-z1")
    network = zoo.vgg16(input_size=64, include_fc=False)
    options = CompilerOptions(quantize=True, pack_data=False)
    pool = ShardPool.of(
        PipelineSession(network, cloud, cfg=cfg_cloud,
                        compiler_options=options, cache=cache),
        PipelineSession(network, edge, cfg=cfg_edge,
                        compiler_options=options, cache=cache),
        names=("vu9p", "pynq-z1"),
    )
    qps = SLO_OVERLOAD * pool.simulated_images_per_second()
    fast = pool.shards[0]
    target = SLO_TARGET_BATCHES * fast.probe_service_seconds(MAX_BATCH)
    rows = [
        ("none", _serve(pool, "round-robin", qps, seed,
                        count=SLO_REQUESTS))
    ]
    for action in ("shed", "reroute"):
        slo = SloOptions(
            p99_target_s=target, action=action, window=16, min_samples=4
        )
        rows.append(
            (action, _serve(pool, "round-robin", qps, seed,
                            count=SLO_REQUESTS, slo=slo))
        )
    return rows


def format_study(
    failures: List[Tuple[str, ServingReport, ServingReport]],
    slo_rows: List[Tuple[str, ServingReport]],
) -> str:
    table = Table(
        "Failure scenarios: kill shard0 @ 25%, restore @ 55% "
        "(VGG16-64, 2x vu9p, Poisson @ 1.2x simulated rate)",
        ["Policy", "GOPS", "GOPS (kill)", "stretch", "p99 ms",
         "p99 ms (kill)", "survivor share"],
    )
    for policy, baseline, failed in failures:
        survivor = failed.per_shard()["shard1"]
        table.add_row(
            policy,
            f"{baseline.throughput_gops:.1f}",
            f"{failed.throughput_gops:.1f}",
            f"{failed.makespan_seconds / baseline.makespan_seconds:.2f}x",
            f"{baseline.latency_percentile(99) * 1e3:.2f}",
            f"{failed.latency_percentile(99) * 1e3:.2f}",
            f"{survivor.requests}/{failed.count}",
        )
    served_all = all(
        failed.count == REQUESTS for _, _, failed in failures
    )
    table.add_note(
        "all policies re-serve the killed shard's in-flight work: "
        + ("no request lost" if served_all else "REQUESTS LOST")
    )

    slo_table = Table(
        f"SLO control: vu9p + pynq-z1 pool at {SLO_OVERLOAD:.1f}x "
        f"simulated rate (round-robin, p99 target = "
        f"{SLO_TARGET_BATCHES} cloud batch-times)",
        ["Action", "served", "shed", "rerouted", "p99 ms", "GOPS"],
    )
    for action, report in slo_rows:
        slo_table.add_row(
            action,
            f"{report.count}",
            f"{report.shed}",
            f"{report.rerouted}",
            f"{report.latency_percentile(99) * 1e3:.2f}",
            f"{report.throughput_gops:.1f}",
        )
    none = slo_rows[0][1]
    shed = next(r for a, r in slo_rows if a == "shed")
    if shed.count:
        slo_table.add_note(
            f"shedding cut p99 to "
            f"{shed.latency_percentile(99) / none.latency_percentile(99):.2f}"
            f"x the uncontrolled tail at the cost of {shed.shed} requests"
        )
    return table.render() + "\n\n" + slo_table.render()


def main(seed: int = 2020) -> str:
    output = format_study(run_failure_study(seed=seed),
                          run_slo_study(seed=seed))
    print(output)
    return output


if __name__ == "__main__":
    main()

"""Table 4 — comparison with previous works on VGG16.

Our rows come from the end-to-end cycle-approximate simulation of the
DSE-selected design (the paper's rows are board measurements); the
prior-work rows are the published numbers.  The headline claims this
regenerates:

* HybridDNN-VU9P beats the best prior VU9P design by ~1.8x GOPS;
* DSP efficiency ties the best published design (~0.65 GOPS/DSP);
* best energy efficiency of the comparison set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.metrics import dsp_efficiency, energy_efficiency, speedup
from repro.analysis.report import Table
from repro.baselines.published import PAPER_RESULTS, PUBLISHED, best_prior
from repro.compiler import CompilerOptions
from repro.dse.space import DseOptions
from repro.estimator import estimate_power, estimate_resources
from repro.experiments.common import paper_session
from repro.fpga import get_device
from repro.ir import zoo
from repro.pipeline import PipelineSession


@dataclass(frozen=True)
class Table4Row:
    design: str
    device: str
    precision: str
    frequency_mhz: float
    dsps: int
    gops: float
    power_w: Optional[float]

    @property
    def dsp_eff(self) -> float:
        return dsp_efficiency(self.gops, self.dsps)

    @property
    def energy_eff(self) -> Optional[float]:
        if self.power_w is None:
            return None
        return energy_efficiency(self.gops, self.power_w)


def _our_row(device_name: str, use_dse: bool = True) -> Table4Row:
    network = zoo.vgg16()
    if use_dse:
        device = get_device(device_name)
        session = PipelineSession(
            network,
            device,
            DseOptions(frequency_mhz=device.frequency_mhz),
            compiler_options=CompilerOptions(quantize=True, pack_data=False),
        )
    else:
        session = paper_session(device_name, network)
    cfg, device = session.cfg, session.device
    sim = session.simulate()
    ops = sum(i.ops for i in network.compute_layers())
    gops = ops / sim.seconds / 1e9 * cfg.instances
    resources = estimate_resources(cfg, device, session.calibration)
    power = estimate_power(resources, device)
    return Table4Row(
        design=f"Ours ({device_name})",
        device=device.name,
        precision=f"{cfg.data_width}-bit*",
        frequency_mhz=cfg.frequency_mhz,
        dsps=resources.dsps,
        gops=gops,
        power_w=power.total_w,
    )


def run_table4(use_dse: bool = True) -> List[Table4Row]:
    """All Table-4 rows: three prior works + our two designs."""
    rows = [
        Table4Row(
            design=prior.citation,
            device=prior.device,
            precision=prior.precision,
            frequency_mhz=prior.frequency_mhz,
            dsps=prior.dsps,
            gops=prior.gops,
            power_w=prior.power_w,
        )
        for prior in PUBLISHED
    ]
    rows.append(_our_row("vu9p", use_dse))
    rows.append(_our_row("pynq-z1", use_dse))
    return rows


def format_table4(rows: List[Table4Row]) -> str:
    table = Table(
        "Table 4: Comparison with Previous Works (VGG16)",
        ["Design", "Device", "Prec.", "MHz", "DSPs", "GOPS",
         "GOPS/DSP", "Power(W)", "GOPS/W"],
    )
    for row in rows:
        table.add_row(
            row.design,
            row.device,
            row.precision,
            f"{row.frequency_mhz:.0f}",
            row.dsps,
            f"{row.gops:.1f}",
            f"{row.dsp_eff:.2f}",
            "NA" if row.power_w is None else f"{row.power_w:.1f}",
            "NA" if row.energy_eff is None else f"{row.energy_eff:.1f}",
        )
    ours_vu9p = next(r for r in rows if r.design == "Ours (vu9p)")
    prior = best_prior("Xilinx VU9P")
    table.add_note(
        f"speedup vs best prior VU9P ({prior.key}): "
        f"{speedup(ours_vu9p.gops, prior.gops):.2f}x "
        f"(paper reports 1.8x with {PAPER_RESULTS['vu9p'].gops} GOPS)"
    )
    table.add_note(
        "* 8-bit weights, 12-bit activations (widened by the Winograd "
        "input transform)"
    )
    return table.render()


def main(use_dse: bool = True) -> str:
    output = format_table4(run_table4(use_dse))
    print(output)
    return output


if __name__ == "__main__":
    main()

"""Roofline study of the Figure-6 layer set.

Classifies every swept layer as compute- or memory-bound under both
CONV modes and cross-checks the classification against the simulator:
memory-bound Winograd layers are exactly where Figure 6's "Real" dips
below "Esti." — the quantitative backing for Section 6.2's narrative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.report import Table
from repro.analysis.roofline import layer_roofline
from repro.experiments.common import paper_config
from repro.ir import zoo


@dataclass(frozen=True)
class RooflineRow:
    kernel: int
    feature: int
    channels: int
    wino_intensity: float
    wino_bound: str
    wino_attainable: float
    spat_intensity: float
    spat_bound: str
    spat_attainable: float

    @property
    def predicted_winner(self) -> str:
        return (
            "wino"
            if self.wino_attainable >= self.spat_attainable
            else "spat"
        )


def run_roofline_study(
    device_name: str = "vu9p",
    series: Tuple[Tuple[int, int], ...] = (
        (56, 128), (56, 256), (28, 256), (28, 512),
        (14, 512), (7, 512), (7, 1024),
    ),
    kernels: Tuple[int, ...] = (1, 3, 5),
) -> List[RooflineRow]:
    cfg, device = paper_config(device_name)
    rows = []
    for kernel in kernels:
        for feature, channels in series:
            net = zoo.single_conv(
                channels, channels, feature, kernel, padding=kernel // 2
            )
            info = net.compute_layers()[0]
            wino = layer_roofline(cfg, device, info, "wino")
            spat = layer_roofline(cfg, device, info, "spat")
            rows.append(
                RooflineRow(
                    kernel=kernel,
                    feature=feature,
                    channels=channels,
                    wino_intensity=wino.operational_intensity,
                    wino_bound=wino.bound,
                    wino_attainable=wino.attainable_gops,
                    spat_intensity=spat.operational_intensity,
                    spat_bound=spat.bound,
                    spat_attainable=spat.attainable_gops,
                )
            )
    return rows


def format_roofline_study(device_name: str,
                          rows: List[RooflineRow]) -> str:
    table = Table(
        f"Roofline classification of the layer sweep ({device_name})",
        ["k", "feat", "chan", "WinoOI", "WinoBound", "WinoAtt",
         "SpatOI", "SpatBound", "SpatAtt", "Winner"],
    )
    for r in rows:
        table.add_row(
            f"{r.kernel}x{r.kernel}", r.feature, r.channels,
            f"{r.wino_intensity:.1f}", r.wino_bound,
            f"{r.wino_attainable:.0f}",
            f"{r.spat_intensity:.1f}", r.spat_bound,
            f"{r.spat_attainable:.0f}",
            r.predicted_winner,
        )
    table.add_note(
        "Winograd trades operational intensity for a higher compute "
        "roof; memory-bound rows are the Figure-6 dips"
    )
    return table.render()


def main(device_name: str = "vu9p") -> str:
    output = format_roofline_study(
        device_name, run_roofline_study(device_name)
    )
    print(output)
    return output


if __name__ == "__main__":
    main()

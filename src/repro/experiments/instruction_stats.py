"""Instruction-stream statistics (the framework's "Inst. files").

Reports, per network and device, what the compiler actually emits:
instruction counts by opcode, stream size in bytes, per-layer mode /
dataflow / group geometry.  Useful for sanity-checking compiler changes
and for sizing the instruction region of a deployment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.report import Table
from repro.experiments.common import paper_session
from repro.ir import zoo
from repro.isa.instructions import Opcode
from repro.isa.validate import validate_program


@dataclass(frozen=True)
class LayerStats:
    layer_name: str
    mode: str
    dataflow: str
    instructions: int
    comp_instructions: int
    row_groups: int
    k_groups: int
    c_groups: int


@dataclass(frozen=True)
class ProgramStats:
    network: str
    device: str
    total_instructions: int
    bytes: int
    by_opcode: Dict[str, int]
    layers: List[LayerStats]
    valid: bool


def run_instruction_stats(
    model: str = "vgg16", device_name: str = "vu9p"
) -> ProgramStats:
    """Compile ``model`` for the paper config of ``device_name`` and
    collect the stream statistics."""
    session = paper_session(device_name, zoo.get_model(model))
    compiled = session.compiled()
    by_opcode: Dict[str, int] = {}
    layers: List[LayerStats] = []
    valid = True
    for program in compiled.programs():
        for opcode, count in program.count_by_opcode().items():
            by_opcode[opcode.name] = by_opcode.get(opcode.name, 0) + count
        valid = valid and validate_program(program).ok
        for marker in program.markers:
            chunk = program.instructions[marker.start : marker.end]
            part = compiled.partitions[marker.layer_name]
            layers.append(
                LayerStats(
                    layer_name=marker.layer_name,
                    mode=marker.mode,
                    dataflow=marker.dataflow,
                    instructions=len(chunk),
                    comp_instructions=sum(
                        1 for i in chunk if i.opcode == Opcode.COMP
                    ),
                    row_groups=part.n_row_groups,
                    k_groups=part.n_k_groups,
                    c_groups=part.n_c_groups,
                )
            )
    total = compiled.total_instructions
    return ProgramStats(
        network=model,
        device=device_name,
        total_instructions=total,
        bytes=total * 16,
        by_opcode=by_opcode,
        layers=layers,
        valid=valid,
    )


def format_instruction_stats(stats: ProgramStats) -> str:
    table = Table(
        f"Instruction stream: {stats.network} on {stats.device} "
        f"({stats.total_instructions} instructions, "
        f"{stats.bytes / 1024:.1f} KiB)",
        ["Layer", "Mode", "DF", "Instrs", "COMPs",
         "RowGrp", "KGrp", "CGrp"],
    )
    for layer in stats.layers:
        table.add_row(
            layer.layer_name, layer.mode, layer.dataflow,
            layer.instructions, layer.comp_instructions,
            layer.row_groups, layer.k_groups, layer.c_groups,
        )
    mix = ", ".join(
        f"{name} {count}" for name, count in sorted(stats.by_opcode.items())
    )
    table.add_note(f"opcode mix: {mix}")
    table.add_note(
        "handshake validation: " + ("clean" if stats.valid else "ISSUES")
    )
    return table.render()


def main(model: str = "vgg16", device_name: str = "vu9p") -> str:
    output = format_instruction_stats(
        run_instruction_stats(model, device_name)
    )
    print(output)
    return output


if __name__ == "__main__":
    main()

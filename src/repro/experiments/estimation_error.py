"""Section 6.2 — estimation error of the analytical models.

The paper reports 4.27 % (VU9P) and 4.03 % (PYNQ-Z1) error between the
analytical estimates and the hardware measurements for the VGG16 case
study.  Here the "measurement" is the cycle-approximate simulator: we
compare the Eq. 12-15 whole-network estimate against the simulated
end-to-end latency under the same DSE-selected mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.metrics import relative_error
from repro.analysis.report import Table
from repro.experiments.common import paper_session
from repro.ir import zoo

#: Paper-reported errors for reference.
PAPER_ERRORS = {"vu9p": 0.0427, "pynq-z1": 0.0403}


@dataclass(frozen=True)
class ErrorRow:
    device: str
    estimated_ms: float
    simulated_ms: float
    error: float
    paper_error: float


def run_estimation_error(devices=("vu9p", "pynq-z1")) -> List[ErrorRow]:
    rows = []
    network = zoo.vgg16()
    for name in devices:
        session = paper_session(name, network)
        estimate = session.estimate()
        sim = session.simulate()
        rows.append(
            ErrorRow(
                device=name,
                estimated_ms=estimate.latency * 1e3,
                simulated_ms=sim.seconds * 1e3,
                error=relative_error(estimate.latency, sim.seconds),
                paper_error=PAPER_ERRORS.get(name, float("nan")),
            )
        )
    return rows


def format_estimation_error(rows: List[ErrorRow]) -> str:
    table = Table(
        "Estimation error: analytical model vs cycle-approximate simulation "
        "(VGG16)",
        ["Device", "Esti (ms)", "Real (ms)", "Error", "Paper"],
    )
    for row in rows:
        table.add_row(
            row.device,
            f"{row.estimated_ms:.2f}",
            f"{row.simulated_ms:.2f}",
            f"{row.error * 100:.2f}%",
            f"{row.paper_error * 100:.2f}%",
        )
    table.add_note(
        "Paper errors are model-vs-board; ours are model-vs-simulator."
    )
    return table.render()


def main() -> str:
    output = format_estimation_error(run_estimation_error())
    print(output)
    return output


if __name__ == "__main__":
    main()

"""Host runtime: deploy a compiled model and run inference.

Mirrors the paper's Step 4: a light-weight host process that writes the
instruction and data files into the accelerator's external memory,
kicks off execution (here: the simulator), services the host-side steps
(flatten / non-fusable pooling), and collects results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.errors import RuntimeHostError
from repro.arch import layouts
from repro.arch.dram import ExternalMemoryModel
from repro.compiler.codegen import AccelStep, CompiledModel, HostStep
from repro.fpga.device import FpgaDevice
from repro.sim.simulator import AcceleratorSimulator, SimulationResult
from repro.winograd.reference import avg_pool2d, max_pool2d, relu


@dataclass
class InferenceResult:
    """Output feature map plus execution statistics."""

    output: np.ndarray
    sim: Optional[SimulationResult]
    host_ops: int

    @property
    def seconds(self) -> float:
        """Accelerator time (host steps are not timed — they overlap
        with PCIe/PS transfers in the paper's deployments)."""
        return self.sim.seconds if self.sim else 0.0


class HostRuntime:
    """Deploy ``compiled`` on ``device`` and run images through it."""

    @classmethod
    def from_session(cls, session, functional: bool = True, **kwargs):
        """Deploy a :class:`~repro.pipeline.session.PipelineSession`.

        The session supplies the compiled model and device (duck-typed
        so this module stays independent of the pipeline layer); extra
        keyword arguments reach ``__init__`` unchanged.
        """
        return cls(
            session.compiled(), session.device, functional=functional,
            **kwargs,
        )

    def __init__(
        self,
        compiled: CompiledModel,
        device: FpgaDevice,
        functional: bool = True,
        dram_margin: float = 1.25,
        trace: bool = False,
    ):
        self.compiled = compiled
        self.device = device
        self.functional = functional
        cfg = compiled.cfg
        lanes = cfg.pi

        total = 0
        sizes: Dict[str, int] = {}
        for key, spec in compiled.fmaps.items():
            sizes[spec.region] = spec.words(lanes)
            total += sizes[spec.region]
        for name, packed in compiled.weights.items():
            sizes[f"wgt:{name}"] = max(packed.elems, 1)
            total += sizes[f"wgt:{name}"]
        for name, bias in compiled.biases.items():
            sizes[f"bias:{name}"] = max(bias.size, 1)
            total += sizes[f"bias:{name}"]

        bw_elems = device.bandwidth_elems(cfg.data_width, cfg.instances)
        self.dram = ExternalMemoryModel(
            size=int(total * dram_margin) + 4096,
            bandwidth_elems_per_cycle=bw_elems / cfg.frequency_hz,
        )
        for region, size in sizes.items():
            self.dram.allocate(region, size)
        for name, packed in compiled.weights.items():
            if packed.image.size:
                self.dram.write(
                    self.dram.region(f"wgt:{name}").base, packed.image
                )
        for name, bias in compiled.biases.items():
            if bias.size:
                self.dram.write(self.dram.region(f"bias:{name}").base, bias)

        self.sim = AcceleratorSimulator(
            cfg, device, self.dram, functional=functional, trace=trace
        )

    # -- data movement -----------------------------------------------------

    def load_input(self, image: np.ndarray) -> None:
        """Quantise and pack one CHW image into the input region."""
        spec = self.compiled.input_spec
        image = np.asarray(image, dtype=np.float64)
        expected = (spec.channels, spec.height, spec.width)
        if image.shape != expected:
            raise RuntimeHostError(
                f"input shape {image.shape} != expected {expected}"
            )
        if self.compiled.options.quantize:
            image = self.compiled.cfg.feature_type.quantize(image)
        words = layouts.pack_feature(spec.layout, image, self.compiled.cfg.pi)
        self.dram.write(self.dram.region(spec.region).base, words)

    def _read_fmap(self, spec) -> np.ndarray:
        region = self.dram.region(spec.region)
        words = self.dram.read(region.base, spec.words(self.compiled.cfg.pi))
        return layouts.unpack_feature(
            spec.layout, words, spec.channels, spec.height, spec.width,
            self.compiled.cfg.pi,
        )

    def _write_fmap(self, spec, feature: np.ndarray) -> None:
        words = layouts.pack_feature(spec.layout, feature, self.compiled.cfg.pi)
        self.dram.write(self.dram.region(spec.region).base, words)

    def read_output(self) -> np.ndarray:
        """Unpack the network output feature map."""
        return self._read_fmap(self.compiled.output_spec)

    # -- execution ---------------------------------------------------------

    def _run_host_step(self, step: HostStep) -> None:
        feature = self._read_fmap(step.src)
        if step.op == "flatten":
            result = feature.reshape(-1, 1, 1)
        elif step.op == "maxpool":
            result = max_pool2d(
                feature, step.params["pool"], step.params["stride"]
            )
        elif step.op == "avgpool":
            result = avg_pool2d(
                feature, step.params["pool"], step.params["stride"]
            )
        elif step.op == "relu":
            result = relu(feature)
        else:
            raise RuntimeHostError(f"unknown host op {step.op!r}")
        self._write_fmap(step.dst, result)

    def infer(self, image: np.ndarray) -> InferenceResult:
        """Run one image end to end."""
        self.load_input(image)
        sim_results: List[SimulationResult] = []
        host_ops = 0
        for step in self.compiled.steps:
            if isinstance(step, AccelStep):
                sim_results.append(self.sim.run(step.program))
            elif isinstance(step, HostStep):
                if self.functional:
                    self._run_host_step(step)
                host_ops += 1
            else:
                raise RuntimeHostError(f"unknown step type {type(step)}")
        merged = SimulationResult.merge(sim_results) if sim_results else None
        output = self.read_output() if self.functional else np.zeros(0)
        return InferenceResult(output=output, sim=merged, host_ops=host_ops)

"""Pure-numpy golden-model inference.

Used to verify the accelerator simulation end to end.  ``quantize=True``
mirrors the accelerator's fixed-point pipeline (quantised weights,
per-layer activation re-quantisation) so outputs can be compared
exactly; ``quantize=False`` gives the float reference.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import RuntimeHostError
from repro.ir.graph import Network
from repro.ir.layers import (
    AvgPool2D,
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    ReLU,
)
from repro.ir.tensor import DataType
from repro.winograd.reference import (
    avg_pool2d,
    dense,
    direct_conv2d,
    max_pool2d,
    relu,
)


def reference_inference(
    network: Network,
    params: Dict[str, dict],
    image: np.ndarray,
    feature_type: Optional[DataType] = None,
    weight_type: Optional[DataType] = None,
) -> np.ndarray:
    """Run ``image`` (CHW) through ``network`` with numpy operators.

    When data types are given, weights are quantised once and every
    compute layer's output is re-quantised — the same numeric pipeline
    the accelerator implements.
    """
    x = np.asarray(image, dtype=np.float64)
    if x.shape != network.input_shape.as_tuple():
        raise RuntimeHostError(
            f"input shape {x.shape} != network input "
            f"{network.input_shape.as_tuple()}"
        )
    if feature_type is not None:
        x = feature_type.quantize(x)

    def quant_w(w):
        return weight_type.quantize(w) if weight_type is not None else w

    def quant_f(t):
        return feature_type.quantize(t) if feature_type is not None else t

    for info in network:
        layer = info.layer
        if isinstance(layer, Conv2D):
            p = params[layer.name]
            x = direct_conv2d(
                x,
                quant_w(p["weights"]),
                p.get("bias"),
                stride=layer.stride,
                padding=layer.padding,
            )
            if layer.relu:
                x = relu(x)
            x = quant_f(x)
        elif isinstance(layer, Dense):
            p = params[layer.name]
            x = dense(x.reshape(-1), quant_w(p["weights"]), p.get("bias"))
            if layer.relu:
                x = relu(x)
            x = quant_f(x).reshape(layer.out_features, 1, 1)
        elif isinstance(layer, MaxPool2D):
            x = max_pool2d(x, layer.pool_size, layer.stride)
        elif isinstance(layer, AvgPool2D):
            x = avg_pool2d(x, layer.pool_size, layer.stride)
        elif isinstance(layer, ReLU):
            x = relu(x)
        elif isinstance(layer, Flatten):
            x = x.reshape(-1, 1, 1)
        else:
            raise RuntimeHostError(
                f"unknown layer type {type(layer).__name__}"
            )
    return x

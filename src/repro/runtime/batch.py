"""Multi-instance batch execution.

The paper's cloud deployment runs ``NI`` identical accelerator
instances (six on VU9P) that process *different images* concurrently —
batch parallelism.  Each instance sees ``1/NI`` of the DRAM bandwidth
(already modelled by ``AcceleratorConfig.instances``), so aggregate
throughput is measured, not assumed: this module dispatches a batch of
images round-robin over the instances, accounts the per-instance
timelines, and reports makespan-based throughput — the quantity Table 4
calls "CNN Perf. (GOPS)".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import RuntimeHostError
from repro.compiler.codegen import CompiledModel
from repro.fpga.device import FpgaDevice
from repro.runtime.host import HostRuntime


@dataclass
class BatchResult:
    """Timing of one batch across all instances."""

    images: int
    instances: int
    per_image_seconds: float
    makespan_seconds: float
    total_ops: int
    outputs: List[np.ndarray] = field(default_factory=list)

    @property
    def throughput_gops(self) -> float:
        return self.total_ops / self.makespan_seconds / 1e9

    @property
    def images_per_second(self) -> float:
        return self.images / self.makespan_seconds


class BatchRunner:
    """Run image batches over NI simulated accelerator instances.

    The instances are identical, so one simulation per *distinct
    workload shape* suffices for timing; functional outputs are computed
    per image when ``functional=True``.
    """

    def __init__(
        self,
        compiled: CompiledModel,
        device: FpgaDevice,
        ops_per_image: int,
        functional: bool = False,
    ):
        if ops_per_image <= 0:
            raise RuntimeHostError("ops_per_image must be positive")
        self.compiled = compiled
        self.device = device
        self.ops_per_image = ops_per_image
        self.functional = functional
        self.runtime = HostRuntime(compiled, device, functional=functional)
        self._per_image_seconds: Optional[float] = None

    def _image_latency(self, probe: np.ndarray) -> float:
        if self._per_image_seconds is None:
            result = self.runtime.infer(probe)
            self._per_image_seconds = result.seconds
        return self._per_image_seconds

    def run(self, images: List[np.ndarray]) -> BatchResult:
        """Process ``images``; returns aggregate timing.

        Round-robin dispatch: instance ``i`` processes images
        ``i, i+NI, i+2*NI, ...`` back to back; the batch finishes when
        the most-loaded instance finishes.
        """
        if not images:
            raise RuntimeHostError("empty batch")
        instances = self.compiled.cfg.instances
        per_image = self._image_latency(np.asarray(images[0]))

        outputs = []
        if self.functional:
            for image in images:
                outputs.append(self.runtime.infer(np.asarray(image)).output)

        counts = [0] * instances
        for index in range(len(images)):
            counts[index % instances] += 1
        makespan = max(counts) * per_image
        return BatchResult(
            images=len(images),
            instances=instances,
            per_image_seconds=per_image,
            makespan_seconds=makespan,
            total_ops=self.ops_per_image * len(images),
            outputs=outputs,
        )

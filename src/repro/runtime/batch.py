"""Multi-instance batch execution.

The paper's cloud deployment runs ``NI`` identical accelerator
instances (six on VU9P) that process *different images* concurrently —
batch parallelism.  Each instance sees ``1/NI`` of the DRAM bandwidth
(already modelled by ``AcceleratorConfig.instances``), so aggregate
throughput is measured, not assumed: this module dispatches a batch of
images round-robin over the instances, accounts the per-instance
timelines, and reports makespan-based throughput — the quantity Table 4
calls "CNN Perf. (GOPS)".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import RuntimeHostError
from repro.compiler.codegen import CompiledModel
from repro.fpga.device import FpgaDevice
from repro.runtime.host import HostRuntime


@dataclass
class BatchResult:
    """Timing of one batch across all instances."""

    images: int
    instances: int
    per_image_seconds: float
    makespan_seconds: float
    total_ops: int
    outputs: List[np.ndarray] = field(default_factory=list)

    @property
    def throughput_gops(self) -> float:
        return self.total_ops / self.makespan_seconds / 1e9

    @property
    def images_per_second(self) -> float:
        return self.images / self.makespan_seconds


class BatchRunner:
    """Run image batches over NI simulated accelerator instances.

    The instances are identical and the folded accelerator's timing is
    data-independent, so one simulation per *distinct workload shape*
    suffices for timing; functional outputs are computed per image when
    ``functional=True`` (the first functional inference doubles as the
    timing probe — no separate probe run is paid).

    This is also the per-shard executor of the serving layer: a
    :class:`~repro.serving.shard.Shard` wraps one runner and uses
    :meth:`probe_seconds` / :meth:`completion_offsets` to place batches
    on its virtual timeline.
    """

    def __init__(
        self,
        compiled: CompiledModel,
        device: FpgaDevice,
        ops_per_image: int,
        functional: bool = False,
    ):
        if ops_per_image <= 0:
            raise RuntimeHostError("ops_per_image must be positive")
        self.compiled = compiled
        self.device = device
        self.ops_per_image = ops_per_image
        self.functional = functional
        self.runtime = HostRuntime(compiled, device, functional=functional)
        self._per_image_seconds: Optional[float] = None

    @classmethod
    def from_session(cls, session, functional: bool = False) -> "BatchRunner":
        """Deploy a :class:`~repro.pipeline.session.PipelineSession`.

        Duck-typed like :meth:`HostRuntime.from_session` so this module
        stays independent of the pipeline layer.
        """
        ops = sum(i.ops for i in session.network.compute_layers())
        return cls(
            session.compiled(), session.device, ops, functional=functional
        )

    @property
    def instances(self) -> int:
        return self.compiled.cfg.instances

    def _record_probe(self, seconds: float) -> None:
        if self._per_image_seconds is None:
            self._per_image_seconds = seconds

    def probe_seconds(self) -> float:
        """Per-image latency of one instance (simulated once, cached)."""
        if self._per_image_seconds is None:
            spec = self.compiled.input_spec
            probe = np.zeros((spec.channels, spec.height, spec.width))
            self._record_probe(self.runtime.infer(probe).seconds)
        return self._per_image_seconds

    def completion_offsets(self, count: int) -> List[float]:
        """Completion time of each image in a batch, relative to its
        start (seconds).

        Round-robin dispatch: image ``j`` runs as the ``j // NI``-th
        job of instance ``j % NI``, so it completes after
        ``(j // NI + 1)`` back-to-back image latencies; the last offset
        is the batch makespan.
        """
        if count <= 0:
            raise RuntimeHostError("empty batch")
        per_image = self.probe_seconds()
        return [
            (index // self.instances + 1) * per_image
            for index in range(count)
        ]

    def completion_groups(self, count: int) -> List[tuple]:
        """Completion *instants* of a batch: ``[(offset, images), ...]``.

        A batch round-robins over the NI instances, so its images
        complete in rounds of up to NI at a time: round ``k`` finishes
        ``min(NI, count - k*NI)`` images at offset ``(k+1)`` per-image
        latencies.  This is :meth:`completion_offsets` with the equal
        offsets coalesced — the serving layer emits one completion
        event per round rather than comparing floats to regroup them.
        """
        if count <= 0:
            raise RuntimeHostError("empty batch")
        per_image = self.probe_seconds()
        rounds = (count + self.instances - 1) // self.instances
        return [
            (
                (k + 1) * per_image,
                min(self.instances, count - k * self.instances),
            )
            for k in range(rounds)
        ]

    def run(self, images: List[np.ndarray]) -> BatchResult:
        """Process ``images``; returns aggregate timing.

        Round-robin dispatch: instance ``i`` processes images
        ``i, i+NI, i+2*NI, ...`` back to back; the batch finishes when
        the most-loaded instance finishes.
        """
        if not images:
            raise RuntimeHostError("empty batch")
        spec = self.compiled.input_spec
        expected = (spec.channels, spec.height, spec.width)
        for index, image in enumerate(images):
            shape = np.asarray(image).shape
            if shape != expected:
                raise RuntimeHostError(
                    f"image {index}: shape {shape} != expected {expected}"
                )
        outputs = []
        if self.functional:
            for image in images:
                result = self.runtime.infer(np.asarray(image))
                self._record_probe(result.seconds)
                outputs.append(result.output)
        offsets = self.completion_offsets(len(images))
        return BatchResult(
            images=len(images),
            instances=self.instances,
            per_image_seconds=self.probe_seconds(),
            makespan_seconds=offsets[-1],
            total_ops=self.ops_per_image * len(images),
            outputs=outputs,
        )

"""Synthetic parameter generation.

The paper evaluates with pretrained VGG16 weights; every metric it
reports (GOPS, resource counts, estimation error) depends only on layer
geometry, so deterministic seeded weights preserve all evaluated
behaviour (see the substitution table in DESIGN.md).  Magnitudes are
scaled per layer (He-style) so fixed-point quantisation behaves
realistically.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.ir.graph import Network
from repro.ir.layers import Conv2D, Dense


def generate_parameters(network: Network, seed: int = 2020,
                        scale: float = 1.0) -> Dict[str, dict]:
    """Weights/biases for every compute layer of ``network``.

    Returns ``{layer_name: {"weights": ndarray, "bias": ndarray}}`` with
    ``(K, C, R, S)`` kernels for convolutions and ``(M, N)`` matrices
    for Dense layers.
    """
    rng = np.random.default_rng(seed)
    params: Dict[str, dict] = {}
    for info in network.compute_layers():
        layer = info.layer
        if isinstance(layer, Conv2D):
            r, s = layer.kernel_size
            fan_in = info.input_shape.channels * r * s
            shape = (layer.out_channels, info.input_shape.channels, r, s)
        elif isinstance(layer, Dense):
            fan_in = info.input_shape.size
            shape = (layer.out_features, fan_in)
        else:
            continue
        std = scale * np.sqrt(2.0 / fan_in)
        params[layer.name] = {
            "weights": rng.normal(0.0, std, size=shape),
            "bias": rng.normal(0.0, 0.05, size=shape[0]),
        }
    return params

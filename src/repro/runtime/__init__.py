"""Light-weight host runtime (framework Step 4).

Manages the accelerator's external memory (instruction + data files),
drives the simulator segment by segment, executes the few host-side
operations, and exposes an end-to-end ``infer`` call.

Public API
----------
``HostRuntime``
    Deploys a :class:`~repro.compiler.CompiledModel` and runs inference.
``generate_parameters``
    Seeded synthetic weights for any IR network (the reproduction's
    substitute for pretrained models — all evaluation metrics depend on
    layer geometry only).
``reference_inference``
    Pure-numpy golden model of a network.
"""

from repro.runtime.params import generate_parameters
from repro.runtime.reference import reference_inference
from repro.runtime.host import HostRuntime, InferenceResult

__all__ = [
    "HostRuntime",
    "InferenceResult",
    "generate_parameters",
    "reference_inference",
]

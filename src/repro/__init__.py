"""HybridDNN reproduction — hybrid Spatial/Winograd DNN accelerator
framework (Ye et al., DAC 2020).

The package mirrors the paper's four-step design flow:

1. **Parse** — :mod:`repro.ir` (models) and :mod:`repro.fpga` (devices).
2. **Explore** — :mod:`repro.dse` driven by :mod:`repro.estimator`.
3. **Generate** — :mod:`repro.compiler` (instructions + data files) and
   :mod:`repro.hls` (synthesizable C++ templates).
4. **Run** — :mod:`repro.runtime` on the cycle-approximate, functionally
   exact simulator in :mod:`repro.sim`.

Above the flow, :mod:`repro.pipeline` caches and persists the
evaluation chain behind one ``PipelineSession`` facade, and
:mod:`repro.serving` serves traffic over pools of deployed sessions
(multi-shard scheduling + dynamic batching — ``repro serve``).

Quickstart
----------
>>> from repro import zoo, get_device, run_dse
>>> result = run_dse(get_device("pynq-z1"), zoo.vgg16())
>>> result.cfg.pt, result.cfg.instances
(4, 1)
"""

from repro.arch.params import AcceleratorConfig
from repro.compiler import CompilerOptions, compile_network
from repro.dse import run_dse
from repro.dse.space import DseOptions
from repro.errors import ReproError
from repro.estimator import estimate_network, estimate_resources
from repro.fpga import get_device
from repro.ir import Network, NetworkBuilder, TensorShape, zoo
from repro.mapping import NetworkMapping
from repro.runtime import (
    HostRuntime,
    generate_parameters,
    reference_inference,
)
from repro.sim import AcceleratorSimulator

__version__ = "0.1.0"

__all__ = [
    "AcceleratorConfig",
    "AcceleratorSimulator",
    "CompilerOptions",
    "DseOptions",
    "HostRuntime",
    "Network",
    "NetworkBuilder",
    "NetworkMapping",
    "ReproError",
    "TensorShape",
    "compile_network",
    "estimate_network",
    "estimate_resources",
    "generate_parameters",
    "get_device",
    "reference_inference",
    "run_dse",
    "zoo",
]

"""Weight / bias data packing — the framework's "Data files".

Weights are packed in exactly the order the LOAD_WGT module streams
them: ``[k-group][c-group][block][k][c][coeff...]``.  For Winograd
layers the offline transform ``U = G g G^T`` (Section 4.2.3) is applied
per decomposition block before packing, and the transformed
coefficients are quantised to the weight data type (the paper quantises
DNN parameters to 8 bits, Table 4 footnote).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import CompileError
from repro.arch.params import AcceleratorConfig
from repro.ir.tensor import DataType
from repro.mapping.partition import LayerPartition, c_groups, k_groups
from repro.winograd.decompose import decompose_kernel
from repro.winograd.matrices import algorithm_for_tile
from repro.winograd.transforms import transform_weight


@dataclass(frozen=True)
class WeightGroupSlot:
    """Location of one (k-group, c-group) inside the packed image."""

    k0: int
    k_count: int
    c0: int
    c_count: int
    offset: int  # element offset inside the layer's weight region
    elems: int
    shape: Tuple[int, ...]  # logical shape of the stored block


@dataclass(frozen=True)
class PackedWeights:
    """One layer's weight image plus its group directory.

    ``image`` may be empty when packed with ``data=False``;
    ``total_elems`` always reflects the full image size.

    ``scales`` (Winograd + quantised only) holds one power-of-two
    factor per (decomposition block, tile row, tile col): transformed
    coefficients are stored divided by their position's scale so the
    8-bit grid is well used, and the PE re-applies the scale as a shift
    before the output transform — the per-position block quantisation
    behind the paper's "correction term related to quantization
    strategies" (Eq. 3's alpha).
    """

    layer_name: str
    mode: str
    image: np.ndarray  # flat float64 (already quantised values)
    slots: List[WeightGroupSlot]
    total_elems: int = 0
    scales: Optional[np.ndarray] = None  # (blocks, PT, PT) or None

    @property
    def elems(self) -> int:
        return self.total_elems or int(self.image.size)

    def slot(self, k0: int, c0: int) -> WeightGroupSlot:
        for slot in self.slots:
            if slot.k0 == k0 and slot.c0 == c0:
                return slot
        raise CompileError(
            f"{self.layer_name}: no weight slot at k0={k0} c0={c0}"
        )


def _scale_per_position(
    stacked: np.ndarray, weight_type: DataType
) -> Tuple[np.ndarray, np.ndarray]:
    """Normalise transformed weights per EWMM position.

    For each (block, tile-row, tile-col) the coefficients across K and C
    are divided by a power-of-two scale so their maximum sits just
    inside the representable range; the PE undoes the scale with a
    shift.  Without this, the small G-matrix entries of F(4x4,3x3)
    (1/24) push coefficients below the 8-bit LSB.
    """
    # stacked: (blocks, K, C, PT, PT)
    maxima = np.abs(stacked).max(axis=(1, 2))  # (blocks, PT, PT)
    maxima = np.where(maxima > 0, maxima, 1.0)
    exponents = np.ceil(np.log2(maxima / weight_type.max_value))
    scales = np.power(2.0, exponents)
    return stacked / scales[:, None, None], scales


def pack_weights(
    cfg: AcceleratorConfig,
    partition: LayerPartition,
    kernels: np.ndarray,
    weight_type: Optional[DataType],
    data: bool = True,
) -> PackedWeights:
    """Pack (and, for Winograd, transform) one layer's kernels.

    ``kernels`` has shape ``(K, C, R, S)`` (Dense layers pass their
    ``(K, C, 1, 1)`` view).  ``weight_type=None`` packs exact float64
    values (used by functional equivalence tests).  ``data=False``
    computes only the group directory (offsets/sizes) without
    materialising the image — enough for timing-only simulation of
    large sweeps.
    """
    kernels = np.asarray(kernels, dtype=np.float64)
    k, c, r, s = kernels.shape
    if (k, c) != (partition.out_channels, partition.channels):
        raise CompileError(
            f"{partition.layer_name}: kernels {kernels.shape} do not match "
            f"partition K={partition.out_channels} C={partition.channels}"
        )
    if (r, s) != partition.kernel:
        raise CompileError(
            f"{partition.layer_name}: kernel size {(r, s)} != "
            f"{partition.kernel}"
        )

    scales = None
    if partition.mode == "wino":
        coeff_shape = (cfg.pt, cfg.pt)
        if data:
            alg = algorithm_for_tile(cfg.pt)
            blocks = decompose_kernel(kernels, alg.r)
            if tuple(offset for offset, _ in blocks) != partition.blocks:
                raise CompileError(
                    f"{partition.layer_name}: decomposition mismatch"
                )
            transformed = [
                transform_weight(alg, block) for _, block in blocks
            ]
            # (n_blocks, K, C, PT, PT)
            stacked = np.stack(transformed, axis=0)
            if weight_type is not None:
                stacked, scales = _scale_per_position(stacked, weight_type)
    else:
        coeff_shape = (r, s)
        if data:
            stacked = kernels[None]  # (1, K, C, R, S)

    if data and weight_type is not None:
        stacked = weight_type.quantize(stacked)

    pieces = []
    slots = []
    offset = 0
    coeffs = coeff_shape[0] * coeff_shape[1]
    for k0, k_count in k_groups(partition):
        for c0, c_count in c_groups(partition):
            elems = len(partition.blocks) * k_count * c_count * coeffs
            slots.append(
                WeightGroupSlot(
                    k0=k0,
                    k_count=k_count,
                    c0=c0,
                    c_count=c_count,
                    offset=offset,
                    elems=elems,
                    shape=(len(partition.blocks), k_count, c_count)
                    + coeff_shape,
                )
            )
            if data:
                # stream order: [block][k][c][coeff]
                block = stacked[:, k0 : k0 + k_count, c0 : c0 + c_count]
                pieces.append(np.ascontiguousarray(block).reshape(-1))
            offset += elems
    if data:
        image = np.concatenate(pieces) if pieces else np.zeros(0)
    else:
        image = np.zeros(0)
    return PackedWeights(
        layer_name=partition.layer_name,
        mode=partition.mode,
        image=image,
        slots=slots,
        total_elems=offset,
        scales=scales,
    )


def pack_bias(
    partition: LayerPartition,
    bias: Optional[np.ndarray],
    accum_type: Optional[DataType] = None,
) -> np.ndarray:
    """Flat bias image (zeros when the layer has no bias)."""
    k = partition.out_channels
    if bias is None:
        return np.zeros(k, dtype=np.float64)
    bias = np.asarray(bias, dtype=np.float64).reshape(-1)
    if bias.size != k:
        raise CompileError(
            f"{partition.layer_name}: bias has {bias.size} entries, "
            f"expected {k}"
        )
    if accum_type is not None:
        bias = accum_type.quantize(bias)
    return bias.copy()

"""Layer-to-instruction code generation.

For every compute layer the compiler walks the group partitioning of
Section 4.2.4 in the order dictated by the layer's dataflow:

* **IS** (Eq. 12/14): outer loop over row groups; the strip is loaded
  once and all ``GK`` weight groups stream past it (weights are
  re-loaded every row group — the ``H x T_LDW`` term).  IS requires the
  whole channel depth of a strip to be resident (``GC == 1``).
* **WS** (Eq. 13/15): outer loop over weight groups; each weight group
  is loaded once and all row groups stream past it (the
  ``GK x T_LDI`` term).

Handshake-FIFO flags are attached exactly as Section 4.1 describes:
consumers wait for data tokens, producers wait for free tokens, and the
last consumer of a ping-pong half releases it.

Non-accelerator operations (flatten, overlapping pooling, stand-alone
ReLU) become host steps between accelerator program segments — the
heterogeneous task-partitioning story of the paper's introduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.errors import CompileError
from repro.arch import layouts
from repro.arch.params import AcceleratorConfig
from repro.ir.graph import Network
from repro.ir.layers import (
    AvgPool2D,
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    ReLU,
)
from repro.isa.instructions import (
    Comp,
    DeptFlag,
    LoadBias,
    LoadInp,
    LoadWgt,
    Save,
)
from repro.isa.program import Program
from repro.mapping.partition import (
    LayerPartition,
    c_groups,
    fused_pool_for,
    k_groups,
    partition_layer,
    row_groups,
)
from repro.mapping.strategy import NetworkMapping
from repro.compiler.data import PackedWeights, pack_bias, pack_weights


@dataclass(frozen=True)
class FeatureMapSpec:
    """One feature map living in external memory."""

    region: str
    channels: int
    height: int
    width: int
    layout: int  # layouts.SPAT | layouts.WINO

    @property
    def elems(self) -> int:
        return 0  # computed with lane width by words_for()

    def words(self, lanes: int) -> int:
        return layouts.feature_words(
            self.channels, self.height, self.width, lanes
        )


@dataclass
class AccelStep:
    """One contiguous accelerator program segment."""

    program: Program


@dataclass
class HostStep:
    """An operation executed by the host runtime between segments."""

    op: str  # "flatten" | "maxpool" | "avgpool" | "relu"
    layer_name: str
    src: FeatureMapSpec
    dst: FeatureMapSpec
    params: dict = field(default_factory=dict)


@dataclass(frozen=True)
class CompilerOptions:
    """Code-generation switches.

    ``quantize=False`` keeps all data in exact float64 — used by the
    functional-equivalence tests so the accelerator output can be
    compared bit-for-bit against the float reference.

    ``pack_data=False`` skips materialising weight images (group
    directories are still computed); only valid for timing-only runs.
    """

    quantize: bool = True
    pack_data: bool = True


@dataclass
class CompiledModel:
    """Everything the runtime needs to execute a network."""

    network_name: str
    cfg: AcceleratorConfig
    mapping: NetworkMapping
    options: CompilerOptions
    steps: List[Union[AccelStep, HostStep]]
    input_spec: FeatureMapSpec
    output_spec: FeatureMapSpec
    fmaps: Dict[str, FeatureMapSpec]
    weights: Dict[str, PackedWeights]
    biases: Dict[str, np.ndarray]
    partitions: Dict[str, LayerPartition]

    @property
    def total_instructions(self) -> int:
        return sum(
            len(step.program)
            for step in self.steps
            if isinstance(step, AccelStep)
        )

    def programs(self) -> List[Program]:
        return [s.program for s in self.steps if isinstance(s, AccelStep)]


def _consumer_layout(network: Network, index: int,
                     mapping: NetworkMapping) -> int:
    """Layout the feature produced after layer ``index`` must use: the
    mode of the next compute layer consuming it (Figure 5's SAVE-side
    reordering), SPAT when the network ends or a host op intervenes."""
    for info in list(network)[index + 1 :]:
        layer = info.layer
        if layer.is_compute:
            mode = mapping.for_layer(layer.name).mode
            return layouts.WINO if mode == "wino" else layouts.SPAT
        if isinstance(layer, (ReLU, MaxPool2D, AvgPool2D)):
            continue  # fused or host op; host ops re-pack anyway
        if isinstance(layer, Flatten):
            return layouts.SPAT
    return layouts.SPAT


class _Emitter:
    """Per-segment emission state (FIFO half counters, descriptors)."""

    def __init__(self, cfg: AcceleratorConfig):
        self.cfg = cfg
        self.program = Program()
        self.descriptors: Dict[int, dict] = {}
        self.inp_half = 0
        self.wgt_half = 0
        self.out_half = 0

    def _push(self, instruction, desc: dict) -> int:
        index = len(self.program)
        self.program.append(instruction)
        self.descriptors[index] = desc
        return index

    def finish(self) -> Program:
        self.program.metadata["descriptors"] = self.descriptors
        return self.program

    # -- per-instruction helpers ---------------------------------------

    def load_inp(self, *, src: FeatureMapSpec, y_start: int, rows: int,
                 c0: int, c_count: int, pad_left: int, pad_right: int,
                 partition: LayerPartition) -> int:
        """Emit LOAD_INP for an input strip (rows may hang over the
        feature's edge; the load manager zero-fills)."""
        half = self.inp_half
        self.inp_half ^= 1
        pad_top = max(0, -y_start)
        pad_bottom = max(0, y_start + rows - src.height)
        rows_read = rows - pad_top - pad_bottom
        c_vecs = -(-c_count // self.cfg.pi)
        instruction = LoadInp(
            dept_flag=DeptFlag.WAIT_FREE | DeptFlag.EMIT,
            buff_id=half,
            buff_base=0,
            dram_base=0,
            size_chan=c_vecs,
            size_rows=max(rows_read, 0),
            size_cols=src.width,
            pads_top=pad_top,
            pads_bottom=pad_bottom,
            pads_left=pad_left,
            pads_right=pad_right,
            wino_flag=1 if src.layout == layouts.WINO else 0,
        )
        elems = max(rows_read, 0) * src.width * c_vecs * self.cfg.pi
        desc = {
            "kind": "load_inp",
            "region": src.region,
            "layout": src.layout,
            "channels": src.channels,
            "height": src.height,
            "width": src.width,
            "y_start": y_start,
            "rows": rows,
            "c0": c0,
            "c_count": c_count,
            "pad_left": pad_left,
            "pad_right": pad_right,
            "elems": elems,
            "half": half,
        }
        return self._push(instruction, desc)

    def load_wgt(self, *, layer_name: str, slot, partition: LayerPartition,
                 mode: str) -> int:
        half = self.wgt_half
        self.wgt_half ^= 1
        k_vecs = -(-slot.k_count // self.cfg.po)
        c_vecs = -(-slot.c_count // self.cfg.pi)
        coeff_rows, coeff_cols = (
            (self.cfg.pt, self.cfg.pt) if mode == "wino" else partition.kernel
        )
        instruction = LoadWgt(
            dept_flag=DeptFlag.WAIT_FREE | DeptFlag.EMIT,
            buff_id=half,
            size_chan=k_vecs * c_vecs,
            size_rows=coeff_rows,
            size_cols=coeff_cols,
            wino_flag=1 if mode == "wino" else 0,
        )
        desc = {
            "kind": "load_wgt",
            "region": f"wgt:{layer_name}",
            "offset": slot.offset,
            "shape": slot.shape,
            "elems": slot.elems,
            "half": half,
        }
        return self._push(instruction, desc)

    def load_bias(self, *, layer_name: str, count: int) -> int:
        instruction = LoadBias(
            dept_flag=DeptFlag.NONE,
            size_chan=-(-count // self.cfg.po),
        )
        desc = {
            "kind": "load_bias",
            "region": f"bias:{layer_name}",
            "count": count,
            "elems": count,
        }
        return self._push(instruction, desc)

    def comp(self, *, partition: LayerPartition, k0: int, k_count: int,
             c0: int, c_count: int, out_w: int, rows_out: int,
             wait_inp: bool, free_inp: bool, wait_wgt: bool, free_wgt: bool,
             clear: bool, flush: bool, relu: bool, quan_param: int,
             inp_half: int, wgt_half: int, wgt_scales=None) -> int:
        dept = DeptFlag.NONE
        if wait_inp:
            dept |= DeptFlag.WAIT_INP
        if free_inp:
            dept |= DeptFlag.FREE_INP
        if wait_wgt:
            dept |= DeptFlag.WAIT_WGT
        if free_wgt:
            dept |= DeptFlag.FREE_WGT
        out_half = self.out_half
        if flush:
            dept |= DeptFlag.EMIT | DeptFlag.WAIT_FREE
            self.out_half ^= 1
        instruction = Comp(
            dept_flag=dept,
            iw_number=out_w,
            ic_number=-(-c_count // self.cfg.pi),
            oc_number=-(-k_count // self.cfg.po),
            stride_size=partition.stride,
            relu_flag=1 if (relu and flush) else 0,
            quan_param=quan_param,
            wino_flag=1 if partition.mode == "wino" else 0,
            accum_clear=1 if clear else 0,
            accum_flush=1 if flush else 0,
            inp_buff_id=inp_half,
            wgt_buff_id=wgt_half,
            out_buff_id=out_half,
        )
        desc = {
            "kind": "comp",
            "mode": partition.mode,
            "stride": partition.stride,
            "blocks": partition.blocks,
            "kernel": partition.kernel,
            "k0": k0,
            "k_count": k_count,
            "c0": c0,
            "c_count": c_count,
            "out_w": out_w,
            "rows_out": rows_out,
            "relu": relu and flush,
            "clear": clear,
            "flush": flush,
            "inp_half": inp_half,
            "wgt_half": wgt_half,
            "out_half": out_half,
            "wgt_scales": wgt_scales,
        }
        return self._push(instruction, desc)

    def save(self, *, dst: FeatureMapSpec, partition: LayerPartition,
             y0_out: int, rows_valid: int, k0: int, k_count: int,
             pool: int, out_half: int) -> int:
        instruction = Save(
            dept_flag=DeptFlag.WAIT_INP | DeptFlag.FREE_INP,
            buff_id=out_half,
            size_chan=-(-k_count // self.cfg.po),
            size_rows=max(rows_valid // max(pool, 1), 1) if pool > 1 else rows_valid,
            size_cols=dst.width,
            wino_flag=1 if partition.mode == "wino" else 0,
            dst_wino_flag=1 if dst.layout == layouts.WINO else 0,
            pool_size=pool,
            oc_blk_number=-(-k_count // self.cfg.po),
            ow_blk_number=max(1, dst.width // 255 + 1),
        )
        rows_dst = rows_valid // pool if pool > 1 else rows_valid
        elems = (
            -(-k_count // self.cfg.po) * self.cfg.po * rows_dst * dst.width
        )
        desc = {
            "kind": "save",
            "region": dst.region,
            "dst_layout": dst.layout,
            "dst_channels": dst.channels,
            "dst_height": dst.height,
            "dst_width": dst.width,
            "y0_out": y0_out,
            "rows_valid": rows_valid,
            "k0": k0,
            "k_count": k_count,
            "pool": pool,
            "elems": max(elems, 0),
            "half": out_half,
        }
        return self._push(instruction, desc)


def _emit_layer(
    em: _Emitter,
    cfg: AcceleratorConfig,
    partition: LayerPartition,
    dataflow: str,
    src: FeatureMapSpec,
    dst: FeatureMapSpec,
    packed: PackedWeights,
    relu: bool,
    pool: int,
    quan_param: int,
) -> None:
    """Emit one layer's instruction stream (IS or WS loop order)."""
    rgroups = row_groups(partition)
    kgroups = k_groups(partition)
    cgroups = c_groups(partition)
    gc = len(cgroups)
    if dataflow == "is" and gc > 1:
        raise CompileError(
            f"{partition.layer_name}: IS dataflow requires the whole "
            f"strip depth on chip (GC={gc}); use WS"
        )

    start = len(em.program)
    em.load_bias(layer_name=partition.layer_name, count=partition.out_channels)

    def in_row_start(y0_out: int) -> int:
        return y0_out * partition.stride - partition.padding

    if dataflow == "is":
        (c0, cc), = cgroups
        for (y0, rows) in rgroups:
            li = em.load_inp(
                src=src,
                y_start=in_row_start(y0),
                rows=partition.strip_rows,
                c0=c0,
                c_count=cc,
                pad_left=partition.padding,
                pad_right=partition.padding,
                partition=partition,
            )
            inp_half = em.descriptors[li]["half"]
            for kg_idx, (k0, kc) in enumerate(kgroups):
                slot = packed.slot(k0, c0)
                lw = em.load_wgt(
                    layer_name=partition.layer_name,
                    slot=slot,
                    partition=partition,
                    mode=partition.mode,
                )
                wgt_half = em.descriptors[lw]["half"]
                em.comp(
                    partition=partition,
                    k0=k0,
                    k_count=kc,
                    c0=c0,
                    c_count=cc,
                    out_w=partition.out_w,
                    rows_out=partition.rows_per_group,
                    wait_inp=(kg_idx == 0),
                    free_inp=(kg_idx == len(kgroups) - 1),
                    wait_wgt=True,
                    free_wgt=True,
                    clear=True,
                    flush=True,
                    relu=relu,
                    quan_param=quan_param,
                    inp_half=inp_half,
                    wgt_half=wgt_half,
                    wgt_scales=packed.scales,
                )
                out_half = em.descriptors[len(em.program) - 1]["out_half"]
                em.save(
                    dst=dst,
                    partition=partition,
                    y0_out=y0,
                    rows_valid=rows,
                    k0=k0,
                    k_count=kc,
                    pool=pool,
                    out_half=out_half,
                )
    else:  # ws
        for (k0, kc) in kgroups:
            if gc == 1:
                (c0, cc), = cgroups
                lw = em.load_wgt(
                    layer_name=partition.layer_name,
                    slot=packed.slot(k0, c0),
                    partition=partition,
                    mode=partition.mode,
                )
                kg_wgt_half = em.descriptors[lw]["half"]
            for ry_idx, (y0, rows) in enumerate(rgroups):
                for cg_idx, (c0, cc) in enumerate(cgroups):
                    if gc > 1:
                        lw = em.load_wgt(
                            layer_name=partition.layer_name,
                            slot=packed.slot(k0, c0),
                            partition=partition,
                            mode=partition.mode,
                        )
                        wgt_half = em.descriptors[lw]["half"]
                        wait_wgt = True
                        free_wgt = True
                    else:
                        wgt_half = kg_wgt_half
                        wait_wgt = ry_idx == 0
                        free_wgt = ry_idx == len(rgroups) - 1
                    li = em.load_inp(
                        src=src,
                        y_start=in_row_start(y0),
                        rows=partition.strip_rows,
                        c0=c0,
                        c_count=cc,
                        pad_left=partition.padding,
                        pad_right=partition.padding,
                        partition=partition,
                    )
                    inp_half = em.descriptors[li]["half"]
                    em.comp(
                        partition=partition,
                        k0=k0,
                        k_count=kc,
                        c0=c0,
                        c_count=cc,
                        out_w=partition.out_w,
                        rows_out=partition.rows_per_group,
                        wait_inp=True,
                        free_inp=True,
                        wait_wgt=wait_wgt and cg_idx == 0 if gc == 1 else True,
                        free_wgt=free_wgt and cg_idx == gc - 1 if gc == 1 else True,
                        clear=(cg_idx == 0),
                        flush=(cg_idx == gc - 1),
                        relu=relu,
                        quan_param=quan_param,
                        inp_half=inp_half,
                        wgt_half=wgt_half,
                        wgt_scales=packed.scales,
                    )
                out_half = em.descriptors[len(em.program) - 1]["out_half"]
                em.save(
                    dst=dst,
                    partition=partition,
                    y0_out=y0,
                    rows_valid=rows,
                    k0=k0,
                    k_count=kc,
                    pool=pool,
                    out_half=out_half,
                )
    em.program.mark_layer(
        partition.layer_name, start, partition.mode, dataflow
    )


def compile_network(
    network: Network,
    cfg: AcceleratorConfig,
    mapping: NetworkMapping,
    params: Dict[str, dict],
    options: Optional[CompilerOptions] = None,
) -> CompiledModel:
    """Compile ``network`` for one accelerator instance.

    ``params`` maps layer name -> ``{"weights": (K,C,R,S) or (M,N),
    "bias": (K,)}`` arrays (see :mod:`repro.runtime.params` for the
    seeded synthetic generator).
    """
    options = options or CompilerOptions()
    mapping.validate_against(network)
    weight_type = cfg.weight_type if options.quantize else None

    steps: List[Union[AccelStep, HostStep]] = []
    fmaps: Dict[str, FeatureMapSpec] = {}
    weights: Dict[str, PackedWeights] = {}
    biases: Dict[str, np.ndarray] = {}
    partitions: Dict[str, LayerPartition] = {}

    first_compute = next(
        (i for i in network.compute_layers()), None
    )
    if first_compute is None:
        raise CompileError("network has no compute layers")
    in_mode = mapping.for_layer(first_compute.layer.name).mode
    current = FeatureMapSpec(
        region="fmap:in",
        channels=network.input_shape.channels,
        height=network.input_shape.height,
        width=network.input_shape.width,
        layout=layouts.WINO if in_mode == "wino" else layouts.SPAT,
    )
    input_spec = current
    fmaps["in"] = current

    em: Optional[_Emitter] = None

    def ensure_emitter() -> _Emitter:
        nonlocal em
        if em is None:
            em = _Emitter(cfg)
        return em

    def close_segment() -> None:
        nonlocal em
        if em is not None and len(em.program):
            steps.append(AccelStep(program=em.finish()))
        em = None

    infos = list(network)
    skip = set()
    for info in infos:
        index = info.index
        layer = info.layer
        if index in skip:
            continue
        if isinstance(layer, (Conv2D, Dense)):
            m = mapping.for_layer(layer.name)
            pool = fused_pool_for(network, index)
            relu = bool(getattr(layer, "relu", False))
            out_shape = info.output_shape
            if not relu and network.fused_relu_after(index):
                relu = True
                skip.add(index + 1)
            if pool > 1:
                pool_info = infos[index + (2 if (index + 1) in skip else 1)]
                skip.add(pool_info.index)
                out_shape = pool_info.output_shape
            partition = partition_layer(
                cfg, info, m.mode, fused_pool=pool
            )
            partitions[layer.name] = partition

            layer_params = params.get(layer.name, {})
            kernels = layer_params.get("weights")
            if kernels is None:
                raise CompileError(f"missing weights for {layer.name!r}")
            kernels = np.asarray(kernels, dtype=np.float64)
            if isinstance(layer, Dense):
                kernels = kernels.reshape(
                    layer.out_features, info.input_shape.size, 1, 1
                )
            packed = pack_weights(
                cfg, partition, kernels, weight_type,
                data=options.pack_data,
            )
            weights[layer.name] = packed
            biases[layer.name] = pack_bias(
                partition, layer_params.get("bias")
            )

            dst_layout = _consumer_layout(
                network, pool_info.index if pool > 1 else index, mapping
            )
            dst = FeatureMapSpec(
                region=f"fmap:{layer.name}",
                channels=out_shape.channels,
                height=out_shape.height,
                width=out_shape.width,
                layout=dst_layout,
            )
            fmaps[layer.name] = dst
            emitter = ensure_emitter()
            _emit_layer(
                emitter,
                cfg,
                partition,
                m.dataflow,
                current,
                dst,
                packed,
                relu,
                pool,
                quan_param=cfg.feature_type.frac if options.quantize else 0,
            )
            current = dst
        elif isinstance(layer, ReLU):
            # Unfused stand-alone ReLU -> host step.
            close_segment()
            dst = FeatureMapSpec(
                region=f"fmap:{layer.name}",
                channels=current.channels,
                height=current.height,
                width=current.width,
                layout=_consumer_layout(network, index, mapping),
            )
            fmaps[layer.name] = dst
            steps.append(HostStep("relu", layer.name, current, dst))
            current = dst
        elif isinstance(layer, (MaxPool2D, AvgPool2D)):
            # Reaching here means the pool was not fusable.
            close_segment()
            out_shape = info.output_shape
            dst = FeatureMapSpec(
                region=f"fmap:{layer.name}",
                channels=out_shape.channels,
                height=out_shape.height,
                width=out_shape.width,
                layout=_consumer_layout(network, index, mapping),
            )
            fmaps[layer.name] = dst
            op = "maxpool" if isinstance(layer, MaxPool2D) else "avgpool"
            steps.append(
                HostStep(
                    op,
                    layer.name,
                    current,
                    dst,
                    params={"pool": layer.pool_size, "stride": layer.stride},
                )
            )
            current = dst
        elif isinstance(layer, Flatten):
            close_segment()
            out_shape = info.output_shape
            dst = FeatureMapSpec(
                region=f"fmap:{layer.name}",
                channels=out_shape.channels,
                height=1,
                width=1,
                layout=_consumer_layout(network, index, mapping),
            )
            fmaps[layer.name] = dst
            steps.append(HostStep("flatten", layer.name, current, dst))
            current = dst
        else:
            raise CompileError(
                f"cannot compile layer type {type(layer).__name__}"
            )
    close_segment()

    return CompiledModel(
        network_name=network.name,
        cfg=cfg,
        mapping=mapping,
        options=options,
        steps=steps,
        input_spec=input_spec,
        output_spec=current,
        fmaps=fmaps,
        weights=weights,
        biases=biases,
        partitions=partitions,
    )

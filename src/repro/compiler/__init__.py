"""The HybridDNN compiler (framework Step 3, software side).

Translates a network + mapping strategy into:

* a :class:`~repro.isa.program.Program` (the "Inst. files" of Figure 1),
* packed weight/bias data images with the offline Winograd weight
  transform applied (the "Data files"),
* a DRAM allocation plan and an execution plan interleaving accelerator
  segments with the few host-side operations (flatten, overlapping
  pooling) the accelerator does not implement.

Public API
----------
``compile_network`` -> :class:`CompiledModel`
"""

from repro.compiler.codegen import (
    AccelStep,
    CompiledModel,
    CompilerOptions,
    HostStep,
    compile_network,
)
from repro.compiler.data import pack_bias, pack_weights

__all__ = [
    "AccelStep",
    "CompiledModel",
    "CompilerOptions",
    "HostStep",
    "compile_network",
    "pack_bias",
    "pack_weights",
]

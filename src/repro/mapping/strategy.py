"""Mode / dataflow selections — the software-perspective DSE parameters.

Table 2: ``mode_l in {"spat", "wino"}``, ``dataflow_l in {"is", "ws"}``
for every CONV or FC layer ``l``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List

from repro.errors import CompileError
from repro.ir.graph import LayerInfo, Network
from repro.ir.layers import Conv2D, Dense

MODES = ("spat", "wino")
DATAFLOWS = ("is", "ws")


@dataclass(frozen=True)
class LayerMapping:
    """Mode and dataflow choice for one compute layer."""

    layer_name: str
    mode: str
    dataflow: str

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise CompileError(
                f"{self.layer_name}: unknown mode {self.mode!r}"
            )
        if self.dataflow not in DATAFLOWS:
            raise CompileError(
                f"{self.layer_name}: unknown dataflow {self.dataflow!r}"
            )


def winograd_supported(info: LayerInfo) -> bool:
    """Whether the accelerator can run this layer in Winograd mode.

    Winograd requires stride 1 (Section 4.2.5 extends kernel *size*, not
    stride).  Dense layers are executed as 1x1 convolutions and are
    technically Winograd-capable, but with tile overhead
    ``PT^2 / m^2 > 1`` the DSE never selects it; we still allow it.
    """
    layer = info.layer
    if isinstance(layer, Conv2D):
        return layer.stride == 1
    if isinstance(layer, Dense):
        return True
    return False


@dataclass
class NetworkMapping:
    """Per-layer mapping for every compute layer of a network."""

    network_name: str
    layers: List[LayerMapping] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [m.layer_name for m in self.layers]
        if len(names) != len(set(names)):
            raise CompileError("duplicate layer names in mapping")
        self._by_name: Dict[str, LayerMapping] = {
            m.layer_name: m for m in self.layers
        }

    def __iter__(self) -> Iterator[LayerMapping]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def for_layer(self, layer_name: str) -> LayerMapping:
        try:
            return self._by_name[layer_name]
        except KeyError:
            raise CompileError(
                f"no mapping for layer {layer_name!r}"
            ) from None

    def validate_against(self, network: Network) -> None:
        """Check the mapping covers exactly the network's compute layers
        and respects mode restrictions."""
        compute = network.compute_layers()
        expected = {info.layer.name for info in compute}
        got = set(self._by_name)
        if expected != got:
            missing = sorted(expected - got)
            extra = sorted(got - expected)
            raise CompileError(
                f"mapping mismatch: missing={missing} extra={extra}"
            )
        for info in compute:
            mapping = self._by_name[info.layer.name]
            if mapping.mode == "wino" and not winograd_supported(info):
                raise CompileError(
                    f"{info.layer.name}: Winograd mode not supported "
                    "(stride > 1)"
                )

    @classmethod
    def uniform(
        cls, network: Network, mode: str = "spat", dataflow: str = "is"
    ) -> "NetworkMapping":
        """Same mode/dataflow for every compute layer (mode downgraded to
        Spatial where Winograd is unsupported)."""
        layers = []
        for info in network.compute_layers():
            layer_mode = mode
            if layer_mode == "wino" and not winograd_supported(info):
                layer_mode = "spat"
            layers.append(
                LayerMapping(info.layer.name, layer_mode, dataflow)
            )
        return cls(network.name, layers)

    def counts(self) -> Dict[str, int]:
        """How many layers use each mode/dataflow (for reports)."""
        result = {"spat": 0, "wino": 0, "is": 0, "ws": 0}
        for mapping in self.layers:
            result[mapping.mode] += 1
            result[mapping.dataflow] += 1
        return result

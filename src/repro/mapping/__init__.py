"""DNN-to-accelerator mapping abstractions (software-perspective DSE
parameters).

``LayerMapping`` fixes one layer's CONV mode (Spatial/Winograd) and
dataflow (IS/WS); ``NetworkMapping`` collects them for a whole model.
``partition`` implements the CONV operation partitioning of Section
4.2.4: row groups along the feature-map height, weight groups along the
output-channel dimension.
"""

from repro.mapping.strategy import (
    DATAFLOWS,
    MODES,
    LayerMapping,
    NetworkMapping,
)
from repro.mapping.partition import LayerPartition, partition_layer

__all__ = [
    "DATAFLOWS",
    "LayerMapping",
    "LayerPartition",
    "MODES",
    "NetworkMapping",
    "partition_layer",
]

"""CONV operation partitioning (Section 4.2.4).

Feature maps are partitioned into row groups along the height: one
output row per group in Spatial mode, ``m`` rows (one tile row) in
Winograd mode.  Weights are partitioned along the output-channel
dimension into ``GK`` groups sized to the weight buffer.  When even one
output-channel granule does not fit (large FC layers), the input-channel
dimension is additionally split into ``GC`` chunks and the accumulating
buffer carries partial sums across COMP instructions.

The same :class:`LayerPartition` drives the analytical latency model,
the compiler's instruction emission and the simulator's buffer checks,
so there is a single source of truth for group geometry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ResourceError, UnsupportedLayerError
from repro.arch.params import AcceleratorConfig
from repro.ir.graph import LayerInfo
from repro.ir.layers import Conv2D, Dense
from repro.winograd.decompose import decomposition_blocks


@dataclass(frozen=True)
class LayerPartition:
    """Group geometry of one compute layer under one mode.

    All element counts are *padded* to whole channel vectors where the
    hardware requires it; ``weight_elems_group`` is the DRAM traffic of
    one LOAD_WGT (already reflecting the Winograd expansion to ``PT^2``
    coefficients per decomposition block, Eq. 9).
    """

    layer_name: str
    mode: str
    # convolution geometry
    channels: int
    out_channels: int
    kernel: Tuple[int, int]
    stride: int
    padding: int
    in_h: int
    in_w: int
    out_h: int
    out_w: int
    fused_pool: int
    relu: bool
    # row groups
    rows_per_group: int  # output rows produced per group
    n_row_groups: int
    strip_rows: int  # input rows loaded per group
    # weight groups
    k_per_group: int
    n_k_groups: int  # the paper's GK
    c_per_group: int
    n_c_groups: int  # GC (input-channel split; 1 for most layers)
    # decomposition
    blocks: Tuple[Tuple[int, int], ...]
    # buffer occupancies (in elements)
    strip_elems: int
    weight_elems_group: int
    out_group_elems: int

    @property
    def total_groups(self) -> int:
        """Row x weight x channel group count — COMP instruction count."""
        return self.n_row_groups * self.n_k_groups * self.n_c_groups

    @property
    def weight_elems_total(self) -> int:
        """DRAM size of this layer's packed weights (one copy)."""
        return self.weight_elems_group * self.n_k_groups * self.n_c_groups


def _conv_geometry(info: LayerInfo):
    layer = info.layer
    if isinstance(layer, Dense):
        layer = layer.as_conv()
    if not isinstance(layer, Conv2D):
        raise UnsupportedLayerError(
            f"{info.layer.name}: only CONV/FC layers map onto the PE"
        )
    return layer


def partition_layer(
    cfg: AcceleratorConfig,
    info: LayerInfo,
    mode: str,
    fused_pool: int = 1,
) -> LayerPartition:
    """Compute the group partitioning of ``info`` under ``mode``.

    Raises :class:`ResourceError` when a single group cannot fit the
    configured on-chip buffers and
    :class:`UnsupportedLayerError` for Winograd with stride > 1.
    """
    layer = _conv_geometry(info)
    r, s = layer.kernel_size
    c = (
        info.input_shape.channels
        if not isinstance(info.layer, Dense) else info.input_shape.size
    )
    in_h = info.input_shape.height if not isinstance(info.layer, Dense) else 1
    in_w = info.input_shape.width if not isinstance(info.layer, Dense) else 1
    k = layer.out_channels
    out_h = info.output_shape.height
    out_w = info.output_shape.width
    stride = layer.stride
    padding = layer.padding

    if mode == "wino" and stride != 1:
        raise UnsupportedLayerError(
            f"{layer.name}: Winograd requires stride 1, got {stride}"
        )
    if mode not in ("spat", "wino"):
        raise UnsupportedLayerError(f"unknown mode {mode!r}")

    # -- row groups -----------------------------------------------------
    if mode == "wino":
        rows_per_group = cfg.m
        blocks = tuple(decomposition_blocks(r, s, 3))
        max_dr = max(dr for dr, _ in blocks)
        strip_rows = cfg.pt + max_dr
    else:
        rows_per_group = 1
        blocks = ((0, 0),)
        strip_rows = r

    if fused_pool > 1:
        # Fused pooling needs whole pool windows inside one SAVE group.
        while rows_per_group % fused_pool:
            rows_per_group += 1 if mode == "spat" else rows_per_group
            if rows_per_group > 16:
                raise UnsupportedLayerError(
                    f"{layer.name}: cannot align pool {fused_pool} with "
                    f"mode {mode}"
                )
        if mode == "spat":
            strip_rows = (rows_per_group - 1) * stride + r

    # A strip never needs more rows than the padded input provides
    # (1x1 features executed as FC, small inputs).
    strip_rows = min(strip_rows, in_h + 2 * padding)

    n_row_groups = -(-out_h // rows_per_group)

    # -- buffer capacities (elements) --------------------------------------
    input_capacity = cfg.input_buffer_vecs * cfg.pi
    weight_capacity = cfg.weight_buffer_vecs * cfg.pi * cfg.po
    output_capacity = cfg.output_buffer_vecs * cfg.po

    granule = cfg.po * cfg.pt if mode == "spat" else cfg.po
    per_c_elems = len(blocks) * cfg.pt * cfg.pt if mode == "wino" else r * s
    k_padded = -(-k // granule) * granule
    padded_w = in_w + 2 * padding

    def _floor_multiple(value: int, step: int) -> int:
        return (value // step) * step

    # -- input-channel chunking (the adaptive partition of Sec. 4.2.4) ----
    # A chunk of channels must fit both the input-strip buffer and, with
    # at least one output-channel granule, the weight buffer.
    strip_footprint = strip_rows * padded_w  # elements per channel
    c_strip_max = input_capacity // strip_footprint
    if c_strip_max >= c:
        c_strip_allowed = c
    else:
        c_strip_allowed = _floor_multiple(c_strip_max, cfg.pi)
        if c_strip_allowed < cfg.pi:
            raise ResourceError(
                f"{layer.name}: even {cfg.pi} channels of one input strip "
                f"({cfg.pi * strip_footprint} elements) exceed the input "
                f"buffer half ({input_capacity})"
            )
    c_wgt_max = weight_capacity // (granule * per_c_elems)
    if c_wgt_max >= c:
        c_wgt_allowed = c
    else:
        c_wgt_allowed = _floor_multiple(c_wgt_max, cfg.pi)
        if c_wgt_allowed < cfg.pi:
            raise ResourceError(
                f"{layer.name}: one weight granule with {cfg.pi} channels "
                f"({granule * per_c_elems * cfg.pi} elements) exceeds the "
                f"weight buffer half ({weight_capacity})"
            )
    c_per_group = min(c, c_strip_allowed, c_wgt_allowed)
    n_c_groups = -(-c // c_per_group)

    c_vecs = -(-c_per_group // cfg.pi)
    strip_elems = c_vecs * cfg.pi * strip_footprint

    # -- output-channel groups --------------------------------------------
    k_wgt_max = weight_capacity // (per_c_elems * c_per_group)
    k_out_max = output_capacity // (rows_per_group * out_w)
    k_per_group = _floor_multiple(min(k_wgt_max, k_out_max), granule)
    if k_per_group < granule:
        if k_out_max < granule:
            raise ResourceError(
                f"{layer.name}: one output group of {granule} channels "
                f"({granule * rows_per_group * out_w} elements) exceeds "
                f"the output buffer half ({output_capacity})"
            )
        raise ResourceError(
            f"{layer.name}: one weight granule does not fit the weight "
            f"buffer half ({weight_capacity})"
        )
    k_per_group = min(k_per_group, k_padded)
    n_k_groups = -(-k_padded // k_per_group)

    weight_elems_group = k_per_group * c_per_group * per_c_elems
    out_group_elems = k_per_group * rows_per_group * out_w

    relu = bool(getattr(info.layer, "relu", False))
    return LayerPartition(
        layer_name=layer.name,
        mode=mode,
        channels=c,
        out_channels=k,
        kernel=(r, s),
        stride=stride,
        padding=padding,
        in_h=in_h,
        in_w=in_w,
        out_h=out_h,
        out_w=out_w,
        fused_pool=fused_pool,
        relu=relu,
        rows_per_group=rows_per_group,
        n_row_groups=n_row_groups,
        strip_rows=strip_rows,
        k_per_group=k_per_group,
        n_k_groups=n_k_groups,
        c_per_group=c_per_group,
        n_c_groups=n_c_groups,
        blocks=blocks,
        strip_elems=strip_elems,
        weight_elems_group=weight_elems_group,
        out_group_elems=out_group_elems,
    )


def fused_pool_for(network, index: int) -> int:
    """Pool size to fuse into layer ``index``'s SAVE path, or 1.

    Only non-overlapping pooling (stride == size) directly following the
    compute layer is fused; anything else is executed by the host
    runtime between accelerator segments.
    """
    from repro.ir.layers import MaxPool2D

    layers = network.layers
    nxt = index + 1
    if nxt < len(layers) and isinstance(layers[nxt], MaxPool2D):
        pool = layers[nxt]
        if pool.stride == pool.pool_size:
            return pool.pool_size
    return 1


def row_groups(partition: LayerPartition) -> List[Tuple[int, int]]:
    """(first output row, row count) of every row group."""
    groups = []
    y = 0
    while y < partition.out_h:
        rows = min(partition.rows_per_group, partition.out_h - y)
        groups.append((y, rows))
        y += rows
    return groups


def k_groups(partition: LayerPartition) -> List[Tuple[int, int]]:
    """(first output channel, channel count) of every weight group,
    clipped to the real (unpadded) channel count."""
    groups = []
    k = 0
    while k < partition.out_channels:
        count = min(partition.k_per_group, partition.out_channels - k)
        groups.append((k, count))
        k += count
    return groups


def c_groups(partition: LayerPartition) -> List[Tuple[int, int]]:
    """(first input channel, channel count) of every channel chunk."""
    groups = []
    c = 0
    while c < partition.channels:
        count = min(partition.c_per_group, partition.channels - c)
        groups.append((c, count))
        c += count
    return groups

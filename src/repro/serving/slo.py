"""SLO-aware control: shed or reroute when the observed tail drifts.

A latency SLO ("p99 under X ms") cannot be enforced by open-loop
accounting — the controller has to *watch* the system it steers.  On
the event kernel that is natural: :class:`SloController` subscribes to
:class:`~repro.serving.events.BatchDone` events to maintain a sliding
window of observed end-to-end latencies, and re-evaluates a windowed
nearest-rank p99 estimate on periodic
:class:`~repro.serving.events.PolicyTick` heartbeats.  While the
estimate exceeds the target the controller is *breached* and the server
applies the configured action to every batch it dispatches:

* ``shed`` — drop the batch (clients are notified so closed loops do
  not stall); counted per request in ``ServingReport.shed``;
* ``reroute`` — override the scheduling policy with the shard whose
  expected completion (Eq. 12-15 service estimate + measured backlog)
  is earliest; counted in ``ServingReport.rerouted`` when the override
  actually changed the pick.

Control state only changes on ticks — decisions are piecewise-constant
at the controller's cadence, like a real control loop, and the tick
chain ends itself once no other events remain, so a run always
terminates.

The controller never inspects scenario state: a degraded shard
(:class:`~repro.serving.events.ShardDegrade`) simply surfaces as
slower observed latencies and a later expected completion, so shed and
reroute react to chaos scenarios with no extra wiring —
:mod:`repro.serving.sweep` measures exactly this, reporting SLO
attainment per scenario across seeded grids.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, FrozenSet, Optional

from repro.errors import ServingError
from repro.serving.events import BatchDone, EventKernel, PolicyTick
from repro.serving.metrics import percentile
from repro.serving.tenancy import TenantSet

#: Actions understood by :class:`SloOptions` and the CLI.
SLO_ACTIONS = ("shed", "reroute")


@dataclass(frozen=True)
class SloOptions:
    """The SLO contract and the control loop's knobs.

    ``p99_target_s`` is the latency objective; ``window`` bounds how
    many recent completions the p99 estimate sees (a long window reacts
    slowly, a short one flaps); ``min_samples`` suppresses decisions
    before the window holds enough evidence; ``tick_s`` is the control
    period (default: half the target — Nyquist for the quantity being
    controlled).
    """

    p99_target_s: float
    action: str = "shed"
    window: int = 64
    min_samples: int = 8
    tick_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.p99_target_s <= 0:
            raise ServingError(
                f"p99 target must be positive, got {self.p99_target_s}"
            )
        if self.action not in SLO_ACTIONS:
            raise ServingError(
                f"unknown SLO action {self.action!r}; "
                f"expected one of {SLO_ACTIONS}"
            )
        if self.min_samples < 1:
            raise ServingError(
                f"min_samples must be >= 1, got {self.min_samples}"
            )
        if self.window < self.min_samples:
            raise ServingError(
                f"window ({self.window}) must hold at least min_samples "
                f"({self.min_samples}) completions"
            )
        if self.tick_s is not None and self.tick_s <= 0:
            raise ServingError(
                f"tick_s must be positive, got {self.tick_s}"
            )

    @property
    def effective_tick_s(self) -> float:
        return self.tick_s if self.tick_s is not None else (
            self.p99_target_s / 2.0
        )


class SloController:
    """Windowed-p99 feedback controller as a kernel event handler.

    Generalised over tenants: next to the global window the controller
    keeps one observation window *per tenant that declares its own p99
    target* (see :class:`~repro.serving.tenancy.TenantSpec`), all
    re-evaluated on the same tick chain.  A breached tenant's
    dispatches are shed individually — the batch tier degrades while
    the interactive tier keeps its SLO — independent of the global
    target's configured action.  With no tenant targets the controller
    is exactly the pre-tenancy one, tick for tick.
    """

    def __init__(
        self,
        options: Optional[SloOptions],
        tenants: Optional[TenantSet] = None,
    ):
        self.options = options
        self.tenant_targets: Dict[str, float] = (
            tenants.slo_targets() if tenants is not None else {}
        )
        if options is None and not self.tenant_targets:
            raise ServingError(
                "an SLO controller needs a global target or at least "
                "one per-tenant target"
            )
        window = options.window if options is not None else 64
        self.min_samples = options.min_samples if options is not None else 8
        self._window: Deque[float] = deque(maxlen=window)
        self._tenant_windows: Dict[str, Deque[float]] = {
            name: deque(maxlen=window) for name in self.tenant_targets
        }
        self.breached = False
        self.tenant_breached: Dict[str, bool] = {
            name: False for name in self.tenant_targets
        }
        self.ticks = 0
        self.breach_ticks = 0
        self.tenant_breach_ticks: Dict[str, int] = {
            name: 0 for name in self.tenant_targets
        }

    #: ``PolicyTick.owner`` tag of this controller's heartbeats; other
    #: controllers' ticks (e.g. the autoscaler's) are ignored.
    TICK_OWNER = "slo"

    @property
    def effective_tick_s(self) -> float:
        """Control period: from the global options, or Nyquist for the
        tightest per-tenant target when no global SLO is set."""
        if self.options is not None:
            return self.options.effective_tick_s
        return min(self.tenant_targets.values()) / 2.0

    def attach(self, kernel: EventKernel) -> None:
        """Subscribe the observation + heartbeat handlers and start the
        tick chain."""
        kernel.subscribe(BatchDone, self._on_batch_done)
        kernel.subscribe(PolicyTick, self._on_tick)
        kernel.push(
            PolicyTick(
                time=kernel.now + self.effective_tick_s,
                owner=self.TICK_OWNER,
            )
        )

    # -- observation ------------------------------------------------------

    def _on_batch_done(self, kernel: EventKernel, event: BatchDone) -> None:
        for record in event.records:
            self._window.append(record.latency)
            window = self._tenant_windows.get(record.tenant)
            if window is not None:
                window.append(record.latency)

    def p99_estimate(self) -> float:
        """Nearest-rank p99 over the observation window (NaN when
        empty)."""
        if not self._window:
            return float("nan")
        return percentile(list(self._window), 99)

    def tenant_p99_estimate(self, tenant: str) -> float:
        """Nearest-rank p99 over one tenant's window (NaN when empty)."""
        window = self._tenant_windows.get(tenant)
        if not window:
            return float("nan")
        return percentile(list(window), 99)

    # -- control ----------------------------------------------------------

    def _on_tick(self, kernel: EventKernel, event: PolicyTick) -> None:
        if event.owner != self.TICK_OWNER:
            return  # another controller's heartbeat
        self.ticks += 1
        if (
            self.options is not None
            and len(self._window) >= self.min_samples
        ):
            self.breached = (
                self.p99_estimate() > self.options.p99_target_s
            )
        else:
            self.breached = False
        if self.breached:
            self.breach_ticks += 1
        for name, target in self.tenant_targets.items():
            window = self._tenant_windows[name]
            breached = (
                len(window) >= self.min_samples
                and self.tenant_p99_estimate(name) > target
            )
            self.tenant_breached[name] = breached
            if breached:
                self.tenant_breach_ticks[name] += 1
        # Keep ticking only while the system still has non-tick events
        # in flight — the chain ends itself when the run drains.
        if kernel.pending() - kernel.pending(PolicyTick) > 0:
            kernel.push(
                PolicyTick(
                    time=kernel.now + self.effective_tick_s,
                    owner=self.TICK_OWNER,
                )
            )

    def should_shed(self) -> bool:
        return (
            self.breached
            and self.options is not None
            and self.options.action == "shed"
        )

    def should_reroute(self) -> bool:
        return (
            self.breached
            and self.options is not None
            and self.options.action == "reroute"
        )

    def breached_tenants(self) -> FrozenSet[str]:
        """The tenants whose own p99 target is currently breached —
        their dispatches are shed while the rest of the batch
        proceeds."""
        if not self.tenant_targets:
            return frozenset()
        return frozenset(
            name for name, breached in self.tenant_breached.items()
            if breached
        )

    def describe(self) -> str:
        p99 = self.p99_estimate()
        estimate = f"{p99 * 1e3:.2f} ms" if p99 == p99 else "n/a"
        if self.options is not None:
            lines = [
                f"slo: p99 target "
                f"{self.options.p99_target_s * 1e3:.2f} ms, "
                f"action {self.options.action}, "
                f"windowed estimate {estimate}, "
                f"{self.breach_ticks}/{self.ticks} ticks breached"
            ]
        else:
            lines = [
                f"slo: per-tenant targets only, windowed estimate "
                f"{estimate}, {self.ticks} ticks"
            ]
        for name, target in self.tenant_targets.items():
            tenant_p99 = self.tenant_p99_estimate(name)
            tenant_estimate = (
                f"{tenant_p99 * 1e3:.2f} ms"
                if tenant_p99 == tenant_p99 else "n/a"
            )
            lines.append(
                f"  tenant {name}: target {target * 1e3:.2f} ms, "
                f"estimate {tenant_estimate}, "
                f"{self.tenant_breach_ticks[name]}/{self.ticks} "
                "ticks breached"
            )
        return "\n".join(lines)

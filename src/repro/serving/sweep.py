"""Process-parallel chaos sweeps: scenario x policy x pool grids.

One serve run answers one question; robustness questions are grids —
*every* scenario against *every* policy at *every* pool size, seeded,
so the survival curves are reproducible and two branches can diff
them.  :func:`run_sweep` executes a :class:`SweepGrid` under
:class:`SweepOptions` and aggregates per-scenario SLO attainment and
survival fractions into a :class:`SweepReport` whose JSON form is
consumable by ``benchmarks/append_trajectory.py``.

Parallelism reuses the DSE engine's process-pool pattern
(``DseOptions.executor="process"``): workers are primed once via a
pool initializer with a picklable payload — the network, device and
*resolved* config, so no worker re-runs the DSE — and each cell runs a
complete, independent simulation in whatever process picks it up.
Determinism is preserved by construction: a cell's result depends only
on the cell (its seed is ``base seed + cell index``), results carry no
wall-clock fields, and the parent reassembles them in grid order — so
``executor="process"`` produces byte-identical report JSON to
``executor="serial"`` (a tier-1 test pins this, mirroring the DSE
equivalence test).
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ServingError
from repro.serving.batcher import BatcherOptions
from repro.serving.chaos import parse_scenario
from repro.serving.scheduler import POLICIES
from repro.serving.server import ShardServer
from repro.serving.workload import WorkloadSpec
from repro.serving.shard import ShardPool
from repro.serving.slo import SLO_ACTIONS, SloOptions
from repro.serving.traffic import (
    TraceSource,
    make_requests,
    parse_shape,
    shape_arrivals,
    shaped_trace,
)

#: Sweep execution backends.  ``thread`` is deliberately absent: cells
#: mutate shared shard timelines, so threads would need per-thread
#: pools for no benefit on GIL builds — the DSE keeps ``thread`` only
#: because its evaluations are read-only.
SWEEP_EXECUTORS = ("serial", "process")

#: The scenario spec meaning "no perturbation" in a grid.
BASELINE_SCENARIO = "none"

#: Survival-curve abscissae, as multiples of the per-cell SLO target.
SURVIVAL_MULTIPLES = (1.0, 2.0, 4.0, 8.0)


@dataclass(frozen=True)
class SweepOptions:
    """Knobs shared by every cell of one sweep.

    ``load_factor`` scales each pool's *simulated* service rate into
    the open-loop arrival rate, so a 3-shard cell faces proportionally
    more traffic than a 1-shard cell and cells stress comparable
    operating points.  ``slo_p99_s`` pins the attainment target; left
    ``None`` it defaults per cell to 4 batch service times on the
    cell's fastest shard.  ``slo_action`` arms a
    :class:`~repro.serving.slo.SloController` (``None`` = observe
    only).  ``shapes`` are ``--shape`` specs warped onto every cell's
    arrivals — synthetic *or* replayed: with ``trace`` set, every cell
    replays the recorded arrivals (rebased, ``trace_scale``-scaled,
    ``trace_loop``-repeated) composed through
    :func:`~repro.serving.traffic.shaped_trace`, and the synthetic
    knobs (``requests``/``traffic``/``load_factor``/``burst``) are
    ignored.  The trace is read and the shape composition is applied
    *here*, eagerly: a missing file, a malformed trace or a bad
    shape x trace combination fails at construction — never 80 cells
    into a sweep — and workers inherit the composed arrivals through
    the pickled options, so no worker re-reads the file.
    """

    executor: str = "serial"
    jobs: int = 1
    requests: int = 48
    traffic: str = "poisson"
    load_factor: float = 1.5
    burst: int = 8
    max_batch: Optional[int] = None
    max_wait_s: float = 0.0
    slo_p99_s: Optional[float] = None
    slo_action: Optional[str] = None
    shapes: Tuple[str, ...] = ()
    trace: Optional[str] = None
    trace_scale: float = 1.0
    trace_loop: int = 1
    event_budget: Optional[int] = None

    def __post_init__(self) -> None:
        if self.executor not in SWEEP_EXECUTORS:
            raise ServingError(
                f"unknown sweep executor {self.executor!r}; "
                f"expected one of {SWEEP_EXECUTORS}"
            )
        if self.jobs < 1:
            raise ServingError(f"jobs must be >= 1, got {self.jobs}")
        if self.requests < 1:
            raise ServingError(
                f"requests must be >= 1, got {self.requests}"
            )
        if self.load_factor <= 0:
            raise ServingError(
                f"load factor must be positive, got {self.load_factor}"
            )
        if self.slo_p99_s is not None and self.slo_p99_s <= 0:
            raise ServingError(
                f"SLO target must be positive, got {self.slo_p99_s}"
            )
        if self.slo_action is not None and (
            self.slo_action not in SLO_ACTIONS
        ):
            raise ServingError(
                f"unknown SLO action {self.slo_action!r}; "
                f"expected one of {SLO_ACTIONS}"
            )
        shapes = tuple(
            parse_shape(spec) for spec in self.shapes  # fail fast
        )
        if self.trace is None:
            if self.trace_scale != 1.0 or self.trace_loop != 1:
                raise ServingError(
                    "trace_scale/trace_loop only apply with a trace"
                )
            source = None
        else:
            # Load + scale + loop + warp once, up front: replay
            # problems surface here and the composed timeline ships to
            # workers inside the pickled options.
            source = TraceSource.load(
                self.trace,
                time_scale=self.trace_scale,
                loop=self.trace_loop,
            )
            if shapes:
                source = shaped_trace(source, shapes)
        # Not a dataclass field: derived, excluded from eq/repr, and
        # unpickling restores it via __dict__ without re-reading.
        object.__setattr__(self, "trace_source", source)


@dataclass(frozen=True)
class SweepCell:
    """One grid point: a scenario spec, a policy and a pool size."""

    index: int
    scenario: str
    policy: str
    pool_size: int
    seed: int


class SweepGrid:
    """The cross product of scenario specs, policies and pool sizes.

    Scenario specs use the :mod:`~repro.serving.chaos` grammar
    (``"none"`` for the unperturbed baseline); every spec must parse
    and must only name shards that exist at *every* pool size in the
    grid (``shard0`` .. ``shardN-1``), so a sweep fails at
    construction, not 80 cells in.
    """

    def __init__(
        self,
        scenarios: Sequence[str],
        policies: Sequence[str],
        pool_sizes: Sequence[int],
    ):
        if not scenarios or not policies or not pool_sizes:
            raise ServingError(
                "a sweep grid needs scenarios, policies and pool sizes"
            )
        for policy in policies:
            if policy not in POLICIES:
                raise ServingError(
                    f"unknown scheduling policy {policy!r}; "
                    f"expected one of {POLICIES}"
                )
        for size in pool_sizes:
            if size < 1:
                raise ServingError(
                    f"pool size must be >= 1, got {size}"
                )
        smallest = min(pool_sizes)
        valid = {f"shard{index}" for index in range(smallest)}
        for spec in scenarios:
            if spec == BASELINE_SCENARIO:
                continue
            # Seed 0 stands in: validity never depends on the seed
            # (only stragglers pulse times do).
            scenario = parse_scenario(spec, seed=0)
            missing = [n for n in scenario.names() if n not in valid]
            if missing:
                raise ServingError(
                    f"scenario {spec!r} names {missing} but the "
                    f"smallest pool in the grid has only shard0.."
                    f"shard{smallest - 1}"
                )
        self.scenarios = list(scenarios)
        self.policies = list(policies)
        self.pool_sizes = list(pool_sizes)

    def __len__(self) -> int:
        return (
            len(self.scenarios) * len(self.policies)
            * len(self.pool_sizes)
        )

    def cells(self, base_seed: int) -> List[SweepCell]:
        """The grid in canonical order (scenario-major), each cell
        seeded ``base_seed + index`` so cells are independent draws."""
        out = []
        for scenario in self.scenarios:
            for policy in self.policies:
                for size in self.pool_sizes:
                    out.append(SweepCell(
                        index=len(out),
                        scenario=scenario,
                        policy=policy,
                        pool_size=size,
                        seed=base_seed + len(out),
                    ))
        return out


class _SweepState:
    """Per-process sweep context: one session, pools cached by size."""

    def __init__(self, session, options: SweepOptions):
        self.session = session
        self.options = options
        self.shapes = tuple(
            parse_shape(spec) for spec in options.shapes
        )
        self._pools: Dict[int, ShardPool] = {}

    @classmethod
    def from_payload(cls, payload) -> "_SweepState":
        from repro.pipeline.session import PipelineSession

        network, device, cfg, compiler_options, seed, options = payload
        return cls(
            PipelineSession(
                network, device, cfg=cfg,
                compiler_options=compiler_options, seed=seed,
            ),
            options,
        )

    def pool(self, size: int) -> ShardPool:
        if size not in self._pools:
            self._pools[size] = ShardPool.replicate(self.session, size)
        return self._pools[size]

    def run(self, cell: SweepCell) -> dict:
        """One complete, deterministic simulation — no wall-clock
        fields, so serial and process runs serialise identically."""
        options = self.options
        pool = self.pool(cell.pool_size)
        # Pools are reused across cells: clear any degradation a
        # previous cell left behind *before* reading batch timings.
        pool.reset()
        max_batch = options.max_batch or max(
            shard.instances for shard in pool
        )
        target = options.slo_p99_s or 4.0 * min(
            shard.probe_service_seconds(max_batch) for shard in pool
        )
        if options.trace_source is not None:
            # Replay: same (already shape-composed) timeline in every
            # cell, so cells differ only in scenario/policy/pool.
            requests = options.trace_source.requests()
        else:
            qps = (
                options.load_factor
                * pool.simulated_images_per_second()
            )
            requests = make_requests(
                options.traffic, options.requests, qps=qps,
                seed=cell.seed, burst=options.burst,
            )
            if self.shapes:
                arrivals = shape_arrivals(
                    [request.arrival for request in requests],
                    self.shapes,
                )
                requests = [
                    type(request)(
                        index=request.index, arrival=arrival
                    )
                    for request, arrival in zip(requests, arrivals)
                ]
        scenario = (
            None if cell.scenario == BASELINE_SCENARIO
            else parse_scenario(cell.scenario, seed=cell.seed)
        )
        slo = (
            SloOptions(p99_target_s=target, action=options.slo_action)
            if options.slo_action is not None else None
        )
        server = ShardServer(pool)
        # engine="auto": scenario-free, controller-free cells ride the
        # fast-forward recurrence; anything reactive falls back to the
        # kernel, and the cell records which engine ran so a fallback
        # is visible in the report, never silent.
        report = server.run(WorkloadSpec(
            traffic=requests,
            policy=cell.policy,
            batcher=BatcherOptions(max_batch=max_batch,
                                   max_wait_s=options.max_wait_s),
            slo=slo,
            scenario=scenario,
            max_events=options.event_budget,
        ))
        issued = len(requests)
        latencies = report.latencies()
        within = {
            f"{multiple:g}x": sum(
                1 for latency in latencies
                if latency <= multiple * target
            )
            for multiple in SURVIVAL_MULTIPLES
        }
        return {
            "cell": cell.index,
            "scenario": cell.scenario,
            "policy": cell.policy,
            "pool": cell.pool_size,
            "seed": cell.seed,
            "issued": issued,
            "served": report.count,
            "shed": report.shed,
            "rerouted": report.rerouted,
            "unserved": report.unserved,
            "makespan_seconds": report.makespan_seconds,
            "p50_latency_s": _safe(report.latency_percentile(50)),
            "p99_latency_s": _safe(report.latency_percentile(99)),
            "slo_target_s": target,
            "within_target": within,
            "attainment": report.slo_attainment(target),
            "survival": report.survival(target, SURVIVAL_MULTIPLES),
            "events_processed": report.events_processed,
            "engine": server.last_engine,
        }


def _safe(value: float) -> Optional[float]:
    return None if value != value else value


#: Worker-side state, installed once per process by the pool
#: initializer (same pattern as ``repro.dse.engine``).
_sweep_state: dict = {}


def _sweep_worker_init(payload) -> None:
    _sweep_state["state"] = _SweepState.from_payload(payload)


def _sweep_run_cell(cell: SweepCell) -> dict:
    return _sweep_state["state"].run(cell)


@dataclass(frozen=True)
class SweepReport:
    """Aggregated sweep results; :meth:`to_json` is the CI artifact.

    ``wall_seconds`` describes the host, not the system under test, so
    it is excluded from equality *and* from the serialised report —
    the serial-vs-process byte-identity guarantee depends on it.
    """

    grid: Dict
    cells: List[Dict]
    per_scenario: Dict[str, Dict]
    totals: Dict
    wall_seconds: float = field(default=0.0, compare=False)

    def to_dict(self) -> Dict:
        """Trajectory-compatible: the headline numbers sit at the top
        level, where ``append_trajectory.summarise`` reads them."""
        return {
            **self.totals,
            "grid": self.grid,
            "per_scenario": self.per_scenario,
            "cells": self.cells,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def describe(self) -> str:
        totals = self.totals
        lines = [
            f"sweep: {totals['cell_count']} cells "
            f"({len(self.grid['scenarios'])} scenario(s) x "
            f"{len(self.grid['policies'])} polic(y/ies) x "
            f"{len(self.grid['pools'])} pool size(s)), "
            f"{totals['issued']} requests issued",
            f"  served {totals['count']}, shed {totals['shed']}, "
            f"unserved {totals['unserved']}; overall SLO attainment "
            f"{totals['slo_attainment'] * 100:.1f}%",
            "  engines: " + ", ".join(
                f"{engine} x{cells}"
                for engine, cells in totals["engines"].items()
            ),
        ]
        if self.wall_seconds > 0:
            lines.append(
                f"  {self.wall_seconds:.2f} s host time "
                f"({totals['events_processed']} kernel events)"
            )
        for spec, stats in self.per_scenario.items():
            survival = ", ".join(
                f">{multiple} {fraction * 100:.0f}%"
                for multiple, fraction in stats["survival"].items()
            )
            lines.append(
                f"  {spec:40s} attainment "
                f"{stats['attainment'] * 100:5.1f}%  "
                f"unserved {stats['unserved']:3d}  [{survival}]"
            )
        return "\n".join(lines)


def _aggregate(
    grid: SweepGrid, options: SweepOptions, seed: int,
    cells: List[dict], wall_seconds: float,
) -> SweepReport:
    per_scenario: Dict[str, dict] = {}
    for spec in grid.scenarios:
        rows = [cell for cell in cells if cell["scenario"] == spec]
        issued = sum(row["issued"] for row in rows)
        within = {
            key: sum(row["within_target"][key] for row in rows)
            for key in rows[0]["within_target"]
        }
        p99s = [
            row["p99_latency_s"] for row in rows
            if row["p99_latency_s"] is not None
        ]
        per_scenario[spec] = {
            "cells": len(rows),
            "issued": issued,
            "served": sum(row["served"] for row in rows),
            "shed": sum(row["shed"] for row in rows),
            "unserved": sum(row["unserved"] for row in rows),
            "attainment": within["1x"] / issued if issued else 0.0,
            "survival": {
                key: 1.0 - count / issued if issued else 1.0
                for key, count in within.items()
            },
            "worst_p99_s": max(p99s) if p99s else None,
        }
    issued = sum(cell["issued"] for cell in cells)
    within_one = sum(cell["within_target"]["1x"] for cell in cells)
    p99s = [
        cell["p99_latency_s"] for cell in cells
        if cell["p99_latency_s"] is not None
    ]
    totals = {
        "cell_count": len(cells),
        "issued": issued,
        "count": sum(cell["served"] for cell in cells),
        "shed": sum(cell["shed"] for cell in cells),
        "rerouted": sum(cell["rerouted"] for cell in cells),
        "unserved": sum(cell["unserved"] for cell in cells),
        "slo_attainment": within_one / issued if issued else 0.0,
        "p99_latency_s": max(p99s) if p99s else None,
        "events_processed": sum(
            cell["events_processed"] for cell in cells
        ),
        # Engine accounting: how many cells fast-forwarded and how
        # many fell back to the kernel — a fallback should show up in
        # the artifact, not hide inside identical numbers.
        "engines": {
            engine: sum(
                1 for cell in cells if cell["engine"] == engine
            )
            for engine in sorted({cell["engine"] for cell in cells})
        },
    }
    return SweepReport(
        grid={
            "scenarios": list(grid.scenarios),
            "policies": list(grid.policies),
            "pools": list(grid.pool_sizes),
            "seed": seed,
            "requests": options.requests,
            "traffic": options.traffic,
            "load_factor": options.load_factor,
            "shapes": list(options.shapes),
            "trace": options.trace,
            "trace_scale": options.trace_scale,
            "trace_loop": options.trace_loop,
            "slo_action": options.slo_action,
        },
        cells=cells,
        per_scenario=per_scenario,
        totals=totals,
        wall_seconds=wall_seconds,
    )


def run_sweep(
    session,
    grid: SweepGrid,
    options: Optional[SweepOptions] = None,
    seed: int = 2020,
) -> SweepReport:
    """Run every cell of ``grid`` on replicas of ``session``.

    The session's config is resolved *here*, in the parent — one DSE
    no matter how many workers — and shipped to workers as a pinned
    payload, exactly like the DSE engine primes its evaluators.  The
    serial path runs the same per-cell code on the parent's session, so
    the two executors are the same computation scheduled differently —
    which is why their reports serialise byte-identically.
    """
    options = options or SweepOptions()
    cells = grid.cells(seed)
    start = time.perf_counter()
    if options.executor == "process" and options.jobs > 1:
        payload = (
            session.network, session.device, session.cfg,
            session.compiler_options, session.seed, options,
        )
        with ProcessPoolExecutor(
            max_workers=options.jobs,
            initializer=_sweep_worker_init,
            initargs=(payload,),
        ) as executor:
            futures = [
                executor.submit(_sweep_run_cell, cell) for cell in cells
            ]
            results = [future.result() for future in futures]
    else:
        state = _SweepState(session, options)
        results = [state.run(cell) for cell in cells]
    # Submission order is grid order, but make the invariant explicit:
    # the report's cell list is always sorted by cell index.
    results.sort(key=lambda row: row["cell"])
    return _aggregate(
        grid, options, seed, results, time.perf_counter() - start
    )

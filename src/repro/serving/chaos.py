"""Chaos scenarios: a composable algebra over typed kernel events.

:class:`~repro.serving.scenarios.FailureScenario` speaks exactly one
failure mode — kill/restore.  This module generalises it into a small
*scenario algebra*: a :class:`ChaosScenario` is an ordered list of
perturbation ops, each of which **compiles** to the same typed
:class:`~repro.serving.events.EventKernel` events the rest of the
serving layer already reacts to — so the scheduler, the
:class:`~repro.serving.slo.SloController` and the
:class:`~repro.serving.autoscaler.AutoscalerController` handle every
new construct with zero changes to their contracts.

Ops and the events they compile to:

* :class:`Kill` / :class:`Restore` — the legacy failure mode
  (:class:`~repro.serving.events.ShardDown` /
  :class:`~repro.serving.events.ShardUp`); a legacy spec compiles to a
  bit-identical event sequence (the oracle tests pin this).
* :class:`Outage` — a *correlated* failure: several shards down (and
  optionally back up) at the same instants, the case that separates a
  replicated pool from an actually fault-tolerant one.
* :class:`Degrade` — a straggler: the shard stays up but every batch
  dispatched in the window takes ``factor`` times its healthy service
  time (:class:`~repro.serving.events.ShardDegrade` /
  :class:`~repro.serving.events.ShardRestoreRate`).  In-flight batches
  keep their completion instants; latency-aware policies route around
  the straggler because the shard's scheduling views scale too.
* :class:`Stragglers` — delayed/reordered completions as *seeded*
  degrade pulses: ``pulses`` disjoint slow windows drawn from a
  ``numpy`` generator, hitting a random shard each time.  Same seed ⇒
  the same pulses, byte for byte.

The CLI grammar (``repro serve --scenario`` / ``repro sweep
--scenarios``) is a comma-separated list of ops; ``<t>`` are virtual
seconds and ``<t1>..<t2>`` a closed-open window::

    kill:<shard>@<t>                        down, never restored
    kill:<shard>@<t1>..<t2>                 down for a window
    restore:<shard>@<t>                     bring <shard> back
    restore@<t>                             shorthand: last killed shard
    degrade:<shard>@<t1>..<t2>x<factor>     straggler window
    degrade:<shard>@<t>x<factor>            straggler, never restored
    outage:<s1>+<s2>@<t1>..<t2>             correlated outage (window
                                            optional: omit ..<t2>)
    stragglers:<s1>+<s2>@<t1>..<t2>x<f>*<n> n seeded degrade pulses

e.g. ``degrade:shard0@0.01..0.05x4,kill:shard1@0.02..0.04`` — shard0
runs 4x slow from 10 ms to 50 ms while shard1 is dead from 20 ms to
40 ms.  The bare ``restore@<t>`` shorthand needs a *single* preceding
open-ended kill: with none, or after a multi-shard ``outage``, the
reference is undefined and parsing fails with a clear
:class:`~repro.errors.ServingError` instead of guessing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ServingError
from repro.serving.events import (
    Event,
    EventKernel,
    ShardDegrade,
    ShardDown,
    ShardRestoreRate,
    ShardUp,
)
from repro.serving.scenarios import FailureScenario
from repro.serving.shard import ShardPool

#: Op verbs understood by :meth:`ChaosScenario.parse`.
CHAOS_KINDS = ("kill", "restore", "degrade", "outage", "stragglers")

#: Same-instant, same-priority order the compiler emits: a shard comes
#: back (up / full rate) before a new perturbation starts, so
#: back-to-back windows meeting at one instant nest instead of overlap.
_KIND_RANK = {ShardDown: 0, ShardUp: 1, ShardRestoreRate: 2, ShardDegrade: 3}


def _check_time(label: str, value: float) -> float:
    if not math.isfinite(value) or value < 0:
        raise ServingError(
            f"{label}: time must be finite and >= 0, got {value}"
        )
    return float(value)


def _check_window(label: str, at: float, until: Optional[float]) -> None:
    if until is not None and until <= at:
        raise ServingError(
            f"{label}: window end {until} must follow start {at}"
        )


def _check_shard(label: str, shard: str) -> None:
    if not shard:
        raise ServingError(f"{label} names no shard")


@dataclass(frozen=True)
class Kill:
    """Take ``shard`` down at ``at``; back up at ``until`` if given."""

    shard: str
    at: float
    until: Optional[float] = None

    def __post_init__(self) -> None:
        _check_shard("kill", self.shard)
        _check_time(f"kill:{self.shard}", self.at)
        if self.until is not None:
            _check_time(f"kill:{self.shard}", self.until)
        _check_window(f"kill:{self.shard}", self.at, self.until)

    def events(self) -> List[Event]:
        out: List[Event] = [ShardDown(time=self.at, shard=self.shard)]
        if self.until is not None:
            out.append(ShardUp(time=self.until, shard=self.shard))
        return out

    def names(self) -> Tuple[str, ...]:
        return (self.shard,)

    def describe(self) -> str:
        if self.until is None:
            return f"kill {self.shard} @ {self.at * 1e3:.1f} ms"
        return (
            f"kill {self.shard} @ {self.at * 1e3:.1f}"
            f"-{self.until * 1e3:.1f} ms"
        )


@dataclass(frozen=True)
class Restore:
    """Bring ``shard`` back at ``at`` (must follow a kill)."""

    shard: str
    at: float

    def __post_init__(self) -> None:
        _check_shard("restore", self.shard)
        _check_time(f"restore:{self.shard}", self.at)

    def events(self) -> List[Event]:
        return [ShardUp(time=self.at, shard=self.shard)]

    def names(self) -> Tuple[str, ...]:
        return (self.shard,)

    def describe(self) -> str:
        return f"restore {self.shard} @ {self.at * 1e3:.1f} ms"


@dataclass(frozen=True)
class Outage:
    """A correlated failure: every shard in ``shards`` goes down at
    ``at`` (and back up at ``until`` if given) — the same instants, so
    the pool loses capacity as one correlated step, not a sequence of
    independent blips."""

    shards: Tuple[str, ...]
    at: float
    until: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.shards:
            raise ServingError("outage names no shards")
        if len(set(self.shards)) != len(self.shards):
            raise ServingError(
                f"outage lists a shard twice: {list(self.shards)}"
            )
        for shard in self.shards:
            _check_shard("outage", shard)
        _check_time("outage", self.at)
        if self.until is not None:
            _check_time("outage", self.until)
        _check_window("outage", self.at, self.until)

    def events(self) -> List[Event]:
        out: List[Event] = [
            ShardDown(time=self.at, shard=shard) for shard in self.shards
        ]
        if self.until is not None:
            out.extend(
                ShardUp(time=self.until, shard=shard)
                for shard in self.shards
            )
        return out

    def names(self) -> Tuple[str, ...]:
        return self.shards

    def describe(self) -> str:
        span = (
            f"@ {self.at * 1e3:.1f} ms" if self.until is None
            else f"@ {self.at * 1e3:.1f}-{self.until * 1e3:.1f} ms"
        )
        return f"outage {'+'.join(self.shards)} {span}"


@dataclass(frozen=True)
class Degrade:
    """Slow ``shard`` by ``factor`` from ``at`` until ``until`` (or
    forever): a straggler, not a failure — it keeps serving, slowly."""

    shard: str
    factor: float
    at: float
    until: Optional[float] = None

    def __post_init__(self) -> None:
        _check_shard("degrade", self.shard)
        if not math.isfinite(self.factor) or self.factor < 1.0:
            raise ServingError(
                f"degrade:{self.shard}: factor must be finite and >= 1, "
                f"got {self.factor}"
            )
        _check_time(f"degrade:{self.shard}", self.at)
        if self.until is not None:
            _check_time(f"degrade:{self.shard}", self.until)
        _check_window(f"degrade:{self.shard}", self.at, self.until)

    def events(self) -> List[Event]:
        out: List[Event] = [
            ShardDegrade(time=self.at, shard=self.shard, factor=self.factor)
        ]
        if self.until is not None:
            out.append(ShardRestoreRate(time=self.until, shard=self.shard))
        return out

    def names(self) -> Tuple[str, ...]:
        return (self.shard,)

    def describe(self) -> str:
        span = (
            f"@ {self.at * 1e3:.1f} ms" if self.until is None
            else f"@ {self.at * 1e3:.1f}-{self.until * 1e3:.1f} ms"
        )
        return f"degrade {self.shard} x{self.factor:g} {span}"


@dataclass(frozen=True)
class Stragglers:
    """Delayed/reordered completions as seeded degrade pulses.

    The window ``[start, until)`` is cut into ``pulses`` equal slots;
    each slot gets one slow window — begin drawn in its slot's first
    half, length between 20% and 50% of the slot — on a shard drawn
    from ``shards``.  Windows never overlap (each lives strictly inside
    its slot), so the compiled events always nest, and the generator is
    seeded, so one seed is one exact pulse train.
    """

    shards: Tuple[str, ...]
    factor: float
    start: float
    until: float
    pulses: int = 3
    seed: int = 2020

    def __post_init__(self) -> None:
        if not self.shards:
            raise ServingError("stragglers names no shards")
        if len(set(self.shards)) != len(self.shards):
            raise ServingError(
                f"stragglers lists a shard twice: {list(self.shards)}"
            )
        for shard in self.shards:
            _check_shard("stragglers", shard)
        if not math.isfinite(self.factor) or self.factor < 1.0:
            raise ServingError(
                f"stragglers: factor must be finite and >= 1, "
                f"got {self.factor}"
            )
        _check_time("stragglers", self.start)
        _check_time("stragglers", self.until)
        if self.until <= self.start:
            raise ServingError(
                f"stragglers: window end {self.until} must follow "
                f"start {self.start}"
            )
        if self.pulses < 1:
            raise ServingError(
                f"stragglers: pulses must be >= 1, got {self.pulses}"
            )

    def windows(self) -> List[Tuple[str, float, float]]:
        """The seeded ``(shard, begin, end)`` pulse windows."""
        rng = np.random.default_rng(self.seed)
        slot = (self.until - self.start) / self.pulses
        out = []
        for pulse in range(self.pulses):
            slot_start = self.start + pulse * slot
            begin = slot_start + 0.5 * slot * float(rng.uniform())
            length = slot * (0.2 + 0.3 * float(rng.uniform()))
            shard = self.shards[int(rng.integers(len(self.shards)))]
            out.append((shard, begin, begin + length))
        return out

    def events(self) -> List[Event]:
        out: List[Event] = []
        for shard, begin, end in self.windows():
            out.append(
                ShardDegrade(time=begin, shard=shard, factor=self.factor)
            )
            out.append(ShardRestoreRate(time=end, shard=shard))
        return out

    def names(self) -> Tuple[str, ...]:
        return self.shards

    def describe(self) -> str:
        return (
            f"stragglers {'+'.join(self.shards)} x{self.factor:g} "
            f"@ {self.start * 1e3:.1f}-{self.until * 1e3:.1f} ms "
            f"({self.pulses} pulse(s), seed {self.seed})"
        )


#: Anything :class:`ChaosScenario` accepts as one op.
ChaosOp = (Kill, Restore, Outage, Degrade, Stragglers)


class ChaosScenario:
    """An ordered list of perturbation ops, compiled to kernel events.

    Compilation sorts every op's events into the kernel's global
    ``(time, priority)`` order (ties in the class rank that puts
    restores before new perturbations, then op order) and *validates*
    the composition with a per-shard state machine: kills and restores
    must alternate, degrade windows must nest (no double-degrade, no
    restore-rate without a degrade) and must not straddle a kill — a
    kill wipes the shard, so a degrade window crossing it would end on
    a shard that no longer remembers being slow.  Anything that would
    execute as a silent no-op is a compile error instead.
    """

    def __init__(self, ops: Sequence):
        if not ops:
            raise ServingError("a scenario needs at least one op")
        for op in ops:
            if not isinstance(op, ChaosOp):
                raise ServingError(
                    f"not a scenario op: {op!r} "
                    f"(expected one of {[c.__name__ for c in ChaosOp]})"
                )
        self.ops = list(ops)
        self._events = self._compile()

    # -- compilation ------------------------------------------------------

    def _compile(self) -> List[Event]:
        events: List[Event] = [
            event for op in self.ops for event in op.events()
        ]
        events.sort(
            key=lambda e: (e.time, type(e).priority, _KIND_RANK[type(e)])
        )
        state: Dict[str, str] = {}  # shard -> up | degraded | down
        for event in events:
            shard = event.shard
            current = state.get(shard, "up")
            if isinstance(event, ShardDown):
                if current == "down":
                    raise ServingError(
                        f"scenario kills {shard!r} at {event.time} "
                        "while it is already down"
                    )
                if current == "degraded":
                    raise ServingError(
                        f"scenario kills {shard!r} at {event.time} "
                        "inside a degrade window; end the window first"
                    )
                state[shard] = "down"
            elif isinstance(event, ShardUp):
                if current != "down":
                    raise ServingError(
                        f"scenario restores {shard!r} at {event.time} "
                        "before any kill takes it down"
                    )
                state[shard] = "up"
            elif isinstance(event, ShardDegrade):
                if current == "down":
                    raise ServingError(
                        f"scenario degrades {shard!r} at {event.time} "
                        "while it is down"
                    )
                if current == "degraded":
                    raise ServingError(
                        f"scenario degrades {shard!r} at {event.time} "
                        "while it is already degraded; degrade windows "
                        "must not overlap"
                    )
                state[shard] = "degraded"
            else:  # ShardRestoreRate
                if current != "degraded":
                    raise ServingError(
                        f"scenario restores the rate of {shard!r} at "
                        f"{event.time} outside any degrade window"
                    )
                state[shard] = "up"
        return events

    def compile(self) -> List[Event]:
        """The validated event sequence, in push (= pop-tie) order."""
        return list(self._events)

    def names(self) -> List[str]:
        """Every shard the scenario touches, sorted."""
        return sorted({name for op in self.ops for name in op.names()})

    def prime(self, kernel: EventKernel, pool: ShardPool) -> None:
        """Validate against ``pool`` and push the compiled events."""
        names = {shard.name for shard in pool}
        for event in self._events:
            if event.shard not in names:
                raise ServingError(
                    f"scenario names unknown shard {event.shard!r}; "
                    f"pool has {sorted(names)}"
                )
        for event in self._events:
            kernel.push(event)

    # -- construction -----------------------------------------------------

    @classmethod
    def from_failure(cls, scenario: FailureScenario) -> "ChaosScenario":
        """The algebra form of a legacy kill/restore scenario.

        The compiled events are identical to what
        :meth:`FailureScenario.prime` pushes — same types, same times,
        same order — so a run under either object is event-identical
        (the oracle tests pin this equivalence).
        """
        return cls([
            Kill(step.shard, step.at) if step.kind == "kill"
            else Restore(step.shard, step.at)
            for step in scenario.steps
        ])

    @classmethod
    def parse(cls, spec: str, seed: int = 2020) -> "ChaosScenario":
        """Parse the CLI grammar (see module docstring).

        ``seed`` feeds :class:`Stragglers` ops, so one spec string plus
        one seed is one exact scenario.
        """
        ops: List = []
        # The bare restore@<t> shorthand resolves against the one shard
        # an open-ended kill left down; None means no such shard, and
        # the ambiguous sentinel means a multi-shard outage is the most
        # recent kill — both are errors, not guesses.
        ambiguous = object()
        last_killed = None
        for raw in spec.split(","):
            token = raw.strip()
            if not token:
                continue
            verb, subject, at, until, factor, pulses = _parse_token(token)
            if verb == "kill":
                _require(token, subject=subject, factor=factor,
                         pulses=pulses, want_factor=False)
                if "+" in subject:
                    raise ServingError(
                        f"scenario op {token!r}: kill takes one shard; "
                        "spell a correlated failure outage:<s1>+<s2>@..."
                    )
                ops.append(Kill(subject, at, until))
                last_killed = subject if until is None else None
            elif verb == "restore":
                _require(token, factor=factor, pulses=pulses,
                         want_factor=False)
                if until is not None:
                    raise ServingError(
                        f"scenario op {token!r}: restore takes one "
                        "instant, not a window"
                    )
                if not subject:
                    if last_killed is None:
                        raise ServingError(
                            f"scenario op {token!r}: restore@<t> needs "
                            "a preceding open-ended kill to name the "
                            "shard"
                        )
                    if last_killed is ambiguous:
                        raise ServingError(
                            f"scenario op {token!r}: restore@<t> after "
                            "a multi-shard outage is ambiguous; name "
                            "the shard (restore:<shard>@<t>)"
                        )
                    subject = last_killed
                ops.append(Restore(subject, at))
                if subject == last_killed:
                    last_killed = None
            elif verb == "degrade":
                _require(token, subject=subject, factor=factor,
                         pulses=pulses, want_factor=True)
                if "+" in subject:
                    raise ServingError(
                        f"scenario op {token!r}: degrade takes one "
                        "shard; spell multi-shard slowdowns as "
                        "stragglers:<s1>+<s2>@... or separate ops"
                    )
                ops.append(Degrade(subject, factor, at, until))
            elif verb == "outage":
                _require(token, subject=subject, factor=factor,
                         pulses=pulses, want_factor=False)
                ops.append(Outage(tuple(subject.split("+")), at, until))
                if until is None:
                    last_killed = ambiguous
            elif verb == "stragglers":
                if factor is None:
                    raise ServingError(
                        f"scenario op {token!r}: stragglers needs a "
                        "factor (stragglers:<shards>@<t1>..<t2>x<f>)"
                    )
                if not subject:
                    raise ServingError(
                        f"scenario op {token!r} names no shard"
                    )
                if until is None:
                    raise ServingError(
                        f"scenario op {token!r}: stragglers needs a "
                        "window (<t1>..<t2>)"
                    )
                ops.append(Stragglers(
                    tuple(subject.split("+")), factor, at, until,
                    pulses=pulses if pulses is not None else 3,
                    seed=seed,
                ))
            else:
                raise ServingError(
                    f"scenario op {token!r}: unknown verb {verb!r}; "
                    f"expected one of {CHAOS_KINDS}"
                )
        if not ops:
            raise ServingError(f"empty scenario spec {spec!r}")
        return cls(ops)

    # -- reporting --------------------------------------------------------

    def spans(self) -> List[Tuple[str, float, float]]:
        """Down intervals per shard as ``(shard, down_at, up_at)``
        (``inf`` when never restored) — for reporting."""
        return self._paired(ShardDown, ShardUp)

    def degraded_spans(self) -> List[Tuple[str, float, float]]:
        """Degrade windows per shard as ``(shard, from, to)``
        (``inf`` when never restored to full rate)."""
        return self._paired(ShardDegrade, ShardRestoreRate)

    def _paired(self, open_kind, close_kind) -> List[
            Tuple[str, float, float]]:
        out: List[Tuple[str, float, float]] = []
        open_at: Dict[str, float] = {}
        for event in self._events:
            if isinstance(event, open_kind):
                open_at.setdefault(event.shard, event.time)
            elif isinstance(event, close_kind) and event.shard in open_at:
                out.append((event.shard, open_at.pop(event.shard),
                            event.time))
        for shard, at in sorted(open_at.items()):
            out.append((shard, at, float("inf")))
        return out

    def describe(self) -> str:
        return ", ".join(op.describe() for op in self.ops)


def _parse_token(token: str):
    """Split one op token into (verb, subject, at, until, factor,
    pulses) — the purely syntactic half of :meth:`ChaosScenario.parse`."""
    head, sep, tail = token.partition("@")
    if not sep:
        raise ServingError(
            f"scenario op {token!r}: expected "
            "<verb>[:<shards>]@<t>[..<t2>][x<factor>][*<pulses>]"
        )
    verb, _, subject = head.partition(":")
    pulses = None
    if "*" in tail:
        tail, _, raw = tail.rpartition("*")
        try:
            pulses = int(raw)
        except ValueError:
            raise ServingError(
                f"scenario op {token!r}: bad pulse count {raw!r}"
            ) from None
    factor = None
    if "x" in tail:
        tail, _, raw = tail.rpartition("x")
        try:
            factor = float(raw)
        except ValueError:
            raise ServingError(
                f"scenario op {token!r}: bad factor {raw!r}"
            ) from None
    first, sep, second = tail.partition("..")
    try:
        at = float(first)
        until = float(second) if sep else None
    except ValueError:
        raise ServingError(
            f"scenario op {token!r}: bad time {tail!r}"
        ) from None
    return verb, subject, at, until, factor, pulses


def _require(token: str, subject: Optional[str] = None,
             factor: Optional[float] = None,
             pulses: Optional[int] = None,
             want_factor: bool = False) -> None:
    """Reject op/suffix combinations the grammar does not define."""
    if subject == "":
        raise ServingError(f"scenario op {token!r} names no shard")
    if want_factor and factor is None:
        raise ServingError(
            f"scenario op {token!r}: needs a factor "
            "(…@<t>[..<t2>]x<factor>)"
        )
    if not want_factor and factor is not None:
        raise ServingError(
            f"scenario op {token!r}: x<factor> only applies to "
            "degrade/stragglers"
        )
    if pulses is not None:
        raise ServingError(
            f"scenario op {token!r}: *<pulses> only applies to "
            "stragglers"
        )


def parse_scenario(spec: str, seed: int = 2020) -> ChaosScenario:
    """Module-level alias of :meth:`ChaosScenario.parse` (the CLI's
    entry point; the grammar is a superset of
    :meth:`FailureScenario.parse`)."""
    return ChaosScenario.parse(spec, seed=seed)

"""Serving layer: multi-shard scheduling + dynamic batching.

Turns the one-image-at-a-time runtime into a traffic-serving system: a
:class:`ShardPool` of :class:`~repro.pipeline.session.PipelineSession`
deployments (identical replicas or heterogeneous devices/models)
sharing one evaluation cache, a :class:`Scheduler` with pluggable
policies, a :class:`DynamicBatcher` coalescing requests under a
batch/wait budget, and a :class:`ShardServer` running the whole
discrete-event simulation in virtual time.  ``repro serve`` is the CLI
entry point; ``docs/serving.md`` documents policies, traffic models
and metric definitions.
"""

from __future__ import annotations

from repro.serving.batcher import BatcherOptions, DynamicBatcher
from repro.serving.metrics import (
    RequestRecord,
    ServingReport,
    ShardUsage,
    percentile,
)
from repro.serving.scheduler import (
    POLICIES,
    LeastLoaded,
    RoundRobin,
    Scheduler,
    SchedulingPolicy,
    ShortestExpectedLatency,
    make_policy,
)
from repro.serving.server import ShardServer, analytical_reference
from repro.serving.shard import Shard, ShardPool
from repro.serving.traffic import TRAFFIC_MODELS, Request, make_requests

__all__ = [
    "BatcherOptions",
    "DynamicBatcher",
    "LeastLoaded",
    "POLICIES",
    "percentile",
    "Request",
    "RequestRecord",
    "RoundRobin",
    "Scheduler",
    "SchedulingPolicy",
    "ServingReport",
    "Shard",
    "ShardPool",
    "ShardServer",
    "ShardUsage",
    "ShortestExpectedLatency",
    "TRAFFIC_MODELS",
    "analytical_reference",
    "make_policy",
    "make_requests",
]

"""Serving layer: an event-kernel traffic simulator over shard pools.

Turns the one-image-at-a-time runtime into a traffic-serving system
built around a shared discrete-event kernel
(:class:`~repro.serving.events.EventKernel`): event *sources* (open-
loop traffic, replayed arrival traces, closed-loop client pools with
think time, failure scenarios) feed typed events to *handlers* — the
:class:`DynamicBatcher` coalescing requests under a batch/wait budget,
the :class:`Scheduler` with pluggable policies and shard availability,
an optional :class:`SloController` shedding or rerouting when the
observed p99 drifts, an optional :class:`AutoscalerController` driving
the pool between min and max shards against a utilisation or p99
target, and the :class:`ShardPool` of
:class:`~repro.pipeline.session.PipelineSession` deployments placing
batches on virtual timelines.  ``repro serve`` is the CLI entry point;
``docs/serving.md`` documents the event taxonomy, policies, traffic
models, autoscaling and metric definitions.
"""

from __future__ import annotations

from repro.serving.autoscaler import (
    AUTOSCALE_METRICS,
    AutoscalerController,
    AutoscalerOptions,
)
from repro.serving.batcher import BatcherOptions, DynamicBatcher
from repro.serving.events import (
    Arrival,
    BatchDone,
    Event,
    EventKernel,
    EventSource,
    Flush,
    PolicyTick,
    ShardDown,
    ShardUp,
)
from repro.serving.metrics import (
    RequestRecord,
    ScaleEvent,
    ServingReport,
    ShardUsage,
    percentile,
)
from repro.serving.scenarios import (
    FailureScenario,
    ScenarioStep,
)
from repro.serving.scheduler import (
    POLICIES,
    LeastLoaded,
    RoundRobin,
    Scheduler,
    SchedulingPolicy,
    ShortestExpectedLatency,
    make_policy,
)
from repro.serving.server import ShardServer, analytical_reference
from repro.serving.shard import Shard, ShardPool
from repro.serving.slo import SLO_ACTIONS, SloController, SloOptions
from repro.serving.traffic import (
    THINK_DISTRIBUTIONS,
    TRACE_FIELDS,
    TRAFFIC_MODELS,
    ClosedLoopClientPool,
    OpenLoopSource,
    Request,
    TraceSource,
    load_trace,
    make_requests,
)

__all__ = [
    "Arrival",
    "AUTOSCALE_METRICS",
    "AutoscalerController",
    "AutoscalerOptions",
    "BatchDone",
    "BatcherOptions",
    "ClosedLoopClientPool",
    "DynamicBatcher",
    "Event",
    "EventKernel",
    "EventSource",
    "FailureScenario",
    "Flush",
    "LeastLoaded",
    "OpenLoopSource",
    "POLICIES",
    "percentile",
    "PolicyTick",
    "Request",
    "RequestRecord",
    "RoundRobin",
    "ScaleEvent",
    "ScenarioStep",
    "Scheduler",
    "SchedulingPolicy",
    "ServingReport",
    "Shard",
    "ShardDown",
    "ShardPool",
    "ShardServer",
    "ShardUp",
    "ShardUsage",
    "ShortestExpectedLatency",
    "SLO_ACTIONS",
    "SloController",
    "SloOptions",
    "THINK_DISTRIBUTIONS",
    "TRACE_FIELDS",
    "TRAFFIC_MODELS",
    "TraceSource",
    "analytical_reference",
    "load_trace",
    "make_policy",
    "make_requests",
]

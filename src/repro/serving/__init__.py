"""Serving layer: an event-kernel traffic simulator over shard pools.

Turns the one-image-at-a-time runtime into a traffic-serving system
built around a shared discrete-event kernel
(:class:`~repro.serving.events.EventKernel`): event *sources* (open-
loop traffic, replayed arrival traces, closed-loop client pools with
think time, failure scenarios) feed typed events to *handlers* — the
:class:`DynamicBatcher` coalescing requests under a batch/wait budget,
the :class:`Scheduler` with pluggable policies and shard availability,
an optional :class:`SloController` shedding or rerouting when the
observed p99 drifts, an optional :class:`AutoscalerController` driving
the pool between min and max shards against a utilisation or p99
target, and the :class:`ShardPool` of
:class:`~repro.pipeline.session.PipelineSession` deployments placing
batches on virtual timelines.  ``repro serve`` is the CLI entry point;
``docs/serving.md`` documents the event taxonomy, policies, traffic
models, autoscaling and metric definitions.
"""

from __future__ import annotations

from repro.serving.autoscaler import (
    AUTOSCALE_METRICS,
    AutoscalerController,
    AutoscalerOptions,
)
from repro.serving.batcher import BatcherOptions, DynamicBatcher
from repro.serving.chaos import (
    CHAOS_KINDS,
    ChaosScenario,
    Degrade,
    Kill,
    Outage,
    Restore,
    Stragglers,
    parse_scenario,
)
from repro.serving.fastforward import (
    fastforward_serve,
    ineligible_reason,
)
from repro.serving.events import (
    Arrival,
    BatchDone,
    Event,
    EventKernel,
    EventSource,
    Flush,
    PolicyTick,
    ShardDegrade,
    ShardDown,
    ShardRestoreRate,
    ShardUp,
)
from repro.serving.metrics import (
    RequestRecord,
    ScaleEvent,
    ServingReport,
    ShardUsage,
    TenantBreakdown,
    percentile,
)
from repro.serving.scenarios import (
    FailureScenario,
    ScenarioStep,
)
from repro.serving.scheduler import (
    POLICIES,
    LeastLoaded,
    RoundRobin,
    Scheduler,
    SchedulingPolicy,
    ShortestExpectedLatency,
    WeightedFair,
    make_policy,
)
from repro.serving.server import ENGINES, ShardServer, analytical_reference
from repro.serving.shard import Shard, ShardPool
from repro.serving.slo import SLO_ACTIONS, SloController, SloOptions
from repro.serving.tenancy import (
    DEFAULT_TENANT,
    TENANT_TIERS,
    TenantSet,
    TenantSpec,
    assign_tenants,
    parse_tenant,
    parse_tenants,
)
from repro.serving.sweep import (
    SWEEP_EXECUTORS,
    SweepCell,
    SweepGrid,
    SweepOptions,
    SweepReport,
    run_sweep,
)
from repro.serving.traffic import (
    THINK_DISTRIBUTIONS,
    TRACE_FIELDS,
    TRAFFIC_MODELS,
    TRAFFIC_SHAPES,
    ClosedLoopClientPool,
    Diurnal,
    FlashCrowd,
    OpenLoopSource,
    Request,
    TraceSource,
    load_tagged_trace,
    load_trace,
    make_requests,
    merge_streams,
    parse_shape,
    shape_arrivals,
    shaped_trace,
)
from repro.serving.workload import WorkloadSpec

__all__ = [
    "analytical_reference",
    "Arrival",
    "AUTOSCALE_METRICS",
    "AutoscalerController",
    "AutoscalerOptions",
    "BatchDone",
    "BatcherOptions",
    "CHAOS_KINDS",
    "ChaosScenario",
    "ClosedLoopClientPool",
    "DEFAULT_TENANT",
    "Degrade",
    "Diurnal",
    "DynamicBatcher",
    "ENGINES",
    "assign_tenants",
    "Event",
    "EventKernel",
    "EventSource",
    "FailureScenario",
    "fastforward_serve",
    "FlashCrowd",
    "Flush",
    "ineligible_reason",
    "Kill",
    "LeastLoaded",
    "load_tagged_trace",
    "load_trace",
    "make_policy",
    "make_requests",
    "merge_streams",
    "OpenLoopSource",
    "Outage",
    "parse_scenario",
    "parse_shape",
    "parse_tenant",
    "parse_tenants",
    "percentile",
    "POLICIES",
    "PolicyTick",
    "Request",
    "RequestRecord",
    "Restore",
    "RoundRobin",
    "run_sweep",
    "ScaleEvent",
    "ScenarioStep",
    "Scheduler",
    "SchedulingPolicy",
    "ServingReport",
    "shape_arrivals",
    "shaped_trace",
    "Shard",
    "ShardDegrade",
    "ShardDown",
    "ShardPool",
    "ShardRestoreRate",
    "ShardServer",
    "ShardUp",
    "ShardUsage",
    "ShortestExpectedLatency",
    "SLO_ACTIONS",
    "SloController",
    "SloOptions",
    "Stragglers",
    "SWEEP_EXECUTORS",
    "SweepCell",
    "SweepGrid",
    "SweepOptions",
    "SweepReport",
    "TENANT_TIERS",
    "TenantBreakdown",
    "TenantSet",
    "TenantSpec",
    "THINK_DISTRIBUTIONS",
    "TRACE_FIELDS",
    "TraceSource",
    "TRAFFIC_MODELS",
    "TRAFFIC_SHAPES",
    "WeightedFair",
    "WorkloadSpec",
]

"""Serving layer: an event-kernel traffic simulator over shard pools.

Turns the one-image-at-a-time runtime into a traffic-serving system
built around a shared discrete-event kernel
(:class:`~repro.serving.events.EventKernel`): event *sources* (open-
loop traffic, closed-loop client pools with think time, failure
scenarios) feed typed events to *handlers* — the
:class:`DynamicBatcher` coalescing requests under a batch/wait budget,
the :class:`Scheduler` with pluggable policies and shard availability,
an optional :class:`SloController` shedding or rerouting when the
observed p99 drifts, and the :class:`ShardPool` of
:class:`~repro.pipeline.session.PipelineSession` deployments placing
batches on virtual timelines.  ``repro serve`` is the CLI entry point;
``docs/serving.md`` documents the event taxonomy, policies, traffic
models and metric definitions.
"""

from __future__ import annotations

from repro.serving.batcher import BatcherOptions, DynamicBatcher
from repro.serving.events import (
    Arrival,
    BatchDone,
    Event,
    EventKernel,
    EventSource,
    Flush,
    PolicyTick,
    ShardDown,
    ShardUp,
)
from repro.serving.metrics import (
    RequestRecord,
    ServingReport,
    ShardUsage,
    percentile,
)
from repro.serving.scenarios import (
    FailureScenario,
    ScenarioStep,
)
from repro.serving.scheduler import (
    POLICIES,
    LeastLoaded,
    RoundRobin,
    Scheduler,
    SchedulingPolicy,
    ShortestExpectedLatency,
    make_policy,
)
from repro.serving.server import ShardServer, analytical_reference
from repro.serving.shard import Shard, ShardPool
from repro.serving.slo import SLO_ACTIONS, SloController, SloOptions
from repro.serving.traffic import (
    THINK_DISTRIBUTIONS,
    TRAFFIC_MODELS,
    ClosedLoopClientPool,
    OpenLoopSource,
    Request,
    make_requests,
)

__all__ = [
    "Arrival",
    "BatchDone",
    "BatcherOptions",
    "ClosedLoopClientPool",
    "DynamicBatcher",
    "Event",
    "EventKernel",
    "EventSource",
    "FailureScenario",
    "Flush",
    "LeastLoaded",
    "OpenLoopSource",
    "POLICIES",
    "percentile",
    "PolicyTick",
    "Request",
    "RequestRecord",
    "RoundRobin",
    "ScenarioStep",
    "Scheduler",
    "SchedulingPolicy",
    "ServingReport",
    "Shard",
    "ShardDown",
    "ShardPool",
    "ShardServer",
    "ShardUp",
    "ShardUsage",
    "ShortestExpectedLatency",
    "SLO_ACTIONS",
    "SloController",
    "SloOptions",
    "THINK_DISTRIBUTIONS",
    "TRAFFIC_MODELS",
    "analytical_reference",
    "make_policy",
    "make_requests",
]

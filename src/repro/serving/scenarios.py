"""Failure scenarios: kill and restore shards at virtual times.

A scenario is just another event source — it primes
:class:`~repro.serving.events.ShardDown` /
:class:`~repro.serving.events.ShardUp` events onto the kernel, and the
scheduler + server react: the dying shard's in-flight requests are
re-queued (keeping their original arrival, so their latency accounts
the lost work), the scheduling policy rebalances over the survivors,
and a restored shard rejoins with a fresh timeline
(:meth:`~repro.serving.shard.Shard.reset` is the underlying hook).

The CLI spec grammar (``repro serve --scenario ...``) is a
comma-separated list of::

    kill:<shard>@<seconds>      take <shard> down at a virtual time
    restore:<shard>@<seconds>   bring <shard> back
    restore@<seconds>           shorthand: restores the last-killed shard

e.g. ``kill:shard0@0.05,restore@0.12`` — kill ``shard0`` 50 ms in,
restore it at 120 ms.

This grammar is a strict subset of the scenario algebra in
:mod:`repro.serving.chaos` (degraded shards, correlated outages,
straggler pulse trains): ``parse_scenario`` accepts every legacy spec
and compiles it to the event-identical run —
``ChaosScenario.from_failure`` converts existing objects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ServingError
from repro.serving.events import EventKernel, ShardDown, ShardUp
from repro.serving.shard import ShardPool

#: Scenario verbs understood by :meth:`FailureScenario.parse`.
SCENARIO_KINDS = ("kill", "restore")


@dataclass(frozen=True)
class ScenarioStep:
    """One perturbation: ``kill`` or ``restore`` a shard at a time."""

    kind: str
    shard: str
    at: float

    def __post_init__(self) -> None:
        if self.kind not in SCENARIO_KINDS:
            raise ServingError(
                f"unknown scenario step {self.kind!r}; "
                f"expected one of {SCENARIO_KINDS}"
            )
        if not math.isfinite(self.at) or self.at < 0:
            raise ServingError(
                f"scenario step {self.kind}:{self.shard} at {self.at}: "
                "time must be finite and >= 0"
            )
        if not self.shard:
            raise ServingError(f"scenario step {self.kind} names no shard")


class FailureScenario:
    """An ordered set of kill/restore steps, primed as kernel events."""

    def __init__(self, steps: Sequence[ScenarioStep]):
        if not steps:
            raise ServingError("a scenario needs at least one step")
        self.steps: List[ScenarioStep] = sorted(
            steps, key=lambda step: (step.at, step.kind != "kill")
        )
        # Per shard, the time-ordered steps must alternate kill ->
        # restore: a restore with no preceding kill (including one the
        # sort moved *before* its kill) or a double kill would execute
        # as a silent no-op instead of what the spec seems to say.
        down = set()
        for step in self.steps:
            if step.kind == "kill":
                if step.shard in down:
                    raise ServingError(
                        f"scenario kills {step.shard!r} at {step.at} "
                        "while it is already down"
                    )
                down.add(step.shard)
            else:
                if step.shard not in down:
                    raise ServingError(
                        f"scenario restores {step.shard!r} at {step.at} "
                        "before any kill takes it down"
                    )
                down.discard(step.shard)

    @classmethod
    def parse(cls, spec: str) -> "FailureScenario":
        """Parse the CLI grammar (see module docstring)."""
        steps: List[ScenarioStep] = []
        last_killed = ""
        for raw in spec.split(","):
            token = raw.strip()
            if not token:
                continue
            head, sep, when = token.partition("@")
            if not sep:
                raise ServingError(
                    f"scenario step {token!r}: expected "
                    "kill:<shard>@<t> or restore[:<shard>]@<t>"
                )
            try:
                at = float(when)
            except ValueError:
                raise ServingError(
                    f"scenario step {token!r}: bad time {when!r}"
                ) from None
            kind, sep, shard = head.partition(":")
            if kind == "restore" and not sep:
                if not last_killed:
                    raise ServingError(
                        f"scenario step {token!r}: restore@<t> needs a "
                        "preceding kill to name the shard"
                    )
                shard = last_killed
            steps.append(ScenarioStep(kind=kind, shard=shard, at=at))
            if kind == "kill":
                last_killed = shard
        if not steps:
            raise ServingError(f"empty scenario spec {spec!r}")
        return cls(steps)

    @classmethod
    def kill(
        cls, shard: str, at: float, restore_at: float = None
    ) -> "FailureScenario":
        """Convenience: kill ``shard`` at ``at``, optionally restore."""
        steps = [ScenarioStep("kill", shard, at)]
        if restore_at is not None:
            if restore_at < at:
                raise ServingError(
                    f"restore at {restore_at} precedes kill at {at}"
                )
            steps.append(ScenarioStep("restore", shard, restore_at))
        return cls(steps)

    def prime(self, kernel: EventKernel, pool: ShardPool) -> None:
        """Validate against ``pool`` and push the scenario's events."""
        names = {shard.name for shard in pool}
        for step in self.steps:
            if step.shard not in names:
                raise ServingError(
                    f"scenario names unknown shard {step.shard!r}; "
                    f"pool has {sorted(names)}"
                )
            event = ShardDown if step.kind == "kill" else ShardUp
            kernel.push(event(time=step.at, shard=step.shard))

    def spans(self) -> List[Tuple[str, float, float]]:
        """Down intervals per shard as ``(shard, down_at, up_at)``
        (``inf`` when never restored) — for reporting."""
        out: List[Tuple[str, float, float]] = []
        open_at = {}
        for step in self.steps:
            if step.kind == "kill":
                open_at.setdefault(step.shard, step.at)
            elif step.shard in open_at:
                out.append((step.shard, open_at.pop(step.shard), step.at))
        for shard, at in sorted(open_at.items()):
            out.append((shard, at, float("inf")))
        return out

    def describe(self) -> str:
        return ", ".join(
            f"{step.kind} {step.shard} @ {step.at * 1e3:.1f} ms"
            for step in self.steps
        )

"""Tenancy: named traffic classes with weights, SLOs and admission caps.

Millions of users are not one traffic class.  A :class:`TenantSpec`
names one class — an interactive product surface, a batch re-indexing
job — and carries the three levers the serving layer pulls apart per
tenant:

* **weight** — the tenant's share of the pool under the
  ``weighted-fair`` scheduling policy (see
  :class:`~repro.serving.scheduler.WeightedFair`): shards are
  apportioned to tenants in proportion to weight, so a flooding tenant
  saturates *its* share instead of every queue;
* **p99 SLO** (optional) — a per-tenant latency objective the
  :class:`~repro.serving.slo.SloController` watches in its own
  observation window, shedding that tenant's dispatches while *its*
  tail is breached — the batch tier degrades, the interactive tier
  keeps its SLO;
* **admission cap** (optional) — a bound on the tenant's outstanding
  (admitted but not yet completed) requests.  Requests beyond the cap
  are dropped *at arrival*, before they ever occupy a queue — a
  first-class shed reason, counted separately from SLO sheds in
  :attr:`~repro.serving.metrics.ServingReport.admission_shed`.

A :class:`TenantSet` registers the specs for one workload (see
:class:`~repro.serving.workload.WorkloadSpec`).  Every request carries
a ``tenant`` tag; untagged traffic belongs to :data:`DEFAULT_TENANT`,
and a set holding only the default spec with no SLO and no cap is
*trivial* — trivial workloads behave (and report) exactly as the
pre-tenancy serving layer did, which is what keeps single-tenant runs
byte-identical across PRs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import math

from repro.errors import ServingError

#: The tenant every untagged request belongs to.
DEFAULT_TENANT = "default"

#: Batch tiers a tenant may belong to.  The tier is the *mixing* key of
#: the tenant-aware batcher: tenants of the same tier may share a
#: batch, tenants of different tiers never do (an interactive request
#: must not wait out a bulk tenant's batch assembly).
TENANT_TIERS = ("interactive", "batch")


@dataclass(frozen=True)
class TenantSpec:
    """One traffic class: identity, share, objective, admission bound."""

    name: str
    weight: float = 1.0
    tier: str = "interactive"
    p99_slo_s: Optional[float] = None
    max_outstanding: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.strip():
            raise ServingError("tenant name must be non-empty")
        if any(sep in self.name for sep in ",;=:"):
            raise ServingError(
                f"tenant name {self.name!r} may not contain "
                "',', ';', ':' or '=' (reserved by the spec grammar)"
            )
        if not math.isfinite(self.weight) or self.weight <= 0:
            raise ServingError(
                f"tenant {self.name}: weight must be positive and "
                f"finite, got {self.weight}"
            )
        if self.tier not in TENANT_TIERS:
            raise ServingError(
                f"tenant {self.name}: unknown tier {self.tier!r}; "
                f"expected one of {TENANT_TIERS}"
            )
        if self.p99_slo_s is not None and (
            not math.isfinite(self.p99_slo_s) or self.p99_slo_s <= 0
        ):
            raise ServingError(
                f"tenant {self.name}: p99 SLO must be positive and "
                f"finite, got {self.p99_slo_s}"
            )
        if self.max_outstanding is not None and self.max_outstanding < 1:
            raise ServingError(
                f"tenant {self.name}: admission cap must be >= 1, "
                f"got {self.max_outstanding}"
            )

    def describe(self) -> str:
        parts = [f"weight {self.weight:g}", self.tier]
        if self.p99_slo_s is not None:
            parts.append(f"p99 <= {self.p99_slo_s * 1e3:.2f} ms")
        if self.max_outstanding is not None:
            parts.append(f"cap {self.max_outstanding}")
        return f"{self.name}: " + ", ".join(parts)


class TenantSet:
    """The registered tenants of one workload, in registration order.

    Registration order is semantic: the ``weighted-fair`` policy
    apportions pool shards over tenants *in this order*, so two runs
    with the same specs in the same order are deterministic.
    """

    def __init__(self, tenants: Sequence[TenantSpec]):
        specs = list(tenants)
        if not specs:
            raise ServingError("a tenant set needs at least one tenant")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ServingError(f"duplicate tenant names: {names}")
        self._specs: Dict[str, TenantSpec] = {
            spec.name: spec for spec in specs
        }

    @classmethod
    def default(cls) -> "TenantSet":
        """The trivial set: one default tenant, no SLO, no cap."""
        return cls([TenantSpec(DEFAULT_TENANT)])

    # -- lookup -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[TenantSpec]:
        return iter(self._specs.values())

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(self._specs)

    def get(self, name: str) -> Optional[TenantSpec]:
        return self._specs.get(name)

    def spec_for(self, name: str) -> TenantSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise ServingError(
                f"unknown tenant {name!r}; registered tenants: "
                f"{sorted(self._specs)}"
            ) from None

    def tier_of(self, name: str) -> str:
        return self.spec_for(name).tier

    @property
    def total_weight(self) -> float:
        return sum(spec.weight for spec in self)

    def slo_targets(self) -> Dict[str, float]:
        """``name -> p99 target`` for the tenants that declare one."""
        return {
            spec.name: spec.p99_slo_s
            for spec in self
            if spec.p99_slo_s is not None
        }

    def admission_caps(self) -> Dict[str, int]:
        """``name -> max outstanding`` for the tenants that declare one."""
        return {
            spec.name: spec.max_outstanding
            for spec in self
            if spec.max_outstanding is not None
        }

    @property
    def trivial(self) -> bool:
        """True when tenancy changes nothing: exactly the default
        tenant, no SLO, no admission cap.  Trivial sets keep the
        pre-tenancy fast paths (and reports) intact."""
        if len(self._specs) != 1:
            return False
        spec = next(iter(self))
        return (
            spec.name == DEFAULT_TENANT
            and spec.p99_slo_s is None
            and spec.max_outstanding is None
        )

    def describe(self) -> str:
        return "; ".join(spec.describe() for spec in self)


#: Keys :func:`parse_tenant` understands after the tenant name.
TENANT_SPEC_KEYS = ("weight", "tier", "p99", "cap")


def parse_tenant(spec: str) -> TenantSpec:
    """One ``--tenant`` CLI spec::

        NAME[:weight=W][:tier=interactive|batch][:p99=MS][:cap=N]

    e.g. ``interactive:weight=3:tier=interactive:p99=5:cap=64`` or the
    minimal ``bulk:tier=batch``.  ``p99`` is milliseconds, matching
    ``--slo-p99``.
    """
    head, _, tail = spec.partition(":")
    name = head.strip()
    fields: Dict[str, object] = {}
    if tail:
        for part in tail.split(":"):
            key, sep, raw = part.partition("=")
            key = key.strip()
            if not sep or key not in TENANT_SPEC_KEYS:
                raise ServingError(
                    f"tenant spec {spec!r}: expected "
                    f"key=value with key in {TENANT_SPEC_KEYS}, "
                    f"got {part!r}"
                )
            if key in fields:
                raise ServingError(
                    f"tenant spec {spec!r}: duplicate key {key!r}"
                )
            if key == "tier":
                fields["tier"] = raw.strip()
                continue
            try:
                value = float(raw) if key != "cap" else int(raw)
            except ValueError:
                raise ServingError(
                    f"tenant spec {spec!r}: bad {key} value {raw!r}"
                ) from None
            if key == "weight":
                fields["weight"] = value
            elif key == "p99":
                fields["p99_slo_s"] = value * 1e-3
            else:
                fields["max_outstanding"] = value
    return TenantSpec(name=name, **fields)


def parse_tenants(specs: Sequence[str]) -> TenantSet:
    """A :class:`TenantSet` from repeated ``--tenant`` specs."""
    return TenantSet([parse_tenant(spec) for spec in specs])


def assign_tenants(requests: Sequence, tenants: TenantSet) -> List:
    """Tag an untagged request stream with tenants, weight-proportional.

    Deterministic largest-remainder interleave: request ``i`` goes to
    the tenant whose served share lags its weight share the most (ties
    break on registration order), so every prefix of the stream splits
    as close to the weight ratio as integer counts allow — no RNG, no
    dependence on arrival values.  Requests that already carry a
    non-default tag keep it.
    """
    specs = list(tenants)
    total = tenants.total_weight
    issued = [0] * len(specs)
    tagged = []
    for position, request in enumerate(requests):
        if request.tenant != DEFAULT_TENANT:
            tagged.append(request)
            continue
        deficit = [
            spec.weight / total * (position + 1) - issued[i]
            for i, spec in enumerate(specs)
        ]
        chosen = max(range(len(specs)), key=lambda i: (deficit[i], -i))
        issued[chosen] += 1
        tagged.append(
            type(request)(
                index=request.index,
                arrival=request.arrival,
                tenant=specs[chosen].name,
            )
        )
    return tagged


def split_clients(total: int, tenants: TenantSet) -> List[Tuple[str, int]]:
    """Apportion ``total`` closed-loop clients over tenants by weight.

    Largest-remainder: every tenant gets ``floor(total * w/W)`` clients
    plus the leftovers in descending-remainder order (registration
    order breaks ties), and at least the apportionment allows — a
    tenant may end up with zero clients when ``total`` is small.
    """
    if total < 1:
        raise ServingError(f"client count must be >= 1, got {total}")
    specs = list(tenants)
    weight = tenants.total_weight
    quotas = [total * spec.weight / weight for spec in specs]
    counts = [int(quota) for quota in quotas]
    remainders = sorted(
        range(len(specs)),
        key=lambda i: (-(quotas[i] - counts[i]), i),
    )
    for i in remainders[: total - sum(counts)]:
        counts[i] += 1
    return [
        (spec.name, count)
        for spec, count in zip(specs, counts)
        if count > 0
    ]

"""Discrete-event kernel: the virtual-time heart of the serving layer.

Every serving-layer behaviour — open-loop arrivals, dynamic batching,
scheduling, closed-loop clients, SLO control, shard failures — is
expressed as *typed events* on one :class:`EventKernel`: a virtual-time
heap dispatching to pluggable handlers.  The kernel is what lets
arrivals depend on completions (closed-loop clients), control loops
observe the system they steer (SLO shedding/rerouting), and scenarios
perturb it mid-stream (kill/restore a shard) without any component
knowing about the others.

Determinism is the design invariant: events pop in ``(time, priority,
sequence)`` order, handlers run in subscription order, and nothing
reads a wall clock — same sources, same pool, same policy, same
scenario ⇒ the same event trace, byte for byte.

Event taxonomy (priority breaks same-instant ties, lowest first):

====================  ========  =========================================
event                 priority  meaning
====================  ========  =========================================
``ShardDown``         0         a shard fails: in-flight work is lost
                                and re-queued
``ShardUp``           1         a failed shard rejoins the pool
``ShardDegrade``      1         a shard slows by a latency multiplier
``ShardRestoreRate``  1         a degraded shard returns to full speed
``BatchDone``         2         one completion instant of a dispatched
                                batch
``PolicyTick``        3         a control-loop heartbeat (SLO /
                                autoscaler cadence)
``Arrival``           4         one request enters the system
``Flush``             5         a batcher wait-deadline wakeup
====================  ========  =========================================

``ShardDown``/``ShardUp`` precede everything so a scenario applies
before traffic at the same instant; the degrade pair shares
``ShardUp``'s priority (same-instant ties among the three break on push
order, which the scenario compiler emits sorted); ``BatchDone``
precedes ``Arrival`` so a closed-loop client's completion is processed
before the arrival it causes; ``Arrival`` precedes ``Flush`` so a
request arriving exactly at a wait deadline joins that flush — the
ordering the pre-kernel batcher implemented inline.

The kernel is also the serving layer's hot loop — a trace replay
dispatches millions of events — so the implementation spends nothing
per event that the semantics do not require.  The heap holds plain
``(time, priority, seq, entry)`` tuples: heapq compares them at C
speed, and the unique ``seq`` guarantees the ``entry`` handle itself is
never compared.  Events are ``slots=True`` dataclasses (no per-event
``__dict__``), :meth:`EventKernel.pending` is an O(1) counter read, and
:meth:`EventKernel.run` pops same-instant runs in one batch, falling
back to the heap only when a handler schedules an event that must
interleave with the batch.  None of this changes the event trace: the
determinism tests pin pop order across both code paths.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    ClassVar,
    Dict,
    List,
    Optional,
    Type,
)

from repro.errors import ServingError

if TYPE_CHECKING:  # pragma: no cover - type-only, avoids a cycle
    from repro.serving.metrics import RequestRecord
    from repro.serving.traffic import Request


@dataclass(frozen=True, slots=True)
class Event:
    """Base event: a virtual timestamp plus a class-level tie priority."""

    time: float
    priority: ClassVar[int] = 100


@dataclass(frozen=True, slots=True)
class ShardDown(Event):
    """Shard ``shard`` fails at ``time``; its in-flight work is lost."""

    shard: str = ""
    priority: ClassVar[int] = 0


@dataclass(frozen=True, slots=True)
class ShardUp(Event):
    """Shard ``shard`` rejoins the pool at ``time`` (fresh timeline)."""

    shard: str = ""
    priority: ClassVar[int] = 1


@dataclass(frozen=True, slots=True)
class ShardDegrade(Event):
    """Shard ``shard`` slows down at ``time``: every batch dispatched
    from here on takes ``factor`` times its healthy service time.

    A degraded shard stays *up* — it keeps accepting work, just
    slowly — which is what distinguishes a straggler from a failure:
    the scheduler's latency-aware policies route around it instead of
    the server re-queueing its work.  Batches already in flight keep
    their original completion instants (the slowdown models contention
    that affects new work, and rewriting scheduled completions would
    make in-flight accounting ambiguous — a kill, by contrast, cancels
    them outright).
    """

    shard: str = ""
    factor: float = 1.0
    priority: ClassVar[int] = 1


@dataclass(frozen=True, slots=True)
class ShardRestoreRate(Event):
    """Shard ``shard`` returns to full speed at ``time`` (ends a
    :class:`ShardDegrade` window; batches dispatched after this run at
    the healthy service time again)."""

    shard: str = ""
    priority: ClassVar[int] = 1


@dataclass(frozen=True, slots=True)
class BatchDone(Event):
    """One completion instant of a dispatched batch.

    A batch of ``batch_size`` images round-robins over a shard's NI
    instances, so it completes in rounds: one ``BatchDone`` is emitted
    per round, carrying the records that finish at that instant
    (``final`` marks the last round).  ``busy_delta`` is the busy time
    the shard accrued since the previous round — summed over a batch's
    rounds it equals the batch makespan, and a mid-batch kill then
    counts exactly the work that actually completed.
    """

    shard: str = ""
    records: List["RequestRecord"] = field(default_factory=list)
    busy_delta: float = 0.0
    batch_size: int = 0
    first: bool = False
    final: bool = False
    priority: ClassVar[int] = 2


@dataclass(frozen=True, slots=True)
class PolicyTick(Event):
    """A control-loop heartbeat.

    Several controllers (the SLO controller, the autoscaler) tick on
    the same kernel, each at its own cadence: ``owner`` tags whose
    heartbeat this is, and each controller ignores — and never
    re-schedules — ticks it does not own, so two control loops on one
    kernel cannot multiply each other's tick chains.
    """

    owner: str = ""
    priority: ClassVar[int] = 3


@dataclass(frozen=True, slots=True)
class Arrival(Event):
    """One request enters the system at ``time``.

    ``time`` equals ``request.arrival`` for first deliveries; a request
    re-queued after a shard failure keeps its original ``arrival`` (so
    its latency accounts the lost work) but re-enters at the failure
    instant.
    """

    request: Optional["Request"] = None
    priority: ClassVar[int] = 4


@dataclass(frozen=True, slots=True)
class Flush(Event):
    """A batcher wait-deadline wakeup; ``token`` marks it stale when the
    queue head it was scheduled for has already flushed.

    ``key`` routes the wakeup to one queue of a tenant-aware batcher
    (queues are keyed by batch tier); the single-queue batcher keeps
    the default empty key, so legacy event traces are unchanged.
    """

    token: int = 0
    key: str = ""
    priority: ClassVar[int] = 5


class _Entry:
    """Cancellable handle for a scheduled event.

    The heap itself holds ``(time, priority, seq, entry)`` tuples —
    heapq orders them with C-level tuple comparisons, and the unique
    ``seq`` means the entry in the last slot is never compared — so the
    handle carries only the mutable lifecycle flags ``cancel``/``run``
    need."""

    __slots__ = ("event", "cancelled", "popped")

    def __init__(self, event: Event):
        self.event = event
        self.cancelled = False
        self.popped = False


Handler = Callable[["EventKernel", Event], None]


class EventKernel:
    """A virtual-time event heap with per-type handler dispatch.

    * :meth:`push` schedules an event (never in the past) and returns a
      handle that :meth:`cancel` invalidates lazily;
    * :meth:`subscribe` registers a handler for one event type;
      handlers run in subscription order;
    * :meth:`run` pops events in ``(time, priority, sequence)`` order
      until the heap drains, advancing :attr:`now` monotonically.
    """

    def __init__(self) -> None:
        #: (time, priority, seq, entry) tuples — see :class:`_Entry`.
        self._heap: List[tuple] = []
        self._seq = 0
        self._live: Dict[Type[Event], int] = {}
        self._pending = 0  # sum(self._live.values()), maintained O(1)
        self._handlers: Dict[Type[Event], List[Handler]] = {}
        self.now = 0.0
        self.events_processed = 0

    # -- scheduling -------------------------------------------------------

    def push(self, event: Event) -> _Entry:
        """Schedule ``event``; returns a cancellable handle."""
        if event.time < self.now:
            raise ServingError(
                f"event {type(event).__name__} scheduled at {event.time} "
                f"in the past (now {self.now})"
            )
        entry = _Entry(event)
        kind = type(event)
        heapq.heappush(
            self._heap, (event.time, kind.priority, self._seq, entry)
        )
        self._seq += 1
        self._live[kind] = self._live.get(kind, 0) + 1
        self._pending += 1
        return entry

    def cancel(self, entry: _Entry) -> None:
        """Invalidate a scheduled event (lazy: skipped when popped).

        Cancelling an entry that already dispatched is a no-op — the
        pending counts were settled when it popped."""
        if not entry.cancelled and not entry.popped:
            entry.cancelled = True
            self._live[type(entry.event)] -= 1
            self._pending -= 1

    def pending(self, event_type: Optional[Type[Event]] = None) -> int:
        """Live (non-cancelled, not yet popped) events, optionally of
        one type."""
        if event_type is not None:
            return self._live.get(event_type, 0)
        return self._pending

    # -- dispatch ---------------------------------------------------------

    def subscribe(self, event_type: Type[Event], handler: Handler) -> None:
        """Register ``handler`` for ``event_type`` (subscription order
        is dispatch order)."""
        self._handlers.setdefault(event_type, []).append(handler)

    def run(self, max_events: int = 1_000_000) -> int:
        """Drain the heap; returns the number of events processed.

        ``max_events`` bounds runaway feedback loops (a closed-loop
        source that never stops issuing, a tick that always
        reschedules): exceeding it raises :class:`ServingError` rather
        than spinning forever.
        """
        heap = self._heap
        live = self._live
        get_handlers = self._handlers.get
        pop = heapq.heappop
        processed = 0
        batch: List[tuple] = []
        while heap or batch:
            if batch:
                # A handler may have scheduled an event that sorts
                # before the rest of the batch (same instant, lower
                # priority or just a smaller seq than a later push):
                # one C-level tuple comparison keeps the global
                # (time, priority, seq) order without re-heaping the
                # batch.  Pushes into the past are rejected, so the
                # heap can never hold an event *earlier* than now.
                if heap and heap[0] < batch[-1]:
                    item = pop(heap)
                else:
                    item = batch.pop()
            else:
                item = pop(heap)
                # Batch the whole same-instant run in one go: the
                # common trace-replay case pops long runs of events
                # whose order is already decided.
                time = item[0]
                while heap and heap[0][0] == time:
                    batch.append(pop(heap))
                batch.reverse()  # ascending order; dispatch from the end
            entry = item[3]
            if entry.cancelled:
                # Cancelled entries settled the pending counters in
                # cancel(); handlers can cancel into the batch too, so
                # this check runs at dispatch time, not gather time.
                continue
            entry.popped = True
            event = entry.event
            kind = type(event)
            live[kind] -= 1
            self._pending -= 1
            self.now = item[0]
            processed += 1
            if processed > max_events:
                raise ServingError(
                    f"event budget exhausted after {max_events} events "
                    "- runaway event loop?"
                )
            for handler in get_handlers(kind, ()):
                handler(self, event)
        self.events_processed += processed
        return processed


class EventSource:
    """Something that feeds the kernel: open-loop lists, closed-loop
    client pools, failure scenarios.

    A source *primes* the kernel with its initial events and may react
    to completions (:meth:`on_batch_done`) and SLO sheds
    (:meth:`on_shed`) — which is exactly what makes closed-loop
    behaviour expressible: the next arrival is a function of a
    completion.  ``prime`` must (re)initialise all per-run state so one
    source instance can drive back-to-back runs.
    """

    def prime(self, kernel: EventKernel) -> None:
        """Push the source's initial events; reset per-run state."""

    def on_batch_done(self, kernel: EventKernel, event: BatchDone) -> None:
        """React to a completion instant (closed-loop hooks)."""

    def on_shed(
        self, kernel: EventKernel, requests: List["Request"], now: float
    ) -> None:
        """React to the SLO controller dropping ``requests`` at ``now``."""

"""Shards: one deployed accelerator design each, pooled behind a cache.

A :class:`Shard` is one deployment of a
:class:`~repro.pipeline.session.PipelineSession` — a compiled model on
a device, executed by a :class:`~repro.runtime.batch.BatchRunner` over
the design's NI instances.  The serving layer is a *virtual-time*
simulation: a shard keeps a ``busy_until`` horizon and places each
dispatched batch after it, using the runner's simulated per-image
timing probe (which is data-independent, so one simulation per shard —
or one per *pool* of identical shards — suffices).

A :class:`ShardPool` owns N shards that share one
:class:`~repro.pipeline.cache.EvaluationCache` (and optionally one
:class:`~repro.pipeline.store.EvaluationStore` behind the parent
session):  :meth:`ShardPool.replicate` deploys N identical shards from
one session via :meth:`PipelineSession.clone`, paying a single DSE and
compilation; :meth:`ShardPool.of` builds a heterogeneous pool from
arbitrary sessions (different devices and/or different models).
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Sequence

from repro.errors import ServingError
from repro.runtime.batch import BatchRunner
from repro.serving.metrics import RequestRecord
from repro.serving.traffic import Request


class Shard:
    """One deployed design plus its virtual execution timeline."""

    def __init__(
        self,
        session,
        name: Optional[str] = None,
        probe_of: Optional["Shard"] = None,
    ):
        self.session = session
        self.name = name or (
            f"{session.network.name}@{session.device.name}"
        )
        self.runner = BatchRunner.from_session(session)
        #: Identical twin whose timing probe this shard reuses (set by
        #: :meth:`ShardPool.replicate` — clones share the compiled
        #: model and device, and the folded accelerator's timing is
        #: data-independent, so re-simulating the probe per shard would
        #: measure the same number N times).
        self._probe_of = probe_of
        #: Availability flag driven by failure scenarios
        #: (:class:`~repro.serving.events.ShardDown` /
        #: :class:`~repro.serving.events.ShardUp`); the scheduler only
        #: routes to shards that are up.
        self.up = True
        #: The virtual-time horizon up to which queued work drains.
        #: Usage *statistics* live in the server's completion-sourced
        #: accounting, not here — a dispatch-time counter would count
        #: work a failure scenario later destroys.
        self.busy_until = 0.0
        #: Latency multiplier driven by chaos scenarios
        #: (:class:`~repro.serving.events.ShardDegrade` /
        #: :class:`~repro.serving.events.ShardRestoreRate`): batches
        #: dispatched while it is > 1 take that many times their
        #: healthy service time.  The scheduling views scale by it too,
        #: so latency-aware policies route around a straggler.
        self.rate_factor = 1.0

    # -- static properties ------------------------------------------------

    @property
    def instances(self) -> int:
        return self.runner.instances

    @property
    def ops_per_image(self) -> int:
        return self.runner.ops_per_image

    def probe_seconds(self) -> float:
        """Simulated per-image latency of one instance (cached).

        Replicas seed their own runner with the twin's measurement, so
        every path through :meth:`BatchRunner.completion_offsets` sees
        the shared probe and no replica ever re-simulates it.
        """
        if self._probe_of is not None:
            self.runner._record_probe(self._probe_of.probe_seconds())
        return self.runner.probe_seconds()

    def analytical_seconds(self) -> float:
        """Eq. 12-15 per-image latency — the
        :class:`~repro.estimator.latency.NetworkEstimate` the
        shortest-expected-latency policy ranks shards by (available
        without running a single simulation)."""
        return self.session.estimate().latency

    # -- scheduling view --------------------------------------------------

    def backlog_seconds(self, now: float) -> float:
        """Queued work still draining at virtual time ``now``."""
        return max(self.busy_until - now, 0.0)

    def expected_service_seconds(self, count: int) -> float:
        """Analytical batch service time (round-robin over NI),
        scaled by the current :attr:`rate_factor` so latency-aware
        policies see a straggler as slow, not as free."""
        if count < 1:
            raise ServingError(f"batch size must be >= 1, got {count}")
        seconds = (
            math.ceil(count / self.instances) * self.analytical_seconds()
        )
        if self.rate_factor != 1.0:
            seconds *= self.rate_factor
        return seconds

    def probe_service_seconds(self, count: int) -> float:
        """:meth:`expected_service_seconds` from the simulated probe
        instead of the Eq. 12-15 estimate — the natural control
        timescale for batch-granular policies (autoscaler ticks,
        warm-up and SLO targets expressed in batch times)."""
        if count < 1:
            raise ServingError(f"batch size must be >= 1, got {count}")
        seconds = math.ceil(count / self.instances) * self.probe_seconds()
        if self.rate_factor != 1.0:
            seconds *= self.rate_factor
        return seconds

    def expected_completion(self, count: int, now: float) -> float:
        """When a batch dispatched now would finish on this shard."""
        return max(now, self.busy_until) + self.expected_service_seconds(
            count
        )

    # -- execution --------------------------------------------------------

    def execute(self, batch: Sequence[Request], at: float) -> List[
            RequestRecord]:
        """Place ``batch`` on the timeline at virtual time ``at``.

        The batch starts when the shard is free (``max(at,
        busy_until)``) and its images complete at the runner's
        round-robin offsets; the shard is then busy until the last
        image finishes.  Batches never overlap — exactly the
        back-to-back accounting of
        :meth:`~repro.runtime.batch.BatchRunner.run`.
        """
        if not batch:
            raise ServingError("empty batch dispatched")
        self.probe_seconds()  # seed replicas before the runner math
        offsets = self.runner.completion_offsets(len(batch))
        if self.rate_factor != 1.0:
            offsets = [offset * self.rate_factor for offset in offsets]
        start = max(at, self.busy_until)
        records = []
        for offset, request in zip(offsets, batch):
            records.append(
                RequestRecord(
                    index=request.index,
                    arrival=request.arrival,
                    dispatched=at,
                    started=start,
                    completed=start + offset,
                    shard=self.name,
                    batch_size=len(batch),
                    tenant=request.tenant,
                )
            )
        self.busy_until = records[-1].completed
        return records

    def completion_groups(self, count: int) -> List[tuple]:
        """The runner's per-round completion instants
        (:meth:`~repro.runtime.batch.BatchRunner.completion_groups`),
        scaled by the current :attr:`rate_factor` — the offsets the
        server's ``BatchDone`` events must use so they stay consistent
        with :meth:`execute`'s per-request records."""
        groups = self.runner.completion_groups(count)
        if self.rate_factor != 1.0:
            groups = [
                (offset * self.rate_factor, images)
                for offset, images in groups
            ]
        return groups

    def reset(self) -> None:
        """Clear the virtual timeline and mark the shard available at
        full speed (timing probe stays warm)."""
        self.up = True
        self.busy_until = 0.0
        self.rate_factor = 1.0

    def fail(self) -> None:
        """Take the shard down: the timeline is wiped (in-flight work
        is lost — the server re-queues it) and the scheduler stops
        routing here until :meth:`restore`.  A kill also clears any
        degradation: the replacement a restore models is a fresh,
        healthy deployment."""
        self.reset()
        self.up = False

    def restore(self) -> None:
        """Bring a failed shard back with a fresh timeline."""
        self.up = True

    def degrade(self, factor: float) -> None:
        """Slow the shard by ``factor`` (>= 1) until
        :meth:`restore_rate`; the shard stays up and keeps its queue."""
        if not math.isfinite(factor) or factor < 1.0:
            raise ServingError(
                f"degrade factor must be finite and >= 1, got {factor}"
            )
        self.rate_factor = factor

    def restore_rate(self) -> None:
        """Return a degraded shard to its healthy service time."""
        self.rate_factor = 1.0

    def describe(self) -> str:
        return (
            f"{self.name}: {self.session.cfg.describe()} "
            f"({self.ops_per_image / 1e9:.2f} GOP/image)"
        )


class ShardPool:
    """N shards sharing one evaluation cache (and optional store)."""

    def __init__(self, shards: Sequence[Shard]):
        if not shards:
            raise ServingError("a shard pool needs at least one shard")
        names = [shard.name for shard in shards]
        if len(set(names)) != len(names):
            raise ServingError(f"duplicate shard names: {names}")
        self.shards = list(shards)

    @classmethod
    def replicate(cls, session, count: int) -> "ShardPool":
        """``count`` identical shards from one session.

        The session's compiled model is materialised once, every clone
        shares it (plus the DSE result, mapping, estimate, parameters,
        cache and calibration), and replicas reuse the first shard's
        timing probe — so an N-shard pool costs one DSE, one
        compilation and one probe simulation.
        """
        if count < 1:
            raise ServingError(f"shard count must be >= 1, got {count}")
        session.compiled()  # materialise before cloning so shards share
        shards = []
        for index in range(count):
            shard_session = session if index == 0 else session.clone()
            shards.append(
                Shard(
                    shard_session,
                    name=f"shard{index}",
                    probe_of=shards[0] if index else None,
                )
            )
        return cls(shards)

    @classmethod
    def of(cls, *sessions, names: Optional[Sequence[str]] = None
           ) -> "ShardPool":
        """A heterogeneous pool — one shard per session.

        Sessions may target different devices and/or models; pass one
        shared :class:`~repro.pipeline.cache.EvaluationCache` to the
        sessions to share layer estimates across them.
        """
        if names is not None and len(names) != len(sessions):
            raise ServingError(
                f"{len(names)} names for {len(sessions)} sessions"
            )
        return cls([
            Shard(session, name=names[index] if names else f"shard{index}")
            for index, session in enumerate(sessions)
        ])

    def __len__(self) -> int:
        return len(self.shards)

    def __iter__(self) -> Iterator[Shard]:
        return iter(self.shards)

    @property
    def total_instances(self) -> int:
        return sum(shard.instances for shard in self.shards)

    def capacity_images_per_second(self) -> float:
        """Analytical aggregate service rate (images/s) of the pool."""
        return sum(
            shard.instances / shard.analytical_seconds()
            for shard in self.shards
        )

    def simulated_images_per_second(self) -> float:
        """Probe-measured aggregate service rate (images/s).

        :meth:`capacity_images_per_second` is the Eq. 12-15 *estimate*;
        this is the same quantity from each shard's simulated timing
        probe.  Use it when an overload factor must mean what it says
        in simulated time (the estimate can be several times optimistic
        on quantised configs, turning "1.2x capacity" traffic into a
        de-facto closed batch)."""
        return sum(
            shard.instances / shard.probe_seconds()
            for shard in self.shards
        )

    def reset(self) -> None:
        for shard in self.shards:
            shard.reset()

    def close(self) -> int:
        """Flush every store-backed session; returns entries persisted.

        Clones created by :meth:`replicate` carry no store, so this
        flushes each backing store exactly once (via the parent).
        """
        return sum(shard.session.close() for shard in self.shards)

    def describe(self) -> str:
        return "\n".join(shard.describe() for shard in self.shards)

"""The redesigned serve API: one eagerly-validated workload spec.

Nine constructor/call knobs accreted on :class:`ShardServer` across
PRs 3–9 (policy, batcher, SLO, autoscaler, scenario, engine, budget,
...), and tenancy would have made the sprawl worse.  A
:class:`WorkloadSpec` gathers everything one serve run needs into a
single frozen dataclass, validated *eagerly* at construction (like
``DseOptions``) so a bad combination fails where it was written, not
deep inside an event handler:

>>> spec = WorkloadSpec(
...     traffic=make_requests("poisson", 256, qps=800.0),
...     policy="weighted-fair",
...     tenants=TenantSet([
...         TenantSpec("interactive", weight=3.0, p99_slo_s=0.005),
...         TenantSpec("bulk", weight=1.0, tier="batch"),
...     ]),
...     batcher=BatcherOptions(max_batch=8),
... )
>>> report = ShardServer(pool).run(spec)

``ShardServer.serve(...)`` survives as a thin shim that builds a spec
from its kwargs, and the deprecated knob-per-argument constructor
builds one too — both stay event-identical to the old API.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence, Union

from repro.errors import ServingError
from repro.serving.autoscaler import AutoscalerOptions
from repro.serving.batcher import BatcherOptions
from repro.serving.events import EventSource
from repro.serving.scheduler import POLICIES, SchedulingPolicy
from repro.serving.slo import SloOptions
from repro.serving.tenancy import DEFAULT_TENANT, TenantSet, TenantSpec
from repro.serving.traffic import Request

#: Replay engines a spec may request.  ``auto`` picks the fast-forward
#: recurrence whenever the run is a plain open-loop replay (see
#: :func:`~repro.serving.fastforward.ineligible_reason`) and the event
#: kernel otherwise; the explicit names force one path.
ENGINES = ("auto", "kernel", "fastforward")


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything one serve run needs, validated eagerly.

    ``traffic`` is a request list (open loop) or exactly one
    :class:`~repro.serving.events.EventSource`; it may be ``None`` in a
    *template* spec held by a server and filled in per run with
    :func:`dataclasses.replace`.  ``tenants`` may be a
    :class:`~repro.serving.tenancy.TenantSet` or a plain sequence of
    :class:`~repro.serving.tenancy.TenantSpec` (normalised to a set);
    ``None`` means the trivial single-tenant workload.  ``scenario``
    and ``autoscale`` are mutually exclusive, exactly as on the CLI —
    a scenario kills specific shards while the autoscaler owns the
    pool membership, and the two fighting over it has no defined
    semantics.
    """

    traffic: Optional[Union[Sequence[Request], EventSource]] = None
    policy: Union[str, SchedulingPolicy] = "round-robin"
    batcher: Optional[BatcherOptions] = None
    tenants: Optional[TenantSet] = None
    slo: Optional[SloOptions] = None
    autoscale: Optional[AutoscalerOptions] = None
    scenario: Optional[object] = None
    engine: str = "auto"
    max_events: Optional[int] = None

    def __post_init__(self) -> None:
        if isinstance(self.policy, str):
            if self.policy not in POLICIES:
                raise ServingError(
                    f"unknown scheduling policy {self.policy!r}; "
                    f"expected one of {POLICIES}"
                )
        elif not isinstance(self.policy, SchedulingPolicy):
            raise ServingError(
                f"policy must be a name or a SchedulingPolicy, "
                f"got {type(self.policy).__name__}"
            )
        if self.batcher is not None and not isinstance(
            self.batcher, BatcherOptions
        ):
            raise ServingError(
                f"batcher must be BatcherOptions, "
                f"got {type(self.batcher).__name__}"
            )
        if self.slo is not None and not isinstance(self.slo, SloOptions):
            raise ServingError(
                f"slo must be SloOptions, got {type(self.slo).__name__}"
            )
        if self.autoscale is not None and not isinstance(
            self.autoscale, AutoscalerOptions
        ):
            raise ServingError(
                f"autoscale must be AutoscalerOptions, "
                f"got {type(self.autoscale).__name__}"
            )
        if self.scenario is not None and self.autoscale is not None:
            raise ServingError(
                "a workload cannot combine a failure scenario with an "
                "autoscaler: the scenario kills specific shards while "
                "the autoscaler owns the pool membership"
            )
        if self.engine not in ENGINES:
            raise ServingError(
                f"unknown serve engine {self.engine!r}; "
                f"expected one of {ENGINES}"
            )
        if self.max_events is not None and self.max_events < 1:
            raise ServingError(
                f"max_events must be >= 1, got {self.max_events}"
            )
        tenants = self.tenants
        if tenants is not None and not isinstance(tenants, TenantSet):
            specs = list(tenants)
            if not all(isinstance(spec, TenantSpec) for spec in specs):
                raise ServingError(
                    "tenants must be a TenantSet or a sequence of "
                    "TenantSpec"
                )
            tenants = TenantSet(specs)
            object.__setattr__(self, "tenants", tenants)
        self._check_traffic(tenants)

    def _check_traffic(self, tenants: Optional[TenantSet]) -> None:
        traffic = self.traffic
        if traffic is None or isinstance(traffic, EventSource):
            return
        requests = list(traffic)
        # Materialise: a generator would otherwise be consumed here and
        # arrive empty at the server.
        object.__setattr__(self, "traffic", requests)
        if not all(isinstance(item, Request) for item in requests):
            raise ServingError(
                "traffic must be a Request list or ONE EventSource"
            )
        tags = {request.tenant for request in requests}
        tags.discard(DEFAULT_TENANT)
        if not tags:
            return
        if tenants is None:
            raise ServingError(
                f"traffic is tagged with tenants {sorted(tags)} but the "
                "spec registers no tenant set"
            )
        unknown = sorted(tag for tag in tags if tag not in tenants)
        if unknown:
            raise ServingError(
                f"traffic references unregistered tenants {unknown}; "
                f"registered: {sorted(tenants.names)}"
            )

    # -- accessors --------------------------------------------------------

    @property
    def policy_name(self) -> str:
        if isinstance(self.policy, str):
            return self.policy
        return self.policy.name

    def tenant_set(self) -> TenantSet:
        """The spec's tenants, or the trivial default set."""
        return self.tenants if self.tenants is not None else (
            TenantSet.default()
        )

    def with_traffic(
        self, traffic: Union[Sequence[Request], EventSource]
    ) -> "WorkloadSpec":
        """A copy of this spec serving ``traffic`` — the template-spec
        idiom the sweep driver and planner replay use."""
        return replace(self, traffic=traffic)

    def describe(self) -> str:
        parts = [f"policy {self.policy_name}", f"engine {self.engine}"]
        if self.tenants is not None and not self.tenants.trivial:
            parts.append(f"tenants [{self.tenants.describe()}]")
        if self.batcher is not None:
            parts.append(
                f"batch <= {self.batcher.max_batch}, "
                f"wait {self.batcher.max_wait_s * 1e3:g} ms"
            )
        if self.slo is not None:
            parts.append(
                f"slo p99 <= {self.slo.p99_target_s * 1e3:.2f} ms "
                f"({self.slo.action})"
            )
        if self.autoscale is not None:
            parts.append("autoscaled")
        if self.scenario is not None:
            parts.append("scenario")
        if self.max_events is not None:
            parts.append(f"budget {self.max_events} events")
        return "workload: " + ", ".join(parts)


"""Autoscaling: utilisation/p99-driven shard elasticity on the kernel.

PR 3 sized the pool by hand; PR 4 let scenarios take shards away.  The
autoscaler closes the loop the other way: it *watches* the serving
system through the same :class:`~repro.serving.events.BatchDone`
stream the SLO controller uses, and drives the pool between
``min_shards`` and ``max_shards`` by emitting the very events a
failure scenario would — :class:`~repro.serving.events.ShardUp` /
:class:`~repro.serving.events.ShardDown` — so the scheduler, the
re-queue path and the usage accounting all work unchanged.

Two target modes (exactly one per controller):

* ``target_utilisation`` — windowed busy fraction of the active
  shards, from per-round ``busy_delta``: scale up while above the
  target; scale down when the pool would *still* sit at or under the
  target with one shard fewer (``value <= target * (n-1)/n``) — the
  projection rule that prevents down/up flapping at the watermark;
* ``target_p99_s`` — windowed nearest-rank p99 of observed end-to-end
  latencies, exactly the SLO controller's estimator: scale up while
  above the target, down when comfortably under it
  (``value < scale_down_margin * target``).

Decisions happen on owned :class:`~repro.serving.events.PolicyTick`
heartbeats, at most one per ``cooldown_s`` — control is
piecewise-constant, like the SLO loop.

**Warm-up** models what :meth:`PipelineSession.clone` + deployment
cost in real time: a scale-up at ``t`` schedules ``ShardUp`` at
``t + warmup_s``, so the new shard is *provisioned* (billed in
shard-seconds from ``t``) but not *routable* until the warm-up
elapses — the scheduler routes around it for free because the shard
is simply still down.  A scale-down emits ``ShardDown`` immediately;
the server re-queues the victim's in-flight work like any failure, so
elasticity never loses a request.

The controller's bill is the **shard-seconds** integral of the
provisioned timeline — the number the ``autoscale`` experiment and
``bench_serving.py`` compare against a fixed pool sized for peak.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import ServingError
from repro.serving.events import (
    Arrival,
    BatchDone,
    EventKernel,
    Flush,
    PolicyTick,
    ShardDown,
    ShardUp,
)
from repro.serving.metrics import ScaleEvent, percentile
from repro.serving.shard import Shard, ShardPool

#: Metric names reported in :class:`~repro.serving.metrics.ScaleEvent`.
AUTOSCALE_METRICS = ("utilisation", "p99")

#: Fallback control period (virtual seconds) when neither ``tick_s``
#: nor a p99 target supplies a timescale.  The serving benchmarks run
#: tens to hundreds of virtual milliseconds, so 5 ms is a few batch
#: times; callers with a real workload should derive the tick from
#: their batch service time (the CLI does).
DEFAULT_UTILISATION_TICK_S = 0.005


@dataclass(frozen=True)
class AutoscalerOptions:
    """The elasticity contract and the control loop's knobs.

    Exactly one of ``target_utilisation`` (busy fraction in ``(0, 1]``)
    and ``target_p99_s`` (seconds) must be set.  ``warmup_s`` is the
    modeled provisioning delay of a scaled-up shard; ``cooldown_s``
    bounds the decision rate (default: two ticks); ``window`` /
    ``min_samples`` shape the p99 estimator exactly like
    :class:`~repro.serving.slo.SloOptions`;
    ``utilisation_window_s`` is the trailing busy-time window (default:
    eight ticks — see :attr:`effective_utilisation_window_s` for why
    it must stay several batch times wide); ``scale_down_margin`` is
    the p99-mode hysteresis (down only when the estimate is under
    ``margin * target``).
    """

    min_shards: int
    max_shards: int
    target_utilisation: Optional[float] = None
    target_p99_s: Optional[float] = None
    warmup_s: float = 0.0
    cooldown_s: Optional[float] = None
    tick_s: Optional[float] = None
    window: int = 64
    min_samples: int = 8
    utilisation_window_s: Optional[float] = None
    scale_down_margin: float = 0.5

    def __post_init__(self) -> None:
        if self.min_shards < 1:
            raise ServingError(
                f"min_shards must be >= 1, got {self.min_shards}"
            )
        if self.max_shards < self.min_shards:
            raise ServingError(
                f"max_shards ({self.max_shards}) must be >= min_shards "
                f"({self.min_shards})"
            )
        targets = (self.target_utilisation, self.target_p99_s)
        if sum(t is not None for t in targets) != 1:
            raise ServingError(
                "exactly one of target_utilisation and target_p99_s "
                f"must be set, got {targets}"
            )
        if self.target_utilisation is not None and not (
            0.0 < self.target_utilisation <= 1.0
        ):
            raise ServingError(
                "target_utilisation must be in (0, 1], got "
                f"{self.target_utilisation}"
            )
        if self.target_p99_s is not None and self.target_p99_s <= 0:
            raise ServingError(
                f"target_p99_s must be positive, got {self.target_p99_s}"
            )
        if self.warmup_s < 0:
            raise ServingError(
                f"warmup_s must be >= 0, got {self.warmup_s}"
            )
        if self.cooldown_s is not None and self.cooldown_s < 0:
            raise ServingError(
                f"cooldown_s must be >= 0, got {self.cooldown_s}"
            )
        if self.tick_s is not None and self.tick_s <= 0:
            raise ServingError(
                f"tick_s must be positive, got {self.tick_s}"
            )
        if self.min_samples < 1:
            raise ServingError(
                f"min_samples must be >= 1, got {self.min_samples}"
            )
        if self.window < self.min_samples:
            raise ServingError(
                f"window ({self.window}) must hold at least min_samples "
                f"({self.min_samples}) completions"
            )
        if (
            self.utilisation_window_s is not None
            and self.utilisation_window_s <= 0
        ):
            raise ServingError(
                "utilisation_window_s must be positive, got "
                f"{self.utilisation_window_s}"
            )
        if not 0.0 < self.scale_down_margin < 1.0:
            raise ServingError(
                "scale_down_margin must be in (0, 1), got "
                f"{self.scale_down_margin}"
            )

    @property
    def metric(self) -> str:
        return (
            "utilisation" if self.target_utilisation is not None else "p99"
        )

    @property
    def effective_tick_s(self) -> float:
        if self.tick_s is not None:
            return self.tick_s
        if self.target_p99_s is not None:
            return self.target_p99_s / 2.0  # Nyquist for the target
        return DEFAULT_UTILISATION_TICK_S

    @property
    def effective_cooldown_s(self) -> float:
        if self.cooldown_s is not None:
            return self.cooldown_s
        return 2.0 * self.effective_tick_s

    @property
    def effective_utilisation_window_s(self) -> float:
        """Trailing busy-time window (default: eight ticks).

        Utilisation is completion-sourced, so work still executing at
        the observation instant is invisible: a fully-busy shard reads
        ``1 - service_time / window`` in the worst phase.  Keep the
        window several batch service times wide (or the target under
        that ceiling), otherwise a saturated pool can sit just below
        the target forever.
        """
        if self.utilisation_window_s is not None:
            return self.utilisation_window_s
        return 8.0 * self.effective_tick_s


class AutoscalerController:
    """PolicyTick-driven shard elasticity as kernel event handlers.

    One controller drives one :meth:`ShardServer.serve` run: shards
    beyond ``min_shards`` start as *standby* (down, zero-billed), the
    windowed metric is re-evaluated on owned ticks, and decisions emit
    ``ShardUp``/``ShardDown`` against the pool.  State is
    event-sourced: the controller learns up/down flips from the same
    events everything else does, so its shard-count invariant holds
    whatever order the handlers run in.
    """

    #: ``PolicyTick.owner`` tag of this controller's heartbeats.
    TICK_OWNER = "autoscaler"

    def __init__(self, options: AutoscalerOptions):
        self.options = options
        self.scale_events: List[ScaleEvent] = []
        self.ticks = 0
        self._pool: Optional[ShardPool] = None
        self._active: List[str] = []
        self._warming: Dict[str, float] = {}  # shard -> routable at
        self._spans: Dict[str, List[List[float]]] = {}
        self._latencies: Deque[float] = deque(maxlen=options.window)
        self._busy: Deque[Tuple[float, float]] = deque()
        self._last_action = float("-inf")

    # -- wiring -----------------------------------------------------------

    def attach(self, kernel: EventKernel, pool: ShardPool) -> None:
        """Subscribe the handlers, park the standby shards and start
        the tick chain.

        Must run *after* :meth:`ShardPool.reset` (the server's
        ``serve`` does) so the standby cut applies to a fresh pool;
        the scheduler never sees the parked shards as available.
        """
        options = self.options
        if len(pool) < options.max_shards:
            raise ServingError(
                f"autoscaler max_shards is {options.max_shards} but the "
                f"pool holds {len(pool)} shard(s); replicate the pool "
                "to max_shards"
            )
        self._pool = pool
        self._active = [
            shard.name for shard in pool.shards[: options.min_shards]
        ]
        self._warming = {}
        self._spans = {name: [[kernel.now, -1.0]] for name in self._active}
        self._latencies.clear()
        self._busy.clear()
        self._last_action = float("-inf")
        self.scale_events = []
        self.ticks = 0
        for shard in pool.shards[options.min_shards:]:
            shard.up = False  # standby: provisioned only when scaled up
        kernel.subscribe(BatchDone, self._on_batch_done)
        kernel.subscribe(PolicyTick, self._on_tick)
        kernel.subscribe(ShardUp, self._on_shard_up)
        kernel.subscribe(ShardDown, self._on_shard_down)
        kernel.push(
            PolicyTick(
                time=kernel.now + options.effective_tick_s,
                owner=self.TICK_OWNER,
            )
        )

    # -- observation ------------------------------------------------------

    def _on_batch_done(self, kernel: EventKernel, event: BatchDone) -> None:
        for record in event.records:
            self._latencies.append(record.latency)
        if event.busy_delta > 0:
            self._busy.append((event.time, event.busy_delta))

    def utilisation_estimate(self, now: float) -> float:
        """Windowed busy fraction of the active shards (NaN when the
        window is empty of both time and samples).

        Each completion round's ``busy_delta`` covers the interval
        ending at its completion instant, so only its overlap with the
        window counts — per-shard busy can then never exceed the
        window span.  The estimate still reads over 1.0 right after a
        scale-down, deliberately: busy accrued by a decommissioned
        shard is weighed against the *surviving* capacity, which is
        exactly the overload signal the next decision needs.
        """
        window = self.options.effective_utilisation_window_s
        start = now - window
        while self._busy and self._busy[0][0] <= start:
            self._busy.popleft()
        span = min(now, window)
        if span <= 0:
            return float("nan")
        busy = sum(
            min(at, now) - max(at - delta, start)
            for at, delta in self._busy
        )
        return busy / (span * max(len(self._active), 1))

    def p99_estimate(self) -> float:
        """Windowed nearest-rank p99 (NaN until ``min_samples``)."""
        if len(self._latencies) < self.options.min_samples:
            return float("nan")
        return percentile(list(self._latencies), 99)

    def observe(self, now: float) -> float:
        """The current value of the configured metric."""
        if self.options.metric == "utilisation":
            return self.utilisation_estimate(now)
        return self.p99_estimate()

    # -- event-sourced shard state ----------------------------------------

    def _on_shard_up(self, kernel: EventKernel, event: ShardUp) -> None:
        self._warming.pop(event.shard, None)
        if event.shard not in self._active:
            self._active.append(event.shard)
        self._open_span(event.shard, kernel.now)

    def _on_shard_down(self, kernel: EventKernel, event: ShardDown) -> None:
        if event.shard in self._active:
            self._active.remove(event.shard)
        self._warming.pop(event.shard, None)
        self._close_span(event.shard, kernel.now)

    def _open_span(self, name: str, at: float) -> None:
        spans = self._spans.setdefault(name, [])
        if not spans or spans[-1][1] >= 0:
            spans.append([at, -1.0])

    def _close_span(self, name: str, at: float) -> None:
        spans = self._spans.get(name)
        if spans and spans[-1][1] < 0:
            spans[-1][1] = at

    # -- control ----------------------------------------------------------

    @property
    def provisioned(self) -> int:
        """Shards the pool is currently billed for: active + warming."""
        return len(self._active) + len(self._warming)

    def _on_tick(self, kernel: EventKernel, event: PolicyTick) -> None:
        if event.owner != self.TICK_OWNER:
            return  # another controller's heartbeat
        self.ticks += 1
        self._decide(kernel)
        # Keep ticking only while the run still has non-tick events in
        # flight — the chain ends itself when everything drains.
        if kernel.pending() - kernel.pending(PolicyTick) > 0:
            kernel.push(
                PolicyTick(
                    time=kernel.now + self.options.effective_tick_s,
                    owner=self.TICK_OWNER,
                )
            )

    def _decide(self, kernel: EventKernel) -> None:
        options = self.options
        now = kernel.now
        if now - self._last_action < options.effective_cooldown_s:
            return
        # Only act while the system still has work — queued arrivals,
        # batcher wakeups or in-flight completions.  The observation
        # windows hold *past* evidence, so a drained run would
        # otherwise keep scaling up on the overload it already served
        # (and every spurious warm-up ShardUp prolongs the tick chain).
        if (
            kernel.pending(Arrival) + kernel.pending(Flush)
            + kernel.pending(BatchDone) == 0
        ):
            return
        value = self.observe(now)
        if value != value:  # NaN: not enough evidence yet
            return
        provisioned = self.provisioned
        if self._should_scale_up(value) and provisioned < options.max_shards:
            self._scale_up(kernel, value)
        elif (
            provisioned > options.min_shards
            and not self._warming  # let a provisioning decision land first
            and self._should_scale_down(value, provisioned)
        ):
            self._scale_down(kernel, value)

    def _should_scale_up(self, value: float) -> bool:
        if self.options.metric == "utilisation":
            return value > self.options.target_utilisation
        return value > self.options.target_p99_s

    def _should_scale_down(self, value: float, provisioned: int) -> bool:
        if self.options.metric == "utilisation":
            # Projection rule: only shrink when the survivors would
            # still sit at or under the target.
            projected = value * provisioned / (provisioned - 1)
            return projected <= self.options.target_utilisation
        return value < self.options.scale_down_margin * (
            self.options.target_p99_s
        )

    def _scale_up(self, kernel: EventKernel, observed: float) -> None:
        shard = self._standby_shard()
        if shard is None:
            return
        now = kernel.now
        ready = now + self.options.warmup_s
        self._warming[shard.name] = ready
        # Billed from the decision (the clone is provisioning), but
        # routable only when the ShardUp below fires.
        self._open_span(shard.name, now)
        kernel.push(ShardUp(time=ready, shard=shard.name))
        self._record(now, "up", shard.name, observed, self.provisioned)

    def _scale_down(self, kernel: EventKernel, observed: float) -> None:
        shard = self._drain_candidate(kernel.now)
        if shard is None:
            return
        kernel.push(ShardDown(time=kernel.now, shard=shard.name))
        # The ShardDown dispatches after this handler returns, so the
        # post-decision count is one under the current one.
        self._record(
            kernel.now, "down", shard.name, observed, self.provisioned - 1
        )

    def _standby_shard(self) -> Optional[Shard]:
        """The first pool shard that is neither routable nor warming."""
        for shard in self._pool.shards:
            if not shard.up and shard.name not in self._warming:
                return shard
        return None

    def _drain_candidate(self, now: float) -> Optional[Shard]:
        """The active shard with the least queued work (cheapest to
        re-queue), ties to the lowest pool index."""
        candidates = [
            shard for shard in self._pool.shards
            if shard.name in self._active
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda s: s.backlog_seconds(now))

    def _record(
        self,
        at: float,
        action: str,
        shard: str,
        observed: float,
        shards_after: int,
    ) -> None:
        self._last_action = at
        self.scale_events.append(
            ScaleEvent(
                time=at,
                action=action,
                shard=shard,
                shards_after=shards_after,
                observed=observed,
                metric=self.options.metric,
            )
        )

    # -- reporting --------------------------------------------------------

    def usage_spans(
        self, end: float
    ) -> Dict[str, Tuple[Tuple[float, float], ...]]:
        """Per-shard provisioned intervals, open spans closed at
        ``end`` — the utilisation timeline the report carries.  Every
        pool shard gets an entry; a standby shard never provisioned
        maps to an empty tuple.  A span still open at ``end`` closes
        there, floored at its own start (a decision landing after the
        last completion must not yield an inverted span)."""
        out: Dict[str, Tuple[Tuple[float, float], ...]] = {}
        for shard in self._pool.shards:
            out[shard.name] = tuple(
                (start, stop if stop >= 0 else max(start, end))
                for start, stop in self._spans.get(shard.name, ())
            )
        return out

    def shard_seconds(self, start: float, end: float) -> float:
        """Provisioned shard-time within ``[start, end]`` — the bill a
        fixed pool would pay as ``shards * (end - start)``."""
        if end < start:
            raise ServingError(
                f"shard-second window [{start}, {end}] is inverted"
            )
        total = 0.0
        for spans in self.usage_spans(end).values():
            for span_start, span_stop in spans:
                total += max(
                    0.0, min(span_stop, end) - max(span_start, start)
                )
        return total

    def describe(self) -> str:
        options = self.options
        if options.metric == "utilisation":
            target = f"target utilisation {options.target_utilisation:.0%}"
        else:
            target = f"target p99 {options.target_p99_s * 1e3:.2f} ms"
        ups = sum(1 for e in self.scale_events if e.action == "up")
        downs = len(self.scale_events) - ups
        return (
            f"autoscaler: {options.min_shards}..{options.max_shards} "
            f"shards, {target}, warmup "
            f"{options.warmup_s * 1e3:.2f} ms; {ups} up / {downs} down "
            f"across {self.ticks} tick(s), final {self.provisioned} "
            "provisioned"
        )

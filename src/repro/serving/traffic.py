"""Synthetic traffic generation for the serving layer.

The serving simulator is driven by *virtual* arrival timestamps, so a
traffic model is just a deterministic function from (count, rate, seed)
to a sorted list of :class:`Request` objects.  Four models cover the
scenarios the benchmarks exercise:

* ``uniform`` — a closed-loop batch: every request is present at t=0
  (the :class:`~repro.runtime.batch.BatchRunner` comparison case);
* ``fixed-qps`` — an open loop with deterministic ``1/qps`` spacing;
* ``poisson`` — an open loop with exponential inter-arrival times of
  mean ``1/qps`` (memoryless arrivals, the classic serving workload);
* ``burst`` — groups of simultaneous requests spaced so the *average*
  rate is still ``qps`` (tests the batcher's coalescing and the tail
  behaviour of the schedulers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ServingError

#: Traffic models understood by :func:`make_requests` and the CLI.
TRAFFIC_MODELS = ("uniform", "fixed-qps", "poisson", "burst")


@dataclass(frozen=True)
class Request:
    """One inference request: an identity and a virtual arrival time."""

    index: int
    arrival: float

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ServingError(
                f"request {self.index}: arrival must be >= 0, "
                f"got {self.arrival}"
            )


def uniform_arrivals(count: int) -> List[float]:
    """Closed loop: all requests queued at t=0."""
    _check_count(count)
    return [0.0] * count


def fixed_qps_arrivals(count: int, qps: float) -> List[float]:
    """Open loop with deterministic spacing ``1/qps``."""
    _check_count(count)
    _check_qps(qps)
    return [index / qps for index in range(count)]


def poisson_arrivals(count: int, qps: float, seed: int = 2020) -> List[float]:
    """Open loop with exponential inter-arrivals of mean ``1/qps``."""
    _check_count(count)
    _check_qps(qps)
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(scale=1.0 / qps, size=count)
    return list(np.cumsum(gaps))


def burst_arrivals(count: int, qps: float, burst: int = 8) -> List[float]:
    """Bursts of ``burst`` simultaneous requests at average rate ``qps``.

    Burst ``k`` lands at ``k * burst / qps`` — the long-run rate matches
    ``fixed-qps`` while the instantaneous rate is infinite.
    """
    _check_count(count)
    _check_qps(qps)
    if burst < 1:
        raise ServingError(f"burst size must be >= 1, got {burst}")
    return [(index // burst) * burst / qps for index in range(count)]


def make_requests(
    model: str,
    count: int,
    qps: Optional[float] = None,
    seed: int = 2020,
    burst: int = 8,
) -> List[Request]:
    """Requests of one traffic ``model``, sorted by arrival time.

    ``qps`` is required by every model except ``uniform``.
    """
    if model == "uniform":
        arrivals = uniform_arrivals(count)
    elif model in ("fixed-qps", "poisson", "burst"):
        if qps is None:
            raise ServingError(f"traffic model {model!r} requires a qps")
        if model == "fixed-qps":
            arrivals = fixed_qps_arrivals(count, qps)
        elif model == "poisson":
            arrivals = poisson_arrivals(count, qps, seed)
        else:
            arrivals = burst_arrivals(count, qps, burst)
    else:
        raise ServingError(
            f"unknown traffic model {model!r}; "
            f"expected one of {TRAFFIC_MODELS}"
        )
    return [
        Request(index=index, arrival=float(arrival))
        for index, arrival in enumerate(arrivals)
    ]


def _check_count(count: int) -> None:
    if count < 1:
        raise ServingError(f"request count must be >= 1, got {count}")


def _check_qps(qps: float) -> None:
    if qps <= 0:
        raise ServingError(f"qps must be positive, got {qps}")

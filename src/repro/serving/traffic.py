"""Synthetic traffic generation for the serving layer.

The serving simulator is driven by *virtual* arrival timestamps, so an
*open-loop* traffic model is just a deterministic function from
(count, rate, seed) to a sorted list of :class:`Request` objects.
Four models cover the scenarios the benchmarks exercise:

* ``uniform`` — one closed batch: every request is present at t=0
  (the :class:`~repro.runtime.batch.BatchRunner` comparison case);
* ``fixed-qps`` — an open loop with deterministic ``1/qps`` spacing;
* ``poisson`` — an open loop with exponential inter-arrival times of
  mean ``1/qps`` (memoryless arrivals, the classic serving workload);
* ``burst`` — groups of simultaneous requests spaced so the *average*
  rate is still ``qps`` (tests the batcher's coalescing and the tail
  behaviour of the schedulers).

On the event kernel every traffic model is an
:class:`~repro.serving.events.EventSource`: :class:`OpenLoopSource`
wraps any pre-materialised request list (arrivals independent of
completions), :class:`ClosedLoopClientPool` implements the classic
closed-loop methodology — N clients, each issuing its next request one
think time after its previous one *completes*, so the arrival process
depends on the system's own behaviour — and :class:`TraceSource`
replays *real* arrival logs (CSV or JSONL timestamp files, loaded by
:func:`load_trace`) with time-scaling and looping, so a few seconds of
production traffic can drive an arbitrarily long, rate-matched
simulation next to the synthetic models.
"""

from __future__ import annotations

import csv
import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ServingError
from repro.serving.events import Arrival, BatchDone, EventKernel, EventSource
from repro.serving.tenancy import DEFAULT_TENANT, TenantSet, split_clients

#: Traffic models understood by :func:`make_requests` and the CLI.
TRAFFIC_MODELS = ("uniform", "fixed-qps", "poisson", "burst")

#: Think-time distributions of :class:`ClosedLoopClientPool`.
THINK_DISTRIBUTIONS = ("fixed", "exponential")


@dataclass(frozen=True, slots=True)
class Request:
    """One inference request: an identity, a virtual arrival time and
    the tenant it belongs to (untagged construction sites keep working
    — they mint :data:`~repro.serving.tenancy.DEFAULT_TENANT`
    requests)."""

    index: int
    arrival: float
    tenant: str = DEFAULT_TENANT

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ServingError(
                f"request {self.index}: arrival must be >= 0, "
                f"got {self.arrival}"
            )
        if not self.tenant:
            raise ServingError(
                f"request {self.index}: tenant must be non-empty"
            )


def uniform_arrivals(count: int) -> List[float]:
    """Closed loop: all requests queued at t=0."""
    _check_count(count)
    return [0.0] * count


def fixed_qps_arrivals(count: int, qps: float) -> List[float]:
    """Open loop with deterministic spacing ``1/qps``."""
    _check_count(count)
    _check_qps(qps)
    return [index / qps for index in range(count)]


def poisson_arrivals(count: int, qps: float, seed: int = 2020) -> List[float]:
    """Open loop with exponential inter-arrivals of mean ``1/qps``."""
    _check_count(count)
    _check_qps(qps)
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(scale=1.0 / qps, size=count)
    return list(np.cumsum(gaps))


def burst_arrivals(count: int, qps: float, burst: int = 8) -> List[float]:
    """Bursts of ``burst`` simultaneous requests at average rate ``qps``.

    Burst ``k`` lands at ``k * burst / qps`` — the long-run rate matches
    ``fixed-qps`` while the instantaneous rate is infinite.
    """
    _check_count(count)
    _check_qps(qps)
    if burst < 1:
        raise ServingError(f"burst size must be >= 1, got {burst}")
    return [(index // burst) * burst / qps for index in range(count)]


def make_requests(
    model: str,
    count: int,
    qps: Optional[float] = None,
    seed: int = 2020,
    burst: int = 8,
    tenant: str = DEFAULT_TENANT,
) -> List[Request]:
    """Requests of one traffic ``model``, sorted by arrival time.

    ``qps`` is required by every model except ``uniform``.  ``tenant``
    tags every minted request with one tenant — build one stream per
    tenant and combine with :func:`merge_streams` for a mix, or tag a
    single stream weight-proportionally with
    :func:`~repro.serving.tenancy.assign_tenants`.
    """
    if model == "uniform":
        arrivals = uniform_arrivals(count)
    elif model in ("fixed-qps", "poisson", "burst"):
        if qps is None:
            raise ServingError(f"traffic model {model!r} requires a qps")
        if model == "fixed-qps":
            arrivals = fixed_qps_arrivals(count, qps)
        elif model == "poisson":
            arrivals = poisson_arrivals(count, qps, seed)
        else:
            arrivals = burst_arrivals(count, qps, burst)
    else:
        raise ServingError(
            f"unknown traffic model {model!r}; "
            f"expected one of {TRAFFIC_MODELS}"
        )
    return [
        Request(index=index, arrival=float(arrival), tenant=tenant)
        for index, arrival in enumerate(arrivals)
    ]


def merge_streams(*streams: Sequence[Request]) -> List[Request]:
    """Merge per-tenant request lists into one globally-indexed stream.

    The input lists keep their tenant tags and arrival instants; the
    merge sorts by ``(arrival, tenant, original index)`` — fully
    deterministic — and re-mints sequential indices, because request
    indices are the identity that keys completion bookkeeping and two
    independent streams would collide.
    """
    merged = sorted(
        (request for stream in streams for request in stream),
        key=lambda r: (r.arrival, r.tenant, r.index),
    )
    if not merged:
        raise ServingError("nothing to merge: every stream is empty")
    return [
        Request(index=index, arrival=request.arrival, tenant=request.tenant)
        for index, request in enumerate(merged)
    ]


class OpenLoopSource(EventSource):
    """An arrival stream that ignores completions.

    Wraps any pre-materialised request list (every ``make_requests``
    model) as an event source: priming pushes one
    :class:`~repro.serving.events.Arrival` per request, sorted by
    ``(arrival, index)`` so simultaneous arrivals enter in index order —
    the order the pre-kernel batcher consumed them in.
    """

    def __init__(self, requests: Sequence[Request]):
        if not requests:
            raise ServingError("nothing to serve: empty request stream")
        self.requests = sorted(requests, key=lambda r: (r.arrival, r.index))
        #: True when any request carries a non-default tenant tag —
        #: precomputed so fast-forward eligibility gating stays O(1).
        self.tenanted = any(
            request.tenant != DEFAULT_TENANT for request in self.requests
        )

    def prime(self, kernel: EventKernel) -> None:
        for request in self.requests:
            kernel.push(Arrival(time=request.arrival, request=request))


#: Column/key names :func:`load_trace` accepts for the arrival instant.
TRACE_FIELDS = ("timestamp", "arrival", "time", "ts")

#: Column/key name carrying a request's tenant tag in tagged traces.
TRACE_TENANT_FIELD = "tenant"


def load_trace(path: Union[str, Path]) -> List[float]:
    """Arrival timestamps from a trace file (seconds, unsorted OK).

    Two formats, chosen by suffix:

    * ``.jsonl`` / ``.ndjson`` / ``.json`` — one JSON document per
      line: either a bare number or an object with one of
      ``TRACE_FIELDS`` (extra keys — request shapes, ids — ignored).
      A ``.json`` file holding one top-level array of such entries is
      accepted too;
    * anything else is read as CSV — a single timestamp column, or a
      header row naming one of ``TRACE_FIELDS`` (extra columns
      ignored).

    Timestamps may be epoch-based: :class:`TraceSource` rebases them to
    the earliest arrival before replaying.  An optional ``tenant``
    column/key tags each arrival with a traffic class —
    :func:`load_tagged_trace` returns the tags alongside the instants.
    """
    return [value for value, _tenant in load_tagged_trace(path)]


def load_tagged_trace(
    path: Union[str, Path],
) -> List[Tuple[float, str]]:
    """``(arrival, tenant)`` pairs from a trace file.

    Same formats as :func:`load_trace`; entries without a ``tenant``
    column/key belong to :data:`~repro.serving.tenancy.DEFAULT_TENANT`.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ServingError(f"cannot read trace {path}: {exc}") from None
    if path.suffix.lower() in (".jsonl", ".ndjson", ".json"):
        arrivals = _parse_jsonl_trace(path, text)
    else:
        arrivals = _parse_csv_trace(path, text)
    if not arrivals:
        raise ServingError(f"trace {path} holds no arrivals")
    return arrivals


def _trace_value(path: Path, line: int, raw: object) -> float:
    try:
        value = float(raw)
    except (TypeError, ValueError):
        raise ServingError(
            f"trace {path} line {line}: bad timestamp {raw!r}"
        ) from None
    if not math.isfinite(value):
        raise ServingError(
            f"trace {path} line {line}: timestamp must be finite, "
            f"got {value}"
        )
    return value


def _trace_tenant(path: Path, line: int, raw: object) -> str:
    tenant = str(raw).strip()
    if not tenant:
        raise ServingError(
            f"trace {path} line {line}: tenant tag must be non-empty"
        )
    return tenant


def _trace_entry(path: Path, position: int, doc: object) -> Tuple[float, str]:
    """One JSONL/JSON entry: a bare number or a TRACE_FIELDS object,
    optionally tagged with a ``tenant`` key."""
    tenant = DEFAULT_TENANT
    if isinstance(doc, dict):
        if TRACE_TENANT_FIELD in doc:
            tenant = _trace_tenant(path, position, doc[TRACE_TENANT_FIELD])
        for key in TRACE_FIELDS:
            if key in doc:
                doc = doc[key]
                break
        else:
            raise ServingError(
                f"trace {path} entry {position}: no timestamp key "
                f"(expected one of {TRACE_FIELDS})"
            )
    return _trace_value(path, position, doc), tenant


def _parse_jsonl_trace(path: Path, text: str) -> List[Tuple[float, str]]:
    # A .json file may hold one top-level array instead of one
    # document per line.
    try:
        doc = json.loads(text)
    except ValueError:
        doc = None
    if isinstance(doc, list):
        return [
            _trace_entry(path, position, entry)
            for position, entry in enumerate(doc, start=1)
        ]
    arrivals = []
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            raise ServingError(
                f"trace {path} line {number}: not JSON: {line[:40]!r}"
            ) from None
        arrivals.append(_trace_entry(path, number, entry))
    return arrivals


def _parse_csv_trace(path: Path, text: str) -> List[Tuple[float, str]]:
    rows = [row for row in csv.reader(text.splitlines()) if row]
    if not rows:
        return []
    column, start = 0, 0
    tenant_column: Optional[int] = None
    head = [cell.strip().lower() for cell in rows[0]]
    try:
        float(head[0])
    except ValueError:
        # Header row: find the timestamp column by name.
        for key in TRACE_FIELDS:
            if key in head:
                column, start = head.index(key), 1
                break
        else:
            raise ServingError(
                f"trace {path}: header {rows[0]!r} names no timestamp "
                f"column (expected one of {TRACE_FIELDS})"
            ) from None
        if TRACE_TENANT_FIELD in head:
            tenant_column = head.index(TRACE_TENANT_FIELD)
    arrivals = []
    for number, row in enumerate(rows[start:], start=start + 1):
        if column >= len(row):
            raise ServingError(
                f"trace {path} line {number}: missing column {column}"
            )
        tenant = DEFAULT_TENANT
        if tenant_column is not None and tenant_column < len(row):
            tenant = _trace_tenant(path, number, row[tenant_column])
        arrivals.append(
            (_trace_value(path, number, row[column].strip()), tenant)
        )
    return arrivals


class TraceSource(EventSource):
    """Replay a recorded arrival trace as an open-loop event source.

    The trace is rebased to its earliest arrival (epoch timestamps
    replay from t=0), multiplied by ``time_scale`` (0.5 replays twice
    as fast — the knob that rate-matches a production trace to a
    simulated pool's capacity) and repeated ``loop`` times, each
    repetition offset by the scaled span plus one mean inter-arrival
    gap so the seam keeps the trace's own cadence.  Request indices
    run sequentially across loops, so a trace composes with everything
    keyed on request identity (SLO shed counts, failure re-queues,
    closed-loop think-time clients sharing the same benchmark).
    """

    def __init__(
        self,
        arrivals: Sequence[float],
        time_scale: float = 1.0,
        loop: int = 1,
        name: str = "trace",
        tenants: Optional[Sequence[str]] = None,
    ):
        if not arrivals:
            raise ServingError("nothing to serve: empty trace")
        if time_scale <= 0 or not math.isfinite(time_scale):
            raise ServingError(
                f"time_scale must be positive and finite, got {time_scale}"
            )
        if loop < 1:
            raise ServingError(f"loop must be >= 1, got {loop}")
        tags = (
            [DEFAULT_TENANT] * len(arrivals)
            if tenants is None else [str(tag) for tag in tenants]
        )
        if len(tags) != len(arrivals):
            raise ServingError(
                f"trace has {len(arrivals)} arrivals but "
                f"{len(tags)} tenant tags"
            )
        if not all(tags):
            raise ServingError("trace tenant tags must be non-empty")
        pairs = sorted(
            zip((float(value) for value in arrivals), tags),
            key=lambda pair: pair[0],
        )
        base = [value for value, _tag in pairs]
        if not all(math.isfinite(value) for value in base):
            raise ServingError("trace arrivals must be finite")
        origin = base[0]
        scaled = [(value - origin) * time_scale for value in base]
        span = scaled[-1]
        gap = span / (len(scaled) - 1) if len(scaled) > 1 else 0.0
        cycle = span + gap
        self.name = name
        self.time_scale = time_scale
        self.loop = loop
        self.arrivals = [
            iteration * cycle + value
            for iteration in range(loop)
            for value in scaled
        ]
        self.tags = [
            tag for _iteration in range(loop) for _value, tag in pairs
        ]
        #: True when any arrival carries a non-default tenant tag —
        #: precomputed so fast-forward eligibility gating stays O(1).
        self.tenanted = any(tag != DEFAULT_TENANT for tag in self.tags)

    @classmethod
    def load(
        cls,
        path: Union[str, Path],
        time_scale: float = 1.0,
        loop: int = 1,
    ) -> "TraceSource":
        """A source straight from a trace file (see :func:`load_trace`);
        a ``tenant`` column/key in the trace tags the replayed
        arrivals."""
        tagged = load_tagged_trace(path)
        return cls(
            [value for value, _tenant in tagged],
            time_scale=time_scale,
            loop=loop,
            name=str(Path(path).name),
            tenants=[tenant for _value, tenant in tagged],
        )

    def requests(self) -> List[Request]:
        """The replayed arrivals as a plain request list — usable
        anywhere the synthetic models are."""
        return [
            Request(index=index, arrival=arrival, tenant=tenant)
            for index, (arrival, tenant) in enumerate(
                zip(self.arrivals, self.tags)
            )
        ]

    @property
    def span_seconds(self) -> float:
        """First to last replayed arrival."""
        return self.arrivals[-1] - self.arrivals[0]

    def mean_qps(self) -> float:
        """Long-run replayed arrival rate (NaN for a single instant)."""
        if self.span_seconds <= 0:
            return float("nan")
        return (len(self.arrivals) - 1) / self.span_seconds

    def prime(self, kernel: EventKernel) -> None:
        for request in self.requests():
            kernel.push(Arrival(time=request.arrival, request=request))

    def describe(self) -> str:
        rate = self.mean_qps()
        rate_text = f"{rate:.1f} req/s" if rate == rate else "instantaneous"
        return (
            f"trace {self.name}: {len(self.arrivals)} arrivals over "
            f"{self.span_seconds * 1e3:.1f} ms ({rate_text}, "
            f"scale {self.time_scale:g}, loop {self.loop})"
        )


#: Traffic-shape verbs understood by :func:`parse_shape` and the CLI.
TRAFFIC_SHAPES = ("diurnal", "flash")


@dataclass(frozen=True)
class Diurnal:
    """A smooth load cycle: intensity ``1 + amplitude *
    sin(2*pi*t/period + phase)`` — the day/night swing every production
    trace rides on.  ``amplitude`` must stay below 1 so the intensity
    never reaches zero (a zero-intensity stretch would make the
    time-warp non-invertible)."""

    amplitude: float
    period_s: float
    phase: float = 0.0

    def __post_init__(self) -> None:
        if not 0 <= self.amplitude < 1:
            raise ServingError(
                f"diurnal amplitude must be in [0, 1), "
                f"got {self.amplitude}"
            )
        if self.period_s <= 0 or not math.isfinite(self.period_s):
            raise ServingError(
                f"diurnal period must be positive and finite, "
                f"got {self.period_s}"
            )

    def intensity(self, t: np.ndarray) -> np.ndarray:
        return 1.0 + self.amplitude * np.sin(
            2.0 * np.pi * t / self.period_s + self.phase
        )

    def describe(self) -> str:
        return (
            f"diurnal x{1 + self.amplitude:g} over "
            f"{self.period_s * 1e3:.1f} ms"
        )


@dataclass(frozen=True)
class FlashCrowd:
    """A flash crowd: a Gaussian intensity bump of height ``amplitude``
    centred at ``at`` with width ``width_s`` (its standard deviation) —
    the news-event spike that tests how fast control loops react."""

    amplitude: float
    at: float
    width_s: float

    def __post_init__(self) -> None:
        if self.amplitude < 0 or not math.isfinite(self.amplitude):
            raise ServingError(
                f"flash-crowd amplitude must be >= 0 and finite, "
                f"got {self.amplitude}"
            )
        if self.width_s <= 0 or not math.isfinite(self.width_s):
            raise ServingError(
                f"flash-crowd width must be positive and finite, "
                f"got {self.width_s}"
            )
        if not math.isfinite(self.at):
            raise ServingError(
                f"flash-crowd centre must be finite, got {self.at}"
            )

    def intensity(self, t: np.ndarray) -> np.ndarray:
        return 1.0 + self.amplitude * np.exp(
            -0.5 * ((t - self.at) / self.width_s) ** 2
        )

    def describe(self) -> str:
        return (
            f"flash x{1 + self.amplitude:g} @ {self.at * 1e3:.1f} ms "
            f"(width {self.width_s * 1e3:.1f} ms)"
        )


def parse_shape(spec: str) -> Union[Diurnal, FlashCrowd]:
    """One ``--shape`` spec::

        diurnal:<amplitude>x<period>[+<phase>]   cycle (seconds, radians)
        flash:<amplitude>@<centre>~<width>       Gaussian bump (seconds)

    e.g. ``diurnal:0.5x0.2`` (load swings +-50% with a 200 ms period) or
    ``flash:3@0.05~0.01`` (a 4x spike 50 ms in, 10 ms wide).
    """
    verb, sep, tail = spec.partition(":")
    if not sep:
        raise ServingError(
            f"traffic shape {spec!r}: expected "
            f"<verb>:<args> with verb one of {TRAFFIC_SHAPES}"
        )

    def number(raw: str, what: str) -> float:
        try:
            return float(raw)
        except ValueError:
            raise ServingError(
                f"traffic shape {spec!r}: bad {what} {raw!r}"
            ) from None

    if verb == "diurnal":
        amplitude, sep, rest = tail.partition("x")
        if not sep:
            raise ServingError(
                f"traffic shape {spec!r}: expected "
                "diurnal:<amplitude>x<period>[+<phase>]"
            )
        period, sep, phase = rest.partition("+")
        return Diurnal(
            amplitude=number(amplitude, "amplitude"),
            period_s=number(period, "period"),
            phase=number(phase, "phase") if sep else 0.0,
        )
    if verb == "flash":
        amplitude, sep, rest = tail.partition("@")
        if not sep:
            raise ServingError(
                f"traffic shape {spec!r}: expected "
                "flash:<amplitude>@<centre>~<width>"
            )
        centre, sep, width = rest.partition("~")
        if not sep:
            raise ServingError(
                f"traffic shape {spec!r}: expected "
                "flash:<amplitude>@<centre>~<width>"
            )
        return FlashCrowd(
            amplitude=number(amplitude, "amplitude"),
            at=number(centre, "centre"),
            width_s=number(width, "width"),
        )
    raise ServingError(
        f"traffic shape {spec!r}: unknown verb {verb!r}; "
        f"expected one of {TRAFFIC_SHAPES}"
    )


def shape_arrivals(
    arrivals: Sequence[float],
    shapes: Sequence,
    samples: int = 4096,
) -> List[float]:
    """Warp ``arrivals`` so their local rate follows ``shapes``.

    The composed intensity ``s(t)`` (the product of each shape's
    ``intensity``) defines a cumulative ``L(t) = integral of s``; each
    arrival ``a`` maps to the warped instant ``w`` with ``L(w) =
    a * L(span)/span`` — arrivals bunch where the intensity is high and
    spread where it is low, while the first/last instants and the
    arrival *order* are exactly preserved (every intensity is bounded
    away from zero, so ``L`` is strictly increasing and the inversion
    is well defined).  ``L`` is computed by trapezoid sums on a
    ``samples``-point grid and inverted with ``np.interp`` — pure
    deterministic float math, no randomness.
    """
    if not shapes:
        return [float(value) for value in arrivals]
    if samples < 2:
        raise ServingError(f"shape samples must be >= 2, got {samples}")
    values = np.asarray(list(arrivals), dtype=float)
    if values.size == 0:
        raise ServingError("nothing to shape: empty arrival list")
    if not np.all(np.isfinite(values)):
        raise ServingError("arrivals must be finite")
    origin = float(values.min())
    span = float(values.max()) - origin
    if span <= 0.0:
        return [float(value) for value in values]
    grid = np.linspace(0.0, span, samples)
    intensity = np.ones_like(grid)
    for shape in shapes:
        intensity = intensity * shape.intensity(grid + origin)
    steps = np.diff(grid) * 0.5 * (intensity[1:] + intensity[:-1])
    cumulative = np.concatenate(([0.0], np.cumsum(steps)))
    # Renormalise so the warp fixes both endpoints: L(span) == span.
    cumulative *= span / cumulative[-1]
    warped = np.interp(values - origin, cumulative, grid) + origin
    return [float(value) for value in warped]


def shaped_trace(source: "TraceSource", shapes: Sequence) -> "TraceSource":
    """A :class:`TraceSource` replaying ``source`` with its arrivals
    warped by ``shapes`` (see :func:`shape_arrivals`); rebasing,
    scaling and looping have already been applied, so the shapes act on
    the replayed timeline."""
    shaped = TraceSource(
        shape_arrivals(source.arrivals, shapes),
        name=f"{source.name}+shaped",
        tenants=source.tags,
    )
    # Keep the provenance knobs: the arrivals above are already scaled
    # and looped, so the new source must not re-apply them.
    shaped.time_scale = source.time_scale
    shaped.loop = source.loop
    return shaped


class ClosedLoopClientPool(EventSource):
    """N closed-loop clients with think time — arrivals that depend on
    completions.

    Each client keeps exactly one request outstanding: all clients
    issue at t=0, and a client issues its next request one think time
    after its previous request *completes* (or is shed — a dropped
    request does not stall its client forever).  ``requests`` bounds
    the total issued across all clients, so a run always terminates.

    Think times are ``fixed`` (always ``think_time_s``) or
    ``exponential`` (mean ``think_time_s``, seeded — draws happen in
    deterministic completion order, so a run is exactly reproducible).

    With a non-trivial ``tenants`` set the clients split into
    per-tenant groups, apportioned by tenant weight
    (:func:`~repro.serving.tenancy.split_clients` — largest remainder,
    registration order, no RNG): client ids run in registration-order
    blocks and every request a client issues carries its group's tag.
    """

    def __init__(
        self,
        clients: int,
        requests: int,
        think_time_s: float = 0.0,
        distribution: str = "fixed",
        seed: int = 2020,
        tenants: Optional[TenantSet] = None,
    ):
        if clients < 1:
            raise ServingError(f"client count must be >= 1, got {clients}")
        if requests < 0:
            raise ServingError(
                f"total requests must be >= 0, got {requests}"
            )
        if think_time_s < 0:
            raise ServingError(
                f"think time must be >= 0, got {think_time_s}"
            )
        if distribution not in THINK_DISTRIBUTIONS:
            raise ServingError(
                f"unknown think-time distribution {distribution!r}; "
                f"expected one of {THINK_DISTRIBUTIONS}"
            )
        self.clients = clients
        self.requests = requests
        self.think_time_s = think_time_s
        self.distribution = distribution
        self.seed = seed
        if tenants is None:
            self._client_tenant = [DEFAULT_TENANT] * clients
        else:
            self._client_tenant = [
                name
                for name, count in split_clients(clients, tenants)
                for _client in range(count)
            ]
        #: True when any client issues non-default-tagged requests —
        #: precomputed so fast-forward eligibility gating stays O(1).
        self.tenanted = any(
            tag != DEFAULT_TENANT for tag in self._client_tenant
        )
        self._rng: Optional[np.random.Generator] = None
        self._owner: Dict[int, int] = {}  # outstanding index -> client
        self._issued = 0

    def prime(self, kernel: EventKernel) -> None:
        """All clients issue their first request at t=0 (per-run state
        is reset, so one pool can drive back-to-back runs)."""
        self._rng = np.random.default_rng(self.seed)
        self._owner = {}
        self._issued = 0
        for client in range(min(self.clients, self.requests)):
            self._issue(kernel, client, at=0.0)

    def _think(self) -> float:
        if self.distribution == "exponential" and self.think_time_s > 0:
            return float(self._rng.exponential(scale=self.think_time_s))
        return self.think_time_s

    def _issue(self, kernel: EventKernel, client: int, at: float) -> None:
        index = self._issued
        self._issued += 1
        self._owner[index] = client
        kernel.push(
            Arrival(
                time=at,
                request=Request(
                    index, at, tenant=self._client_tenant[client]
                ),
            )
        )

    def _advance(self, kernel: EventKernel, index: int, at: float) -> None:
        client = self._owner.pop(index, None)
        if client is not None and self._issued < self.requests:
            self._issue(kernel, client, at=at + self._think())

    def on_batch_done(self, kernel: EventKernel, event: BatchDone) -> None:
        for record in event.records:
            self._advance(kernel, record.index, event.time)

    def on_shed(
        self, kernel: EventKernel, requests: List[Request], now: float
    ) -> None:
        """A shed request unblocks its client like a completion would:
        the client thinks, then issues its next request."""
        for request in requests:
            self._advance(kernel, request.index, now)


def _check_count(count: int) -> None:
    if count < 1:
        raise ServingError(f"request count must be >= 1, got {count}")


def _check_qps(qps: float) -> None:
    if qps <= 0:
        raise ServingError(f"qps must be positive, got {qps}")

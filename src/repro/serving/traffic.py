"""Synthetic traffic generation for the serving layer.

The serving simulator is driven by *virtual* arrival timestamps, so an
*open-loop* traffic model is just a deterministic function from
(count, rate, seed) to a sorted list of :class:`Request` objects.
Four models cover the scenarios the benchmarks exercise:

* ``uniform`` — one closed batch: every request is present at t=0
  (the :class:`~repro.runtime.batch.BatchRunner` comparison case);
* ``fixed-qps`` — an open loop with deterministic ``1/qps`` spacing;
* ``poisson`` — an open loop with exponential inter-arrival times of
  mean ``1/qps`` (memoryless arrivals, the classic serving workload);
* ``burst`` — groups of simultaneous requests spaced so the *average*
  rate is still ``qps`` (tests the batcher's coalescing and the tail
  behaviour of the schedulers).

On the event kernel every traffic model is an
:class:`~repro.serving.events.EventSource`: :class:`OpenLoopSource`
wraps any pre-materialised request list (arrivals independent of
completions), and :class:`ClosedLoopClientPool` implements the classic
closed-loop methodology — N clients, each issuing its next request one
think time after its previous one *completes*, so the arrival process
depends on the system's own behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ServingError
from repro.serving.events import Arrival, BatchDone, EventKernel, EventSource

#: Traffic models understood by :func:`make_requests` and the CLI.
TRAFFIC_MODELS = ("uniform", "fixed-qps", "poisson", "burst")

#: Think-time distributions of :class:`ClosedLoopClientPool`.
THINK_DISTRIBUTIONS = ("fixed", "exponential")


@dataclass(frozen=True)
class Request:
    """One inference request: an identity and a virtual arrival time."""

    index: int
    arrival: float

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ServingError(
                f"request {self.index}: arrival must be >= 0, "
                f"got {self.arrival}"
            )


def uniform_arrivals(count: int) -> List[float]:
    """Closed loop: all requests queued at t=0."""
    _check_count(count)
    return [0.0] * count


def fixed_qps_arrivals(count: int, qps: float) -> List[float]:
    """Open loop with deterministic spacing ``1/qps``."""
    _check_count(count)
    _check_qps(qps)
    return [index / qps for index in range(count)]


def poisson_arrivals(count: int, qps: float, seed: int = 2020) -> List[float]:
    """Open loop with exponential inter-arrivals of mean ``1/qps``."""
    _check_count(count)
    _check_qps(qps)
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(scale=1.0 / qps, size=count)
    return list(np.cumsum(gaps))


def burst_arrivals(count: int, qps: float, burst: int = 8) -> List[float]:
    """Bursts of ``burst`` simultaneous requests at average rate ``qps``.

    Burst ``k`` lands at ``k * burst / qps`` — the long-run rate matches
    ``fixed-qps`` while the instantaneous rate is infinite.
    """
    _check_count(count)
    _check_qps(qps)
    if burst < 1:
        raise ServingError(f"burst size must be >= 1, got {burst}")
    return [(index // burst) * burst / qps for index in range(count)]


def make_requests(
    model: str,
    count: int,
    qps: Optional[float] = None,
    seed: int = 2020,
    burst: int = 8,
) -> List[Request]:
    """Requests of one traffic ``model``, sorted by arrival time.

    ``qps`` is required by every model except ``uniform``.
    """
    if model == "uniform":
        arrivals = uniform_arrivals(count)
    elif model in ("fixed-qps", "poisson", "burst"):
        if qps is None:
            raise ServingError(f"traffic model {model!r} requires a qps")
        if model == "fixed-qps":
            arrivals = fixed_qps_arrivals(count, qps)
        elif model == "poisson":
            arrivals = poisson_arrivals(count, qps, seed)
        else:
            arrivals = burst_arrivals(count, qps, burst)
    else:
        raise ServingError(
            f"unknown traffic model {model!r}; "
            f"expected one of {TRAFFIC_MODELS}"
        )
    return [
        Request(index=index, arrival=float(arrival))
        for index, arrival in enumerate(arrivals)
    ]


class OpenLoopSource(EventSource):
    """An arrival stream that ignores completions.

    Wraps any pre-materialised request list (every ``make_requests``
    model) as an event source: priming pushes one
    :class:`~repro.serving.events.Arrival` per request, sorted by
    ``(arrival, index)`` so simultaneous arrivals enter in index order —
    the order the pre-kernel batcher consumed them in.
    """

    def __init__(self, requests: Sequence[Request]):
        if not requests:
            raise ServingError("nothing to serve: empty request stream")
        self.requests = sorted(requests, key=lambda r: (r.arrival, r.index))

    def prime(self, kernel: EventKernel) -> None:
        for request in self.requests:
            kernel.push(Arrival(time=request.arrival, request=request))


class ClosedLoopClientPool(EventSource):
    """N closed-loop clients with think time — arrivals that depend on
    completions.

    Each client keeps exactly one request outstanding: all clients
    issue at t=0, and a client issues its next request one think time
    after its previous request *completes* (or is shed — a dropped
    request does not stall its client forever).  ``requests`` bounds
    the total issued across all clients, so a run always terminates.

    Think times are ``fixed`` (always ``think_time_s``) or
    ``exponential`` (mean ``think_time_s``, seeded — draws happen in
    deterministic completion order, so a run is exactly reproducible).
    """

    def __init__(
        self,
        clients: int,
        requests: int,
        think_time_s: float = 0.0,
        distribution: str = "fixed",
        seed: int = 2020,
    ):
        if clients < 1:
            raise ServingError(f"client count must be >= 1, got {clients}")
        if requests < 0:
            raise ServingError(
                f"total requests must be >= 0, got {requests}"
            )
        if think_time_s < 0:
            raise ServingError(
                f"think time must be >= 0, got {think_time_s}"
            )
        if distribution not in THINK_DISTRIBUTIONS:
            raise ServingError(
                f"unknown think-time distribution {distribution!r}; "
                f"expected one of {THINK_DISTRIBUTIONS}"
            )
        self.clients = clients
        self.requests = requests
        self.think_time_s = think_time_s
        self.distribution = distribution
        self.seed = seed
        self._rng: Optional[np.random.Generator] = None
        self._owner: Dict[int, int] = {}  # outstanding index -> client
        self._issued = 0

    def prime(self, kernel: EventKernel) -> None:
        """All clients issue their first request at t=0 (per-run state
        is reset, so one pool can drive back-to-back runs)."""
        self._rng = np.random.default_rng(self.seed)
        self._owner = {}
        self._issued = 0
        for client in range(min(self.clients, self.requests)):
            self._issue(kernel, client, at=0.0)

    def _think(self) -> float:
        if self.distribution == "exponential" and self.think_time_s > 0:
            return float(self._rng.exponential(scale=self.think_time_s))
        return self.think_time_s

    def _issue(self, kernel: EventKernel, client: int, at: float) -> None:
        index = self._issued
        self._issued += 1
        self._owner[index] = client
        kernel.push(Arrival(time=at, request=Request(index, at)))

    def _advance(self, kernel: EventKernel, index: int, at: float) -> None:
        client = self._owner.pop(index, None)
        if client is not None and self._issued < self.requests:
            self._issue(kernel, client, at=at + self._think())

    def on_batch_done(self, kernel: EventKernel, event: BatchDone) -> None:
        for record in event.records:
            self._advance(kernel, record.index, event.time)

    def on_shed(
        self, kernel: EventKernel, requests: List[Request], now: float
    ) -> None:
        """A shed request unblocks its client like a completion would:
        the client thinks, then issues its next request."""
        for request in requests:
            self._advance(kernel, request.index, now)


def _check_count(count: int) -> None:
    if count < 1:
        raise ServingError(f"request count must be >= 1, got {count}")


def _check_qps(qps: float) -> None:
    if qps <= 0:
        raise ServingError(f"qps must be positive, got {qps}")

"""Dynamic batching: coalesce queued requests under a batch/wait budget.

The batcher is an event handler on the
:class:`~repro.serving.events.EventKernel`: it consumes
:class:`~repro.serving.events.Arrival` events into a queue and emits
dispatchable batches under two triggers:

* **size** — the queue reached ``max_batch``: dispatch immediately (the
  batch is full, waiting longer cannot help anyone);
* **wait** — the oldest queued request has waited ``max_wait_s``: a
  :class:`~repro.serving.events.Flush` wakeup scheduled at that
  deadline dispatches whatever is queued *by then* (a later request
  never time-travels into an earlier batch; a stale wakeup — its head
  already flushed by size — is ignored via its token).

``max_wait_s=0`` with open-loop traffic degenerates to per-request
dispatch; ``max_wait_s=0`` with simultaneous arrivals still forms full
batches, because they hit the size trigger.  At end of stream the
remainder drains at each head's promised deadline — the pending
``Flush`` wakeups simply fire once no arrivals precede them, so the
batcher never peeks at the future to learn that traffic stopped.

Requests re-queued after a shard failure enter with their *enqueue*
time as the wait-deadline base (their original ``arrival`` is kept for
latency accounting); for first-delivery arrivals the two coincide, so
open-loop behaviour is unchanged from the pre-kernel batcher — flush
for flush, byte for byte (:meth:`DynamicBatcher.batches` is the same
logic run on a private kernel).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (
    Callable,
    Deque,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.errors import ServingError
from repro.serving.events import Arrival, EventKernel, Flush
from repro.serving.tenancy import TenantSet
from repro.serving.traffic import OpenLoopSource, Request

#: A dispatch callback: ``(kernel, flush_time, batch)``.
DispatchFn = Callable[[EventKernel, float, List[Request]], None]

#: An admission callback: ``(kernel, request) -> admitted?``.  Rejected
#: requests never enter a queue — the callback owns the accounting and
#: the source notification.
AdmitFn = Callable[[EventKernel, Request], bool]

#: Tenant-mixing modes of :class:`BatcherOptions`.
TENANT_MODES = ("tier", "shared")


@dataclass(frozen=True)
class BatcherOptions:
    """The two knobs of the latency-vs-throughput trade.

    ``max_batch`` bounds how much work one flush hands a shard (larger
    batches amortise nothing here — instances are batch-parallel — but
    they do delay early requests behind late ones); ``max_wait_s``
    bounds how long the *oldest* request may wait for company.

    ``tenant_mode`` governs multi-tenant coalescing: ``"tier"`` (the
    default) keeps one queue per batch tier, so an interactive request
    never waits out a bulk tenant's batch assembly — tenants of
    *incompatible tiers are never mixed* in one batch; ``"shared"``
    keeps the single pre-tenancy queue regardless of tenants.  With a
    trivial tenant set the modes coincide (one tier, one queue).
    """

    max_batch: int = 8
    max_wait_s: float = 0.0
    tenant_mode: str = "tier"

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ServingError(
                f"max_batch must be >= 1, got {self.max_batch}"
            )
        if self.max_wait_s < 0:
            raise ServingError(
                f"max_wait_s must be >= 0, got {self.max_wait_s}"
            )
        if self.tenant_mode not in TENANT_MODES:
            raise ServingError(
                f"unknown tenant mode {self.tenant_mode!r}; "
                f"expected one of {TENANT_MODES}"
            )


class _BatcherFeed:
    """Per-run batcher state: the queue and the wait-deadline wakeup.

    Each scheduled :class:`Flush` carries a token; any flush (size or
    wait) bumps the token, so a wakeup whose head has already left the
    queue is recognised as stale and ignored.
    """

    def __init__(self, options: BatcherOptions, dispatch: DispatchFn):
        self.options = options
        self.dispatch = dispatch
        #: (queued_at, request) — queued_at == arrival for first
        #: deliveries, the re-queue instant for failure re-deliveries.
        self.queue: Deque[Tuple[float, Request]] = deque()
        self.token = 0

    def on_arrival(self, kernel: EventKernel, event: Arrival) -> None:
        self.queue.append((kernel.now, event.request))
        if len(self.queue) >= self.options.max_batch:
            self._flush(kernel)
        elif len(self.queue) == 1:
            self._schedule_wakeup(kernel)

    def on_flush(self, kernel: EventKernel, event: Flush) -> None:
        if event.token != self.token or not self.queue:
            return  # stale wakeup: its head already flushed by size
        self._flush(kernel)

    def _flush(self, kernel: EventKernel) -> None:
        batch: List[Request] = []
        while (
            self.queue
            and len(batch) < self.options.max_batch
            and self.queue[0][0] <= kernel.now
        ):
            batch.append(self.queue.popleft()[1])
        self.token += 1  # any pending wakeup is now stale
        if self.queue:
            self._schedule_wakeup(kernel)
        if batch:
            self.dispatch(kernel, kernel.now, batch)

    def _schedule_wakeup(self, kernel: EventKernel) -> None:
        deadline = self.queue[0][0] + self.options.max_wait_s
        kernel.push(Flush(time=deadline, token=self.token))


class _TenantBatcherFeed:
    """Per-run batcher state with one queue per batch tier plus an
    optional admission gate.

    The per-queue flush logic is exactly :class:`_BatcherFeed`'s — size
    trigger inline, wait trigger via a keyed :class:`Flush` wakeup whose
    token invalidates stale firings — applied independently per tier,
    so a bulk tenant's half-full batch never delays an interactive
    request and tenants of incompatible tiers are never mixed.
    Rejected (inadmissible) requests never enter any queue.
    """

    def __init__(
        self,
        options: BatcherOptions,
        dispatch: DispatchFn,
        tenants: TenantSet,
        admit: Optional[AdmitFn] = None,
    ):
        self.options = options
        self.dispatch = dispatch
        self.tenants = tenants
        self.admit = admit
        self.queues: Dict[str, Deque[Tuple[float, Request]]] = {}
        self.tokens: Dict[str, int] = {}

    def _key(self, request: Request) -> str:
        if self.options.tenant_mode == "shared":
            return ""
        return self.tenants.tier_of(request.tenant)

    def on_arrival(self, kernel: EventKernel, event: Arrival) -> None:
        request = event.request
        if self.admit is not None and not self.admit(kernel, request):
            return  # rejected at admission; the gate did the accounting
        key = self._key(request)
        queue = self.queues.setdefault(key, deque())
        self.tokens.setdefault(key, 0)
        queue.append((kernel.now, request))
        if len(queue) >= self.options.max_batch:
            self._flush(kernel, key)
        elif len(queue) == 1:
            self._schedule_wakeup(kernel, key)

    def on_flush(self, kernel: EventKernel, event: Flush) -> None:
        queue = self.queues.get(event.key)
        if (
            queue is None
            or event.token != self.tokens[event.key]
            or not queue
        ):
            return  # stale wakeup: its head already flushed by size
        self._flush(kernel, event.key)

    def _flush(self, kernel: EventKernel, key: str) -> None:
        queue = self.queues[key]
        batch: List[Request] = []
        while (
            queue
            and len(batch) < self.options.max_batch
            and queue[0][0] <= kernel.now
        ):
            batch.append(queue.popleft()[1])
        self.tokens[key] += 1  # any pending wakeup for this key is stale
        if queue:
            self._schedule_wakeup(kernel, key)
        if batch:
            self.dispatch(kernel, kernel.now, batch)

    def _schedule_wakeup(self, kernel: EventKernel, key: str) -> None:
        deadline = self.queues[key][0][0] + self.options.max_wait_s
        kernel.push(Flush(time=deadline, token=self.tokens[key], key=key))


class DynamicBatcher:
    """Coalesces a request stream into dispatchable batches."""

    def __init__(self, options: BatcherOptions = None):
        self.options = options or BatcherOptions()

    def attach(
        self,
        kernel: EventKernel,
        dispatch: DispatchFn,
        tenants: Optional[TenantSet] = None,
        admit: Optional[AdmitFn] = None,
    ):
        """Register this batcher's handlers on ``kernel``.

        Returns the per-run feed (fresh state — one ``attach`` per
        run); ``dispatch`` is called with every flushed batch.  A
        non-trivial ``tenants`` set (in ``tier`` mode) or an ``admit``
        gate selects the tenant-aware feed; otherwise the single-queue
        feed keeps the pre-tenancy event trace byte for byte.
        """
        tiered = (
            tenants is not None
            and not tenants.trivial
            and self.options.tenant_mode == "tier"
        )
        if tiered or admit is not None:
            feed = _TenantBatcherFeed(
                self.options,
                dispatch,
                tenants or TenantSet.default(),
                admit,
            )
        else:
            feed = _BatcherFeed(self.options, dispatch)
        kernel.subscribe(Arrival, feed.on_arrival)
        kernel.subscribe(Flush, feed.on_flush)
        return feed

    def batches(
        self, requests: Iterable[Request]
    ) -> Iterator[Tuple[float, List[Request]]]:
        """Yield ``(flush_time, batch)`` in nondecreasing flush order.

        Standalone view of the batching logic: runs the arrival stream
        through a private kernel with no shards attached — exactly the
        event sequence a full serve run would see.
        """
        requests = list(requests)
        if not requests:
            return iter(())
        kernel = EventKernel()
        flushed: List[Tuple[float, List[Request]]] = []
        self.attach(
            kernel, lambda _k, at, batch: flushed.append((at, batch))
        )
        OpenLoopSource(requests).prime(kernel)
        kernel.run()
        return iter(flushed)

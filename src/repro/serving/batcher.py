"""Dynamic batching: coalesce queued requests under a batch/wait budget.

The batcher is pure virtual-time logic — no threads, no clocks.  Fed
arrival-ordered requests, it yields ``(flush_time, batch)`` pairs in
nondecreasing flush order under two triggers:

* **size** — the queue reached ``max_batch``: flush immediately (the
  batch is full, waiting longer cannot help anyone);
* **wait** — the oldest queued request has waited ``max_wait_s``: flush
  whatever is queued *at that deadline* (only requests that have
  actually arrived by then — a later request never time-travels into
  an earlier batch).

``max_wait_s=0`` with open-loop traffic degenerates to per-request
dispatch; ``max_wait_s=0`` with closed-loop (uniform) traffic still
forms full batches, because simultaneous arrivals hit the size trigger.
At end of stream the remainder drains at each head's deadline — the
batcher honours the wait budget it promised rather than peeking at the
future to learn that no more traffic is coming.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple

from repro.errors import ServingError
from repro.serving.traffic import Request


@dataclass(frozen=True)
class BatcherOptions:
    """The two knobs of the latency-vs-throughput trade.

    ``max_batch`` bounds how much work one flush hands a shard (larger
    batches amortise nothing here — instances are batch-parallel — but
    they do delay early requests behind late ones); ``max_wait_s``
    bounds how long the *oldest* request may wait for company.
    """

    max_batch: int = 8
    max_wait_s: float = 0.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ServingError(
                f"max_batch must be >= 1, got {self.max_batch}"
            )
        if self.max_wait_s < 0:
            raise ServingError(
                f"max_wait_s must be >= 0, got {self.max_wait_s}"
            )


class DynamicBatcher:
    """Coalesces a request stream into dispatchable batches."""

    def __init__(self, options: BatcherOptions = None):
        self.options = options or BatcherOptions()

    def batches(
        self, requests: Iterable[Request]
    ) -> Iterator[Tuple[float, List[Request]]]:
        """Yield ``(flush_time, batch)`` in nondecreasing flush order."""
        max_batch = self.options.max_batch
        max_wait = self.options.max_wait_s
        queue: deque = deque()
        for request in sorted(requests, key=lambda r: (r.arrival, r.index)):
            # Wait trigger: queued heads whose budget expires before
            # this arrival flush first — the queue may go empty, and
            # the *next* head then starts a fresh wait window (no stale
            # deadlines).
            while queue and queue[0].arrival + max_wait < request.arrival:
                deadline = queue[0].arrival + max_wait
                yield deadline, self._drain(queue, deadline, max_batch)
            queue.append(request)
            # Size trigger: a full batch flushes at this arrival.
            if len(queue) >= max_batch:
                yield request.arrival, self._drain(
                    queue, request.arrival, max_batch
                )
        # End of stream: drain remainders at their promised deadlines.
        while queue:
            deadline = queue[0].arrival + max_wait
            yield deadline, self._drain(queue, deadline, max_batch)

    @staticmethod
    def _drain(queue: deque, at: float, max_batch: int) -> List[Request]:
        """Up to ``max_batch`` queued requests present at time ``at``."""
        batch: List[Request] = []
        while queue and len(batch) < max_batch and queue[0].arrival <= at:
            batch.append(queue.popleft())
        return batch

"""Serving metrics: per-request records and the aggregate report.

The paper reports makespan-based throughput ("CNN Perf. (GOPS)",
Table 4); a serving system additionally cares *when each request* got
its answer.  A :class:`ServingReport` therefore carries both views:

* **aggregate** — makespan (first arrival to last completion),
  images/s and GOPS over that span, directly comparable to
  :class:`~repro.runtime.batch.BatchResult`;
* **per-request** — queueing delay and end-to-end latency percentiles
  (nearest-rank), the quantities a latency-vs-throughput policy trades.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import ServingError


@dataclass(frozen=True)
class RequestRecord:
    """Lifecycle timestamps of one served request (virtual seconds).

    ``arrival`` -> queued; ``dispatched`` -> its batch was flushed and
    assigned to a shard; ``started`` -> the shard began the batch
    (``> dispatched`` when the shard was still draining earlier work);
    ``completed`` -> the image's round-robin slot finished.
    """

    index: int
    arrival: float
    dispatched: float
    started: float
    completed: float
    shard: str
    batch_size: int

    @property
    def latency(self) -> float:
        """End-to-end: arrival to completion."""
        return self.completed - self.arrival

    @property
    def queue_seconds(self) -> float:
        """Time spent waiting before the shard started the batch."""
        return self.started - self.arrival


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of ``values``."""
    if not values:
        raise ServingError("percentile of an empty sample")
    if not 0 <= q <= 100:
        raise ServingError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


@dataclass(frozen=True)
class ShardUsage:
    """One shard's share of the run."""

    name: str
    requests: int
    batches: int
    busy_seconds: float

    def utilisation(self, makespan: float) -> float:
        return self.busy_seconds / makespan if makespan > 0 else 0.0


@dataclass(frozen=True)
class ServingReport:
    """Everything one :meth:`ShardServer.serve` run measured.

    ``shed`` counts requests the SLO controller dropped, ``rerouted``
    counts requests it steered away from the policy's pick (both zero
    without a controller), and ``unserved`` counts requests still
    parked when the run drained — a scenario that killed the whole
    pool and never restored it.  A report may legitimately hold *zero*
    records (every request shed or stranded, or a zero-length stream):
    counts and spans are then 0 and the undefined latency statistics
    are NaN — no accessor raises.
    """

    records: List[RequestRecord]
    shards: List[ShardUsage]
    total_ops: int
    shed: int = 0
    rerouted: int = 0
    unserved: int = 0

    def __post_init__(self) -> None:
        if self.shed < 0 or self.rerouted < 0 or self.unserved < 0:
            raise ServingError(
                "negative shed/reroute/unserved counts: "
                f"{self.shed}/{self.rerouted}/{self.unserved}"
            )

    # -- aggregate view ---------------------------------------------------

    @property
    def count(self) -> int:
        return len(self.records)

    @property
    def makespan_seconds(self) -> float:
        """First arrival to last completion — the Table-4 span
        (0.0 when nothing completed)."""
        if not self.records:
            return 0.0
        start = min(r.arrival for r in self.records)
        end = max(r.completed for r in self.records)
        return end - start

    @property
    def throughput_gops(self) -> float:
        if self.makespan_seconds <= 0.0:
            return float("nan")
        return self.total_ops / self.makespan_seconds / 1e9

    @property
    def images_per_second(self) -> float:
        if self.makespan_seconds <= 0.0:
            return float("nan")  # undefined rate, like throughput_gops
        return self.count / self.makespan_seconds

    @property
    def mean_batch_size(self) -> float:
        batches = sum(usage.batches for usage in self.shards)
        return self.count / batches if batches else 0.0

    # -- per-request view -------------------------------------------------

    def latencies(self) -> List[float]:
        return [r.latency for r in self.records]

    def latency_percentile(self, q: float) -> float:
        if not self.records:
            return float("nan")
        return percentile(self.latencies(), q)

    @property
    def mean_latency(self) -> float:
        if not self.records:
            return float("nan")
        return sum(self.latencies()) / self.count

    @property
    def mean_queue_seconds(self) -> float:
        if not self.records:
            return float("nan")
        return sum(r.queue_seconds for r in self.records) / self.count

    def per_shard(self) -> Dict[str, ShardUsage]:
        return {usage.name: usage for usage in self.shards}

    # -- rendering --------------------------------------------------------

    def describe(self) -> str:
        if not self.records:
            reasons = []
            if self.shed:
                reasons.append(f"{self.shed} shed by the SLO controller")
            if self.rerouted:
                reasons.append(f"{self.rerouted} rerouted")
            if self.unserved:
                reasons.append(
                    f"{self.unserved} stranded by a shard outage"
                )
            return (
                f"served 0 requests over {len(self.shards)} shard(s): "
                "nothing completed"
                + (f" ({', '.join(reasons)})" if reasons else "")
            )
        latencies = self.latencies()
        lines = [
            f"served {self.count} requests over "
            f"{len(self.shards)} shard(s) in "
            f"{self.makespan_seconds * 1e3:.2f} ms "
            f"(mean batch {self.mean_batch_size:.1f})",
            f"  throughput: {self.images_per_second:.1f} img/s, "
            f"{self.throughput_gops:.1f} GOPS aggregate",
            f"  latency ms: mean {self.mean_latency * 1e3:.2f}, "
            f"p50 {percentile(latencies, 50) * 1e3:.2f}, "
            f"p90 {percentile(latencies, 90) * 1e3:.2f}, "
            f"p99 {percentile(latencies, 99) * 1e3:.2f}, "
            f"max {max(latencies) * 1e3:.2f} "
            f"(queue {self.mean_queue_seconds * 1e3:.2f} mean)",
        ]
        if self.shed or self.rerouted:
            lines.append(
                f"  slo: {self.shed} request(s) shed, "
                f"{self.rerouted} rerouted"
            )
        if self.unserved:
            lines.append(
                f"  {self.unserved} request(s) left unserved by a "
                "shard outage"
            )
        for usage in self.shards:
            lines.append(
                f"  {usage.name:12s} {usage.requests:5d} requests in "
                f"{usage.batches:4d} batch(es), "
                f"{usage.utilisation(self.makespan_seconds) * 100:5.1f}% busy"
            )
        return "\n".join(lines)

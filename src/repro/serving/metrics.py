"""Serving metrics: per-request records and the aggregate report.

The paper reports makespan-based throughput ("CNN Perf. (GOPS)",
Table 4); a serving system additionally cares *when each request* got
its answer.  A :class:`ServingReport` therefore carries both views:

* **aggregate** — makespan (first arrival to last completion),
  images/s and GOPS over that span, directly comparable to
  :class:`~repro.runtime.batch.BatchResult`;
* **per-request** — queueing delay and end-to-end latency percentiles
  (nearest-rank), the quantities a latency-vs-throughput policy trades.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ServingError
from repro.serving.tenancy import DEFAULT_TENANT


@dataclass(frozen=True, slots=True)
class RequestRecord:
    """Lifecycle timestamps of one served request (virtual seconds).

    ``arrival`` -> queued; ``dispatched`` -> its batch was flushed and
    assigned to a shard; ``started`` -> the shard began the batch
    (``> dispatched`` when the shard was still draining earlier work);
    ``completed`` -> the image's round-robin slot finished.

    ``tenant`` stays the *last* field: the fast-forward engine builds
    records positionally in bulk and default-tenant replays must not
    pay for the tag.
    """

    index: int
    arrival: float
    dispatched: float
    started: float
    completed: float
    shard: str
    batch_size: int
    tenant: str = DEFAULT_TENANT

    @property
    def latency(self) -> float:
        """End-to-end: arrival to completion."""
        return self.completed - self.arrival

    @property
    def queue_seconds(self) -> float:
        """Time spent waiting before the shard started the batch."""
        return self.started - self.arrival


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of ``values``.

    Selection runs in O(n) via :func:`numpy.partition` — the k-th
    order statistic is the same value the old full sort produced, so
    reports over million-record replays stop paying an O(n log n)
    sort per percentile.  A sample containing NaN falls back to the
    sorted-list path: NaN ordering under ``sorted`` is
    comparison-dependent, and preserving the legacy result exactly
    matters more than speed on a degenerate sample.
    """
    if not values:
        raise ServingError("percentile of an empty sample")
    if not 0 <= q <= 100:
        raise ServingError(f"percentile must be in [0, 100], got {q}")
    rank = max(1, math.ceil(q / 100 * len(values)))
    k = min(rank, len(values)) - 1
    array = np.asarray(values, dtype=np.float64)
    if np.isnan(array).any():
        return sorted(values)[k]
    return float(np.partition(array, k)[k])


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaler decision: a shard scaled up or down.

    ``time`` is the *decision* instant (a scaled-up shard only accepts
    work after its warm-up elapses); ``shards_after`` counts the
    shards the pool is provisioned for — active plus warming — once
    the decision applies; ``observed`` is the windowed metric value
    (``metric`` names which: ``utilisation`` or ``p99``) that
    triggered it.
    """

    time: float
    action: str
    shard: str
    shards_after: int
    observed: float
    metric: str

    def __post_init__(self) -> None:
        if self.action not in ("up", "down"):
            raise ServingError(
                f"scale event action must be up|down, got {self.action!r}"
            )


@dataclass(frozen=True)
class TenantBreakdown:
    """One tenant's slice of a run (see :meth:`ServingReport.per_tenant`).

    ``shed`` counts every dropped request of the tenant — SLO sheds
    *plus* admission rejections; ``admission_shed`` is the admission
    subset, so ``shed - admission_shed`` is what the SLO controller
    dropped.  ``issued = count + shed + unserved`` and
    :meth:`slo_attainment` uses it as the denominator, exactly like the
    global figure.
    """

    tenant: str
    count: int
    shed: int
    admission_shed: int
    unserved: int
    mean_latency_s: float
    p50_latency_s: float
    p99_latency_s: float
    slo_target_s: Optional[float] = None
    #: Fraction of the tenant's issued requests served within its own
    #: SLO target — ``None`` when the tenant declares no target.
    slo_attainment: Optional[float] = None

    @property
    def issued(self) -> int:
        return self.count + self.shed + self.unserved

    def to_dict(self) -> Dict:
        def safe(value: Optional[float]) -> Optional[float]:
            if value is None:
                return None
            return None if value != value else value

        return {
            "count": self.count,
            "shed": self.shed,
            "admission_shed": self.admission_shed,
            "unserved": self.unserved,
            "issued": self.issued,
            "mean_latency_s": safe(self.mean_latency_s),
            "p50_latency_s": safe(self.p50_latency_s),
            "p99_latency_s": safe(self.p99_latency_s),
            "slo_target_s": safe(self.slo_target_s),
            "slo_attainment": safe(self.slo_attainment),
        }


@dataclass(frozen=True)
class ShardUsage:
    """One shard's share of the run.

    ``active_spans`` is the shard's provisioned timeline under an
    autoscaler — ``(from, to)`` virtual-time intervals the shard was
    scaled in (including warm-up).  ``None`` (the fixed-pool default)
    means the shard was active for the whole run; an *empty* tuple
    means a standby shard the autoscaler never provisioned.
    """

    name: str
    requests: int
    batches: int
    busy_seconds: float
    active_spans: Optional[Tuple[Tuple[float, float], ...]] = None

    def utilisation(self, makespan: float) -> float:
        return self.busy_seconds / makespan if makespan > 0 else 0.0

    def active_seconds(self, makespan: float) -> float:
        """Provisioned time: span lengths, or ``makespan`` when the
        shard was never autoscaled (fixed-pool shards)."""
        if self.active_spans is None:
            return makespan
        return sum(end - start for start, end in self.active_spans)


@dataclass(frozen=True)
class ServingReport:
    """Everything one :meth:`ShardServer.serve` run measured.

    ``shed`` counts requests the SLO controller dropped, ``rerouted``
    counts requests it steered away from the policy's pick (both zero
    without a controller), and ``unserved`` counts requests still
    parked when the run drained — a scenario that killed the whole
    pool and never restored it.  A report may legitimately hold *zero*
    records (every request shed or stranded, or a zero-length stream):
    counts and spans are then 0 and the undefined latency statistics
    are NaN — no accessor raises.

    ``scale_events`` is the autoscaler's decision log (empty without
    one) and ``shard_seconds`` the provisioned shard-time it was
    billed — ``None`` means a fixed pool, where it degenerates to
    ``len(shards) * makespan`` (see :meth:`total_shard_seconds`).

    ``events_processed``/``wall_seconds`` measure the *kernel*, not the
    modeled system: how many events the run dispatched and how much
    host wall-clock it took (:attr:`events_per_second` is the ratio —
    the serving layer's perf trajectory metric).  They describe the
    machine the simulation ran on, so they are excluded from equality
    (two runs of the same scenario compare equal even though their
    wall clocks differ).
    """

    records: List[RequestRecord]
    shards: List[ShardUsage]
    total_ops: int
    shed: int = 0
    rerouted: int = 0
    unserved: int = 0
    scale_events: List[ScaleEvent] = field(default_factory=list)
    shard_seconds: Optional[float] = None
    #: Admission-control rejections — a *subset* of ``shed`` (``shed``
    #: stays the total drop count, so the served+shed+unserved
    #: accounting identity is unchanged by tenancy).
    admission_shed: int = 0
    #: Per-tenant drop/strand counts, populated only with nonzero
    #: entries — single-tenant runs keep the empty dicts and stay
    #: byte-identical to pre-tenancy reports.
    shed_by_tenant: Dict[str, int] = field(default_factory=dict)
    admission_shed_by_tenant: Dict[str, int] = field(default_factory=dict)
    unserved_by_tenant: Dict[str, int] = field(default_factory=dict)
    #: ``tenant -> p99 target`` for tenants that declared an SLO.
    tenant_slo_targets: Dict[str, float] = field(default_factory=dict)
    events_processed: int = field(default=0, compare=False)
    wall_seconds: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if self.shed < 0 or self.rerouted < 0 or self.unserved < 0:
            raise ServingError(
                "negative shed/reroute/unserved counts: "
                f"{self.shed}/{self.rerouted}/{self.unserved}"
            )
        if not 0 <= self.admission_shed <= self.shed:
            raise ServingError(
                f"admission_shed ({self.admission_shed}) must be a "
                f"subset of shed ({self.shed})"
            )

    # -- aggregate view ---------------------------------------------------

    @property
    def count(self) -> int:
        return len(self.records)

    @property
    def makespan_seconds(self) -> float:
        """First arrival to last completion — the Table-4 span
        (0.0 when nothing completed)."""
        if not self.records:
            return 0.0
        start = min(r.arrival for r in self.records)
        end = max(r.completed for r in self.records)
        return end - start

    @property
    def throughput_gops(self) -> float:
        if self.makespan_seconds <= 0.0:
            return float("nan")
        return self.total_ops / self.makespan_seconds / 1e9

    @property
    def images_per_second(self) -> float:
        if self.makespan_seconds <= 0.0:
            return float("nan")  # undefined rate, like throughput_gops
        return self.count / self.makespan_seconds

    @property
    def mean_batch_size(self) -> float:
        batches = sum(usage.batches for usage in self.shards)
        return self.count / batches if batches else 0.0

    # -- per-request view -------------------------------------------------

    def latencies(self) -> List[float]:
        return [r.latency for r in self.records]

    def latency_percentile(self, q: float) -> float:
        if not self.records:
            return float("nan")
        return percentile(self.latencies(), q)

    @property
    def mean_latency(self) -> float:
        if not self.records:
            return float("nan")
        return sum(self.latencies()) / self.count

    @property
    def mean_queue_seconds(self) -> float:
        if not self.records:
            return float("nan")
        return sum(r.queue_seconds for r in self.records) / self.count

    def per_shard(self) -> Dict[str, ShardUsage]:
        return {usage.name: usage for usage in self.shards}

    def tenants(self) -> List[str]:
        """Every tenant the run touched (served, shed or stranded), in
        deterministic sorted order with the default tenant first."""
        names = {record.tenant for record in self.records}
        names.update(self.shed_by_tenant)
        names.update(self.unserved_by_tenant)
        names.update(self.tenant_slo_targets)
        if not names:
            return []
        return sorted(
            names, key=lambda name: (name != DEFAULT_TENANT, name)
        )

    def per_tenant(self) -> Dict[str, TenantBreakdown]:
        """Per-tenant breakdowns: counts, latency percentiles and each
        tenant's own SLO attainment.  Sums are exhaustive — every
        tenant's ``count``/``shed``/``unserved`` adds up to the global
        accounting."""
        grouped: Dict[str, List[float]] = {}
        for record in self.records:
            grouped.setdefault(record.tenant, []).append(record.latency)
        breakdowns = {}
        for name in self.tenants():
            latencies = grouped.get(name, [])
            target = self.tenant_slo_targets.get(name)
            shed = self.shed_by_tenant.get(name, 0)
            unserved = self.unserved_by_tenant.get(name, 0)
            attainment = None
            if target is not None:
                issued = len(latencies) + shed + unserved
                attainment = (
                    sum(1 for value in latencies if value <= target)
                    / issued if issued else 0.0
                )
            breakdowns[name] = TenantBreakdown(
                tenant=name,
                count=len(latencies),
                shed=shed,
                admission_shed=self.admission_shed_by_tenant.get(name, 0),
                unserved=unserved,
                mean_latency_s=(
                    sum(latencies) / len(latencies)
                    if latencies else float("nan")
                ),
                p50_latency_s=(
                    percentile(latencies, 50)
                    if latencies else float("nan")
                ),
                p99_latency_s=(
                    percentile(latencies, 99)
                    if latencies else float("nan")
                ),
                slo_target_s=target,
                slo_attainment=attainment,
            )
        return breakdowns

    def slo_attainment(self, target_s: float) -> float:
        """The fraction of *issued* requests served within ``target_s``.

        The denominator counts served + shed + unserved — a controller
        that sheds its way to a fast tail must not look like it met the
        SLO for the requests it dropped.  0.0 when nothing was issued.
        """
        if target_s <= 0 or target_s != target_s:
            raise ServingError(
                f"SLO target must be positive, got {target_s}"
            )
        issued = self.count + self.shed + self.unserved
        if issued == 0:
            return 0.0
        within = sum(1 for r in self.records if r.latency <= target_s)
        return within / issued

    def survival(self, target_s: float,
                 multiples: Sequence[float] = (1.0, 2.0, 4.0, 8.0)
                 ) -> Dict[str, float]:
        """Survival curve over issued requests: for each multiple ``m``
        of ``target_s``, the fraction still waiting past ``m * target``
        (shed and unserved requests never completed, so they exceed
        every multiple)."""
        return {
            f"{multiple:g}x": 1.0 - self.slo_attainment(
                multiple * target_s
            )
            for multiple in multiples
        }

    # -- elasticity view --------------------------------------------------

    @property
    def scale_ups(self) -> int:
        return sum(1 for e in self.scale_events if e.action == "up")

    @property
    def scale_downs(self) -> int:
        return sum(1 for e in self.scale_events if e.action == "down")

    @property
    def events_per_second(self) -> float:
        """Kernel dispatch rate (host events/s); NaN when unmeasured.

        The fast-forward engine reports its *equivalent* event count
        (what the kernel would have dispatched for the same run), so
        this stays one trajectory metric across both engines."""
        if self.wall_seconds <= 0.0:
            return float("nan")
        return self.events_processed / self.wall_seconds

    @property
    def replay_requests_per_second(self) -> float:
        """Served requests per host wall second — the replay-engine
        throughput figure the perf trajectory tracks next to
        :attr:`events_per_second`; NaN when unmeasured."""
        if self.wall_seconds <= 0.0:
            return float("nan")
        return self.count / self.wall_seconds

    def total_shard_seconds(self) -> float:
        """Provisioned shard-time of the run: the autoscaler's bill, or
        ``shards * makespan`` for a fixed pool.  This is the cost axis
        the elasticity studies trade against the p99 target."""
        if self.shard_seconds is not None:
            return self.shard_seconds
        return len(self.shards) * self.makespan_seconds

    # -- export -----------------------------------------------------------

    def to_dict(self) -> Dict:
        """A JSON-safe summary (NaN statistics become ``None``) — the
        payload ``repro serve --report-json`` writes and CI uploads as
        a workflow artifact.

        ``schema`` versions the layout: schema 1 (pre-tenancy) was the
        same flat dictionary without ``schema``, ``admission_shed`` and
        ``tenants``; schema 2 adds them and changes nothing else, so
        schema-1 consumers keep working on the flat fields.
        """

        def safe(value: float) -> Optional[float]:
            return None if value != value else value

        return {
            "schema": 2,
            "count": self.count,
            "admission_shed": self.admission_shed,
            "tenants": {
                name: breakdown.to_dict()
                for name, breakdown in self.per_tenant().items()
            },
            "shed": self.shed,
            "rerouted": self.rerouted,
            "unserved": self.unserved,
            "total_ops": self.total_ops,
            "makespan_seconds": self.makespan_seconds,
            "images_per_second": safe(self.images_per_second),
            "throughput_gops": safe(self.throughput_gops),
            "mean_batch_size": self.mean_batch_size,
            "mean_latency_s": safe(self.mean_latency),
            "p50_latency_s": safe(self.latency_percentile(50)),
            "p90_latency_s": safe(self.latency_percentile(90)),
            "p99_latency_s": safe(self.latency_percentile(99)),
            "mean_queue_s": safe(self.mean_queue_seconds),
            "shard_seconds": self.total_shard_seconds(),
            "events_processed": self.events_processed,
            "wall_seconds": self.wall_seconds,
            "events_per_second": safe(self.events_per_second),
            "replay_requests_per_second": safe(
                self.replay_requests_per_second
            ),
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "scale_events": [
                {
                    "time": event.time,
                    "action": event.action,
                    "shard": event.shard,
                    "shards_after": event.shards_after,
                    "observed": safe(event.observed),
                    "metric": event.metric,
                }
                for event in self.scale_events
            ],
            "shards": [
                {
                    "name": usage.name,
                    "requests": usage.requests,
                    "batches": usage.batches,
                    "busy_seconds": usage.busy_seconds,
                    "active_spans": (
                        None if usage.active_spans is None
                        else [list(span) for span in usage.active_spans]
                    ),
                }
                for usage in self.shards
            ],
        }

    # -- rendering --------------------------------------------------------

    def describe(self) -> str:
        if not self.records:
            reasons = []
            if self.shed:
                slo_shed = self.shed - self.admission_shed
                if slo_shed:
                    reasons.append(
                        f"{slo_shed} shed by the SLO controller"
                    )
                if self.admission_shed:
                    reasons.append(
                        f"{self.admission_shed} rejected at admission"
                    )
            if self.rerouted:
                reasons.append(f"{self.rerouted} rerouted")
            if self.unserved:
                reasons.append(
                    f"{self.unserved} stranded by a shard outage"
                )
            text = (
                f"served 0 requests over {len(self.shards)} shard(s): "
                "nothing completed"
                + (f" ({', '.join(reasons)})" if reasons else "")
            )
            if self.shed and not self.unserved:
                # Without this note an --slo-p99 target over a stream
                # that was dropped wholesale is a silent no-op: nothing
                # completed, so no latency sample ever met the target.
                text += (
                    "\n  all requests shed: no request completed, so "
                    "the p99 SLO was never evaluated"
                )
            return text
        latencies = self.latencies()
        lines = [
            f"served {self.count} requests over "
            f"{len(self.shards)} shard(s) in "
            f"{self.makespan_seconds * 1e3:.2f} ms "
            f"(mean batch {self.mean_batch_size:.1f})",
            f"  throughput: {self.images_per_second:.1f} img/s, "
            f"{self.throughput_gops:.1f} GOPS aggregate",
            f"  latency ms: mean {self.mean_latency * 1e3:.2f}, "
            f"p50 {percentile(latencies, 50) * 1e3:.2f}, "
            f"p90 {percentile(latencies, 90) * 1e3:.2f}, "
            f"p99 {percentile(latencies, 99) * 1e3:.2f}, "
            f"max {max(latencies) * 1e3:.2f} "
            f"(queue {self.mean_queue_seconds * 1e3:.2f} mean)",
        ]
        if self.wall_seconds > 0.0:
            lines.append(
                f"  kernel: {self.events_processed} events in "
                f"{self.wall_seconds:.3f} s host time "
                f"({self.events_per_second / 1e6:.2f} M events/s)"
            )
        # Surface the exceptional counters only when nonzero: a healthy
        # run's report should not advertise the machinery that never
        # fired.
        slo_counts = []
        if self.shed:
            shed_text = f"{self.shed} request(s) shed"
            if self.admission_shed:
                shed_text += f" ({self.admission_shed} at admission)"
            slo_counts.append(shed_text)
        if self.rerouted:
            slo_counts.append(f"{self.rerouted} request(s) rerouted")
        if slo_counts:
            lines.append("  slo: " + ", ".join(slo_counts))
        if self.unserved:
            lines.append(
                f"  {self.unserved} request(s) left unserved by a "
                "shard outage"
            )
        breakdowns = self.per_tenant()
        if len(breakdowns) > 1 or self.tenant_slo_targets:
            for name, tenant in breakdowns.items():
                p99 = tenant.p99_latency_s
                line = (
                    f"  tenant {name:12s} {tenant.count:5d} served, "
                    f"{tenant.shed:4d} shed, {tenant.unserved:4d} "
                    "unserved"
                )
                if p99 == p99:
                    line += f", p99 {p99 * 1e3:.2f} ms"
                if tenant.slo_target_s is not None:
                    verdict = (
                        "met" if p99 == p99
                        and p99 <= tenant.slo_target_s else "MISSED"
                    )
                    line += (
                        f" (target {tenant.slo_target_s * 1e3:.2f} ms "
                        f"{verdict}, attainment "
                        f"{(tenant.slo_attainment or 0.0) * 100:.1f}%)"
                    )
                lines.append(line)
        if self.scale_events:
            fixed = len(self.shards) * self.makespan_seconds
            lines.append(
                f"  autoscaler: {self.scale_ups} scale-up(s), "
                f"{self.scale_downs} scale-down(s); "
                f"{self.total_shard_seconds() * 1e3:.2f} shard-ms vs "
                f"{fixed * 1e3:.2f} for the full pool"
            )
        makespan = self.makespan_seconds
        for usage in self.shards:
            line = (
                f"  {usage.name:12s} {usage.requests:5d} requests in "
                f"{usage.batches:4d} batch(es), "
                f"{usage.utilisation(makespan) * 100:5.1f}% busy"
            )
            if usage.active_spans is not None:
                share = (
                    usage.active_seconds(makespan) / makespan
                    if makespan > 0 else 0.0
                )
                line += f", active {share * 100:5.1f}% of the run"
            lines.append(line)
        return "\n".join(lines)

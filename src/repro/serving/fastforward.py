"""Steady-state fast-forward replay: the serve loop without the heap.

A plain open-loop run — a pre-materialised arrival list, no SLO
controller, no autoscaler, no chaos scenario, no closed-loop clients —
is a deterministic recurrence, not a discrete-event problem: nothing
that happens *during* the run can change what happens next, so the
entire timeline is computable from the arrival array alone.  This
module computes it batch-granularly:

* **batch formation** is a head-jump scan over the sorted arrivals.
  For head ``i`` with wait budget ``W`` and batch budget ``B``, the
  wait deadline is ``A[i] + W`` and ``limit[i] = searchsorted(A,
  A + W, side="right")`` counts the arrivals that beat it (``side=
  "right"`` is exactly the kernel's ``Arrival``-before-``Flush``
  priority: a request arriving *at* the deadline joins the flush).
  If ``i + B <= limit[i]`` the size trigger wins — the batch is
  ``A[i:i+B]`` flushed at ``A[i+B-1]``, the instant the ``B``-th
  request arrives — otherwise the wait trigger fires at the deadline
  with everything queued by then.  Either way the queue empties, so
  the next head is just the batch end: the scan replays
  :class:`~repro.serving.batcher._BatcherFeed`'s token semantics
  flush for flush in O(#batches) after one vectorized searchsorted;
* **shard assignment** is a per-*batch* recurrence (``~max_batch``
  times fewer iterations than kernel events): round-robin is modular
  indexing, least-loaded and shortest-latency are K-way argmin loops
  over the ``busy_until`` horizons, computing byte-for-byte the keys
  the policies compute (including ``math.ceil`` vs floor-div and the
  first-minimum tie-break on the lowest shard index);
* **completion accounting** replays the shard timeline scalar ops in
  dispatch order — ``start = max(at, busy_until)``, per-round
  ``completed = start + r * per_image`` and the telescoping-but-not-
  in-floats ``busy_delta`` accumulation — then bulk-builds the
  per-request records as numpy arrays: ``completed = start +
  (position // NI + 1) * per_image`` elementwise is IEEE-identical to
  the kernel's per-record arithmetic.

The kernel is the oracle: every field of the resulting
:class:`~repro.serving.metrics.ServingReport` except the wall-clock
perf fields (``events_processed``/``wall_seconds`` are ``compare=
False``) is **byte-identical** to the kernel path's — asserted across
policies and traffic models by ``benchmarks/bench_fastforward.py``
and the hypothesis suite in ``tests/test_serving_fastforward.py``.
``events_processed`` is reported as the *equivalent* kernel event
count (arrivals + one ``Flush`` per batch when ``max_batch > 1`` +
one ``BatchDone`` per completion round), so ``events_per_second``
stays the trajectory metric it always was and the kernel's
``max_events`` runaway budget keeps its meaning — exceeding it raises
the same :class:`~repro.errors.ServingError` the kernel raises.
"""

from __future__ import annotations

import gc
import math
import time
from typing import List, Optional

import numpy as np

from repro.errors import ServingError
from repro.serving.metrics import RequestRecord, ServingReport, ShardUsage
from repro.serving.scheduler import (
    LeastLoaded,
    RoundRobin,
    ShortestExpectedLatency,
    WeightedFair,
)
from repro.serving.shard import Shard
from repro.serving.tenancy import DEFAULT_TENANT
from repro.serving.traffic import OpenLoopSource, TraceSource

#: The kernel's default runaway budget (mirrored so the fast-forward
#: path enforces the same bound with the same error).
DEFAULT_EVENT_BUDGET = 1_000_000


def ineligible_reason(server, source, scenario) -> Optional[str]:
    """Why ``server``/``source``/``scenario`` cannot fast-forward
    (``None`` when they can).

    Eligibility is *exact-type* strict: a subclassed source, policy or
    shard may override behaviour the recurrence does not model, and a
    silently-wrong fast path is worse than no fast path.
    """
    if scenario is not None:
        return "a failure/chaos scenario perturbs the pool mid-stream"
    if server.slo is not None:
        return "an SLO controller sheds/reroutes based on observed state"
    if server.autoscale is not None:
        return "an autoscaler resizes the pool based on observed state"
    if not server.tenants.trivial:
        return (
            "a non-trivial tenant set routes, batches and sheds "
            "per tenant"
        )
    if getattr(source, "tenanted", False):
        return "the traffic carries non-default tenant tags"
    if type(source) not in (OpenLoopSource, TraceSource):
        return (
            f"source {type(source).__name__} is not a plain "
            "open-loop arrival stream"
        )
    if type(server.scheduler.policy) not in (
        RoundRobin, LeastLoaded, ShortestExpectedLatency, WeightedFair,
    ):
        return (
            f"custom scheduling policy "
            f"{type(server.scheduler.policy).__name__}"
        )
    for shard in server.pool:
        if type(shard) is not Shard:
            return f"custom shard type {type(shard).__name__}"
    return None


def _arrival_stream(source):
    """``(arrivals, indices)`` in kernel delivery order.

    Both eligible sources prime arrivals sorted by ``(arrival,
    index)``; ``indices`` is ``None`` when they are simply
    ``0..N-1`` (the trace case), saving the argsort.
    """
    if type(source) is TraceSource:
        return [float(value) for value in source.arrivals], None
    requests = source.requests  # already (arrival, index)-sorted
    return (
        [request.arrival for request in requests],
        [request.index for request in requests],
    )


def _form_batches(arrivals: List[float], max_batch: int,
                  max_wait_s: float):
    """The head-jump scan: ``(heads, sizes, flush_times)``.

    Replays the batcher exactly: a size flush takes ``B`` requests at
    the ``B``-th arrival's instant; a wait flush takes everything
    arrived by ``head + W`` (inclusive — ``Arrival`` outranks
    ``Flush``) at that deadline.  Every flush empties the queue, so
    batch boundaries chain: the sole pending ``Flush`` wakeup per
    batch head is exactly why the equivalent event count below adds
    one ``Flush`` per batch (stale size-trigger wakeups still pop).
    """
    count = len(arrivals)
    if max_batch == 1:
        # Degenerate per-request dispatch: every arrival size-flushes
        # instantly and the batcher schedules no wakeups at all.
        return list(range(count)), [1] * count, list(arrivals)
    array = np.asarray(arrivals, dtype=np.float64)
    if max_wait_s == 0.0:
        # Zero wait budget means a batch can never outlive its head's
        # instant, so batches never span runs of equal arrivals: each
        # run chops into ``max_batch`` chunks (size flushes) plus a
        # remainder that wait-flushes at the same instant.  That is a
        # pure array construction — no per-batch scan — and it is the
        # common case (the CLI default and every trace smoke).
        run_starts = np.flatnonzero(
            np.r_[True, np.diff(array) != 0.0]
        )
        run_lens = np.diff(np.r_[run_starts, count])
        per_run = (run_lens + max_batch - 1) // max_batch
        run_of = np.repeat(
            np.arange(len(run_starts), dtype=np.int64), per_run
        )
        first = np.r_[0, np.cumsum(per_run)[:-1]]
        offset = np.arange(len(run_of), dtype=np.int64) - first[run_of]
        heads_array = run_starts[run_of] + offset * max_batch
        ends = run_starts + run_lens
        sizes_array = np.minimum(max_batch, ends[run_of] - heads_array)
        # Size flushes fire at the B-th arrival, wait flushes at
        # head + 0.0 — distinct float ops even though the run's
        # arrivals are all equal (head + 0.0 normalises -0.0).
        flush_array = np.where(
            sizes_array == max_batch,
            array[heads_array + sizes_array - 1],
            array[heads_array] + max_wait_s,
        )
        return (
            heads_array.tolist(),
            sizes_array.tolist(),
            flush_array.tolist(),
        )
    limits = np.searchsorted(
        array, array + max_wait_s, side="right"
    ).tolist()
    heads: List[int] = []
    sizes: List[int] = []
    flush_times: List[float] = []
    head = 0
    while head < count:
        limit = limits[head]
        if head + max_batch <= limit:
            end = head + max_batch
            at = arrivals[end - 1]
        else:
            end = limit
            at = arrivals[head] + max_wait_s
        heads.append(head)
        sizes.append(end - head)
        flush_times.append(at)
        head = end
    return heads, sizes, flush_times


def fastforward_serve(
    server, source, max_events: Optional[int] = None
) -> ServingReport:
    """Replay ``source`` over ``server``'s pool without the kernel.

    The caller (:meth:`~repro.serving.server.ShardServer.serve`) has
    already checked :func:`ineligible_reason`; this function mirrors
    the kernel path's observable effects — the report byte for byte
    (wall-clock fields aside) and the post-run pool/policy state
    (``busy_until`` horizons, round-robin rotation), so back-to-back
    serves across engines stay interchangeable.
    """
    wall_start = time.perf_counter()
    server.pool.reset()
    server.scheduler.reset()
    budget = DEFAULT_EVENT_BUDGET if max_events is None else max_events

    arrivals, indices = _arrival_stream(source)
    count = len(arrivals)
    if count > budget:
        raise ServingError(
            f"event budget exhausted after {budget} events "
            "- runaway event loop?"
        )
    options = server.batcher.options
    heads, sizes, flush_times = _form_batches(
        arrivals, options.max_batch, options.max_wait_s
    )
    batches = len(heads)

    shards = server.pool.shards
    pool_size = len(shards)
    # Warm every probe up front (replicas seed from their twin), the
    # way the kernel path does on each shard's first execute().
    per_image = [shard.probe_seconds() for shard in shards]
    instances = [shard.instances for shard in shards]
    policy = server.scheduler.policy
    # Weighted-fair over the trivial tenant set (the only set that
    # passes eligibility) is round-robin turn for turn: the single
    # tenant's slice is the whole pool.
    weighted = type(policy) is WeightedFair
    round_robin = type(policy) is RoundRobin or weighted
    least_loaded = type(policy) is LeastLoaded
    analytical = (
        [shard.analytical_seconds() for shard in shards]
        if not (round_robin or least_loaded) else None
    )

    busy = [0.0] * pool_size
    usage_busy = [0.0] * pool_size
    usage_requests = [0] * pool_size
    usage_batches = [0] * pool_size
    batch_shard = [0] * batches
    batch_start = [0.0] * batches
    total_rounds = 0
    rotation = 0
    ceil = math.ceil

    if round_robin:
        # Round-robin's shard sequence is position-only, so each
        # shard's timeline replays independently over its stride of
        # the batch list — a tight two-local loop per shard instead of
        # a policy branch per batch.  Per-shard chronological order is
        # exactly dispatch order restricted to that shard, so the
        # float accumulation sequences are unchanged.
        for j in range(pool_size):
            p = per_image[j]
            spaces = instances[j]
            shard_busy = 0.0
            shard_acc = 0.0
            shard_requests = 0
            shard_rounds = 0
            starts: List[float] = []
            append = starts.append
            for at, size in zip(
                flush_times[j::pool_size], sizes[j::pool_size]
            ):
                start = max(at, shard_busy)
                rounds = (size + spaces - 1) // spaces
                shard_rounds += rounds
                previous = start
                for r in range(1, rounds + 1):
                    completed = start + r * p
                    shard_acc += completed - previous
                    previous = completed
                shard_busy = previous
                shard_requests += size
                append(start)
            busy[j] = shard_busy
            usage_busy[j] = shard_acc
            usage_requests[j] = shard_requests
            usage_batches[j] = len(starts)
            total_rounds += shard_rounds
            batch_shard[j::pool_size] = [j] * len(starts)
            batch_start[j::pool_size] = starts
        rotation = batches
    else:
        for b in range(batches):
            at = flush_times[b]
            size = sizes[b]
            if least_loaded:
                chosen = 0
                best = max(busy[0] - at, 0.0)
                for j in range(1, pool_size):
                    key = max(busy[j] - at, 0.0)
                    if key < best:
                        chosen, best = j, key
            else:
                chosen = 0
                best = max(at, busy[0]) + (
                    ceil(size / instances[0]) * analytical[0]
                )
                for j in range(1, pool_size):
                    key = max(at, busy[j]) + (
                        ceil(size / instances[j]) * analytical[j]
                    )
                    if key < best:
                        chosen, best = j, key
            p = per_image[chosen]
            start = max(at, busy[chosen])
            rounds = (size + instances[chosen] - 1) // instances[chosen]
            total_rounds += rounds
            # busy_delta accumulation telescopes on paper but not in
            # floats: replay the kernel's per-round += sequence
            # exactly.
            previous = start
            for r in range(1, rounds + 1):
                completed = start + r * p
                usage_busy[chosen] += completed - previous
                previous = completed
            busy[chosen] = previous
            usage_requests[chosen] += size
            usage_batches[chosen] += 1
            batch_shard[b] = chosen
            batch_start[b] = start

    # Equivalent kernel event count: one Arrival per request, one
    # Flush wakeup per batch (only when max_batch > 1 — size flushes
    # at budget 1 never schedule one), one BatchDone per round.
    equivalent = count + total_rounds + (
        batches if options.max_batch > 1 else 0
    )
    if equivalent > budget:
        raise ServingError(
            f"event budget exhausted after {budget} events "
            "- runaway event loop?"
        )

    # Bulk-build the per-request view.  Every elementwise op below is
    # the kernel's per-record scalar op (int // int + 1, int * float,
    # float + float) applied across the whole array.
    size_array = np.asarray(sizes, dtype=np.int64)
    shard_array = np.asarray(batch_shard, dtype=np.int64)
    started = np.repeat(
        np.asarray(batch_start, dtype=np.float64), size_array
    )
    dispatched = np.repeat(
        np.asarray(flush_times, dtype=np.float64), size_array
    )
    request_shard = np.repeat(shard_array, size_array)
    batch_size = np.repeat(size_array, size_array)
    position = np.arange(count, dtype=np.int64) - np.repeat(
        np.asarray(heads, dtype=np.int64), size_array
    )
    instance_array = np.asarray(instances, dtype=np.int64)
    per_image_array = np.asarray(per_image, dtype=np.float64)
    completed = started + (
        position // instance_array[request_shard] + 1
    ) * per_image_array[request_shard]

    name_array = np.asarray(
        [shard.name for shard in shards], dtype=object
    )
    arrival_array = np.asarray(arrivals, dtype=np.float64)
    index_array = (
        np.arange(count, dtype=np.int64) if indices is None
        else np.asarray(indices, dtype=np.int64)
    )
    if indices is not None:
        # The report sorts records by request index; trace indices are
        # already 0..N-1, open-loop indices need the argsort.
        order = np.argsort(index_array, kind="stable")
        index_array = index_array[order]
        arrival_array = arrival_array[order]
        dispatched = dispatched[order]
        started = started[order]
        completed = completed[order]
        request_shard = request_shard[order]
        batch_size = batch_size[order]
    # map() with positional args is the cheapest way to mint a million
    # frozen-slots dataclasses — the constructor cost dominates this
    # whole function on large replays.  The records hold only atomic
    # fields and form no cycles, so pausing the cyclic collector for
    # the allocation storm is safe and avoids re-scanning every other
    # live report while this one is born.
    collector_was_enabled = gc.isenabled()
    if collector_was_enabled:
        gc.disable()
    try:
        records = list(map(
            RequestRecord,
            index_array.tolist(),
            arrival_array.tolist(),
            dispatched.tolist(),
            started.tolist(),
            completed.tolist(),
            name_array[request_shard].tolist(),
            batch_size.tolist(),
        ))
    finally:
        if collector_was_enabled:
            gc.enable()

    total_ops = sum(
        shard.ops_per_image * usage_requests[j]
        for j, shard in enumerate(shards)
    )
    usage = [
        ShardUsage(
            name=shard.name,
            requests=usage_requests[j],
            batches=usage_batches[j],
            busy_seconds=usage_busy[j],
            active_spans=None,
        )
        for j, shard in enumerate(shards)
    ]

    # Mirror the kernel path's post-run state so back-to-back serves
    # (and anything inspecting the pool) cannot tell the engines
    # apart.
    for j, shard in enumerate(shards):
        shard.busy_until = busy[j]
    if weighted:
        policy._next = {DEFAULT_TENANT: rotation}
    elif round_robin:
        policy._next = rotation

    wall = time.perf_counter() - wall_start
    return ServingReport(
        records=records,
        shards=usage,
        total_ops=total_ops,
        events_processed=equivalent,
        wall_seconds=wall,
    )

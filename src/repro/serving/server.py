"""The serve loop: traffic -> DynamicBatcher -> Scheduler -> shards.

:class:`ShardServer` is a discrete-event simulation in virtual time:
the batcher turns the arrival stream into ``(flush_time, batch)``
events, the scheduler picks a shard per batch, and the shard places
the batch on its timeline.  Flush times are nondecreasing and every
shard-state read happens at the flush instant, so the run is
deterministic — same traffic, same pool, same policy, same report.

:func:`analytical_reference` computes the
:class:`~repro.runtime.batch.BatchRunner` number the acceptance
criterion compares against: the makespan of splitting the whole
request set round-robin over the shards as one closed-loop batch.  For
uniform traffic with a divisible batch budget, ``serve`` must agree
with it to well under 1%.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import ServingError
from repro.serving.batcher import BatcherOptions, DynamicBatcher
from repro.serving.metrics import RequestRecord, ServingReport, ShardUsage
from repro.serving.scheduler import Scheduler, SchedulingPolicy
from repro.serving.shard import ShardPool
from repro.serving.traffic import Request


class ShardServer:
    """Serve a finite request stream over a shard pool."""

    def __init__(
        self,
        pool: ShardPool,
        policy="round-robin",
        batcher: Optional[BatcherOptions] = None,
    ):
        self.pool = pool
        self.scheduler = Scheduler(pool.shards, policy)
        self.batcher = DynamicBatcher(batcher)

    def serve(self, requests: Sequence[Request]) -> ServingReport:
        """Run the whole stream; returns the aggregate report.

        The pool's virtual timelines and the policy's per-run state
        (round-robin's rotation) are reset first, so back-to-back
        ``serve`` calls measure independent runs (the timing probes
        stay warm).
        """
        if not requests:
            raise ServingError("nothing to serve: empty request stream")
        self.pool.reset()
        self.scheduler.reset()
        records: List[RequestRecord] = []
        for flush_time, batch in self.batcher.batches(requests):
            shard = self.scheduler.assign(len(batch), flush_time)
            records.extend(shard.execute(batch, flush_time))
        records.sort(key=lambda record: record.index)
        total_ops = sum(
            shard.ops_per_image * shard.images_served
            for shard in self.pool
        )
        usage = [
            ShardUsage(
                name=shard.name,
                requests=shard.images_served,
                batches=shard.batches_served,
                busy_seconds=shard.busy_seconds,
            )
            for shard in self.pool
        ]
        return ServingReport(
            records=records, shards=usage, total_ops=total_ops
        )


def analytical_reference(pool: ShardPool, count: int) -> float:
    """``BatchRunner``-style closed-loop makespan for ``count`` images.

    The request set is split round-robin over the shards (shard ``s``
    takes images ``s, s + S, ...``); each shard's share runs as one
    batch over its NI instances exactly as
    :meth:`~repro.runtime.batch.BatchRunner.run` accounts it; the pool
    finishes when its most-loaded shard does.  With one shard this *is*
    ``BatchRunner.run(images).makespan_seconds``.
    """
    if count < 1:
        raise ServingError(f"count must be >= 1, got {count}")
    shares = [0] * len(pool.shards)
    for index in range(count):
        shares[index % len(shares)] += 1
    makespan = 0.0
    for shard, share in zip(pool.shards, shares):
        if share:
            # shard.probe_seconds() first, so replicated shards seed
            # their runner with the pool's single probe before the
            # runner computes BatchRunner's round-robin offsets.
            shard.probe_seconds()
            makespan = max(
                makespan, shard.runner.completion_offsets(share)[-1]
            )
    return makespan

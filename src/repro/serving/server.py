"""The serve loop: event sources -> kernel -> batcher/scheduler/shards.

:class:`ShardServer` runs one discrete-event simulation per
:meth:`~ShardServer.serve` call on a fresh
:class:`~repro.serving.events.EventKernel`:

* **sources** (open-loop lists, closed-loop client pools, failure
  scenarios) prime the kernel with their initial events;
* the **batcher** consumes ``Arrival`` events and dispatches batches
  (size trigger inline, wait trigger via ``Flush`` wakeups);
* the **scheduler** picks an available shard per batch (its
  ``ShardDown``/``ShardUp`` handlers maintain availability);
* each **shard** places the batch on its virtual timeline, and the
  server emits one ``BatchDone`` per completion round — the events
  that feed closed-loop clients, the SLO controller's latency window,
  and the usage accounting;
* an optional **SLO controller** sheds or reroutes dispatches while
  its windowed p99 estimate is breached;
* an optional **autoscaler** drives the pool between min and max
  shards against a utilisation or p99 target (standby shards start
  down, scale-ups warm up before accepting work, scale-downs re-queue
  in-flight work like a failure would);
* a **failure scenario** kills/restores shards mid-stream: the dying
  shard's pending completion events are cancelled and its un-completed
  requests re-enter the batcher at the failure instant (original
  arrival kept, so their latency accounts the lost work); with the
  whole pool down, batches park and re-dispatch on the next restore
  (parked forever ⇒ counted in ``ServingReport.unserved``).

Everything is deterministic: same traffic, same pool, same policy (and
same scenario/SLO options) ⇒ same :class:`ServingReport`, byte for
byte.  Open-loop runs produce the exact flush/assign/execute sequence
of the pre-kernel implementation.

:func:`analytical_reference` computes the
:class:`~repro.runtime.batch.BatchRunner` number the acceptance
criterion compares against: the makespan of splitting the whole
request set round-robin over the shards as one closed-loop batch.  For
uniform traffic with a divisible batch budget, ``serve`` must agree
with it to well under 1%.
"""

from __future__ import annotations

import time
import warnings
from collections import deque
from dataclasses import replace
from typing import Deque, Dict, List, Optional, Sequence, Set, Union

from repro.errors import ServingError
from repro.serving.autoscaler import AutoscalerController, AutoscalerOptions
from repro.serving.batcher import BatcherOptions, DynamicBatcher
from repro.serving.events import (
    Arrival,
    BatchDone,
    EventKernel,
    EventSource,
    ShardDown,
    ShardUp,
)
from repro.serving.chaos import ChaosScenario
from repro.serving.fastforward import fastforward_serve, ineligible_reason
from repro.serving.metrics import RequestRecord, ServingReport, ShardUsage
from repro.serving.scenarios import FailureScenario
from repro.serving.scheduler import (
    Scheduler,
    SchedulingPolicy,
    ShortestExpectedLatency,
    WeightedFair,
)
from repro.serving.shard import Shard, ShardPool
from repro.serving.slo import SloController, SloOptions
from repro.serving.tenancy import TenantSet
from repro.serving.traffic import OpenLoopSource, Request
from repro.serving.workload import ENGINES, WorkloadSpec

#: What ``serve`` accepts: an open-loop request list or one event
#: source.  One source per run: request indices are the identity that
#: keys completion bookkeeping, and independent sources would mint
#: colliding indices.
Traffic = Union[Sequence[Request], EventSource]

#: What ``serve`` accepts as a scenario: the legacy kill/restore
#: :class:`FailureScenario` or the composable
#: :class:`~repro.serving.chaos.ChaosScenario` — both prime typed
#: events onto the kernel, so the server treats them identically.
Scenario = Union[FailureScenario, ChaosScenario]

__all__ = [
    "ENGINES",
    "Scenario",
    "ShardServer",
    "Traffic",
    "WorkloadSpec",
    "analytical_reference",
]


class _Usage:
    """Mutable per-shard accumulator, event-sourced from ``BatchDone``.

    Counting *completions* (not dispatches) is what makes failure
    scenarios honest: work lost to a kill was executed but never
    finished, so it appears in no shard's usage and in no record.
    """

    __slots__ = ("requests", "batches", "busy_seconds")

    def __init__(self) -> None:
        self.requests = 0
        self.batches = 0
        self.busy_seconds = 0.0


class _ServeRun:
    """One serve() invocation: kernel wiring + run state."""

    def __init__(
        self,
        server: "ShardServer",
        source: EventSource,
        scenario: Optional[Scenario],
        max_events: Optional[int] = None,
    ):
        self.server = server
        self.source = source
        self.scenario = scenario
        self.max_events = max_events
        self.kernel = EventKernel()
        self.tenants = server.tenants
        tenant_targets = self.tenants.slo_targets()
        self.slo = (
            SloController(server.slo, self.tenants)
            if server.slo is not None or tenant_targets else None
        )
        self.autoscaler = (
            AutoscalerController(server.autoscale)
            if server.autoscale is not None else None
        )
        self.records: List[RequestRecord] = []
        self.usage: Dict[str, _Usage] = {
            shard.name: _Usage() for shard in server.pool
        }
        #: Pending completion entries per shard: (heap entry, event).
        #: A deque: completions pop in dispatch order, so the head
        #: check in ``_on_batch_done`` is O(1) — a list's ``del [0]``
        #: made long replays quadratic in the queue depth.
        self.inflight: Dict[str, Deque] = {
            shard.name: deque() for shard in server.pool
        }
        self.total_ops = 0
        self.shed = 0
        self.rerouted = 0
        self.admission_shed = 0
        self.shed_by_tenant: Dict[str, int] = {}
        self.admission_by_tenant: Dict[str, int] = {}
        #: Admission control: per-tenant caps on outstanding (admitted,
        #: not yet completed) requests.  ``_admitted`` remembers which
        #: indices hold an admission slot so a failure re-delivery of
        #: an admitted request is never re-gated (and never
        #: double-counted).
        self.caps = self.tenants.admission_caps()
        self.outstanding: Dict[str, int] = {
            name: 0 for name in self.caps
        }
        self._admitted: Set[int] = set()
        self._reroute_policy = ShortestExpectedLatency()
        self.parked: List[List[Request]] = []

    # -- wiring -----------------------------------------------------------

    def execute(self) -> ServingReport:
        kernel = self.kernel
        server = self.server
        server.pool.reset()
        server.scheduler.reset()
        # Subscription order is dispatch order: the scheduler flips
        # availability first, then the server reworks in-flight /
        # parked batches against the new availability.
        server.scheduler.attach(kernel)
        server.batcher.attach(
            kernel,
            self._dispatch,
            self.tenants,
            self._admit if self.caps else None,
        )
        kernel.subscribe(BatchDone, self._on_batch_done)
        kernel.subscribe(ShardDown, self._on_shard_down)
        kernel.subscribe(ShardUp, self._on_shard_up)
        if self.slo is not None:
            self.slo.attach(kernel)
        if self.autoscaler is not None:
            # After the scheduler/server handlers (availability flips
            # and re-queues settle before the controller records) and
            # after pool.reset (the standby cut applies to a fresh
            # pool).
            self.autoscaler.attach(kernel, server.pool)
        if self.scenario is not None:
            self.scenario.prime(kernel, server.pool)
        # Time the kernel, not the model: priming + draining is the
        # whole event loop, and events/s over it is the serving
        # layer's perf trajectory metric.
        start = time.perf_counter()
        self.source.prime(kernel)
        if self.max_events is None:
            processed = kernel.run()
        else:
            processed = kernel.run(self.max_events)
        wall = time.perf_counter() - start
        return self._report(processed, wall)

    # -- admission path ---------------------------------------------------

    def _admit(self, kernel: EventKernel, request: Request) -> bool:
        """Admission gate the batcher runs per arrival: a tenant at its
        outstanding-request cap has the request rejected *here*, before
        it ever occupies a queue — a first-class shed reason, counted
        separately from SLO sheds."""
        cap = self.caps.get(request.tenant)
        if cap is None:
            return True
        if request.index in self._admitted:
            return True  # failure re-delivery: its slot is still held
        if self.outstanding[request.tenant] >= cap:
            self.shed += 1
            self.admission_shed += 1
            self._count_shed(self.shed_by_tenant, [request])
            self._count_shed(self.admission_by_tenant, [request])
            self.source.on_shed(kernel, [request], kernel.now)
            return False
        self.outstanding[request.tenant] += 1
        self._admitted.add(request.index)
        return True

    def _release(self, requests: Sequence) -> None:
        """Give back the admission slots of completed/shed requests
        (accepts records or requests — both carry index + tenant)."""
        if not self._admitted:
            return
        for request in requests:
            if request.index in self._admitted:
                self._admitted.discard(request.index)
                self.outstanding[request.tenant] -= 1

    @staticmethod
    def _count_shed(
        counts: Dict[str, int], requests: Sequence[Request]
    ) -> None:
        for request in requests:
            counts[request.tenant] = counts.get(request.tenant, 0) + 1

    # -- dispatch path ----------------------------------------------------

    def _dispatch(
        self, kernel: EventKernel, at: float, batch: List[Request]
    ) -> None:
        if self.slo is not None:
            if self.slo.should_shed():
                self.shed += len(batch)
                self._count_shed(self.shed_by_tenant, batch)
                self._release(batch)
                self.source.on_shed(kernel, batch, at)
                return
            breached = self.slo.breached_tenants()
            if breached:
                # Per-tenant shed is surgical: only the breached
                # tenants' requests drop, the rest of the batch
                # proceeds — the batch tier degrades while the
                # interactive tier keeps its SLO.
                dropped = [r for r in batch if r.tenant in breached]
                if dropped:
                    batch = [r for r in batch if r.tenant not in breached]
                    self.shed += len(dropped)
                    self._count_shed(self.shed_by_tenant, dropped)
                    self._release(dropped)
                    self.source.on_shed(kernel, dropped, at)
                    if not batch:
                        return
        scheduler = self.server.scheduler
        available = scheduler.available()
        if not available:
            self.parked.append(batch)
            return
        # Tenant-aware policies see the batch's head tenant — batches
        # never mix tiers, and within a tier the head is the oldest
        # queued request, so attribution is deterministic.
        shard = scheduler.assign(len(batch), at, batch[0].tenant)
        if self.slo is not None and self.slo.should_reroute():
            # Reroute = override the configured policy with the
            # expected-completion ranking (the shortest-latency policy
            # itself, over the same availability-ordered shards).
            best = available[
                self._reroute_policy.select(available, len(batch), at)
            ]
            if best is not shard:
                shard = best
                self.rerouted += len(batch)
        self._execute(kernel, shard, batch, at)

    def _execute(
        self,
        kernel: EventKernel,
        shard: Shard,
        batch: List[Request],
        at: float,
    ) -> None:
        records = shard.execute(batch, at)
        start = records[0].started
        # The *shard*'s completion groups, not the runner's: a degraded
        # shard stretches its offsets by rate_factor and the BatchDone
        # instants must match the records execute() just produced.
        rounds = shard.completion_groups(len(batch))
        taken = 0
        previous = start
        for offset, images in rounds:
            completed = start + offset
            event = BatchDone(
                time=completed,
                shard=shard.name,
                records=records[taken:taken + images],
                busy_delta=completed - previous,
                batch_size=len(batch),
                first=taken == 0,
                final=taken + images == len(batch),
            )
            self.inflight[shard.name].append(
                (kernel.push(event), event)
            )
            taken += images
            previous = completed

    # -- completion path --------------------------------------------------

    def _on_batch_done(self, kernel: EventKernel, event: BatchDone) -> None:
        pending = self.inflight[event.shard]
        if pending and pending[0][1] is event:
            # Completions pop in dispatch order on a shard's timeline,
            # so the head match is the steady state.
            pending.popleft()
        else:
            # Out of order only after a rebalance rewound the tail.
            for position, (_entry, candidate) in enumerate(pending):
                if candidate is event:
                    del pending[position]
                    break
        self.records.extend(event.records)
        self._release(event.records)
        usage = self.usage[event.shard]
        usage.requests += len(event.records)
        usage.busy_seconds += event.busy_delta
        # Count the batch with its first delivered round, so a batch
        # whose tail rounds are killed still appears wherever its
        # completed requests do.
        if event.first:
            usage.batches += 1
        shard = self.server.scheduler.shard_named(event.shard)
        self.total_ops += shard.ops_per_image * len(event.records)
        self.source.on_batch_done(kernel, event)

    # -- failure path -----------------------------------------------------

    def _on_shard_down(self, kernel: EventKernel, event: ShardDown) -> None:
        """Re-queue the failed shard's un-completed requests.

        The scheduler's own handler (subscribed first) has already
        failed the shard — timeline wiped via ``Shard.reset``, routing
        disabled.  Here the lost work re-enters the batcher at the kill
        instant with its original arrival preserved.
        """
        lost: List[RequestRecord] = []
        for entry, pending in self.inflight[event.shard]:
            kernel.cancel(entry)
            lost.extend(pending.records)
        self.inflight[event.shard].clear()
        for record in sorted(lost, key=lambda r: r.index):
            kernel.push(
                Arrival(
                    time=kernel.now,
                    request=Request(
                        record.index, record.arrival, record.tenant
                    ),
                )
            )

    def _on_shard_up(self, kernel: EventKernel, event: ShardUp) -> None:
        """Re-dispatch batches that parked while the pool was down."""
        parked, self.parked = self.parked, []
        for batch in parked:
            self._dispatch(kernel, kernel.now, batch)
        if self.autoscaler is not None:
            self._rebalance(kernel)

    def _rebalance(self, kernel: EventKernel) -> None:
        """Spread queued backlogs over a just-provisioned shard.

        Batches bind to a shard's virtual timeline at dispatch, so
        without this a scale-up only serves traffic that arrives
        *after* it — the backlog that triggered it would still drain
        on the overloaded shards.  Cancelling every batch that has not
        **started** (its completions are placements, not work) and
        re-queueing its requests at the current instant lets the
        batcher re-flush them over the new availability.  Started
        batches are running — they keep their shard, exactly like the
        failure path's in-flight accounting, and each donor's
        ``busy_until`` rewinds to its last kept completion.

        Only autoscaled runs rebalance: a scenario restore keeps PR
        4's behaviour (policies rebalance survivors, queued work does
        not migrate), so open-loop and scenario runs stay
        event-for-event identical with no autoscaler configured.
        """
        lost: List[RequestRecord] = []
        for shard in self.server.pool:
            pending = self.inflight[shard.name]
            keep = []
            dropped: List[RequestRecord] = []
            for entry, queued in pending:
                if queued.records[0].started > kernel.now:
                    kernel.cancel(entry)
                    dropped.extend(queued.records)
                else:
                    keep.append((entry, queued))
            if dropped:
                self.inflight[shard.name] = deque(keep)
                shard.busy_until = max(
                    (queued.time for _entry, queued in keep),
                    default=kernel.now,
                )
                lost.extend(dropped)
        for record in sorted(lost, key=lambda r: r.index):
            kernel.push(
                Arrival(
                    time=kernel.now,
                    request=Request(
                        record.index, record.arrival, record.tenant
                    ),
                )
            )

    # -- reporting --------------------------------------------------------

    def _report(
        self, events_processed: int = 0, wall_seconds: float = 0.0
    ) -> ServingReport:
        self.records.sort(key=lambda record: record.index)
        unserved = sum(len(batch) for batch in self.parked)
        unserved_by_tenant: Dict[str, int] = {}
        for batch in self.parked:
            self._count_shed(unserved_by_tenant, batch)
        spans = {}
        scale_events = []
        shard_seconds = None
        if self.autoscaler is not None:
            # Clip the provisioned timeline to the makespan window, so
            # the bill is directly comparable to a fixed pool's
            # shards * makespan and the reported spans sum to it.
            start = min((r.arrival for r in self.records), default=0.0)
            end = max(
                (r.completed for r in self.records),
                default=self.kernel.now,
            )
            shard_seconds = 0.0
            for name, intervals in self.autoscaler.usage_spans(
                end
            ).items():
                clipped = tuple(
                    (max(span_start, start), min(span_stop, end))
                    for span_start, span_stop in intervals
                    if min(span_stop, end) > max(span_start, start)
                )
                spans[name] = clipped
                shard_seconds += sum(b - a for a, b in clipped)
            scale_events = list(self.autoscaler.scale_events)
        usage = [
            ShardUsage(
                name=shard.name,
                requests=self.usage[shard.name].requests,
                batches=self.usage[shard.name].batches,
                busy_seconds=self.usage[shard.name].busy_seconds,
                active_spans=spans.get(shard.name),
            )
            for shard in self.server.pool
        ]
        return ServingReport(
            records=self.records,
            shards=usage,
            total_ops=self.total_ops,
            shed=self.shed,
            rerouted=self.rerouted,
            unserved=unserved,
            scale_events=scale_events,
            shard_seconds=shard_seconds,
            admission_shed=self.admission_shed,
            shed_by_tenant=self.shed_by_tenant,
            admission_shed_by_tenant=self.admission_by_tenant,
            unserved_by_tenant=unserved_by_tenant,
            tenant_slo_targets=self.tenants.slo_targets(),
            events_processed=events_processed,
            wall_seconds=wall_seconds,
        )


class ShardServer:
    """Serve finite traffic workloads over a shard pool.

    The server holds the pool plus one :class:`WorkloadSpec` — the
    template every run starts from.  :meth:`run` consumes a full spec;
    :meth:`serve` is a thin shim that fills the template's traffic /
    scenario / engine / budget fields from its kwargs, so existing
    call sites keep working unchanged.  The knob-per-argument
    constructor (``policy``/``batcher``/``slo``/``autoscale``) is
    deprecated — it builds the equivalent spec and stays
    event-identical, but new code should pass ``spec=``.
    """

    def __init__(
        self,
        pool: ShardPool,
        policy: Optional[Union[str, SchedulingPolicy]] = None,
        batcher: Optional[BatcherOptions] = None,
        slo: Optional[SloOptions] = None,
        autoscale: Optional[AutoscalerOptions] = None,
        *,
        spec: Optional[WorkloadSpec] = None,
    ):
        if (
            policy is not None or batcher is not None
            or slo is not None or autoscale is not None
        ):
            if spec is not None:
                raise ServingError(
                    "pass a WorkloadSpec OR the legacy "
                    "policy/batcher/slo/autoscale knobs, not both"
                )
            warnings.warn(
                "ShardServer(pool, policy, batcher, slo, autoscale) is "
                "deprecated; pass "
                "ShardServer(pool, spec=WorkloadSpec(...)) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            spec = WorkloadSpec(
                policy=policy if policy is not None else "round-robin",
                batcher=batcher,
                slo=slo,
                autoscale=autoscale,
            )
        self.pool = pool
        self.scheduler: Optional[Scheduler] = None
        self.batcher: Optional[DynamicBatcher] = None
        self._configure(spec if spec is not None else WorkloadSpec())
        #: The controllers of the most recent run (windowed estimates,
        #: tick counters, scale decisions), for inspection/printing.
        self.last_slo_controller: Optional[SloController] = None
        self.last_autoscaler: Optional[AutoscalerController] = None
        #: Which engine the most recent :meth:`serve` ran on
        #: (``"kernel"`` or ``"fastforward"``; ``None`` before any
        #: run) — the non-silent accounting sweeps and planners record.
        self.last_engine: Optional[str] = None

    def _configure(self, spec: WorkloadSpec) -> None:
        """Adopt ``spec``: rebuild only the machinery whose options
        actually changed, so back-to-back runs with one spec keep the
        same scheduler/policy objects (their post-run state — e.g. the
        fast-forward engine's mirrored rotation — stays inspectable).
        """
        self.spec = spec
        self.tenants: TenantSet = spec.tenant_set()
        policy = spec.policy
        if isinstance(policy, SchedulingPolicy):
            if self.scheduler is None or (
                self.scheduler.policy is not policy
            ):
                self.scheduler = Scheduler(self.pool.shards, policy)
        elif self.scheduler is None or (
            self.scheduler.policy.name != policy
        ):
            self.scheduler = Scheduler(self.pool.shards, policy)
        if isinstance(self.scheduler.policy, WeightedFair):
            self.scheduler.policy.bind(self.tenants)
        options = spec.batcher or BatcherOptions()
        if self.batcher is None or self.batcher.options != options:
            self.batcher = DynamicBatcher(options)
        self.slo = spec.slo
        self.autoscale = spec.autoscale

    def run(self, spec: WorkloadSpec) -> ServingReport:
        """Serve one fully-specified workload; returns the report.

        The spec must carry traffic; every other field falls back to
        its default.  The pool's virtual timelines, the policy's
        per-run state and the source's per-run state are reset first,
        so back-to-back runs measure independent workloads.

        The spec's ``engine`` selects the replay path: ``"auto"``
        fast-forwards plain open-loop runs and falls back to the event
        kernel whenever anything can react to observed state (tenancy
        included); ``"kernel"`` forces the kernel; ``"fastforward"``
        forces the recurrence and raises on ineligible configurations
        rather than silently changing semantics.  Both engines produce
        byte-identical reports (wall-clock fields aside) —
        :attr:`last_engine` records which one ran.
        """
        if spec.traffic is None:
            raise ServingError(
                "workload spec has no traffic to serve; build one with "
                "spec.with_traffic(...)"
            )
        self._configure(spec)
        source = self._source(spec.traffic)
        if spec.engine == "kernel":
            chosen = "kernel"
        else:
            reason = ineligible_reason(self, source, spec.scenario)
            if reason is None:
                chosen = "fastforward"
            elif spec.engine == "fastforward":
                raise ServingError(
                    "engine='fastforward' requires a plain open-loop "
                    f"run: {reason}"
                )
            else:
                chosen = "kernel"
        self.last_engine = chosen
        if chosen == "fastforward":
            self.last_slo_controller = None
            self.last_autoscaler = None
            return fastforward_serve(self, source, spec.max_events)
        run = _ServeRun(self, source, spec.scenario, spec.max_events)
        self.last_slo_controller = run.slo
        self.last_autoscaler = run.autoscaler
        return run.execute()

    def serve(
        self,
        traffic: Traffic,
        scenario: Optional[Scenario] = None,
        max_events: Optional[int] = None,
        engine: str = "auto",
    ) -> ServingReport:
        """Run one workload; returns the aggregate report.

        A thin shim over :meth:`run`: the server's spec is copied with
        this call's ``traffic``/``scenario``/``max_events``/``engine``
        filled in (the copy revalidates eagerly, so e.g. a scenario
        against an autoscaled spec fails here, not mid-run).

        ``traffic`` is a request list (open loop) or exactly one
        :class:`~repro.serving.events.EventSource`; ``max_events``
        raises the kernel's runaway-loop budget for legitimately large
        workloads (an open-loop run costs roughly three events per
        request: arrival, flush, completion) and bounds the
        fast-forward path's *equivalent* event count the same way.
        """
        return self.run(
            replace(
                self.spec,
                traffic=traffic,
                scenario=scenario,
                max_events=max_events,
                engine=engine,
            )
        )

    @staticmethod
    def _source(traffic: Traffic) -> EventSource:
        if isinstance(traffic, EventSource):
            return traffic
        traffic = list(traffic)
        if not traffic:
            raise ServingError("nothing to serve: empty request stream")
        if all(isinstance(item, Request) for item in traffic):
            return OpenLoopSource(traffic)
        raise ServingError(
            "traffic must be a Request list or ONE EventSource: "
            "independent sources would mint colliding request indices"
        )


def analytical_reference(pool: ShardPool, count: int) -> float:
    """``BatchRunner``-style closed-loop makespan for ``count`` images.

    The request set is split round-robin over the shards (shard ``s``
    takes images ``s, s + S, ...``); each shard's share runs as one
    batch over its NI instances exactly as
    :meth:`~repro.runtime.batch.BatchRunner.run` accounts it; the pool
    finishes when its most-loaded shard does.  With one shard this *is*
    ``BatchRunner.run(images).makespan_seconds``.
    """
    if count < 1:
        raise ServingError(f"count must be >= 1, got {count}")
    shares = [0] * len(pool.shards)
    for index in range(count):
        shares[index % len(shares)] += 1
    makespan = 0.0
    for shard, share in zip(pool.shards, shares):
        if share:
            # shard.probe_seconds() first, so replicated shards seed
            # their runner with the pool's single probe before the
            # runner computes BatchRunner's round-robin offsets.
            shard.probe_seconds()
            makespan = max(
                makespan, shard.runner.completion_offsets(share)[-1]
            )
    return makespan

"""Shard selection: pluggable scheduling policies.

A policy sees the whole pool and the virtual clock and picks the shard
for one flushed batch.  Three policies ship:

* ``round-robin`` — rotate through the shards regardless of state; the
  serving-layer equivalent of
  :meth:`~repro.runtime.batch.BatchRunner.run`'s instance dispatch.
* ``least-loaded`` — the shard with the smallest backlog
  (``busy_until - now``).  On identical shards this degenerates to
  round-robin; on heterogeneous pools it follows the *measured* state.
* ``shortest-latency`` — the shard whose *expected completion* of this
  batch is earliest, using each shard's analytical
  :class:`~repro.estimator.latency.NetworkEstimate` (Eq. 12-15) for
  the service time.  This is the policy that exploits heterogeneous
  pools: a VU9P shard absorbs more traffic than a PYNQ shard in
  exactly the ratio of their estimated latencies.

All ties break on the lowest shard index, which keeps every policy
deterministic and makes ``least-loaded`` bit-compatible with
``round-robin`` on identical shards and back-to-back batches.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import ServingError
from repro.serving.events import (
    EventKernel,
    ShardDegrade,
    ShardDown,
    ShardRestoreRate,
    ShardUp,
)
from repro.serving.shard import Shard
from repro.serving.tenancy import DEFAULT_TENANT, TenantSet

#: Policy names understood by :func:`make_policy` and the CLI.
POLICIES = (
    "round-robin", "least-loaded", "shortest-latency", "weighted-fair"
)


class SchedulingPolicy:
    """Base class: pick a shard index for one batch."""

    name = "abstract"

    def select(
        self, shards: Sequence[Shard], batch_size: int, now: float
    ) -> int:
        raise NotImplementedError

    def select_for(
        self,
        tenant: str,
        shards: Sequence[Shard],
        batch_size: int,
        now: float,
    ) -> int:
        """Tenant-aware selection; tenant-blind policies delegate to
        :meth:`select`, so the tag changes nothing for them."""
        return self.select(shards, batch_size, now)

    def reset(self) -> None:
        """Forget per-run state (stateless policies: no-op)."""


class RoundRobin(SchedulingPolicy):
    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def select(self, shards, batch_size, now) -> int:
        index = self._next % len(shards)
        self._next += 1
        return index

    def reset(self) -> None:
        self._next = 0


class LeastLoaded(SchedulingPolicy):
    name = "least-loaded"

    def select(self, shards, batch_size, now) -> int:
        return min(
            range(len(shards)),
            key=lambda i: (shards[i].backlog_seconds(now), i),
        )


class ShortestExpectedLatency(SchedulingPolicy):
    name = "shortest-latency"

    def select(self, shards, batch_size, now) -> int:
        return min(
            range(len(shards)),
            key=lambda i: (shards[i].expected_completion(batch_size, now), i),
        )


class WeightedFair(SchedulingPolicy):
    """Weight-proportional shard apportionment with per-tenant rotation.

    Each tenant owns a contiguous *slice* of the candidate shard list,
    sized by cumulative weight: with shards ``0..S-1`` and tenants of
    weights ``w_1..w_n`` (total ``W``), tenant ``i`` owns indices
    ``[floor(S * C_{i-1} / W), floor(S * C_i / W))`` where ``C_i`` is
    the cumulative weight through tenant ``i`` — so a tenant of twice
    the weight owns twice the shards (up to integer rounding) and a
    flooding tenant saturates *its* slice while the other slices stay
    quiet.  Within its slice each tenant round-robins with its own
    rotation counter.  A tenant whose slice rounds to empty (more
    tenants than shards) and any unregistered tenant fall back to
    rotating over the whole candidate list.

    With a single tenant the slice is the whole list and the rotation
    is ``turn % len(shards)`` — *exactly* :class:`RoundRobin`, event
    for event, which is the degeneracy the property suite pins.

    Slices are recomputed per call from the *candidate* list the
    scheduler passes (the shards currently up), so failures shrink
    every tenant's slice proportionally instead of disabling the
    policy.
    """

    name = "weighted-fair"

    def __init__(self, tenants: Optional[TenantSet] = None):
        self.tenants = tenants if tenants is not None else (
            TenantSet.default()
        )
        self._next: Dict[str, int] = {}

    def bind(self, tenants: Optional[TenantSet]) -> None:
        """Adopt a workload's tenant set (fresh rotation state)."""
        self.tenants = tenants if tenants is not None else (
            TenantSet.default()
        )
        self._next = {}

    def _slice(self, tenant: str, count: int) -> range:
        total = self.tenants.total_weight
        specs = list(self.tenants)
        cumulative = 0.0
        for position, spec in enumerate(specs):
            low = math.floor(count * cumulative / total)
            cumulative += spec.weight
            # The last slice ends exactly at ``count``: the cumulative
            # quotient is 1 in exact arithmetic but can land a hair
            # under it in floats (e.g. 3 * 1.9 / 1.9), which would
            # silently strand the tail shard.
            high = count if position == len(specs) - 1 else (
                math.floor(count * cumulative / total)
            )
            if spec.name == tenant:
                if high <= low:
                    return range(count)  # slice rounds to empty
                return range(low, high)
        return range(count)  # unregistered tenant: whole pool

    def select(self, shards, batch_size, now) -> int:
        return self.select_for(DEFAULT_TENANT, shards, batch_size, now)

    def select_for(self, tenant, shards, batch_size, now) -> int:
        indices = self._slice(tenant, len(shards))
        turn = self._next.get(tenant, 0)
        self._next[tenant] = turn + 1
        return indices[turn % len(indices)]

    def reset(self) -> None:
        self._next = {}


def make_policy(name: str) -> SchedulingPolicy:
    """Instantiate a policy by CLI name."""
    registry = {
        "round-robin": RoundRobin,
        "least-loaded": LeastLoaded,
        "shortest-latency": ShortestExpectedLatency,
        "weighted-fair": WeightedFair,
    }
    if name not in registry:
        raise ServingError(
            f"unknown scheduling policy {name!r}; "
            f"expected one of {POLICIES}"
        )
    return registry[name]()


class Scheduler:
    """Routes flushed batches to shards under one policy.

    On the event kernel the scheduler is the pool-state authority:
    :meth:`attach` subscribes it to
    :class:`~repro.serving.events.ShardDown` /
    :class:`~repro.serving.events.ShardUp` (availability) and
    :class:`~repro.serving.events.ShardDegrade` /
    :class:`~repro.serving.events.ShardRestoreRate` (service rate), and
    every assignment sees only the shards that are up at that instant,
    with each shard's scheduling view scaled by its current rate.
    Policies are blind to failures — they select over the available
    subsequence, so a policy written for the full pool rebalances over
    the survivors for free (round-robin's rotation simply wraps over
    fewer shards), and a latency-aware policy routes around a degraded
    straggler with no code of its own.
    """

    def __init__(
        self,
        shards: Sequence[Shard],
        policy: Union[str, SchedulingPolicy] = "round-robin",
    ):
        if not shards:
            raise ServingError("scheduler needs at least one shard")
        self.shards: List[Shard] = list(shards)
        self._by_name = {shard.name: shard for shard in self.shards}
        self.policy = make_policy(policy) if isinstance(policy, str) else (
            policy
        )

    def attach(self, kernel: EventKernel) -> None:
        """Subscribe the availability and rate handlers on ``kernel``."""
        kernel.subscribe(ShardDown, self._on_shard_down)
        kernel.subscribe(ShardUp, self._on_shard_up)
        kernel.subscribe(ShardDegrade, self._on_shard_degrade)
        kernel.subscribe(ShardRestoreRate, self._on_shard_restore_rate)

    def _on_shard_down(self, kernel: EventKernel, event: ShardDown) -> None:
        self.shard_named(event.shard).fail()

    def _on_shard_up(self, kernel: EventKernel, event: ShardUp) -> None:
        self.shard_named(event.shard).restore()

    def _on_shard_degrade(
        self, kernel: EventKernel, event: ShardDegrade
    ) -> None:
        self.shard_named(event.shard).degrade(event.factor)

    def _on_shard_restore_rate(
        self, kernel: EventKernel, event: ShardRestoreRate
    ) -> None:
        self.shard_named(event.shard).restore_rate()

    def shard_named(self, name: str) -> Shard:
        try:
            return self._by_name[name]
        except KeyError:
            raise ServingError(
                f"unknown shard {name!r}; pool has "
                f"{sorted(self._by_name)}"
            ) from None

    def available(self) -> List[Shard]:
        """The shards currently up, in pool order."""
        return [shard for shard in self.shards if shard.up]

    def reset(self) -> None:
        """Forget per-run policy state (round-robin's rotation)."""
        self.policy.reset()

    def assign(
        self, batch_size: int, now: float, tenant: str = DEFAULT_TENANT
    ) -> Shard:
        """The shard that should run a ``batch_size`` batch at ``now``.

        Only shards that are up are candidates; with every shard down
        this raises (the server parks batches instead of calling in).
        ``tenant`` reaches tenant-aware policies (weighted-fair);
        tenant-blind policies ignore it."""
        shards = self.available()
        if not shards:
            raise ServingError("no shard available: the whole pool is down")
        index = self.policy.select_for(tenant, shards, batch_size, now)
        if not 0 <= index < len(shards):
            raise ServingError(
                f"policy {self.policy.name!r} selected shard {index} of "
                f"{len(shards)}"
            )
        return shards[index]

"""Shard selection: pluggable scheduling policies.

A policy sees the whole pool and the virtual clock and picks the shard
for one flushed batch.  Three policies ship:

* ``round-robin`` — rotate through the shards regardless of state; the
  serving-layer equivalent of
  :meth:`~repro.runtime.batch.BatchRunner.run`'s instance dispatch.
* ``least-loaded`` — the shard with the smallest backlog
  (``busy_until - now``).  On identical shards this degenerates to
  round-robin; on heterogeneous pools it follows the *measured* state.
* ``shortest-latency`` — the shard whose *expected completion* of this
  batch is earliest, using each shard's analytical
  :class:`~repro.estimator.latency.NetworkEstimate` (Eq. 12-15) for
  the service time.  This is the policy that exploits heterogeneous
  pools: a VU9P shard absorbs more traffic than a PYNQ shard in
  exactly the ratio of their estimated latencies.

All ties break on the lowest shard index, which keeps every policy
deterministic and makes ``least-loaded`` bit-compatible with
``round-robin`` on identical shards and back-to-back batches.
"""

from __future__ import annotations

from typing import List, Sequence, Union

from repro.errors import ServingError
from repro.serving.events import (
    EventKernel,
    ShardDegrade,
    ShardDown,
    ShardRestoreRate,
    ShardUp,
)
from repro.serving.shard import Shard

#: Policy names understood by :func:`make_policy` and the CLI.
POLICIES = ("round-robin", "least-loaded", "shortest-latency")


class SchedulingPolicy:
    """Base class: pick a shard index for one batch."""

    name = "abstract"

    def select(
        self, shards: Sequence[Shard], batch_size: int, now: float
    ) -> int:
        raise NotImplementedError

    def reset(self) -> None:
        """Forget per-run state (stateless policies: no-op)."""


class RoundRobin(SchedulingPolicy):
    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def select(self, shards, batch_size, now) -> int:
        index = self._next % len(shards)
        self._next += 1
        return index

    def reset(self) -> None:
        self._next = 0


class LeastLoaded(SchedulingPolicy):
    name = "least-loaded"

    def select(self, shards, batch_size, now) -> int:
        return min(
            range(len(shards)),
            key=lambda i: (shards[i].backlog_seconds(now), i),
        )


class ShortestExpectedLatency(SchedulingPolicy):
    name = "shortest-latency"

    def select(self, shards, batch_size, now) -> int:
        return min(
            range(len(shards)),
            key=lambda i: (shards[i].expected_completion(batch_size, now), i),
        )


def make_policy(name: str) -> SchedulingPolicy:
    """Instantiate a policy by CLI name."""
    registry = {
        "round-robin": RoundRobin,
        "least-loaded": LeastLoaded,
        "shortest-latency": ShortestExpectedLatency,
    }
    if name not in registry:
        raise ServingError(
            f"unknown scheduling policy {name!r}; "
            f"expected one of {POLICIES}"
        )
    return registry[name]()


class Scheduler:
    """Routes flushed batches to shards under one policy.

    On the event kernel the scheduler is the pool-state authority:
    :meth:`attach` subscribes it to
    :class:`~repro.serving.events.ShardDown` /
    :class:`~repro.serving.events.ShardUp` (availability) and
    :class:`~repro.serving.events.ShardDegrade` /
    :class:`~repro.serving.events.ShardRestoreRate` (service rate), and
    every assignment sees only the shards that are up at that instant,
    with each shard's scheduling view scaled by its current rate.
    Policies are blind to failures — they select over the available
    subsequence, so a policy written for the full pool rebalances over
    the survivors for free (round-robin's rotation simply wraps over
    fewer shards), and a latency-aware policy routes around a degraded
    straggler with no code of its own.
    """

    def __init__(
        self,
        shards: Sequence[Shard],
        policy: Union[str, SchedulingPolicy] = "round-robin",
    ):
        if not shards:
            raise ServingError("scheduler needs at least one shard")
        self.shards: List[Shard] = list(shards)
        self._by_name = {shard.name: shard for shard in self.shards}
        self.policy = make_policy(policy) if isinstance(policy, str) else (
            policy
        )

    def attach(self, kernel: EventKernel) -> None:
        """Subscribe the availability and rate handlers on ``kernel``."""
        kernel.subscribe(ShardDown, self._on_shard_down)
        kernel.subscribe(ShardUp, self._on_shard_up)
        kernel.subscribe(ShardDegrade, self._on_shard_degrade)
        kernel.subscribe(ShardRestoreRate, self._on_shard_restore_rate)

    def _on_shard_down(self, kernel: EventKernel, event: ShardDown) -> None:
        self.shard_named(event.shard).fail()

    def _on_shard_up(self, kernel: EventKernel, event: ShardUp) -> None:
        self.shard_named(event.shard).restore()

    def _on_shard_degrade(
        self, kernel: EventKernel, event: ShardDegrade
    ) -> None:
        self.shard_named(event.shard).degrade(event.factor)

    def _on_shard_restore_rate(
        self, kernel: EventKernel, event: ShardRestoreRate
    ) -> None:
        self.shard_named(event.shard).restore_rate()

    def shard_named(self, name: str) -> Shard:
        try:
            return self._by_name[name]
        except KeyError:
            raise ServingError(
                f"unknown shard {name!r}; pool has "
                f"{sorted(self._by_name)}"
            ) from None

    def available(self) -> List[Shard]:
        """The shards currently up, in pool order."""
        return [shard for shard in self.shards if shard.up]

    def reset(self) -> None:
        """Forget per-run policy state (round-robin's rotation)."""
        self.policy.reset()

    def assign(self, batch_size: int, now: float) -> Shard:
        """The shard that should run a ``batch_size`` batch at ``now``.

        Only shards that are up are candidates; with every shard down
        this raises (the server parks batches instead of calling in)."""
        shards = self.available()
        if not shards:
            raise ServingError("no shard available: the whole pool is down")
        index = self.policy.select(shards, batch_size, now)
        if not 0 <= index < len(shards):
            raise ServingError(
                f"policy {self.policy.name!r} selected shard {index} of "
                f"{len(shards)}"
            )
        return shards[index]

"""Layer definitions of the DNN IR.

Each layer knows how to infer its output shape from an input shape and how
to count the multiply-accumulate work it represents.  Operation counts use
the convention of the paper's Table 4 (2 ops per MAC), so a convolution
contributes ``2 * K * C * R * S * H_out * W_out`` operations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ShapeError
from repro.ir.tensor import TensorShape


@dataclass
class Layer:
    """Base class of all IR layers.

    Attributes
    ----------
    name:
        Unique name within a :class:`~repro.ir.graph.Network`.
    """

    name: str

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        """Infer the output shape for ``input_shape``."""
        raise NotImplementedError

    def macs(self, input_shape: TensorShape) -> int:
        """Number of multiply-accumulates for one inference."""
        return 0

    def ops(self, input_shape: TensorShape) -> int:
        """Number of operations (2 ops per MAC, paper convention)."""
        return 2 * self.macs(input_shape)

    def weight_count(self, input_shape: TensorShape) -> int:
        """Number of weight parameters (excluding bias)."""
        return 0

    def bias_count(self, input_shape: TensorShape) -> int:
        """Number of bias parameters."""
        return 0

    @property
    def is_compute(self) -> bool:
        """True for layers mapped onto the PE (CONV / FC)."""
        return False


@dataclass
class Conv2D(Layer):
    """2-D convolution.

    Parameters follow the paper's notation: a layer with a ``C``-channel
    ``H x W`` input and a ``K x C x R x S`` kernel.  ``padding`` is the
    symmetric zero padding applied to height and width; ``stride`` applies
    to both spatial dimensions.
    """

    out_channels: int = 1
    kernel_size: tuple = (3, 3)
    stride: int = 1
    padding: int = 0
    relu: bool = False

    def __post_init__(self) -> None:
        kr, ks = self.kernel_size
        if kr <= 0 or ks <= 0:
            raise ShapeError(f"{self.name}: kernel size must be positive")
        if self.stride <= 0:
            raise ShapeError(f"{self.name}: stride must be positive")
        if self.padding < 0:
            raise ShapeError(f"{self.name}: padding must be >= 0")
        if self.out_channels <= 0:
            raise ShapeError(f"{self.name}: out_channels must be positive")

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        kr, ks = self.kernel_size
        h = input_shape.height + 2 * self.padding
        w = input_shape.width + 2 * self.padding
        if h < kr or w < ks:
            raise ShapeError(
                f"{self.name}: input {input_shape} too small for "
                f"kernel {self.kernel_size} with padding {self.padding}"
            )
        out_h = (h - kr) // self.stride + 1
        out_w = (w - ks) // self.stride + 1
        return TensorShape(self.out_channels, out_h, out_w)

    def macs(self, input_shape: TensorShape) -> int:
        out = self.output_shape(input_shape)
        kr, ks = self.kernel_size
        return (
            self.out_channels
            * input_shape.channels
            * kr
            * ks
            * out.height
            * out.width
        )

    def weight_count(self, input_shape: TensorShape) -> int:
        kr, ks = self.kernel_size
        return self.out_channels * input_shape.channels * kr * ks

    def bias_count(self, input_shape: TensorShape) -> int:
        return self.out_channels

    @property
    def is_compute(self) -> bool:
        return True


@dataclass
class Dense(Layer):
    """Fully-connected layer.

    The accelerator executes FC as a 1x1 convolution over a flat tensor
    (Section 5.3 treats CONV and FC layers uniformly in the DSE objective).
    """

    out_features: int = 1
    relu: bool = False

    def __post_init__(self) -> None:
        if self.out_features <= 0:
            raise ShapeError(f"{self.name}: out_features must be positive")

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        if not input_shape.is_flat:
            raise ShapeError(
                f"{self.name}: Dense requires a flat input, got {input_shape}"
            )
        return TensorShape(self.out_features, 1, 1)

    def macs(self, input_shape: TensorShape) -> int:
        return self.out_features * input_shape.size

    def weight_count(self, input_shape: TensorShape) -> int:
        return self.out_features * input_shape.size

    def bias_count(self, input_shape: TensorShape) -> int:
        return self.out_features

    @property
    def is_compute(self) -> bool:
        return True

    def as_conv(self) -> Conv2D:
        """Equivalent 1x1 convolution used by the compiler."""
        return Conv2D(
            name=self.name,
            out_channels=self.out_features,
            kernel_size=(1, 1),
            stride=1,
            padding=0,
            relu=self.relu,
        )


@dataclass
class _Pool2D(Layer):
    """Common behaviour of max/average pooling."""

    pool_size: int = 2
    stride: int = 0  # 0 means "same as pool_size"

    def __post_init__(self) -> None:
        if self.pool_size <= 0:
            raise ShapeError(f"{self.name}: pool_size must be positive")
        if self.stride < 0:
            raise ShapeError(f"{self.name}: stride must be >= 0")
        if self.stride == 0:
            self.stride = self.pool_size

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        if input_shape.height < self.pool_size or input_shape.width < self.pool_size:
            raise ShapeError(
                f"{self.name}: input {input_shape} smaller than pool "
                f"window {self.pool_size}"
            )
        out_h = (input_shape.height - self.pool_size) // self.stride + 1
        out_w = (input_shape.width - self.pool_size) // self.stride + 1
        return TensorShape(input_shape.channels, out_h, out_w)


@dataclass
class MaxPool2D(_Pool2D):
    """Max pooling, fused into the accelerator's SAVE module."""


@dataclass
class AvgPool2D(_Pool2D):
    """Average pooling, fused into the accelerator's SAVE module."""


@dataclass
class ReLU(Layer):
    """Stand-alone ReLU.

    The compiler fuses ReLU into the preceding COMP instruction
    (``RELU_FLAG`` in Figure 2) whenever it directly follows a compute
    layer; a stand-alone ReLU is still representable for generality.
    """

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        return input_shape


@dataclass
class Flatten(Layer):
    """Collapse a feature map into a vector for the FC stage."""

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        return TensorShape(input_shape.size, 1, 1)


#: Registry used by the JSON (de)serialiser.
LAYER_TYPES = {
    "conv2d": Conv2D,
    "dense": Dense,
    "maxpool2d": MaxPool2D,
    "avgpool2d": AvgPool2D,
    "relu": ReLU,
    "flatten": Flatten,
}

"""Reference models.

``vgg16`` is the paper's evaluation workload (Section 6).  The others are
used by tests, examples and the Figure-6 style layer sweeps.
"""

from __future__ import annotations

from repro.ir.builder import NetworkBuilder
from repro.ir.graph import Network

#: VGG16 convolution plan: (out_channels, number of convs in the block).
_VGG16_BLOCKS = [
    (64, 2),
    (128, 2),
    (256, 3),
    (512, 3),
    (512, 3),
]


def vgg16(input_size: int = 224, include_fc: bool = True) -> Network:
    """VGG16 with ``3 x input_size x input_size`` input.

    All convolutions are 3x3, stride 1, padding 1 with fused ReLU —
    exactly the geometry the paper's DSE maps to Winograd mode.
    """
    builder = NetworkBuilder("vgg16", input_shape=(3, input_size, input_size))
    for block_idx, (channels, repeats) in enumerate(_VGG16_BLOCKS, start=1):
        for conv_idx in range(1, repeats + 1):
            builder.conv2d(
                channels,
                kernel_size=3,
                padding=1,
                relu=True,
                name=f"conv{block_idx}_{conv_idx}",
            )
        builder.maxpool2d(2, name=f"pool{block_idx}")
    if include_fc:
        builder.flatten(name="flatten")
        builder.dense(4096, relu=True, name="fc6")
        builder.dense(4096, relu=True, name="fc7")
        builder.dense(1000, name="fc8")
    return builder.build()


def alexnet(input_size: int = 227) -> Network:
    """AlexNet-style network: exercises large kernels (11x11, 5x5) and the
    kernel-decomposition path of the Winograd engine."""
    return (
        NetworkBuilder("alexnet", input_shape=(3, input_size, input_size))
        .conv2d(96, kernel_size=11, stride=4, relu=True, name="conv1")
        .maxpool2d(3, stride=2, name="pool1")
        .conv2d(256, kernel_size=5, padding=2, relu=True, name="conv2")
        .maxpool2d(3, stride=2, name="pool2")
        .conv2d(384, kernel_size=3, padding=1, relu=True, name="conv3")
        .conv2d(384, kernel_size=3, padding=1, relu=True, name="conv4")
        .conv2d(256, kernel_size=3, padding=1, relu=True, name="conv5")
        .maxpool2d(3, stride=2, name="pool5")
        .flatten(name="flatten")
        .dense(4096, relu=True, name="fc6")
        .dense(4096, relu=True, name="fc7")
        .dense(1000, name="fc8")
        .build()
    )


def darknet19(input_size: int = 224, classes: int = 1000) -> Network:
    """Darknet-19 (the YOLOv2 backbone): alternating 3x3/1x1 convs.

    A sequential network with a heavy 1x1 population — the workload
    where the hybrid design's per-layer mode choice matters most (1x1
    layers run Spatial, 3x3 layers Winograd).
    """
    builder = NetworkBuilder("darknet19", input_shape=(3, input_size, input_size))
    idx = 0

    def conv(channels: int, kernel: int) -> None:
        nonlocal idx
        idx += 1
        builder.conv2d(
            channels, kernel_size=kernel, padding=kernel // 2,
            relu=True, name=f"conv{idx}",
        )

    conv(32, 3)
    builder.maxpool2d(2, name="pool1")
    conv(64, 3)
    builder.maxpool2d(2, name="pool2")
    conv(128, 3); conv(64, 1); conv(128, 3)
    builder.maxpool2d(2, name="pool3")
    conv(256, 3); conv(128, 1); conv(256, 3)
    builder.maxpool2d(2, name="pool4")
    conv(512, 3); conv(256, 1); conv(512, 3); conv(256, 1); conv(512, 3)
    builder.maxpool2d(2, name="pool5")
    conv(1024, 3); conv(512, 1); conv(1024, 3); conv(512, 1); conv(1024, 3)
    conv(classes, 1)
    builder.avgpool2d(input_size // 32, name="gap")
    return builder.build()


def tiny_cnn(input_size: int = 16, channels: int = 8) -> Network:
    """Small all-conv network for fast functional tests."""
    return (
        NetworkBuilder("tiny_cnn", input_shape=(3, input_size, input_size))
        .conv2d(channels, kernel_size=3, padding=1, relu=True, name="conv1")
        .conv2d(channels * 2, kernel_size=3, padding=1, relu=True, name="conv2")
        .maxpool2d(2, name="pool1")
        .conv2d(channels * 2, kernel_size=3, padding=1, name="conv3")
        .build()
    )


def tiny_mlp(in_features: int = 64, hidden: int = 32, classes: int = 10) -> Network:
    """Small FC-only network: exercises the Dense -> 1x1-conv path."""
    return (
        NetworkBuilder("tiny_mlp", input_shape=(in_features, 1, 1))
        .dense(hidden, relu=True, name="fc1")
        .dense(classes, name="fc2")
        .build()
    )


def single_conv(
    channels_in: int,
    channels_out: int,
    feature_size: int,
    kernel_size: int,
    stride: int = 1,
    padding: int = 0,
    name: str = "layer_under_test",
) -> Network:
    """One-convolution network used by the Figure-6 layer sweeps."""
    return (
        NetworkBuilder(name, input_shape=(channels_in, feature_size, feature_size))
        .conv2d(
            channels_out,
            kernel_size=kernel_size,
            stride=stride,
            padding=padding,
            name="conv",
        )
        .build()
    )


MODELS = {
    "vgg16": vgg16,
    "alexnet": alexnet,
    "darknet19": darknet19,
    "tiny_cnn": tiny_cnn,
    "tiny_mlp": tiny_mlp,
}


def get_model(name: str, **kwargs) -> Network:
    """Instantiate a zoo model by name."""
    try:
        factory = MODELS[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(MODELS)}"
        ) from None
    return factory(**kwargs)

"""Intermediate representation of DNN models (framework Step 1, parser).

The IR is deliberately small: HybridDNN accelerates CONV and FC layers and
streams the light element-wise work (ReLU, quantisation, pooling) through
the SAVE module, so the IR only needs the layer types the accelerator and
its compiler understand.

Public API
----------
``TensorShape``, ``DataType``
    Shape and fixed-point type descriptors (:mod:`repro.ir.tensor`).
``Layer`` and subclasses
    Conv2D, Dense, MaxPool2D/AvgPool2D, ReLU, Flatten
    (:mod:`repro.ir.layers`).
``Network`` / ``NetworkBuilder``
    Sequential layer graph with shape inference (:mod:`repro.ir.graph`,
    :mod:`repro.ir.builder`).
``zoo``
    Reference models: VGG16, AlexNet, and small test networks.
``load_network`` / ``save_network``
    JSON (de)serialisation used by the framework parser.
"""

from repro.ir.tensor import DataType, TensorShape
from repro.ir.layers import (
    AvgPool2D,
    Conv2D,
    Dense,
    Flatten,
    Layer,
    MaxPool2D,
    ReLU,
)
from repro.ir.graph import Network
from repro.ir.builder import NetworkBuilder
from repro.ir.serialize import (
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)
from repro.ir import zoo

__all__ = [
    "AvgPool2D",
    "Conv2D",
    "DataType",
    "Dense",
    "Flatten",
    "Layer",
    "MaxPool2D",
    "Network",
    "NetworkBuilder",
    "ReLU",
    "TensorShape",
    "load_network",
    "network_from_dict",
    "network_to_dict",
    "save_network",
    "zoo",
]

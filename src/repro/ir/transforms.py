"""Model-level transformations applied before compilation.

``fold_batchnorm`` implements the standard deployment step the paper's
Step-1 parser assumes has happened: batch-normalisation parameters are
folded into the preceding convolution's weights and bias, so the
accelerator only ever sees CONV/FC (+ ReLU/pool) layers.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import ShapeError


def fold_batchnorm(
    weights: np.ndarray,
    bias: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    mean: np.ndarray,
    var: np.ndarray,
    eps: float = 1e-5,
):
    """Fold ``BN(conv(x))`` into a single convolution.

    With ``y = gamma * (w*x + b - mean) / sqrt(var + eps) + beta`` the
    folded parameters are::

        w' = w * gamma / sqrt(var + eps)        (per output channel)
        b' = (b - mean) * gamma / sqrt(var+eps) + beta

    Returns ``(weights', bias')``.
    """
    weights = np.asarray(weights, dtype=np.float64)
    k = weights.shape[0]
    for name, arr in (("bias", bias), ("gamma", gamma), ("beta", beta),
                      ("mean", mean), ("var", var)):
        arr = np.asarray(arr)
        if arr.shape != (k,):
            raise ShapeError(
                f"{name} must have shape ({k},), got {arr.shape}"
            )
    bias = np.asarray(bias, dtype=np.float64)
    gamma = np.asarray(gamma, dtype=np.float64)
    beta = np.asarray(beta, dtype=np.float64)
    mean = np.asarray(mean, dtype=np.float64)
    var = np.asarray(var, dtype=np.float64)
    if np.any(var < 0):
        raise ShapeError("variance must be non-negative")
    scale = gamma / np.sqrt(var + eps)
    shape = (k,) + (1,) * (weights.ndim - 1)
    folded_w = weights * scale.reshape(shape)
    folded_b = (bias - mean) * scale + beta
    return folded_w, folded_b


def fold_batchnorm_params(
    params: Dict[str, dict], layer_name: str, bn: dict, eps: float = 1e-5
) -> Dict[str, dict]:
    """Fold a BN record into ``params[layer_name]``; returns new dict.

    ``bn`` holds ``gamma/beta/mean/var`` arrays.  The original dict is
    not mutated.
    """
    if layer_name not in params:
        raise ShapeError(f"no parameters for layer {layer_name!r}")
    entry = params[layer_name]
    weights = np.asarray(entry["weights"], dtype=np.float64)
    bias = entry.get("bias")
    if bias is None:
        bias = np.zeros(weights.shape[0])
    folded_w, folded_b = fold_batchnorm(
        weights, bias, bn["gamma"], bn["beta"], bn["mean"], bn["var"], eps
    )
    out = dict(params)
    out[layer_name] = {"weights": folded_w, "bias": folded_b}
    return out

"""JSON (de)serialisation of networks — the framework's model parser.

HybridDNN Step 1 parses a pretrained model description; here the exchange
format is a small JSON document::

    {
      "name": "vgg16",
      "input_shape": [3, 224, 224],
      "layers": [
        {"type": "conv2d", "name": "conv1_1", "out_channels": 64,
         "kernel_size": [3, 3], "stride": 1, "padding": 1, "relu": true},
        ...
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import fields
from pathlib import Path
from typing import Union

from repro.errors import GraphError
from repro.ir.graph import Network
from repro.ir.layers import LAYER_TYPES, Conv2D, Layer
from repro.ir.tensor import TensorShape

_TYPE_NAMES = {cls: name for name, cls in LAYER_TYPES.items()}


def _layer_to_dict(layer: Layer) -> dict:
    cls = type(layer)
    try:
        type_name = _TYPE_NAMES[cls]
    except KeyError:
        raise GraphError(f"cannot serialise layer type {cls.__name__}") from None
    data = {"type": type_name}
    for f in fields(layer):
        value = getattr(layer, f.name)
        if isinstance(value, tuple):
            value = list(value)
        data[f.name] = value
    return data


def _layer_from_dict(data: dict) -> Layer:
    data = dict(data)
    type_name = data.pop("type", None)
    if type_name not in LAYER_TYPES:
        raise GraphError(f"unknown layer type {type_name!r}")
    cls = LAYER_TYPES[type_name]
    valid = {f.name for f in fields(cls)}
    unknown = set(data) - valid
    if unknown:
        raise GraphError(
            f"unknown fields for {type_name}: {sorted(unknown)}"
        )
    if cls is Conv2D and "kernel_size" in data:
        data["kernel_size"] = tuple(data["kernel_size"])
    return cls(**data)


def network_to_dict(network: Network) -> dict:
    """Serialise ``network`` to a plain dict (JSON-compatible)."""
    return {
        "name": network.name,
        "input_shape": list(network.input_shape.as_tuple()),
        "layers": [_layer_to_dict(layer) for layer in network.layers],
    }


def network_from_dict(data: dict) -> Network:
    """Parse a network from a dict produced by :func:`network_to_dict`."""
    for key in ("name", "input_shape", "layers"):
        if key not in data:
            raise GraphError(f"network document missing key {key!r}")
    shape = TensorShape(*data["input_shape"])
    layers = [_layer_from_dict(item) for item in data["layers"]]
    return Network(data["name"], shape, layers)


def save_network(network: Network, path: Union[str, Path]) -> None:
    """Write ``network`` as JSON to ``path``."""
    Path(path).write_text(json.dumps(network_to_dict(network), indent=2))


def load_network(path: Union[str, Path]) -> Network:
    """Load a network from a JSON file."""
    return network_from_dict(json.loads(Path(path).read_text()))

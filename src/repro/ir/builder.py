"""Fluent builder for sequential networks.

Example
-------
>>> from repro.ir import NetworkBuilder
>>> net = (
...     NetworkBuilder("tiny", input_shape=(3, 32, 32))
...     .conv2d(16, kernel_size=3, padding=1, relu=True)
...     .maxpool2d(2)
...     .conv2d(32, kernel_size=3, padding=1, relu=True)
...     .flatten()
...     .dense(10)
...     .build()
... )
>>> len(net)
5
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from repro.ir.graph import Network
from repro.ir.layers import (
    AvgPool2D,
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    ReLU,
)
from repro.ir.tensor import TensorShape

ShapeLike = Union[TensorShape, Tuple[int, int, int]]


def _as_shape(shape: ShapeLike) -> TensorShape:
    if isinstance(shape, TensorShape):
        return shape
    return TensorShape(*shape)


class NetworkBuilder:
    """Incrementally build a :class:`~repro.ir.graph.Network`.

    Layer names default to ``<type><running index>`` (``conv1``, ``pool2``,
    ...) but can be overridden per call.
    """

    def __init__(self, name: str, input_shape: ShapeLike):
        self._name = name
        self._input_shape = _as_shape(input_shape)
        self._layers = []
        self._counter = 0

    def _next_name(self, prefix: str, name: Optional[str]) -> str:
        self._counter += 1
        return name if name is not None else f"{prefix}{self._counter}"

    def conv2d(
        self,
        out_channels: int,
        kernel_size: Union[int, Tuple[int, int]] = 3,
        stride: int = 1,
        padding: int = 0,
        relu: bool = False,
        name: Optional[str] = None,
    ) -> "NetworkBuilder":
        """Append a convolution layer."""
        if isinstance(kernel_size, int):
            kernel_size = (kernel_size, kernel_size)
        self._layers.append(
            Conv2D(
                name=self._next_name("conv", name),
                out_channels=out_channels,
                kernel_size=kernel_size,
                stride=stride,
                padding=padding,
                relu=relu,
            )
        )
        return self

    def dense(
        self, out_features: int, relu: bool = False, name: Optional[str] = None
    ) -> "NetworkBuilder":
        """Append a fully-connected layer."""
        self._layers.append(
            Dense(
                name=self._next_name("fc", name),
                out_features=out_features,
                relu=relu,
            )
        )
        return self

    def maxpool2d(
        self, pool_size: int = 2, stride: int = 0, name: Optional[str] = None
    ) -> "NetworkBuilder":
        self._layers.append(
            MaxPool2D(
                name=self._next_name("pool", name),
                pool_size=pool_size,
                stride=stride,
            )
        )
        return self

    def avgpool2d(
        self, pool_size: int = 2, stride: int = 0, name: Optional[str] = None
    ) -> "NetworkBuilder":
        self._layers.append(
            AvgPool2D(
                name=self._next_name("pool", name),
                pool_size=pool_size,
                stride=stride,
            )
        )
        return self

    def relu(self, name: Optional[str] = None) -> "NetworkBuilder":
        self._layers.append(ReLU(name=self._next_name("relu", name)))
        return self

    def flatten(self, name: Optional[str] = None) -> "NetworkBuilder":
        self._layers.append(Flatten(name=self._next_name("flatten", name)))
        return self

    def build(self) -> Network:
        """Validate and return the finished network."""
        return Network(self._name, self._input_shape, self._layers)
